"""Correctness tests for the processing kernels.

Two invariant families:

* *reference correctness* — each kernel's whole-raster output matches
  an independent implementation (scipy.ndimage where one exists,
  hand-built semantics otherwise);
* *decomposition equivalence* — running the kernel over arbitrary
  element ranges with halo windows reproduces the whole-raster output
  exactly, which is the property that makes TS/NAS/DAS agree.
"""

import numpy as np
import pytest
import scipy.ndimage as ndi

from repro.errors import KernelError, UnknownKernelError
from repro.kernels import (
    FlowRoutingKernel,
    GaussianFilterKernel,
    KernelRegistry,
    accumulate_full,
    default_registry,
)
from repro.kernels.stencil import D8_OFFSETS
from repro.workloads import fractal_dem, ramp_dem

RNG = np.random.default_rng(42)
DEM = fractal_dem(41, 57, rng=RNG)  # awkward odd shape on purpose
DIRS = default_registry.get("flow-routing").reference(DEM)

ALL_KERNELS = ("flow-routing", "flow-accumulation", "gaussian", "median", "slope")


def input_for(name: str) -> np.ndarray:
    return DIRS if name == "flow-accumulation" else DEM


class TestRegistry:
    def test_paper_kernels_registered(self):
        for name in ALL_KERNELS:
            assert name in default_registry

    def test_unknown_kernel_raises(self):
        with pytest.raises(UnknownKernelError):
            default_registry.get("nope")

    def test_duplicate_registration_rejected(self):
        reg = KernelRegistry()
        reg.register(GaussianFilterKernel())
        with pytest.raises(KernelError):
            reg.register(GaussianFilterKernel())

    def test_unnamed_kernel_rejected(self):
        reg = KernelRegistry()
        k = GaussianFilterKernel()
        k.name = ""
        with pytest.raises(KernelError):
            reg.register(k)

    def test_features_file_contains_all_records(self):
        text = default_registry.features_file()
        for name in ALL_KERNELS:
            assert f"Name:{name}" in text


class TestReferenceCorrectness:
    def test_gaussian_matches_scipy(self):
        g = default_registry.get("gaussian")
        expected = ndi.correlate(DEM, GaussianFilterKernel.WEIGHTS, mode="nearest")
        assert np.allclose(g.reference(DEM), expected, atol=1e-12)

    def test_median_matches_scipy(self):
        m = default_registry.get("median")
        expected = ndi.median_filter(DEM, size=3, mode="nearest")
        assert np.allclose(m.reference(DEM), expected)

    def test_slope_matches_manual_horn(self):
        s = default_registry.get("slope")
        p = np.pad(DEM, 1, mode="edge")
        gx = ((p[:-2, 2:] + 2 * p[1:-1, 2:] + p[2:, 2:])
              - (p[:-2, :-2] + 2 * p[1:-1, :-2] + p[2:, :-2])) / 8.0
        gy = ((p[2:, :-2] + 2 * p[2:, 1:-1] + p[2:, 2:])
              - (p[:-2, :-2] + 2 * p[:-2, 1:-1] + p[:-2, 2:])) / 8.0
        assert np.allclose(s.reference(DEM), np.hypot(gx, gy))

    def test_flow_routing_points_to_minimum_neighbor(self):
        out = DIRS
        rows, cols = DEM.shape
        rng = np.random.default_rng(0)
        for _ in range(200):
            r = int(rng.integers(0, rows))
            c = int(rng.integers(0, cols))
            neighbors = []
            for k, (dr, dc) in enumerate(D8_OFFSETS):
                rr, cc = r + dr, c + dc
                if 0 <= rr < rows and 0 <= cc < cols:
                    neighbors.append((DEM[rr, cc], k + 1))
            best_val, best_code = min(neighbors)
            code = out[r, c]
            if best_val < DEM[r, c]:
                chosen = D8_OFFSETS[int(code) - 1]
                assert DEM[r + chosen[0], c + chosen[1]] == best_val
            else:
                assert code == 0

    def test_flow_routing_on_ramp_is_all_northwest(self):
        ramp = ramp_dem(16, 16)
        out = FlowRoutingKernel().reference(ramp)
        # Interior cells all drain to the NW neighbour (code 1).
        assert (out[1:, 1:] == 1.0).all()
        assert out[0, 0] == 0.0  # global minimum is a pit

    def test_flow_routing_tie_breaks_lowest_code(self):
        flat = np.ones((5, 5))
        flat[2, 2] = 2.0  # strictly higher centre, all neighbours equal
        out = FlowRoutingKernel().reference(flat)
        assert out[2, 2] == 1.0  # NW wins ties

    def test_flow_accumulation_counts_inflow(self):
        acc = default_registry.get("flow-accumulation").reference(DIRS)
        rows, cols = DIRS.shape
        rng = np.random.default_rng(1)
        for _ in range(100):
            r = int(rng.integers(0, rows))
            c = int(rng.integers(0, cols))
            inflow = 0
            for k, (dr, dc) in enumerate(D8_OFFSETS):
                rr, cc = r + dr, c + dc
                if 0 <= rr < rows and 0 <= cc < cols:
                    code = DIRS[rr, cc]
                    if code and D8_OFFSETS[int(code) - 1] == (-dr, -dc):
                        inflow += 1
            assert acc[r, c] == 1 + inflow

    def test_flow_accumulation_conservation(self):
        acc = default_registry.get("flow-accumulation").reference(DIRS)
        # Total inflow equals the number of flowing (non-pit) cells:
        # each contributes exactly one unit to exactly one neighbour.
        assert acc.sum() - DIRS.size == (DIRS > 0).sum()

    def test_accumulate_full_fixed_point(self):
        basin = accumulate_full(DIRS)
        # Fixed point: one more propagation sweep changes nothing.
        again = accumulate_full(DIRS, max_iters=int(basin.max()) + 2)
        assert np.array_equal(basin, again)
        # Basin accumulation dominates the single local pass.
        local = default_registry.get("flow-accumulation").reference(DIRS)
        assert (basin >= local - 1e-12).all()

    def test_accumulate_full_on_ramp(self):
        ramp = ramp_dem(8, 8)
        dirs = FlowRoutingKernel().reference(ramp)
        basin = accumulate_full(dirs)
        # All 64 units of water eventually reach the pit at (0, 0).
        assert basin[0, 0] == 64.0


class TestDecompositionEquivalence:
    @pytest.mark.parametrize("name", ALL_KERNELS)
    @pytest.mark.parametrize("chunk", [1, 17, 57, 64, 500])
    def test_chunked_equals_reference(self, name, chunk):
        kernel = default_registry.get(name)
        src = input_for(name)
        ref = kernel.reference(src).reshape(-1)
        out = np.empty_like(ref)
        for first in range(0, src.size, chunk):
            count = min(chunk, src.size - first)
            out[first : first + count] = kernel.apply_range(src, first, count)
        assert np.array_equal(out, ref)

    @pytest.mark.parametrize("name", ALL_KERNELS)
    def test_single_element_ranges(self, name):
        kernel = default_registry.get(name)
        src = input_for(name)
        ref = kernel.reference(src).reshape(-1)
        rng = np.random.default_rng(9)
        for idx in rng.integers(0, src.size, size=25):
            got = kernel.apply_range(src, int(idx), 1)
            assert got[0] == ref[idx]

    def test_reference_requires_2d(self):
        with pytest.raises(KernelError):
            default_registry.get("gaussian").reference(np.zeros(10))

    def test_apply_range_needs_width_for_flat_input(self):
        k = default_registry.get("gaussian")
        with pytest.raises(KernelError):
            k.apply_range(DEM.reshape(-1), 0, 10)
        got = k.apply_range(DEM.reshape(-1), 0, 10, width=DEM.shape[1])
        assert np.array_equal(got, k.reference(DEM).reshape(-1)[:10])


class TestKernelMetadata:
    @pytest.mark.parametrize("name", ALL_KERNELS)
    def test_eight_neighbor_pattern(self, name):
        pattern = default_registry.get(name).pattern()
        assert pattern.offsets(100).tolist() == [-101, -100, -99, -1, 1, 99, 100, 101]

    @pytest.mark.parametrize("name", ALL_KERNELS)
    def test_descriptions_present(self, name):
        kernel = default_registry.get(name)
        assert kernel.description
        assert kernel.domain

    @pytest.mark.parametrize("name", ALL_KERNELS)
    def test_features_record_parses_back(self, name):
        from repro.kernels import DependencePattern

        kernel = default_registry.get(name)
        [parsed] = DependencePattern.parse(kernel.features_record())
        assert parsed == kernel.pattern()
