"""Unit tests for window assembly and padding machinery."""

import numpy as np
import pytest

from repro.errors import KernelError
from repro.kernels import (
    Window,
    assemble_rows,
    extract_core,
    neighbor_stack,
    pad_rows,
    window_bounds,
)
from repro.kernels.stencil import D8_OFFSETS


def make_window(n=100, width=10, lo=20, first=30, end=60):
    data = np.arange(lo, min(n, end + 25), dtype=np.float64)
    return Window(
        data=data, lo=lo, first=first, end=end, width=width, n_elements=n
    )


class TestWindow:
    def test_valid_window(self):
        w = make_window()
        assert w.hi == w.lo + w.data.size

    def test_core_outside_window_rejected(self):
        with pytest.raises(KernelError):
            Window(
                data=np.zeros(5), lo=10, first=5, end=12, width=10, n_elements=100
            )

    def test_raster_width_mismatch_rejected(self):
        with pytest.raises(KernelError):
            Window(
                data=np.zeros(5), lo=0, first=0, end=5, width=7, n_elements=100
            )


class TestAssembleRows:
    def test_lifts_flat_window_to_rows(self):
        w = make_window(n=100, width=10, lo=25, first=30, end=40)
        block, r0 = assemble_rows(w)
        assert r0 == 2
        flat = block.reshape(-1)
        # Cells inside the window carry their element index values.
        assert flat[5] == 25  # element 25 at position 25 - 20
        assert np.isnan(flat[0])  # element 20..24 are outside the window

    def test_full_raster_window_has_no_nans(self):
        data = np.arange(100, dtype=np.float64)
        w = Window(data=data, lo=0, first=0, end=100, width=10, n_elements=100)
        block, r0 = assemble_rows(w)
        assert r0 == 0
        assert not np.isnan(block).any()
        assert np.array_equal(block, data.reshape(10, 10))


class TestPadRows:
    def test_edge_padding_replicates_border(self):
        block = np.arange(6, dtype=np.float64).reshape(2, 3)
        p = pad_rows(block, "edge")
        assert p.shape == (4, 5)
        assert p[0, 0] == block[0, 0]
        assert p[-1, -1] == block[-1, -1]
        assert p[0, 2] == block[0, 1]

    def test_constant_padding(self):
        block = np.ones((2, 2))
        p = pad_rows(block, np.inf)
        assert np.isinf(p[0]).all()
        assert p[1, 1] == 1.0

    def test_requires_2d(self):
        with pytest.raises(KernelError):
            pad_rows(np.zeros(5))


class TestNeighborStack:
    def test_stack_order_matches_d8_offsets(self):
        block = np.arange(25, dtype=np.float64).reshape(5, 5)
        p = pad_rows(block, 0.0)
        stack = neighbor_stack(p)
        assert stack.shape == (8, 5, 5)
        centre = (2, 2)
        for k, (dr, dc) in enumerate(D8_OFFSETS):
            assert stack[k][centre] == block[2 + dr, 2 + dc]

    def test_d8_offsets_antisymmetric(self):
        for k, (dr, dc) in enumerate(D8_OFFSETS):
            assert D8_OFFSETS[7 - k] == (-dr, -dc)


class TestExtractCore:
    def test_extract_returns_core_slice(self):
        w = make_window(n=100, width=10, lo=20, first=30, end=60)
        block, r0 = assemble_rows(w)
        out = extract_core(block, r0, w)
        assert out.tolist() == list(range(30, 60))

    def test_core_escaping_block_rejected(self):
        w = make_window()
        block, r0 = assemble_rows(w)
        with pytest.raises(KernelError):
            extract_core(block[:1], r0 + 5, w)


class TestWindowBounds:
    def test_clamps_to_file(self):
        assert window_bounds(0, 10, 5, 5, 100) == (0, 15)
        assert window_bounds(95, 5, 5, 5, 100) == (90, 100)
        assert window_bounds(50, 10, 5, 5, 100) == (45, 65)

    def test_invalid_core_rejected(self):
        with pytest.raises(KernelError):
            window_bounds(-1, 5, 0, 0, 100)
        with pytest.raises(KernelError):
            window_bounds(99, 5, 0, 0, 100)
