"""Correctness tests for the extension kernels (laplace, relief)."""

import numpy as np
import pytest
import scipy.ndimage as ndi

from repro.kernels import LaplaceKernel, ReliefKernel, default_registry
from repro.workloads import fractal_dem

DEM = fractal_dem(33, 47, rng=np.random.default_rng(13))


class TestLaplace:
    def test_registered_with_four_neighbor_pattern(self):
        k = default_registry.get("laplace")
        assert k.pattern().offsets(10).tolist() == [-10, -1, 1, 10]

    def test_matches_scipy_stencil(self):
        stencil = np.array([[0, 1, 0], [1, -4, 1], [0, 1, 0]], dtype=np.float64)
        expected = ndi.correlate(DEM, stencil, mode="nearest")
        assert np.allclose(LaplaceKernel().reference(DEM), expected, atol=1e-12)

    def test_constant_raster_maps_to_zero(self):
        flat = np.full((9, 9), 3.7)
        assert np.allclose(LaplaceKernel().reference(flat), 0.0)

    def test_zero_sum_on_linear_ramp_interior(self):
        ramp = np.add.outer(
            np.arange(10, dtype=np.float64), 2 * np.arange(12, dtype=np.float64)
        )
        out = LaplaceKernel().reference(ramp)
        assert np.allclose(out[1:-1, 1:-1], 0.0, atol=1e-12)

    @pytest.mark.parametrize("chunk", [1, 13, 100])
    def test_chunked_equals_reference(self, chunk):
        k = default_registry.get("laplace")
        ref = k.reference(DEM).reshape(-1)
        out = np.empty_like(ref)
        for first in range(0, DEM.size, chunk):
            count = min(chunk, DEM.size - first)
            out[first : first + count] = k.apply_range(DEM, first, count)
        assert np.array_equal(out, ref)


class TestRelief:
    def test_matches_scipy_range_filter(self):
        expected = ndi.maximum_filter(DEM, size=3, mode="nearest") - ndi.minimum_filter(
            DEM, size=3, mode="nearest"
        )
        assert np.allclose(ReliefKernel().reference(DEM), expected)

    def test_nonnegative_everywhere(self):
        out = ReliefKernel().reference(DEM)
        assert (out >= 0).all()

    def test_constant_raster_has_zero_relief(self):
        flat = np.full((8, 8), -2.0)
        assert np.allclose(ReliefKernel().reference(flat), 0.0)

    @pytest.mark.parametrize("chunk", [7, 57])
    def test_chunked_equals_reference(self, chunk):
        k = default_registry.get("relief")
        ref = k.reference(DEM).reshape(-1)
        out = np.empty_like(ref)
        for first in range(0, DEM.size, chunk):
            count = min(chunk, DEM.size - first)
            out[first : first + count] = k.apply_range(DEM, first, count)
        assert np.array_equal(out, ref)


class TestExtensionKernelsThroughSchemes:
    @pytest.mark.parametrize("name", ["laplace", "relief"])
    def test_das_offload_matches_reference(self, name, drive):
        from repro.hw import Cluster
        from repro.pfs import ParallelFileSystem
        from repro.schemes import DynamicActiveStorageScheme
        from repro.units import KiB
        from repro.harness.platform import ingest_for_scheme

        cluster = Cluster.build(n_compute=4, n_storage=4)
        pfs = ParallelFileSystem(cluster, strip_size=4 * KiB)
        # DEM is too small for a feasible grouped plan; use a raster
        # with enough strips (64) for the optimizer to localise.
        big = fractal_dem(128, 256, rng=np.random.default_rng(5))
        ingest_for_scheme(pfs, "DAS", "in", big, name)
        res = drive(
            cluster, DynamicActiveStorageScheme(pfs).run_operation(name, "in", "out")
        )
        assert res.offloaded
        ref = default_registry.get(name).reference(big)
        assert np.array_equal(pfs.client("c0").collect("out"), ref)

    def test_laplace_four_neighbor_needs_smaller_halo(self):
        # The 4-neighbour record has the same row reach but no corner
        # offsets; reach is width (not width+1).
        lap = default_registry.get("laplace").pattern()
        gau = default_registry.get("gaussian").pattern()
        assert lap.reach(100) == 100
        assert gau.reach(100) == 101
