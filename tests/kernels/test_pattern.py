"""Unit tests for dependence patterns and the paper's record format."""

import numpy as np
import pytest

from repro.errors import PatternParseError
from repro.kernels import DependencePattern, OffsetTerm


class TestOffsetTerm:
    def test_resolve(self):
        assert OffsetTerm(-1, 1).resolve(100) == -99
        assert OffsetTerm(0, -3).resolve(100) == -3
        assert OffsetTerm(2, 0).resolve(10) == 20

    @pytest.mark.parametrize(
        "term,text",
        [
            (OffsetTerm(0, 5), "5"),
            (OffsetTerm(0, -5), "-5"),
            (OffsetTerm(1, 0), "imgWidth"),
            (OffsetTerm(-1, 0), "-imgWidth"),
            (OffsetTerm(1, 1), "imgWidth+1"),
            (OffsetTerm(-1, -1), "-imgWidth-1"),
            (OffsetTerm(2, -3), "2*imgWidth-3"),
            (OffsetTerm(0, 0), "0"),
        ],
    )
    def test_to_text(self, term, text):
        assert term.to_text() == text


class TestParsing:
    def test_paper_flow_routing_record(self):
        text = (
            "Name:flow-routing\n"
            "Dependence: -imgWidth+1, -imgWidth, -imgWidth-1, -1, 1,"
            " imgWidth-1, imgWidth, imgWidth+1\n"
        )
        [p] = DependencePattern.parse(text)
        assert p == DependencePattern.eight_neighbor("flow-routing")

    def test_roundtrip_through_text(self):
        original = DependencePattern.eight_neighbor("op")
        [parsed] = DependencePattern.parse(original.to_text())
        assert parsed == original

    def test_multiple_records(self):
        text = "Name:a\nDependence: -1, 1\nName:b\nDependence: imgWidth\n"
        patterns = DependencePattern.parse(text)
        assert [p.name for p in patterns] == ["a", "b"]

    def test_wrapped_dependence_lines(self):
        text = "Name:op\nDependence: -imgWidth+1, -imgWidth,\n  -1, 1\n"
        [p] = DependencePattern.parse(text)
        assert len(p.terms) == 4

    def test_comments_and_blank_lines_skipped(self):
        text = "# a comment\n\nName:op\nDependence: 1\n"
        [p] = DependencePattern.parse(text)
        assert p.offsets(1).tolist() == [1]

    def test_empty_dependence_means_independent(self):
        [p] = DependencePattern.parse("Name:scan\nDependence:\n")
        assert p.is_independent

    def test_dependence_before_name_rejected(self):
        with pytest.raises(PatternParseError):
            DependencePattern.parse("Dependence: 1\n")

    def test_garbage_line_rejected(self):
        with pytest.raises(PatternParseError):
            DependencePattern.parse("what is this\n")

    def test_empty_text_rejected(self):
        with pytest.raises(PatternParseError):
            DependencePattern.parse("")

    def test_bad_offset_expression_rejected(self):
        with pytest.raises(PatternParseError):
            DependencePattern.parse("Name:x\nDependence: imgHeight+1\n")

    def test_coefficient_syntax(self):
        [p] = DependencePattern.parse("Name:x\nDependence: 2*imgWidth+1\n")
        assert p.offsets(10).tolist() == [21]


class TestPatternQueries:
    def test_eight_neighbor_offsets(self):
        p = DependencePattern.eight_neighbor("op")
        assert p.offsets(10).tolist() == [-11, -10, -9, -1, 1, 9, 10, 11]

    def test_four_neighbor_offsets(self):
        p = DependencePattern.four_neighbor("op")
        assert p.offsets(10).tolist() == [-10, -1, 1, 10]

    def test_stride_pattern(self):
        p = DependencePattern.stride("op", 7)
        assert p.offsets(1).tolist() == [-7, 7]

    def test_independent(self):
        p = DependencePattern.independent("scan")
        assert p.is_independent
        assert p.reach(10) == 0
        assert p.offsets(10).size == 0

    def test_reach_before_after(self):
        p = DependencePattern.eight_neighbor("op")
        assert p.reach(10) == 11
        assert p.reach_before(10) == 11
        assert p.reach_after(10) == 11

    def test_asymmetric_reach(self):
        p = DependencePattern.from_offsets("op", [-2, 5])
        assert p.reach_before(1) == 2
        assert p.reach_after(1) == 5

    def test_halo_rows(self):
        assert DependencePattern.eight_neighbor("x").halo_rows() == 2
        assert DependencePattern.four_neighbor("x").halo_rows() == 1
        assert DependencePattern.stride("x", 3).halo_rows() == 1
        assert DependencePattern.independent("x").halo_rows() == 0

    def test_duplicate_terms_removed(self):
        p = DependencePattern("op", [OffsetTerm(0, 1), OffsetTerm(0, 1)])
        assert len(p.terms) == 1

    def test_width_dependent_pattern_needs_width(self):
        p = DependencePattern.eight_neighbor("op")
        with pytest.raises(PatternParseError):
            p.offsets(0)

    def test_equality_and_hash(self):
        a = DependencePattern.eight_neighbor("op")
        b = DependencePattern.eight_neighbor("op")
        c = DependencePattern.eight_neighbor("other")
        assert a == b and hash(a) == hash(b)
        assert a != c
