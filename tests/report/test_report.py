"""The continuous-results pipeline (`repro.report`).

Coverage: the table formatting rules the byte-stability contract rests
on, largest-remainder apportionment in the flame renderer (bars always
sum to exactly the requested width), request-class grouping, a golden
end-to-end emission from a compact fixture tree, determinism of the
emitter, and the committed docs/RESULTS.md staying in sync with the
committed measurement record (the same gate `scripts/check_results.py`
runs in CI).
"""

import json
from pathlib import Path

import pytest

from repro.errors import HarnessError
from repro.report import generate_results
from repro.report.flame import (
    BAR_WIDTH,
    STAGE_GLYPHS,
    partition_bar,
    render_flame,
    request_classes,
    share_bar,
)
from repro.report.loaders import load_attributions, load_benchmarks, load_history
from repro.report.tables import (
    format_value,
    ledger_range,
    markdown_table,
    row_columns,
    rows_table,
)

REPO = Path(__file__).resolve().parents[2]


class TestTables:
    @pytest.mark.parametrize(
        "value,cell",
        [
            (None, ""),
            (True, "yes"),
            (False, "no"),
            (3, "3"),
            (3.0, "3"),
            (-2.0, "-2"),
            (0.25, "0.25"),
            (0.123456, "0.1235"),
            (1234.5678, "1235"),
            ("DAS", "DAS"),
        ],
    )
    def test_format_value(self, value, cell):
        assert format_value(value) == cell

    def test_markdown_table_shape(self):
        lines = markdown_table(["a", "b"], [[1, True], [None, 0.5]])
        assert lines == [
            "| a | b |",
            "|---|---|",
            "| 1 | yes |",
            "|  | 0.5 |",
        ]

    def test_row_columns_first_appearance_order(self):
        rows = [{"b": 1, "a": 2}, {"a": 3, "c": 4}]
        assert row_columns(rows) == ["b", "a", "c"]

    def test_rows_table_empty(self):
        assert rows_table([]) == ["*(no rows)*"]

    def test_ledger_range(self):
        entries = [{"w": 1.5}, {"w": 3.0}, {"w": 2.0}]
        assert ledger_range(entries, "w") == "1.5–3"
        assert ledger_range(entries[:1], "w") == "1.5"
        assert ledger_range([{"w": 2.0}, {"w": 2.0}], "w") == "2"
        assert ledger_range([{"other": 1}], "w") == ""


class TestShareBar:
    def test_proportional(self):
        assert share_bar(0.5, width=10) == "#" * 5

    def test_nonzero_share_never_empty(self):
        assert share_bar(0.001, width=10) == "#"

    def test_zero_and_clamping(self):
        assert share_bar(0.0) == ""
        assert share_bar(-1.0) == ""
        assert share_bar(2.0, width=8) == "#" * 8


class TestPartitionBar:
    @pytest.mark.parametrize(
        "stages",
        [
            [("queue", 1.0), ("rpc", 1.0), ("compute", 1.0)],
            [("queue", 0.1), ("rpc", 0.9)],
            [("queue", 1e-9), ("rpc", 1.0)],
            [("queue", 1.0)],
            [("queue", 7.0), ("rpc", 11.0), ("compute", 13.0), ("fence", 17.0)],
        ],
    )
    @pytest.mark.parametrize("width", [1, 5, 48, 97])
    def test_bar_always_sums_to_width(self, stages, width):
        bar = partition_bar(stages, width)
        assert len(bar) == width

    def test_zero_and_negative_stages_dropped(self):
        bar = partition_bar(
            [("queue", 0.0), ("rpc", 1.0), ("fence", -2.0)], width=6
        )
        assert bar == STAGE_GLYPHS["rpc"] * 6

    def test_empty_inputs(self):
        assert partition_bar([], width=10) == ""
        assert partition_bar([("queue", 0.0)], width=10) == ""
        assert partition_bar([("queue", 1.0)], width=0) == ""

    def test_largest_remainder_beats_flooring(self):
        # Thirds of 10: floors are 3+3+3, the leftover cell must land on
        # exactly one stage (first in order, remainders tie) — never
        # dropped, never doubled.
        bar = partition_bar(
            [("queue", 1.0), ("rpc", 1.0), ("compute", 1.0)], width=10
        )
        assert bar.count(STAGE_GLYPHS["queue"]) == 4
        assert bar.count(STAGE_GLYPHS["rpc"]) == 3
        assert bar.count(STAGE_GLYPHS["compute"]) == 3

    def test_segments_keep_stage_order(self):
        bar = partition_bar([("queue", 1.0), ("rpc", 1.0)], width=8)
        assert bar == "qqqqRRRR"


class TestRequestClasses:
    def test_groups_by_tenant_and_outcome(self):
        rows = [
            {"tenant": "b", "outcome": "late", "latency_s": 2.0,
             "coverage": 0.9, "queue_s": 2.0},
            {"tenant": "a", "outcome": "completed", "latency_s": 1.0,
             "coverage": 1.0, "rpc_s": 1.0},
            {"tenant": "a", "outcome": "completed", "latency_s": 3.0,
             "coverage": 0.8, "rpc_s": 3.0},
        ]
        classes = request_classes(rows)
        assert [(c["tenant"], c["outcome"]) for c in classes] == [
            ("a", "completed"),
            ("b", "late"),
        ]
        a = classes[0]
        assert a["count"] == 2
        assert a["mean_latency_s"] == pytest.approx(2.0)
        assert a["mean_coverage"] == pytest.approx(0.9)
        assert a["stages"] == {"rpc": pytest.approx(4.0)}

    def test_latency_is_not_a_stage(self):
        classes = request_classes(
            [{"tenant": "a", "outcome": "completed", "latency_s": 1.0,
              "queue_s": 1.0}]
        )
        assert "latency" not in classes[0]["stages"]


class TestRenderFlame:
    REPORT = {
        "requests": 2,
        "min_coverage": 0.98,
        "max_attribution_error": 0.004,
        "stages": [
            {"stage": "queue", "seconds": 0.2, "share": 0.25, "mean_s": 0.1},
            {"stage": "rpc", "seconds": 0.6, "share": 0.75, "mean_s": 0.3},
        ],
        "per_request": [
            {"req_id": 1, "tenant": "a", "outcome": "completed",
             "latency_s": 0.4, "coverage": 0.99, "queue_s": 0.1, "rpc_s": 0.3},
            {"req_id": 2, "tenant": "b", "outcome": "late",
             "latency_s": 0.8, "coverage": 0.98, "queue_s": 0.6, "rpc_s": 0.2},
        ],
    }

    def test_header_carries_acceptance_figures(self):
        lines = render_flame(self.REPORT, "cell")
        assert lines[0] == (
            "cell — 2 requests · min coverage 98.0%"
            " · max attribution error 0.40%"
        )

    def test_every_class_bar_is_full_width(self):
        for line in render_flame(self.REPORT, "cell"):
            if "|" in line:
                bar = line.split("|")[1]
                assert len(bar) == BAR_WIDTH

    def test_legend_names_only_used_stages(self):
        text = "\n".join(render_flame(self.REPORT, "cell"))
        assert "q=queue R=rpc" in text
        assert "f=fence" not in text

    def test_empty_report_is_just_the_header(self):
        lines = render_flame({"requests": 0}, "empty")
        assert len(lines) == 1


def _write_fixture_tree(root: Path):
    bench = root / "bench"
    hist = root / "hist"
    attr = root / "attr"
    for d in (bench, hist, attr):
        d.mkdir()
    payload = {
        "schema": 1, "bench": "serve", "scale_kb": 64,
        "wall_seconds_total": 2.0, "events_dispatched_total": 1200,
        "events_per_wall_second": 600,
        "experiments": {
            "serve-bench": {
                "title": "Tiny sweep", "wall_seconds": 2.0,
                "events_dispatched": 1200, "events_per_wall_second": 600,
                "all_checks_pass": True,
                "checks": [{"claim": "DAS beats NAS", "passed": True}],
                "notes": "fixture",
                "rows": [
                    {"scheme": "DAS", "load": 1.0, "p99_s": 0.25},
                    {"scheme": "NAS", "load": 1.0, "p99_s": 0.5},
                ],
            }
        },
    }
    (bench / "BENCH_serve.json").write_text(json.dumps(payload))
    (hist / "BENCH_serve.jsonl").write_text(
        json.dumps({
            "bench": "serve", "scale_kb": 64,
            "events_dispatched_total": 1200, "wall_seconds_total": 2.0,
            "events_per_wall_second": 600, "checks_pass": True,
        }) + "\n"
    )
    (attr / "tiny.attribution.json").write_text(json.dumps({
        "requests": 2, "min_coverage": 0.98, "max_attribution_error": 0.004,
        "stages": [
            {"stage": "queue", "seconds": 0.2, "share": 0.25, "mean_s": 0.1},
            {"stage": "rpc", "seconds": 0.6, "share": 0.75, "mean_s": 0.3},
        ],
        "per_request": [
            {"req_id": 1, "tenant": "a", "outcome": "completed",
             "latency_s": 0.4, "coverage": 0.99,
             "queue_s": 0.1, "rpc_s": 0.3},
            {"req_id": 2, "tenant": "a", "outcome": "completed",
             "latency_s": 0.4, "coverage": 0.98,
             "queue_s": 0.1, "rpc_s": 0.3},
        ],
    }))
    return bench, hist, attr


#: The exact document the fixture tree must render to.  A change to the
#: emitter is a change to this string *and* to the committed
#: docs/RESULTS.md, in the same commit.
GOLDEN = """\
# Results

<!-- GENERATED FILE — do not edit by hand.
     Regenerate:  PYTHONPATH=src python -m repro.harness report
     Drift gate:  python scripts/check_results.py  (CI job: results-smoke) -->

The measured state of the repository, rendered from its committed
measurement record and nothing else: the [`benchmarks/`](../benchmarks)
`BENCH_*.json` snapshots (payload schema: [BENCHMARKS.md](BENCHMARKS.md)),
the append-only [`benchmarks/history/`](../benchmarks/history) ledger the
regression gate keeps, the committed critical-path attribution
fixtures under [`benchmarks/attribution/`](../benchmarks/attribution),
and the sampled telemetry artifacts under
[`benchmarks/telemetry/`](../benchmarks/telemetry).
Simulated quantities (rows, check verdicts, event counts) are exactly
reproducible and printed as-is; host-dependent quantities (wall clocks,
events/wall-second) appear only as ranges over the recorded history.

## Snapshot overview

| snapshot | family | scale_kb | experiments | checks | events dispatched | wall s (recorded range) |
|---|---|---|---|---|---|---|
| `BENCH_serve.json` | serve | 64 | 1 | ✓ 1/1 | 1200 | 2 |

`events dispatched` is the exactly-reproducible engine-event
count — any drift is a behaviour change, not noise.  The wall
range spans every run the
[history ledger](BENCHMARKS.md#the-history-ledger) has recorded
and is host-dependent.

## serve (`BENCH_serve.json`)

*Tiny sweep*

✓ **1/1** shape checks pass · events dispatched: 1200

Notes: fixture

| scheme | load | p99_s |
|---|---|---|
| DAS | 1 | 0.25 |
| NAS | 1 | 0.5 |


## Run-over-run trends

One row per run recorded by
[`scripts/check_regression.py --history-dir`](BENCHMARKS.md#the-history-ledger)
(append order; a new entry lands on every gated regeneration,
so the trajectory grows PR over PR).  `events dispatched` must
be identical between passing runs at the same scale; the wall
and throughput columns are host-dependent context, not gates.

### serve trajectory

| run | scale_kb | events dispatched | wall s | events / wall s | verdict |
|---|---|---|---|---|---|
| 1 | 64 | 1200 | 2 | 600 | ✓ |

## Where the latency goes (critical path)

Committed critical-path attributions from traced bench cells
(`--trace-dir`), rendered by the text flame renderer
(`repro.report.flame`; method and schema:
[OBSERVABILITY.md](OBSERVABILITY.md#the-text-flame-renderer-and-the-attribution-file)).
Each request class's bar is its mean latency partitioned into
per-stage segments by the deepest-span rule, so segment widths
are shares of measured latency — not estimates.

```text
tiny — 2 requests · min coverage 98.0% · max attribution error 0.40%

queue     0.2000 s   25.0%  ########
rpc       0.6000 s   75.0%  ########################

per request class (tenant/outcome; q=queue R=rpc):

a/completed  n=2    mean 0.4000 s  |qqqqqqqqqqqqRRRRRRRRRRRRRRRRRRRRRRRRRRRRRRRRRRRR|
```
"""


class TestEmit:
    def test_golden_emission(self, tmp_path):
        bench, hist, attr = _write_fixture_tree(tmp_path)
        text = generate_results(
            bench_dir=bench, history_dir=hist, attribution_dir=attr,
            telemetry_dir=tmp_path / "no-telemetry",
        )
        assert text == GOLDEN

    def test_two_generations_byte_identical(self, tmp_path):
        bench, hist, attr = _write_fixture_tree(tmp_path)
        first = generate_results(
            bench_dir=bench, history_dir=hist, attribution_dir=attr,
            telemetry_dir=tmp_path / "no-telemetry",
        )
        second = generate_results(
            bench_dir=bench, history_dir=hist, attribution_dir=attr,
            telemetry_dir=tmp_path / "no-telemetry",
        )
        assert first == second

    def test_single_entry_ledger_renders_point_range(self, tmp_path):
        # One recorded run: the range collapses to a single value and
        # the trajectory table has exactly one data row.
        bench, hist, attr = _write_fixture_tree(tmp_path)
        text = generate_results(
            bench_dir=bench, history_dir=hist, attribution_dir=attr,
            telemetry_dir=tmp_path / "no-telemetry",
        )
        trend = text.split("### serve trajectory")[1].split("##")[0]
        data_rows = [
            ln for ln in trend.splitlines()
            if ln.startswith("|") and not ln.startswith(("| run", "|---"))
        ]
        assert len(data_rows) == 1
        assert "| 2 |" in data_rows[0]  # wall rendered as one value, no dash

    def test_missing_history_and_attribution_sections_degrade(self, tmp_path):
        bench, _, _ = _write_fixture_tree(tmp_path)
        text = generate_results(
            bench_dir=bench,
            history_dir=tmp_path / "no-hist",
            attribution_dir=tmp_path / "no-attr",
            telemetry_dir=tmp_path / "no-telemetry",
        )
        assert "### serve trajectory" not in text
        assert "## Where the latency goes" not in text
        assert "## Fleet health timeline" not in text
        assert text.endswith("\n") and not text.endswith("\n\n")

    def test_failing_check_is_called_out(self, tmp_path):
        bench, hist, attr = _write_fixture_tree(tmp_path)
        payload = json.loads((bench / "BENCH_serve.json").read_text())
        exp = payload["experiments"]["serve-bench"]
        exp["checks"].append({"claim": "NAS beats DAS", "passed": False})
        exp["all_checks_pass"] = False
        (bench / "BENCH_serve.json").write_text(json.dumps(payload))
        text = generate_results(
            bench_dir=bench, history_dir=hist, attribution_dir=attr,
            telemetry_dir=tmp_path / "no-telemetry",
        )
        assert "✗ **1/2** shape checks pass — failing: NAS beats DAS" in text
        assert "| `BENCH_serve.json` | serve | 64 | 1 | ✗ 1/2 |" in text


class TestLoaders:
    def test_missing_bench_dir_raises(self, tmp_path):
        with pytest.raises(HarnessError):
            load_benchmarks(tmp_path / "nope")

    def test_non_payload_json_raises(self, tmp_path):
        (tmp_path / "BENCH_bogus.json").write_text('{"rows": []}')
        with pytest.raises(HarnessError, match="not a bench trajectory"):
            load_benchmarks(tmp_path)

    def test_unknown_files_follow_canonical_order(self, tmp_path):
        for name, bench in (
            ("BENCH_paper.json", "paper"),
            ("BENCH_serve.json", "serve"),
            ("BENCH_aaa.json", "extra"),
        ):
            (tmp_path / name).write_text(
                json.dumps({"bench": bench, "experiments": {}})
            )
        loaded = [s.filename for s in load_benchmarks(tmp_path)]
        # serve before paper (writer order), strangers last by name.
        assert loaded == [
            "BENCH_serve.json", "BENCH_paper.json", "BENCH_aaa.json"
        ]

    def test_absent_optional_dirs_are_empty(self, tmp_path):
        assert load_history(tmp_path / "none") == {}
        assert load_attributions(tmp_path / "none") == []


class TestCommittedReport:
    """The repository's own RESULTS.md must match its inputs — the same
    byte-for-byte gate CI runs (scripts/check_results.py)."""

    def test_committed_results_in_sync(self):
        committed = (REPO / "docs" / "RESULTS.md").read_text(encoding="utf-8")
        regenerated = generate_results(
            bench_dir=REPO / "benchmarks",
            history_dir=REPO / "benchmarks" / "history",
            attribution_dir=REPO / "benchmarks" / "attribution",
            telemetry_dir=REPO / "benchmarks" / "telemetry",
        )
        assert committed == regenerated
