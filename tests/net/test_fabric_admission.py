"""Tests for fabric flow-limit admission control."""

import pytest

from repro.config import PlatformSpec
from repro.errors import NetworkError
from repro.hw import Cluster
from repro.units import MiB, us


def build(flow_limit):
    spec = PlatformSpec(
        nic_bandwidth=100 * MiB,
        nic_latency=0.0,
        rpc_overhead=0.0,
        fabric_flow_limit=flow_limit,
    )
    return Cluster.build(n_compute=2, n_storage=2, spec=spec)


def test_unlimited_fabric_admits_everything():
    cl = build(0)
    assert cl.fabric.admit() is None


def test_flow_limit_serialises_excess_transfers():
    cl = build(1)  # one flow at a time

    def main():
        a = cl.transport.send("c0", "s0", 100 * MiB)
        b = cl.transport.send("c1", "s1", 100 * MiB)
        yield a & b
        return cl.env.now

    t = cl.run(until=cl.env.process(main()))
    # Disjoint NIC pairs, but the fabric admits one flow at a time:
    # 1 s + 1 s sequential.
    assert t == pytest.approx(2.0, rel=1e-3)


def test_flow_limit_two_admits_in_parallel():
    cl = build(2)

    def main():
        a = cl.transport.send("c0", "s0", 100 * MiB)
        b = cl.transport.send("c1", "s1", 100 * MiB)
        yield a & b
        return cl.env.now

    t = cl.run(until=cl.env.process(main()))
    assert t == pytest.approx(1.0, rel=1e-3)


def test_tokens_released_after_transfer():
    cl = build(1)

    def main():
        for _ in range(3):
            yield cl.transport.send("c0", "s0", 10 * MiB)
        return cl.env.now

    t = cl.run(until=cl.env.process(main()))
    assert t == pytest.approx(0.3, rel=1e-3)
    assert cl.fabric._flow_tokens.count == 0  # all tokens back


def test_loopback_skips_admission():
    cl = build(1)

    def main():
        # Loopback send while a wire transfer holds the only token.
        wire = cl.transport.send("c0", "s0", 100 * MiB)
        loop = cl.transport.send("s1", "s1", 1)
        msg = yield loop
        t_loop = cl.env.now
        yield wire
        return t_loop

    t_loop = cl.run(until=cl.env.process(main()))
    assert t_loop == pytest.approx(0.0, abs=1e-9)
