"""Edge cases for the fluid engine's lazy settle hook.

The long-tail aggregator (`repro.fleet.longtail`) leans on three
properties of the deferred-settle design: a burst of same-instant flow
starts pays for one progressive-filling pass, rate mutations landing on
identical timestamps integrate correctly, and reads through
``link_utilization`` settle deferred rates without perturbing the
event stream.  This suite pins each one down.
"""

import pytest

from repro.net.fluid import FluidScheduler


@pytest.fixture
def sched(env):
    s = FluidScheduler(env)
    s.add_link("l0", 100.0)  # 100 bytes/sec
    s.add_link("l1", 100.0)
    s.add_link("l2", 100.0)
    return s


def count_recomputes(monkeypatch, sched):
    calls = {"n": 0}
    original = sched._recompute

    def counting():
        calls["n"] += 1
        original()

    monkeypatch.setattr(sched, "_recompute", counting)
    return calls


class TestSameInstantBurst:
    def test_burst_of_starts_pays_one_filling_pass(self, env, sched, monkeypatch):
        calls = count_recomputes(monkeypatch, sched)
        events = [sched.start(("l0",), 100.0) for _ in range(5)]
        env.run()
        # Five same-instant starts settle once when the clock first
        # moves; the simultaneous five-way completion empties the flow
        # set, so no second pass ever runs.
        assert calls["n"] == 1
        assert env.now == pytest.approx(5.0)  # 5 x 100 B sharing 100 B/s
        assert all(e.triggered for e in events)
        assert sched.active_flows == 0

    def test_same_instant_completions_fire_in_insertion_order(self, env, sched):
        fired = []
        for i, link in enumerate(("l0", "l1", "l2")):
            done = sched.start((link,), 100.0)
            done.callbacks.append(lambda _e, i=i: fired.append(i))
        env.run()
        # Three equal flows on disjoint links finish at the same
        # instant; the drain scan walks the insertion-ordered flow
        # dict, so completion events fire in start order.
        assert env.now == pytest.approx(1.0)
        assert fired == [0, 1, 2]


class TestIdenticalTimestampMutation:
    def test_mid_run_rate_mutation_at_one_timestamp(self, env, sched, monkeypatch):
        calls = count_recomputes(monkeypatch, sched)
        finishes = {}

        def record(name):
            return lambda _e: finishes.setdefault(name, env.now)

        first = sched.start(("l0",), 200.0)
        first.callbacks.append(record("first"))

        def late_burst():
            yield env.timeout(1.0)
            for name in ("second", "third"):
                done = sched.start(("l0",), 100.0)
                done.callbacks.append(record(name))

        env.process(late_burst())
        env.run()
        # t=0..1: the first flow drains alone at 100 B/s (100 B left).
        # At t=1 two more flows land on the same timestamp; one settle
        # integrates the drain-so-far and splits the link three ways
        # (33.3 B/s each), so every flow completes together at t=4.
        assert calls["n"] == 2  # t=0 burst + t=1 mutation, one pass each
        assert finishes == {
            "first": pytest.approx(4.0),
            "second": pytest.approx(4.0),
            "third": pytest.approx(4.0),
        }
        assert sched.active_flows == 0

    def test_completion_and_arrival_on_one_timestamp(self, env, sched):
        finishes = {}

        def record(name):
            return lambda _e: finishes.setdefault(name, env.now)

        sched.start(("l0",), 100.0).callbacks.append(record("old"))

        def arrive_at_the_finish_line():
            yield env.timeout(1.0)  # exactly when the first flow drains
            sched.start(("l0",), 100.0).callbacks.append(record("new"))

        env.process(arrive_at_the_finish_line())
        env.run()
        # The new flow must see the full link (the old one left at the
        # same instant), not inherit a half-shared rate.
        assert finishes["old"] == pytest.approx(1.0)
        assert finishes["new"] == pytest.approx(2.0)


class TestSettleOnRead:
    def test_link_utilization_settles_deferred_rates(self, env, sched):
        done = sched.start(("l0",), 150.0)
        # No simulated time has passed since the start: rates are still
        # deferred, and the read itself must settle them.
        assert sched._dirty
        assert sched.link_utilization("l0") == pytest.approx(1.0)
        assert not sched._dirty
        assert sched.link_utilization("l1") == pytest.approx(0.0)
        env.run()
        assert done.triggered
        assert env.now == pytest.approx(1.5)  # the read did not perturb
        assert sched.link_utilization("l0") == pytest.approx(0.0)

    def test_mid_run_read_matches_fair_share(self, env, sched):
        sched.start(("l0", "l1"), 300.0)
        seen = {}

        def probe():
            yield env.timeout(0.5)
            sched.start(("l0",), 100.0)
            # Same-instant start: the read below settles it, so both
            # flows on l0 already run at their new 50 B/s fair share.
            seen["l0"] = sched.link_utilization("l0")
            seen["l1"] = sched.link_utilization("l1")

        env.process(probe())
        env.run()
        assert seen["l0"] == pytest.approx(1.0)
        assert seen["l1"] == pytest.approx(0.5)  # the crossing flow's 50 B/s
