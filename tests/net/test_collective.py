"""Unit tests for collective operations."""

import pytest

from repro.config import PlatformSpec
from repro.hw import Cluster
from repro.units import GiB, us


@pytest.fixture
def cl():
    spec = PlatformSpec(nic_bandwidth=1 * GiB, nic_latency=10 * us, rpc_overhead=0.0)
    return Cluster.build(n_compute=1, n_storage=4, spec=spec)


def test_broadcast_reaches_every_other_node(cl, drive):
    nodes = ["s0", "s1", "s2", "s3"]

    def main():
        yield cl.collectives.broadcast("c0", nodes, 1000, payload="cfg")
        got = []
        for n in nodes:
            msg = yield cl.transport.recv(n)
            got.append((n, msg.payload))
        return got

    got = drive(cl, cl.env.process(main()))
    assert sorted(got) == [(n, "cfg") for n in nodes]
    assert cl.monitors.counter("net.tx.c0").value == 4000


def test_broadcast_skips_root(cl, drive):
    def main():
        yield cl.collectives.broadcast("s0", ["s0", "s1"], 500)

    drive(cl, cl.env.process(main()))
    assert cl.monitors.counter("net.tx.s0").value == 500  # only to s1


def test_scatter_distinct_parts(cl, drive):
    parts = {"s0": ("alpha", 100), "s1": ("beta", 200)}

    def main():
        yield cl.collectives.scatter("c0", parts)
        a = yield cl.transport.recv("s0")
        b = yield cl.transport.recv("s1")
        return (a.payload, b.payload)

    assert drive(cl, cl.env.process(main())) == ("alpha", "beta")
    assert cl.monitors.counter("net.tx.c0").value == 300


def test_gather_collects_payloads(cl, drive):
    senders = ["s0", "s1", "s2"]

    def main():
        result = yield cl.collectives.gather(
            "c0", senders, size_of=lambda n: 100, payload_of=lambda n: n.upper()
        )
        return result

    result = drive(cl, cl.env.process(main()))
    assert result == {"s0": "S0", "s1": "S1", "s2": "S2"}
    assert cl.monitors.counter("net.rx.c0").value == 300


def test_reduce_folds_contributions(cl, drive):
    contributions = {n: (i + 1, 50) for i, n in enumerate(["s0", "s1", "s2"])}

    def main():
        total = yield cl.collectives.reduce(
            "c0", contributions, combine=lambda a, b: a + b
        )
        return total

    assert drive(cl, cl.env.process(main())) == 6


def test_reduce_includes_root_contribution(cl, drive):
    contributions = {"c0": (10, 0), "s0": (5, 50)}

    def main():
        return (
            yield cl.collectives.reduce("c0", contributions, combine=lambda a, b: a + b)
        )

    assert drive(cl, cl.env.process(main())) == 15


def test_allgather_full_exchange_byte_count(cl, drive):
    nodes = ["s0", "s1", "s2"]

    def main():
        yield cl.collectives.allgather(nodes, size_of=lambda n: 100)
        # Drain mailboxes so nothing dangles.
        for n in nodes:
            for _ in range(2):
                yield cl.transport.recv(n)

    drive(cl, cl.env.process(main()))
    # n*(n-1) messages of 100 B.
    assert cl.monitors.counter("net.bytes_total").value == 600
