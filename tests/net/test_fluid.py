"""Unit tests for the max-min fair-share fluid network model."""

import pytest

from repro.errors import NetworkError
from repro.net.fluid import FluidScheduler
from repro.sim import Environment


@pytest.fixture
def sched(env):
    s = FluidScheduler(env)
    for name in ("a.tx", "a.rx", "b.tx", "b.rx", "c.tx", "c.rx"):
        s.add_link(name, 100.0)  # 100 bytes/sec
    return s


def finish_time(env, event):
    def waiter():
        yield event
        return env.now

    return env.run(until=env.process(waiter()))


def test_single_flow_runs_at_link_rate(env, sched):
    done = sched.start(("a.tx", "b.rx"), 200.0)
    assert finish_time(env, done) == pytest.approx(2.0)


def test_zero_size_flow_completes_immediately(env, sched):
    done = sched.start(("a.tx", "b.rx"), 0.0)
    assert done.triggered and done.ok


def test_two_flows_share_a_common_link(env, sched):
    # Both flows leave a.tx -> each gets 50 B/s on it.
    d1 = sched.start(("a.tx", "b.rx"), 100.0)
    d2 = sched.start(("a.tx", "c.rx"), 100.0)
    t1 = finish_time(env, d1)
    assert t1 == pytest.approx(2.0)
    t2 = finish_time(env, d2)
    assert t2 == pytest.approx(2.0)


def test_disjoint_flows_do_not_interact(env, sched):
    d1 = sched.start(("a.tx", "b.rx"), 100.0)
    d2 = sched.start(("c.tx", "a.rx"), 100.0)  # duplex: tx and rx separate
    assert finish_time(env, d1 & d2) == pytest.approx(1.0)


def test_rate_rises_when_contender_finishes(env, sched):
    # Flow 1: 50 bytes on shared a.tx; flow 2: 150 bytes.
    d1 = sched.start(("a.tx", "b.rx"), 50.0)
    d2 = sched.start(("a.tx", "c.rx"), 150.0)
    assert finish_time(env, d1) == pytest.approx(1.0)  # 50 B at 50 B/s
    # Flow 2 drained 50 B in the first second, then runs at 100 B/s.
    assert finish_time(env, d2) == pytest.approx(2.0)


def test_late_arrival_slows_existing_flow(env, sched):
    d1 = sched.start(("a.tx", "b.rx"), 150.0)

    def second():
        yield env.timeout(1.0)  # d1 has 50 B left at t=1
        d2 = sched.start(("a.tx", "c.rx"), 100.0)
        yield d2
        return env.now

    p = env.process(second())
    t1 = finish_time(env, d1)
    # After t=1: both at 50 B/s. d1 needs 1 more second.
    assert t1 == pytest.approx(2.0)
    # d2: 50 B at 50 B/s (until t=2) then 50 B at 100 B/s -> t=2.5
    assert env.run(until=p) == pytest.approx(2.5)


def test_bottleneck_is_min_across_path(env):
    env2 = Environment()
    s = FluidScheduler(env2)
    s.add_link("fast.tx", 1000.0)
    s.add_link("slow.rx", 10.0)
    done = s.start(("fast.tx", "slow.rx"), 100.0)

    def waiter():
        yield done
        return env2.now

    assert env2.run(until=env2.process(waiter())) == pytest.approx(10.0)


def test_max_min_three_flows_unequal_paths(env, sched):
    # f1: a.tx -> b.rx ; f2: a.tx -> c.rx ; f3: c.tx -> b.rx
    # a.tx shared by f1,f2 (50 each); b.rx shared by f1,f3.
    # Max-min: f1=50, f2=50, f3=min(100, 100-50)=50.
    d3 = sched.start(("c.tx", "b.rx"), 75.0)
    d1 = sched.start(("a.tx", "b.rx"), 50.0)
    d2 = sched.start(("a.tx", "c.rx"), 50.0)
    assert finish_time(env, d1) == pytest.approx(1.0)
    assert finish_time(env, d2) == pytest.approx(1.0)
    # f3: 50 B drained in first second, then alone on b.rx at 100 B/s.
    assert finish_time(env, d3) == pytest.approx(1.25)


def test_duplicate_link_rejected(env, sched):
    with pytest.raises(NetworkError):
        sched.add_link("a.tx", 5.0)


def test_unknown_link_rejected(env, sched):
    with pytest.raises(NetworkError):
        sched.link("nope")


def test_nonpositive_capacity_rejected(env):
    s = FluidScheduler(env)
    with pytest.raises(NetworkError):
        s.add_link("bad", 0)


def test_utilization_reporting(env, sched):
    sched.start(("a.tx", "b.rx"), 1000.0)
    sched.start(("a.tx", "c.rx"), 1000.0)
    assert sched.link_utilization("a.tx") == pytest.approx(1.0)
    assert sched.link_utilization("b.rx") == pytest.approx(0.5)
    assert sched.active_flows == 2


def test_many_sequential_flows_accumulate_time(env, sched):
    def proc():
        for _ in range(5):
            yield sched.start(("a.tx", "b.rx"), 100.0)
        return env.now

    assert env.run(until=env.process(proc())) == pytest.approx(5.0)
