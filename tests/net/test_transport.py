"""Unit tests for point-to-point messaging and RPC."""

import pytest

from repro.config import PlatformSpec
from repro.errors import NodeDownError
from repro.hw import Cluster
from repro.net import TAG_DATA, TAG_RPC
from repro.units import GiB, MiB, us


@pytest.fixture
def cl():
    # Deterministic round numbers: 1 GiB/s NICs, 100 us latency.
    spec = PlatformSpec(nic_bandwidth=1 * GiB, nic_latency=100 * us, rpc_overhead=0.0)
    return Cluster.build(n_compute=2, n_storage=2, spec=spec)


def test_send_delivers_payload_and_size(cl, drive):
    def main():
        yield cl.transport.send("c0", "s0", 1024, {"k": "v"}, tag="t")
        msg = yield cl.transport.recv("s0", tag="t")
        return msg

    msg = drive(cl, cl.env.process(main()))
    assert msg.payload == {"k": "v"}
    assert msg.size == 1024
    assert (msg.src, msg.dst, msg.tag) == ("c0", "s0", "t")


def test_transfer_time_latency_plus_wire(cl, drive):
    size = 512 * MiB  # 0.5 s at 1 GiB/s

    def main():
        yield cl.transport.send("c0", "s0", size)
        return cl.env.now

    t = drive(cl, cl.env.process(main()))
    assert t == pytest.approx(100e-6 + 0.5, rel=1e-6)


def test_loopback_costs_no_wire_bytes(cl, drive):
    def main():
        yield cl.transport.send("c0", "c0", 4096, "self")
        msg = yield cl.transport.recv("c0")
        return msg.payload

    assert drive(cl, cl.env.process(main())) == "self"
    assert cl.monitors.counter("net.bytes_total").value == 0
    assert cl.monitors.counter("net.loopback_bytes").value == 4096


def test_recv_filters_by_tag(cl, drive):
    def main():
        cl.transport.send("c0", "s0", 10, "wrong", tag="x")
        cl.transport.send("c0", "s0", 10, "right", tag="y")
        msg = yield cl.transport.recv("s0", tag="y")
        return msg.payload

    assert drive(cl, cl.env.process(main())) == "right"


def test_recv_custom_match(cl, drive):
    def main():
        cl.transport.send("c0", "s0", 10, 1, tag="n")
        cl.transport.send("c0", "s0", 10, 2, tag="n")
        msg = yield cl.transport.recv("s0", tag="n", match=lambda m: m.payload == 2)
        return msg.payload

    assert drive(cl, cl.env.process(main())) == 2


def test_rpc_round_trip_correlates_replies(cl, drive):
    def server():
        while True:
            req = yield cl.transport.recv("s0", tag=TAG_RPC)
            yield cl.transport.reply(req, req.payload * 2, 64)

    cl.env.process(server())

    def client():
        # Two overlapping calls; replies must land with their callers.
        call1 = cl.transport.call("c0", "s0", 21, 32)
        call2 = cl.transport.call("c0", "s0", 100, 32)
        r2 = yield call2
        r1 = yield call1
        return (r1.payload, r2.payload)

    assert drive(cl, cl.env.process(client())) == (42, 200)


def test_send_to_down_node_fails(cl, drive):
    cl.node("s0").fail()

    def main():
        try:
            yield cl.transport.send("c0", "s0", 10)
        except NodeDownError:
            return "down"
        return "sent"

    assert drive(cl, cl.env.process(main())) == "down"


def test_recovered_node_accepts_traffic(cl, drive):
    cl.node("s0").fail()
    cl.node("s0").recover()

    def main():
        yield cl.transport.send("c0", "s0", 10, "hello")
        msg = yield cl.transport.recv("s0")
        return msg.payload

    assert drive(cl, cl.env.process(main())) == "hello"


def test_byte_accounting_per_flow_and_tag(cl, drive):
    def main():
        yield cl.transport.send("c0", "s1", 3000, tag=TAG_DATA)
        yield cl.transport.send("c0", "s1", 2000, tag=TAG_DATA)
        yield cl.transport.recv("s1")
        yield cl.transport.recv("s1")

    drive(cl, cl.env.process(main()))
    assert cl.monitors.counter("net.flow.c0->s1").value == 5000
    assert cl.monitors.counter("net.tag.data").value == 5000
    assert cl.monitors.counter("net.tx.c0").value == 5000
    assert cl.monitors.counter("net.rx.s1").value == 5000


def test_concurrent_sends_share_tx_bandwidth(cl, drive):
    size = 512 * MiB

    def main():
        s1 = cl.transport.send("c0", "s0", size)
        s2 = cl.transport.send("c0", "s1", size)
        yield s1 & s2
        return cl.env.now

    # Both leave c0.tx: 1 GiB total at 1 GiB/s ~= 1 s (plus latency).
    t = drive(cl, cl.env.process(main()))
    assert t == pytest.approx(1.0, rel=1e-3)
