"""Structured mailbox matching (`repro.net.transport.Mailbox`).

The mailbox used to match with composed lambdas; it now scans the
declarative ``(tag, reply_to, match)`` attributes inline.  These tests
pin the semantics the transport relies on: FIFO within a selector,
waiters served in arrival order, selective gets leaving non-matching
items untouched, and blocked waiters waking when a matching item
arrives later.
"""

from repro.net.message import Message
from repro.net.transport import Mailbox
from repro.sim import Environment


def _msg(tag="data", reply_to=None, payload=None):
    return Message("a", "b", 100, tag=tag, payload=payload, reply_to=reply_to)


def _drain(env, box, results, **selectors):
    def getter(env):
        msg = yield box.get(
            selectors.get("tag"), selectors.get("reply_to"), selectors.get("match")
        )
        results.append(msg)

    env.process(getter(env))


def test_plain_get_is_fifo():
    env = Environment()
    box = Mailbox(env)
    first, second = _msg(payload=1), _msg(payload=2)
    box.put(first)
    box.put(second)
    out = []
    _drain(env, box, out)
    _drain(env, box, out)
    env.run()
    assert [m.payload for m in out] == [1, 2]


def test_tag_get_skips_other_tags():
    env = Environment()
    box = Mailbox(env)
    box.put(_msg(tag="control", payload="c"))
    box.put(_msg(tag="data", payload="d1"))
    box.put(_msg(tag="data", payload="d2"))
    out = []
    _drain(env, box, out, tag="data")
    env.run()
    assert [m.payload for m in out] == ["d1"]
    # The control message was not consumed.
    assert [m.payload for m in box.items] == ["c", "d2"]


def test_reply_to_get_selects_the_correlated_reply():
    env = Environment()
    box = Mailbox(env)
    box.put(_msg(tag="rpc-reply", reply_to=7, payload="wrong"))
    box.put(_msg(tag="rpc-reply", reply_to=42, payload="right"))
    out = []
    _drain(env, box, out, tag="rpc-reply", reply_to=42)
    env.run()
    assert [m.payload for m in out] == ["right"]
    assert [m.reply_to for m in box.items] == [7]


def test_reply_to_without_tag_matches_any_tag():
    env = Environment()
    box = Mailbox(env)
    box.put(_msg(tag="data", reply_to=5, payload="x"))
    out = []
    _drain(env, box, out, reply_to=5)
    env.run()
    assert [m.payload for m in out] == ["x"]


def test_predicate_composes_with_tag_and_reply_to():
    env = Environment()
    box = Mailbox(env)
    box.put(_msg(tag="data", reply_to=1, payload=10))
    box.put(_msg(tag="data", reply_to=1, payload=20))
    out = []
    _drain(env, box, out, tag="data", reply_to=1, match=lambda m: m.payload > 15)
    env.run()
    assert [m.payload for m in out] == [20]
    assert [m.payload for m in box.items] == [10]


def test_blocked_waiter_wakes_on_matching_put():
    env = Environment()
    box = Mailbox(env)
    out = []
    _drain(env, box, out, tag="result")

    def producer(env):
        yield env.timeout(1.0)
        yield box.put(_msg(tag="control", payload="noise"))
        yield env.timeout(1.0)
        yield box.put(_msg(tag="result", payload="answer"))

    env.process(producer(env))
    env.run()
    assert [m.payload for m in out] == ["answer"]
    assert env.now == 2.0
    assert [m.payload for m in box.items] == ["noise"]


def test_waiters_served_in_arrival_order():
    env = Environment()
    box = Mailbox(env)
    out = []

    def getter(label, tag):
        def _g(env):
            msg = yield box.get(tag, None, None)
            out.append((label, msg.payload))

        env.process(_g(env))

    getter("first", "data")
    getter("second", "data")
    env.process(iter_put(env, box))
    env.run()
    assert out == [("first", 1), ("second", 2)]


def iter_put(env, box):
    yield env.timeout(0.5)
    yield box.put(_msg(tag="data", payload=1))
    yield box.put(_msg(tag="data", payload=2))
