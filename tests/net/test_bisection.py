"""Tests for the oversubscribed-bisection fabric model."""

import pytest

from repro.config import PlatformSpec
from repro.errors import NetworkError
from repro.hw import Cluster
from repro.units import MiB, us


def spec(bisection):
    return PlatformSpec(
        nic_bandwidth=100 * MiB,
        nic_latency=0.0,
        rpc_overhead=0.0,
        bisection_bandwidth=bisection,
    )


def transfer_time(cl, src, dst, size):
    def main():
        yield cl.transport.send(src, dst, size)
        return cl.env.now

    return cl.run(until=cl.env.process(main()))


def test_nonblocking_by_default():
    cl = Cluster.build(n_compute=2, n_storage=2, spec=spec(0))
    t = transfer_time(cl, "c0", "s0", 100 * MiB)
    assert t == pytest.approx(1.0, rel=1e-6)


def test_cross_partition_flow_capped_by_bisection():
    cl = Cluster.build(n_compute=2, n_storage=2, spec=spec(50 * MiB))
    t = transfer_time(cl, "c0", "s0", 100 * MiB)
    assert t == pytest.approx(2.0, rel=1e-6)  # 100 MiB at 50 MiB/s


def test_intra_partition_flow_unaffected():
    cl = Cluster.build(n_compute=2, n_storage=2, spec=spec(50 * MiB))
    t = transfer_time(cl, "s0", "s1", 100 * MiB)
    assert t == pytest.approx(1.0, rel=1e-6)  # NIC rate, no bisection


def test_bisection_shared_among_cross_flows():
    cl = Cluster.build(n_compute=2, n_storage=2, spec=spec(100 * MiB))

    def main():
        a = cl.transport.send("c0", "s0", 100 * MiB)
        b = cl.transport.send("c1", "s1", 100 * MiB)
        yield a & b
        return cl.env.now

    t = cl.run(until=cl.env.process(main()))
    # Two flows share the 100 MiB/s bisection: 200 MiB total -> 2 s.
    assert t == pytest.approx(2.0, rel=1e-3)


def test_double_configuration_rejected():
    cl = Cluster.build(n_compute=1, n_storage=1, spec=spec(10 * MiB))
    with pytest.raises(NetworkError):
        cl.fabric.set_bisection_bandwidth(20 * MiB)


def test_oversubscription_hurts_ts_more_than_das():
    """The experiment the model enables: throttling the compute<->storage
    bisection slows client-side processing (TS) but barely touches a
    pre-distributed DAS offload whose traffic stays inside the storage
    partition."""
    import numpy as np

    from repro.harness.platform import ingest_for_scheme
    from repro.pfs import ParallelFileSystem
    from repro.schemes import DynamicActiveStorageScheme, TraditionalScheme
    from repro.units import KiB
    from repro.workloads import fractal_dem

    def run(scheme_label, bisection):
        base = PlatformSpec(bisection_bandwidth=bisection)
        cl = Cluster.build(n_compute=4, n_storage=4, spec=base)
        pfs = ParallelFileSystem(cl, strip_size=16 * KiB)
        dem = fractal_dem(256, 512, rng=np.random.default_rng(3))
        ingest_for_scheme(pfs, scheme_label, "in", dem, "gaussian")
        scheme = (
            TraditionalScheme(pfs)
            if scheme_label == "TS"
            else DynamicActiveStorageScheme(pfs)
        )
        return cl.run(until=scheme.run_operation("gaussian", "in", "out")).elapsed

    narrow = 64 * MiB  # heavily oversubscribed
    ts_slowdown = run("TS", narrow) / run("TS", 0)
    das_slowdown = run("DAS", narrow) / run("DAS", 0)
    assert ts_slowdown > 1.5
    assert das_slowdown < 1.1
