"""Unit tests for CPU, disk, node and cluster models."""

import pytest

from repro.config import PlatformSpec, SimConfig
from repro.errors import SimulationError
from repro.hw import KIND_COMPUTE, KIND_STORAGE, Cluster
from repro.units import GiB, MiB


class TestCPU:
    def test_kernel_seconds_scales_with_cores(self, small_cluster):
        cpu = small_cluster.node("c0").cpu
        spec = small_cluster.spec
        n = 1_000_000
        expected = n * spec.kernel_sec_per_element("gaussian") / spec.cores
        assert cpu.kernel_seconds("gaussian", n) == pytest.approx(expected)

    def test_unknown_kernel_uses_default_cost(self, small_cluster):
        cpu = small_cluster.node("c0").cpu
        spec = small_cluster.spec
        assert cpu.kernel_seconds("mystery", 100) == pytest.approx(
            100 * spec.kernel_cost["default"] / spec.cores
        )

    def test_engine_serialises_invocations(self, small_cluster, drive):
        cpu = small_cluster.node("c0").cpu
        env = small_cluster.env

        def main():
            a = cpu.run_kernel("gaussian", 10_000_000)
            b = cpu.run_kernel("gaussian", 10_000_000)
            yield a & b
            return env.now

        t = drive(small_cluster, env.process(main()))
        one = cpu.kernel_seconds("gaussian", 10_000_000)
        assert t == pytest.approx(2 * one)

    def test_negative_service_time_rejected(self, small_cluster, drive):
        cpu = small_cluster.node("c0").cpu

        def main():
            yield cpu.service(-1.0)

        with pytest.raises(SimulationError):
            drive(small_cluster, small_cluster.env.process(main()))

    def test_busy_time_accounted(self, small_cluster, drive):
        cpu = small_cluster.node("c0").cpu

        def main():
            yield cpu.service(0.25, "maintenance")

        drive(small_cluster, small_cluster.env.process(main()))
        assert small_cluster.monitors.counter("cpu.busy.c0").value == pytest.approx(0.25)


class TestDisk:
    def test_io_seconds_seek_plus_stream(self, small_cluster):
        disk = small_cluster.node("s0").disk
        assert disk.io_seconds(disk.bandwidth) == pytest.approx(disk.seek + 1.0)

    def test_compute_node_has_no_disk(self, small_cluster):
        assert small_cluster.node("c0").disk is None
        assert small_cluster.node("s0").disk is not None

    def test_reads_serialise_on_the_arm(self, small_cluster, drive):
        disk = small_cluster.node("s0").disk
        env = small_cluster.env
        size = 100 * MiB

        def main():
            a = disk.read(size)
            b = disk.read(size)
            yield a & b
            return env.now

        t = drive(small_cluster, env.process(main()))
        assert t == pytest.approx(2 * disk.io_seconds(size))

    def test_write_and_read_accounted_separately(self, small_cluster, drive):
        disk = small_cluster.node("s0").disk

        def main():
            yield disk.read(1000)
            yield disk.write(500)

        drive(small_cluster, small_cluster.env.process(main()))
        m = small_cluster.monitors
        assert m.counter("disk.read.s0").value == 1000
        assert m.counter("disk.write.s0").value == 500

    def test_negative_size_rejected(self, small_cluster, drive):
        disk = small_cluster.node("s0").disk

        def main():
            yield disk.read(-1)

        with pytest.raises(SimulationError):
            drive(small_cluster, small_cluster.env.process(main()))


class TestCluster:
    def test_build_names_and_kinds(self):
        cl = Cluster.build(n_compute=2, n_storage=3)
        assert cl.compute_names == ["c0", "c1"]
        assert cl.storage_names == ["s0", "s1", "s2"]
        assert cl.node("c0").kind == KIND_COMPUTE
        assert cl.node("s0").kind == KIND_STORAGE

    def test_build_requires_storage(self):
        with pytest.raises(SimulationError):
            Cluster.build(n_compute=1, n_storage=0)

    def test_unknown_node_lookup(self, small_cluster):
        with pytest.raises(SimulationError):
            small_cluster.node("zz9")

    def test_duplicate_node_rejected(self, small_cluster):
        with pytest.raises(SimulationError):
            small_cluster.add_node("c0", KIND_COMPUTE)

    def test_unknown_kind_rejected(self, small_cluster):
        with pytest.raises(SimulationError):
            small_cluster.add_node("x0", "quantum")

    def test_failure_injection_roundtrip(self, small_cluster):
        node = small_cluster.node("s1")
        assert node.is_up
        node.fail()
        assert not node.is_up
        node.recover()
        assert node.is_up

    def test_custom_spec_and_seed_propagate(self):
        spec = PlatformSpec(nic_bandwidth=2 * GiB, cores=4)
        cl = Cluster.build(1, 1, spec=spec, sim_config=SimConfig(seed=99))
        assert cl.node("s0").nic.bandwidth == 2 * GiB
        assert cl.spec.cores == 4
        assert cl.rand.root_seed == 99

    def test_storage_and_compute_partitions(self, small_cluster):
        assert len(small_cluster.storage_nodes) == 4
        assert len(small_cluster.compute_nodes) == 4
        assert all(n.is_storage for n in small_cluster.storage_nodes)
        assert all(n.is_compute for n in small_cluster.compute_nodes)
