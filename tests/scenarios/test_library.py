"""The shipped scenario library: loads, materializes, and gates hold."""

import pytest

from repro.scenarios import (
    evaluate_checks,
    library_names,
    load_library,
    load_scenario,
    build_scenario,
    reference_spec,
    run_scenario,
)
from repro.harness.scenario_bench import SMOKE_SCENARIOS, scenario_bench

EXPECTED = {
    "black-friday",
    "cache-stampede",
    "noisy-neighbor",
    "region-loss",
    "rolling-upgrade",
}


def test_library_ships_the_named_scenarios():
    assert EXPECTED <= set(library_names())
    assert len(library_names()) >= 5


def test_every_library_scenario_loads_with_declared_gates():
    for spec in load_library():
        assert spec.description
        assert spec.checks, f"{spec.name} declares no checks"
        assert any(c.check == "conservation" for c in spec.checks), (
            f"{spec.name} must gate on conservation"
        )


def test_smoke_subset_is_in_the_library():
    assert set(SMOKE_SCENARIOS) <= set(library_names())


@pytest.mark.parametrize("name", sorted(EXPECTED))
def test_library_scenario_materializes(name):
    spec = load_scenario(name)
    pfs, config = build_scenario(spec)
    assert config.scheme == spec.topology.scheme
    for file in spec.topology.files:
        assert pfs.metadata.lookup(file).size > 0
    assert {t.name for t in config.tenants} == {t.name for t in spec.tenants}


def test_fast_scenario_end_to_end_with_checks():
    spec = load_scenario("rolling-upgrade")
    summary, digests = run_scenario(spec)
    reference = run_scenario(reference_spec(spec))
    results = evaluate_checks(
        spec.checks, summary, digests=digests, reference=reference
    )
    assert results and all(ok for _, ok in results), [
        label for label, ok in results if not ok
    ]


def test_scenario_replay_is_bit_identical():
    spec = load_scenario("region-loss")
    first = run_scenario(spec)
    second = run_scenario(spec)
    assert first == second


def test_reference_spec_strips_the_disturbances_only():
    spec = load_scenario("rolling-upgrade")
    ref = reference_spec(spec)
    assert ref.chaos is None and ref.recovery is None and ref.autoscale is None
    assert not ref.checks
    assert ref.tenants == spec.tenants
    assert ref.topology == spec.topology
    assert ref.seed == spec.seed


def test_scenario_bench_runs_the_smoke_subset():
    report = scenario_bench(scenarios=SMOKE_SCENARIOS, verify=True)
    assert report.experiment == "scenario-bench"
    assert len(report.rows) == len(SMOKE_SCENARIOS)
    assert report.checks
    assert report.all_checks_pass, [c for c, ok in report.checks if not ok]
    # One replay gate per scenario rides along with the declared checks.
    replays = [c for c, _ in report.checks if "bit-identical replay" in c]
    assert len(replays) == len(SMOKE_SCENARIOS)
