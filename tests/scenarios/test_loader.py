"""Loader validation: every bad document fails with a message that
names the offending spec path and what would have been accepted."""

import copy

import pytest

from repro.errors import ScenarioError
from repro.scenarios import load_scenario


def base_doc(**overrides):
    doc = {
        "name": "probe",
        "workload": {
            "duration": 2.0,
            "deadline": 1.0,
            "tenants": [{"name": "t", "rate": 1.0, "files": ["dem_a"]}],
        },
    }
    doc.update(copy.deepcopy(overrides))
    return doc


def rejects(doc, *fragments):
    with pytest.raises(ScenarioError) as err:
        load_scenario(doc)
    message = str(err.value)
    for fragment in fragments:
        assert fragment in message, (fragment, message)


class TestStructure:
    def test_unknown_top_level_key(self):
        rejects(base_doc(bogus=1), "unknown key 'bogus'", "name, description")

    def test_missing_name(self):
        doc = base_doc()
        del doc["name"]
        rejects(doc, "name", "missing")

    def test_missing_workload(self):
        rejects({"name": "x"}, "workload", "missing")

    def test_non_object_section(self):
        rejects(base_doc(topology=3), "topology", "must be an object")

    def test_wrong_value_type(self):
        doc = base_doc()
        doc["workload"]["duration"] = "long"
        rejects(doc, "workload.duration", "must be a number", "'long'")

    def test_error_carries_the_scenario_name(self):
        rejects(base_doc(bogus=1), "probe:")


class TestTopology:
    def test_unknown_scheme(self):
        rejects(base_doc(topology={"scheme": "RAID"}), "topology.scheme", "'RAID'")

    def test_unknown_operator(self):
        rejects(
            base_doc(topology={"operator": "sharpen"}),
            "topology.operator",
            "unknown kernel 'sharpen'",
            "registered:",
        )

    def test_bad_raster(self):
        rejects(base_doc(topology={"raster": [64]}), "topology.raster", "[rows, cols]")

    def test_partition_servers_needs_partition_ingest(self):
        rejects(
            base_doc(topology={"partition_servers": 2}),
            "topology.partition_servers",
            "only meaningful with ingest 'partition'",
        )

    def test_partition_ingest_needs_partition_servers(self):
        rejects(
            base_doc(topology={"ingest": "partition"}),
            "topology.partition_servers",
            "required",
        )

    def test_partition_larger_than_storage(self):
        rejects(
            base_doc(topology={"ingest": "partition", "partition_servers": 9}),
            "topology.partition_servers",
            "exceeds the 4 storage servers",
        )


class TestTenants:
    def test_unknown_file_names_the_declared_files(self):
        doc = base_doc()
        doc["workload"]["tenants"][0]["files"] = ["nope"]
        rejects(doc, "tenants[0]", "unknown file 'nope'", "topology declares")

    def test_unknown_kernel(self):
        doc = base_doc()
        doc["workload"]["tenants"][0]["kernels"] = ["sharpen"]
        rejects(doc, "kernels", "unknown kernel 'sharpen'")

    def test_unknown_tenant_key(self):
        doc = base_doc()
        doc["workload"]["tenants"][0]["burst"] = 2
        rejects(doc, "tenants[0]", "unknown key 'burst'")

    def test_duplicate_tenant_names(self):
        doc = base_doc()
        doc["workload"]["tenants"].append(
            {"name": "t", "rate": 1.0, "files": ["dem_a"]}
        )
        rejects(doc, "duplicate tenant name 't'")

    def test_closed_tenant_requires_population(self):
        doc = base_doc()
        doc["workload"]["tenants"][0] = {
            "name": "t", "mode": "closed", "think_time": 0.1, "files": ["dem_a"],
        }
        rejects(doc, "population", "missing")

    def test_closed_tenant_rejects_rate(self):
        doc = base_doc()
        doc["workload"]["tenants"][0] = {
            "name": "t", "mode": "closed", "rate": 2.0, "population": 1,
            "think_time": 0.1, "files": ["dem_a"],
        }
        rejects(doc, "rate", "closed")

    def test_open_tenant_rejects_population_knobs(self):
        doc = base_doc()
        doc["workload"]["tenants"][0]["think_time"] = 0.5
        rejects(doc, "think_time", "only meaningful for mode 'closed'")

    def test_bad_affinity_reported_at_the_tenant(self):
        doc = base_doc()
        doc["workload"]["tenants"][0] = {
            "name": "t", "mode": "closed", "population": 1,
            "think_time": 0.1, "affinity": 1.5, "files": ["dem_a"],
        }
        rejects(doc, "tenants[0]", "affinity")


class TestWorkloadShape:
    def test_ramp_phase_past_duration(self):
        doc = base_doc()
        doc["workload"]["ramp"] = [[0.0, 1.0], [5.0, 2.0]]
        rejects(doc, "workload.ramp[1]", "outside [0, duration 2)")

    def test_ramp_must_be_sorted(self):
        doc = base_doc()
        doc["workload"]["ramp"] = [[1.0, 1.0], [0.5, 2.0]]
        rejects(doc, "workload.ramp", "ascending")

    def test_ramp_multiplier_positive(self):
        doc = base_doc()
        doc["workload"]["ramp"] = [[0.0, -1.0]]
        rejects(doc, "workload.ramp[0]", "multiplier must be positive")


class TestChaos:
    def test_malformed_spec_surfaces_the_grammar_error(self):
        rejects(
            base_doc(chaos={"spec": "wobble:s1@0.5"}),
            "chaos.spec",
            "unknown fault kind 'wobble'",
        )

    def test_unknown_target_lists_the_cluster_nodes(self):
        rejects(
            base_doc(chaos={"spec": "crash:s9@0.5"}),
            "chaos.spec",
            "unknown node 's9'",
            "c0, c1, c2, c3, s0, s1, s2, s3",
        )

    def test_event_after_duration(self):
        rejects(
            base_doc(chaos={"spec": "crash:s1@5.0"}),
            "chaos.spec",
            "fires at 5s, past the workload duration 2s",
        )

    def test_unknown_recovery_key(self):
        rejects(
            base_doc(chaos={"spec": "crash:s1@0.5", "recovery": {"retries": 3}}),
            "chaos.recovery",
            "unknown key 'retries'",
        )


class TestAutoscale:
    def test_clamp_beyond_storage_partition(self):
        rejects(
            base_doc(autoscale={"min_servers": 2, "max_servers": 9}),
            "autoscale.max_servers",
            "exceeds the 4 storage servers",
        )

    def test_policy_invariants_surface_at_the_section(self):
        rejects(
            base_doc(autoscale={"min_servers": 4, "max_servers": 2}),
            "probe: autoscale:",
        )


class TestChecks:
    def test_unknown_check_lists_the_catalog(self):
        rejects(
            base_doc(checks=[{"check": "latency_good"}]),
            "checks[0].check",
            "unknown check 'latency_good'",
            "availability_min",
        )

    def test_missing_value(self):
        rejects(
            base_doc(checks=[{"check": "p99_max"}]),
            "checks[0]",
            "needs a numeric 'value'",
        )

    def test_value_on_valueless_check(self):
        rejects(
            base_doc(checks=[{"check": "conservation", "value": 1}]),
            "checks[0]",
            "takes no 'value'",
        )

    def test_unknown_tenant_reference(self):
        rejects(
            base_doc(checks=[{"check": "p99_max", "value": 1, "tenant": "ghost"}]),
            "checks[0].tenant",
            "unknown tenant 'ghost'",
            "declared: t",
        )

    def test_chaos_check_requires_chaos_section(self):
        rejects(
            base_doc(checks=[{"check": "failover_reads_min", "value": 1}]),
            "requires a chaos section",
        )

    def test_autoscale_check_requires_autoscale_section(self):
        rejects(
            base_doc(checks=[{"check": "scale_ups_min", "value": 1}]),
            "requires an autoscale section",
        )

    def test_crc_identity_requires_something_to_survive(self):
        rejects(
            base_doc(checks=[{"check": "crc_identity"}]),
            "requires a chaos or autoscale section",
        )

    def test_cache_check_requires_das(self):
        doc = base_doc(
            topology={"scheme": "TS"},
            checks=[{"check": "cache_hit_ratio_min", "value": 0.5}],
        )
        rejects(doc, "requires scheme 'DAS'")


class TestSources:
    def test_unknown_library_name(self):
        with pytest.raises(ScenarioError, match="unknown library scenario"):
            load_scenario("totally-made-up")

    def test_missing_file(self):
        with pytest.raises(ScenarioError, match="does not exist"):
            load_scenario("/tmp/no/such/spec.json")

    def test_invalid_json_reports_the_line(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"name": "x",}\n')
        with pytest.raises(ScenarioError, match="not valid JSON"):
            load_scenario(bad)

    def test_non_object_document(self, tmp_path):
        arr = tmp_path / "arr.json"
        arr.write_text("[1, 2]\n")
        with pytest.raises(ScenarioError, match="must be a JSON object"):
            load_scenario(arr)
