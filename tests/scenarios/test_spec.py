"""Schema round-trip: document -> spec -> to_dict -> spec, no drift."""

import json

from repro.scenarios import SCHEMA_SECTIONS, load_scenario
from repro.scenarios.spec import (
    AUTOSCALE_KEYS,
    CHECK_KEYS,
    TENANT_KEYS,
    TOP_KEYS,
    TOPOLOGY_KEYS,
)

FULL_DOC = {
    "name": "everything",
    "description": "one of each section",
    "seed": 7,
    "topology": {
        "nodes": 8,
        "scheme": "DAS",
        "ingest": "partition",
        "partition_servers": 2,
        "files": ["dem_a"],
        "raster": [64, 96],
        "operator": "gaussian",
    },
    "workload": {
        "duration": 3.0,
        "deadline": 1.0,
        "load": 1.5,
        "ramp": [[0.0, 0.5], [1.0, 2.0]],
        "tenants": [
            {"name": "open", "rate": 4.0, "weight": 2.0,
             "kernels": ["gaussian", "median"], "files": ["dem_a"]},
            {"name": "closed", "mode": "closed", "population": 2,
             "think_time": 0.1, "affinity": 0.7, "files": ["dem_a"]},
        ],
    },
    "service": {
        "queue_capacity": 10,
        "concurrency": 4,
        "batch_max": 2,
        "load_bias": 0.5,
        "decision_ttl": 0.5,
        "retry": {"max_attempts": 3, "backoff": 0.01, "backoff_factor": 1.5},
    },
    "chaos": {
        "spec": "crash:s1@0.5;recover:s1@1.5",
        "recovery": {"rpc_timeout": 0.2, "max_attempts": 2, "backoff": 0.02,
                     "hedge_delay": 0.1},
    },
    "autoscale": {"min_servers": 2, "max_servers": 4, "interval": 0.25},
    "checks": [
        {"check": "conservation"},
        {"check": "availability_min", "value": 0.9, "tenant": "open"},
        {"check": "crc_identity"},
    ],
}

MINIMAL_DOC = {
    "name": "minimal",
    "workload": {
        "duration": 1.0,
        "deadline": 0.5,
        "tenants": [{"name": "t", "rate": 1.0, "files": ["dem_a"]}],
    },
}


def test_full_document_round_trips():
    spec = load_scenario(FULL_DOC)
    assert load_scenario(spec.to_dict()) == spec


def test_round_trip_survives_json_serialization():
    spec = load_scenario(FULL_DOC)
    assert load_scenario(json.loads(json.dumps(spec.to_dict()))) == spec


def test_minimal_document_round_trips_with_defaults():
    spec = load_scenario(MINIMAL_DOC)
    assert spec.load == 1.0
    assert spec.seed == 20120910
    assert spec.topology.scheme == "DAS"
    assert spec.chaos is None and spec.autoscale is None
    assert load_scenario(spec.to_dict()) == spec


def test_optional_sections_absent_from_minimal_dict():
    out = load_scenario(MINIMAL_DOC).to_dict()
    for key in ("chaos", "autoscale", "checks"):
        assert key not in out
    assert "ramp" not in out["workload"]
    assert "partition_servers" not in out["topology"]
    assert "decision_ttl" not in out["service"]


def test_full_dict_reflects_every_declared_section():
    out = load_scenario(FULL_DOC).to_dict()
    assert out["topology"]["partition_servers"] == 2
    assert out["workload"]["ramp"] == [[0.0, 0.5], [1.0, 2.0]]
    assert out["chaos"]["spec"] == "crash:s1@0.5;recover:s1@1.5"
    assert out["autoscale"]["max_servers"] == 4
    assert [c["check"] for c in out["checks"]] == [
        "conservation", "availability_min", "crc_identity",
    ]
    # Mode-specific tenant serialization: open carries rate, closed
    # carries the population knobs, never both.
    by_name = {t["name"]: t for t in out["workload"]["tenants"]}
    assert "rate" in by_name["open"] and "population" not in by_name["open"]
    assert "population" in by_name["closed"] and "rate" not in by_name["closed"]


def test_schema_sections_cover_the_key_vocabulary():
    assert SCHEMA_SECTIONS["top"] == TOP_KEYS
    assert SCHEMA_SECTIONS["topology"] == TOPOLOGY_KEYS
    assert SCHEMA_SECTIONS["tenant"] == TENANT_KEYS
    assert SCHEMA_SECTIONS["autoscale"] == AUTOSCALE_KEYS
    assert SCHEMA_SECTIONS["check"] == CHECK_KEYS
    # Every section's keys are unique strings.
    for keys in SCHEMA_SECTIONS.values():
        assert len(set(keys)) == len(keys)
