"""Span sampling: trace every Nth request, perturb nothing.

Sampling drops *spans*, never simulation events: a sampled run's
summary is bit-identical to the untraced run, sampled requests keep
their full span trees (coverage/attribution still hold for them), and
unsampled requests produce no spans at all — the NULL_SPAN parent
cascades the drop through the queue/attempt/executor instrumentation.
"""

from types import SimpleNamespace

import pytest

from repro.obs import NULL_SPAN, Tracer
from repro.obs.span import NullSpan


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t


def request(req_id):
    return SimpleNamespace(
        req_id=req_id, arrival=0.0, deadline=1.0, tenant="t",
        operator="op", file="f",
    )


class TestSamplingPolicy:
    def test_default_samples_everything(self):
        tracer = Tracer(clock=FakeClock())
        assert tracer.sample_every == 1
        assert all(tracer.sampled(r) for r in range(1, 20))

    def test_sample_rate_maps_to_every_nth_request(self):
        tracer = Tracer(clock=FakeClock(), sample=0.25)
        assert tracer.sample_every == 4
        assert [r for r in range(1, 13) if tracer.sampled(r)] == [4, 8, 12]

    def test_sampling_is_deterministic_by_request_id(self):
        a = Tracer(clock=FakeClock(), sample=0.5)
        b = Tracer(clock=FakeClock(), sample=0.5)
        assert [a.sampled(r) for r in range(50)] == [
            b.sampled(r) for r in range(50)
        ]

    @pytest.mark.parametrize("bad", [0.0, -0.5, 1.5])
    def test_sample_must_be_a_probability(self, bad):
        with pytest.raises(Exception):
            Tracer(clock=FakeClock(), sample=bad)


class TestSampledSpans:
    def test_unsampled_request_gets_the_null_span(self):
        tracer = Tracer(clock=FakeClock(), sample=0.5)
        root = tracer.request_begin(request(3))
        assert isinstance(root, NullSpan)
        assert not root
        assert 3 not in tracer.requests

    def test_sampled_request_gets_a_real_root(self):
        tracer = Tracer(clock=FakeClock(), sample=0.5)
        root = tracer.request_begin(request(4))
        assert root
        assert tracer.request_span(4) is root

    def test_null_parent_cascades_the_drop(self):
        tracer = Tracer(clock=FakeClock(), sample=0.5)
        child = tracer.begin("queue", cat="queue", parent=NULL_SPAN)
        assert isinstance(child, NullSpan)
        assert tracer.spans == []

    def test_real_parent_still_yields_children(self):
        tracer = Tracer(clock=FakeClock(), sample=0.5)
        root = tracer.request_begin(request(2))
        child = tracer.begin("queue", cat="queue", parent=root)
        assert child
        assert child.parent == root.sid

    def test_only_sampled_requests_leave_spans(self):
        tracer = Tracer(clock=FakeClock(), sample=1 / 3)
        for r in range(1, 10):
            root = tracer.request_begin(request(r))
            tracer.begin("stage", cat="queue", parent=root).finish()
            root.finish()
        assert sorted(tracer.requests) == [3, 6, 9]
        roots = [s for s in tracer.spans if s.cat == "request"]
        assert len(roots) == 3
