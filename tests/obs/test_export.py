"""Exporter and validator tests on hand-built span trees."""

import json

import pytest

from repro.obs import Tracer, trace_document, trace_events, validate_trace, write_trace


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t


class Req:
    def __init__(self, req_id, tenant):
        self.req_id = req_id
        self.arrival = 0.0
        self.tenant = tenant
        self.file = "dem_a"
        self.operator = "gaussian"
        self.deadline = 0.5


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def tracer(clock):
    """Two tenants, two requests, one fault instant, one resize span."""
    tracer = Tracer(clock=clock)
    for req_id, tenant in ((3, "beta"), (1, "alpha")):
        root = tracer.request_begin(Req(req_id, tenant))
        queued = tracer.begin("queued", cat="queue", parent=root)
        clock.t += 0.1
        queued.finish()
        rpc = tracer.begin("as-exec:s0", cat="rpc", parent=root, server="s0")
        rpc.event("retry", attempt=1)
        clock.t += 0.2
        rpc.finish(status="ok")
        tracer.request_end(req_id, "completed")
    tracer.instant("fault.crash", track="faults", target="s1")
    resize = tracer.begin("resize:up", cat="resize", track="autoscale")
    clock.t += 0.05
    resize.finish()
    return tracer


class TestLaneMapping:
    def test_tenants_get_sorted_pids_requests_their_tid(self, tracer):
        events = trace_events(tracer)
        names = {
            (e["pid"], e["tid"]): e["args"]["name"]
            for e in events
            if e["ph"] == "M"
        }
        assert names[(0, 0)] == "system"
        assert names[(1, 0)] == "tenant alpha"  # sorted: alpha < beta
        assert names[(2, 0)] == "tenant beta"
        assert names[(1, 1)] == "req 1"
        assert names[(2, 3)] == "req 3"

    def test_system_lanes_are_fixed(self, tracer):
        events = trace_events(tracer)
        names = {
            e["args"]["name"]: e["tid"]
            for e in events
            if e["ph"] == "M" and e["pid"] == 0 and e["name"] == "thread_name"
        }
        assert names == {"serve": 1, "faults": 2, "autoscale": 3}

    def test_spans_land_on_their_request_lane(self, tracer):
        events = trace_events(tracer)
        alpha_spans = [
            e for e in events if e["ph"] == "X" and (e["pid"], e["tid"]) == (1, 1)
        ]
        assert {e["name"] for e in alpha_spans} == {
            "request",
            "queued",
            "as-exec:s0",
        }


class TestEventShapes:
    def test_timestamps_are_microseconds(self, tracer):
        events = trace_events(tracer)
        resize = next(e for e in events if e["name"] == "resize:up")
        assert resize["ts"] == pytest.approx(600000.0)  # 0.6 s
        assert resize["dur"] == pytest.approx(50000.0)  # 0.05 s

    def test_span_args_carry_sid_parent_and_attrs(self, tracer):
        events = trace_events(tracer)
        rpc = next(e for e in events if e["name"] == "as-exec:s0")
        assert "sid" in rpc["args"] and "parent" in rpc["args"]
        assert rpc["args"]["server"] == "s0"
        assert rpc["args"]["status"] == "ok"

    def test_in_span_marks_are_thread_scoped_instants(self, tracer):
        events = trace_events(tracer)
        retry = next(e for e in events if e["name"] == "retry")
        assert retry["ph"] == "i" and retry["s"] == "t"
        assert retry["args"] == {"attempt": 1}

    def test_track_instants_are_process_scoped(self, tracer):
        events = trace_events(tracer)
        fault = next(e for e in events if e["name"] == "fault.crash")
        assert fault["ph"] == "i" and fault["s"] == "p"
        assert (fault["pid"], fault["tid"]) == (0, 2)  # faults lane

    def test_open_spans_are_truncated_at_the_horizon(self, clock):
        tracer = Tracer(clock=clock)
        done = tracer.begin("a")
        clock.t = 2.0
        done.finish()
        tracer.begin("leak")  # never finished
        events = trace_events(tracer)
        leak = next(e for e in events if e["name"] == "leak")
        assert leak["args"]["truncated"] is True
        assert leak["ts"] + leak["dur"] == pytest.approx(2_000_000.0)


class TestDocument:
    def test_document_declares_the_simulated_clock(self, tracer):
        doc = trace_document(tracer, meta={"cell": "unit"})
        assert doc["otherData"] == {"clock": "simulated", "cell": "unit"}
        assert doc["displayTimeUnit"] == "ms"

    def test_write_trace_is_deterministic_bytes(self, tracer, tmp_path):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        write_trace(tracer, a, meta={"cell": "unit"})
        write_trace(tracer, b, meta={"cell": "unit"})
        assert a.read_bytes() == b.read_bytes()
        assert json.loads(a.read_text())["traceEvents"]

    def test_exported_document_validates_clean(self, tracer):
        assert validate_trace(trace_document(tracer)) == []


class TestValidator:
    def test_rejects_a_document_without_events(self):
        assert validate_trace({}) == ["top level: no traceEvents list"]

    def test_rejects_unknown_phases_and_missing_fields(self):
        doc = {
            "traceEvents": [
                {"ph": "Q", "name": "x", "pid": 0, "tid": 0},
                {"ph": "X", "name": "y", "pid": 0},
            ]
        }
        problems = validate_trace(doc)
        assert any("unknown phase 'Q'" in p for p in problems)
        assert any("missing 'tid'" in p for p in problems)

    def test_rejects_negative_durations_and_duplicate_sids(self):
        span = {
            "ph": "X",
            "name": "x",
            "pid": 0,
            "tid": 0,
            "ts": 0.0,
            "dur": -1.0,
            "args": {"sid": 1},
        }
        twin = dict(span, dur=1.0)
        problems = validate_trace({"traceEvents": [span, twin]})
        assert any("ends before it starts" in p for p in problems)
        assert any("duplicate sid 1" in p for p in problems)

    def test_rejects_a_missing_parent(self):
        doc = {
            "traceEvents": [
                {
                    "ph": "X",
                    "name": "orphan",
                    "pid": 0,
                    "tid": 0,
                    "ts": 0.0,
                    "dur": 1.0,
                    "args": {"sid": 5, "parent": 99},
                }
            ]
        }
        assert any(
            "parent sid 99 does not exist" in p for p in validate_trace(doc)
        )

    def _pair(self, child_args, child_ts=0.0, child_dur=2.0):
        return {
            "traceEvents": [
                {
                    "ph": "X",
                    "name": "parent",
                    "pid": 0,
                    "tid": 0,
                    "ts": 0.0,
                    "dur": 1.0,
                    "args": {"sid": 1},
                },
                {
                    "ph": "X",
                    "name": "child",
                    "pid": 0,
                    "tid": 0,
                    "ts": child_ts,
                    "dur": child_dur,
                    "args": dict(child_args, sid=2, parent=1),
                },
            ]
        }

    def test_rejects_a_child_escaping_its_parent(self):
        problems = validate_trace(self._pair({}))
        assert any("escapes parent" in p for p in problems)

    def test_detached_children_may_end_late_but_not_start_early(self):
        assert validate_trace(self._pair({"detached": True})) == []
        early = self._pair({"detached": True}, child_ts=-1.0, child_dur=0.5)
        assert any("escapes parent" in p for p in validate_trace(early))
