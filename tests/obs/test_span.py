"""Unit tests for the span model and the tracer's determinism contract."""

import pytest

from repro.obs import (
    NULL_SPAN,
    NULL_TRACER,
    NullSpan,
    NullTracer,
    Span,
    Tracer,
    intervals_total,
    merge_intervals,
)
from repro.obs.span import rpc_reply_bytes, rpc_status
from repro.sim import Environment


class FakeClock:
    """A settable clock so tree shapes need no simulation."""

    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def tracer(clock):
    return Tracer(clock=clock)


class TestSpanLifecycle:
    def test_begin_and_finish_use_the_clock(self, tracer, clock):
        span = tracer.begin("work", cat="attempt")
        clock.t = 2.5
        span.finish()
        assert span.start == 0.0
        assert span.end == 2.5
        assert span.duration == 2.5

    def test_first_finish_wins(self, tracer, clock):
        span = tracer.begin("work")
        clock.t = 1.0
        span.finish(status="ok")
        clock.t = 9.0
        span.finish(status="late-duplicate")
        assert span.end == 1.0
        # Attributes still merge; the timestamp does not move.
        assert span.attrs["status"] == "late-duplicate"

    def test_parent_by_span_object_and_by_sid(self, tracer):
        parent = tracer.begin("outer", track=7)
        by_obj = tracer.begin("inner", parent=parent)
        by_sid = tracer.begin("inner2", parent=parent.sid)
        assert by_obj.parent == parent.sid
        assert by_sid.parent == parent.sid
        # A Span parent donates its track; a bare sid cannot.
        assert by_obj.track == 7

    def test_null_span_parent_means_root(self, tracer):
        span = tracer.begin("work", parent=NULL_SPAN)
        assert span.parent is None

    def test_events_stamp_the_current_clock(self, tracer, clock):
        span = tracer.begin("work")
        clock.t = 0.75
        span.event("decision", outcome="accept")
        assert [(e.time, e.name) for e in span.events] == [(0.75, "decision")]
        assert span.events[0].attrs == {"outcome": "accept"}

    def test_sids_are_dense_and_lookup_works(self, tracer):
        spans = [tracer.begin(f"s{i}") for i in range(5)]
        assert [s.sid for s in spans] == [0, 1, 2, 3, 4]
        assert tracer.span(3) is spans[3]
        assert tracer.span(99) is None

    def test_open_spans_and_children_index(self, tracer):
        root = tracer.begin("root")
        kid = tracer.begin("kid", parent=root)
        root.finish()
        assert tracer.open_spans() == [kid]
        assert tracer.children_index() == {root.sid: [kid]}


class TestDetached:
    def test_child_finishing_after_parent_is_marked_detached(
        self, tracer, clock
    ):
        parent = tracer.begin("read")
        child = tracer.begin("rpc", parent=parent)
        clock.t = 1.0
        parent.finish()
        clock.t = 2.0
        child.finish()
        assert child.attrs.get("detached") is True

    def test_child_finishing_with_parent_is_not_detached(self, tracer, clock):
        parent = tracer.begin("read")
        child = tracer.begin("rpc", parent=parent)
        clock.t = 1.0
        child.finish()
        parent.finish()
        assert "detached" not in child.attrs

    def test_explicit_detached_attr_is_not_overwritten(self, tracer, clock):
        parent = tracer.begin("read")
        child = tracer.begin("rpc", parent=parent, detached="abandoned-hedge")
        parent.finish()
        clock.t = 1.0
        child.finish()
        assert child.attrs["detached"] == "abandoned-hedge"


class TestRequestRegistry:
    class Req:
        req_id = 11
        arrival = 0.25
        tenant = "alpha"
        file = "dem_a"
        operator = "gaussian"
        deadline = 0.5

    def test_request_begin_registers_the_root(self, tracer, clock):
        clock.t = 0.4  # admission happens after arrival
        root = tracer.request_begin(self.Req())
        assert tracer.request_span(11) is root
        assert root.start == 0.25  # backdated to arrival
        assert root.attrs["tenant"] == "alpha"
        clock.t = 1.0
        tracer.request_end(11, "completed")
        assert root.end == 1.0
        assert root.attrs["outcome"] == "completed"

    def test_unknown_request_yields_the_null_span(self, tracer):
        assert tracer.request_span(404) is NULL_SPAN
        tracer.request_end(404, "completed")  # must not raise


class TestEndOn:
    def test_end_on_fires_at_the_event_completion_time(self):
        env = Environment()
        tracer = Tracer(clock=lambda: env.now)
        span = tracer.begin("rpc")
        timeout = env.timeout(1.5, value="reply")
        tracer.end_on(span, timeout, status="ok")
        assert span.end is None  # nothing happened yet
        env.run(until=2.0)
        assert span.end == 1.5
        assert span.attrs["status"] == "ok"

    def test_end_on_an_already_processed_event_ends_now(self):
        env = Environment()
        tracer = Tracer(clock=lambda: env.now)
        timeout = env.timeout(0.5)
        env.run(until=1.0)
        assert timeout.callbacks is None  # processed
        span = tracer.begin("rpc")
        tracer.end_on(span, timeout, status="ok")
        assert span.end == env.now

    def test_end_on_never_schedules_anything(self):
        env = Environment()
        tracer = Tracer(clock=lambda: env.now)
        span = tracer.begin("rpc")
        timeout = env.timeout(1.0)
        before = len(env._queue)
        tracer.end_on(span, timeout, status="ok")
        assert len(env._queue) == before

    def test_callable_attrs_receive_the_completed_event(self):
        env = Environment()
        tracer = Tracer(clock=lambda: env.now)
        span = tracer.begin("rpc")
        timeout = env.timeout(1.0, value="payload")
        tracer.end_on(
            span, timeout, status=rpc_status, echoed=lambda ev: ev._value
        )
        env.run(until=2.0)
        assert span.attrs["status"] == "ok"
        assert span.attrs["echoed"] == "payload"

    def test_attr_extractor_errors_become_none(self):
        env = Environment()
        tracer = Tracer(clock=lambda: env.now)
        span = tracer.begin("rpc")
        timeout = env.timeout(1.0)

        def boom(ev):
            raise RuntimeError("extractor bug")

        tracer.end_on(span, timeout, bytes=boom)
        env.run(until=2.0)
        assert span.end == 1.0
        assert span.attrs["bytes"] is None


class TestRpcExtractors:
    class Done:
        _ok = True

        class _Reply:
            size = 4096

        _value = _Reply()

    class Failed:
        _ok = False
        _value = RuntimeError("down")

    def test_status(self):
        assert rpc_status(self.Done()) == "ok"
        assert rpc_status(self.Failed()) == "error"

    def test_reply_bytes(self):
        assert rpc_reply_bytes(self.Done()) == 4096
        assert rpc_reply_bytes(self.Failed()) is None


class TestNullObjects:
    def test_null_tracer_and_span_are_falsy(self):
        assert not NULL_TRACER
        assert not NULL_SPAN
        assert isinstance(NULL_TRACER, NullTracer)
        assert isinstance(NULL_SPAN, NullSpan)
        assert Tracer()  # a live tracer is truthy
        assert Span(0, "x", 0.0)  # a live span is truthy

    def test_null_tracer_returns_null_spans_everywhere(self):
        assert NULL_TRACER.begin("x") is NULL_SPAN
        assert NULL_TRACER.request_span(1) is NULL_SPAN
        assert NULL_TRACER.bind(lambda: 1.0) is NULL_TRACER
        assert NULL_TRACER.now() == 0.0

    def test_null_span_ops_are_no_ops(self):
        NULL_SPAN.event("decision", outcome="x")
        assert NULL_SPAN.finish(status="ok") is NULL_SPAN
        assert NULL_SPAN.annotate(a=1) is NULL_SPAN
        assert NULL_SPAN.attrs == {}
        assert NULL_SPAN.events == []

    def test_end_on_with_null_tracer_leaves_the_event_alone(self):
        env = Environment()
        timeout = env.timeout(1.0)
        before = list(timeout.callbacks)
        NULL_TRACER.end_on(NULL_SPAN, timeout, status="ok")
        assert timeout.callbacks == before


class TestIntervalAlgebra:
    def test_merge_coalesces_overlaps_and_sorts(self):
        merged = merge_intervals([(3.0, 4.0), (0.0, 1.0), (0.5, 2.0)])
        assert merged == [(0.0, 2.0), (3.0, 4.0)]

    def test_total_measures_the_union(self):
        assert intervals_total([(0.0, 1.0), (0.5, 2.0), (3.0, 4.0)]) == 3.0
        assert intervals_total([]) == 0.0
