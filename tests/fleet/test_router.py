"""Unit tests for fleet placement, probes and spillover."""

import pytest

from repro.errors import FleetError
from repro.fleet import FleetRouter
from repro.sim import MonitorHub

from .conftest import make_cell, make_request


def make_router(env, cells, **kw):
    return FleetRouter(env, cells, MonitorHub(env), **kw)


class TestConstruction:
    def test_unknown_policy_rejected(self, env, cell_pair):
        with pytest.raises(FleetError):
            make_router(env, cell_pair, policy="roulette")

    def test_empty_fleet_rejected(self, env):
        with pytest.raises(FleetError):
            make_router(env, [])

    def test_duplicate_cell_names_rejected(self, env):
        cells = [make_cell(env, "same"), make_cell(env, "same")]
        with pytest.raises(FleetError):
            make_router(env, cells)

    def test_assignment_to_unknown_cell_rejected(self, env, cell_pair):
        with pytest.raises(FleetError):
            make_router(env, cell_pair, assignments={"alpha": "nowhere"})


class TestSticky:
    def test_explicit_assignment_wins(self, env, cell_pair):
        router = make_router(
            env, cell_pair, policy="sticky", assignments={"alpha": "cell-1"}
        )
        assert router.submit(make_request(1, tenant="alpha"))
        assert router.placements[1] == "cell-1"

    def test_unseen_tenants_pinned_round_robin(self, env, cell_pair):
        router = make_router(env, cell_pair, policy="sticky")
        router.submit(make_request(1, tenant="alpha"))
        router.submit(make_request(2, tenant="beta"))
        router.submit(make_request(3, tenant="alpha"))
        assert router.placements == {1: "cell-0", 2: "cell-1", 3: "cell-0"}


class TestLeastLoaded:
    def test_picks_the_emptier_cell(self, env, cell_pair):
        cell_pair[0].submit(make_request(100))
        cell_pair[0].submit(make_request(101))
        router = make_router(env, cell_pair, policy="least-loaded")
        router.submit(make_request(1))
        assert router.placements[1] == "cell-1"

    def test_ties_break_by_cell_order(self, env, cell_pair):
        router = make_router(env, cell_pair, policy="least-loaded")
        router.submit(make_request(1))
        assert router.placements[1] == "cell-0"


class TestLocality:
    def test_restricts_to_hosting_cells(self, env):
        cells = [
            make_cell(env, "cell-0", files=("dem_a",)),
            make_cell(env, "cell-1"),
        ]
        router = make_router(env, cells, policy="locality")
        router.submit(make_request(1, tenant="beta", file="dem_b"))
        assert router.placements[1] == "cell-1"

    def test_unhosted_file_raises(self, env):
        cells = [make_cell(env, "cell-0", files=("dem_a",))]
        router = make_router(env, cells, policy="locality")
        with pytest.raises(FleetError):
            router.submit(make_request(1, file="dem_z"))


class TestSpillover:
    def _jam(self, cell, start=100):
        for i in range(cell.scheduler.queue_capacity):
            cell.submit(make_request(start + i))

    def test_full_pin_spills_to_the_other_cell(self, env, cell_pair):
        router = make_router(
            env, cell_pair, policy="sticky", assignments={"alpha": "cell-0"}
        )
        self._jam(cell_pair[0])
        assert router.submit(make_request(1))
        assert router.placements[1] == "cell-1"
        assert router.spilled == 1

    def test_no_spillover_mode_rejects_at_the_pin(self, env, cell_pair):
        router = make_router(
            env,
            cell_pair,
            policy="sticky",
            spillover=False,
            assignments={"alpha": "cell-0"},
        )
        self._jam(cell_pair[0])
        assert not router.submit(make_request(1))
        assert router.shed == 1
        assert router.spilled == 0

    def test_every_queue_full_books_one_rejection(self, env, cell_pair):
        router = make_router(
            env, cell_pair, policy="sticky", assignments={"alpha": "cell-0"}
        )
        self._jam(cell_pair[0], start=100)
        self._jam(cell_pair[1], start=200)
        assert not router.submit(make_request(1))
        assert router.shed == 1
        assert router.routed == 1


class TestProbes:
    def test_degraded_cell_routed_around_after_a_sweep(self, env, cell_pair):
        router = make_router(env, cell_pair, policy="least-loaded")
        cell_pair[0].cluster.storage_nodes[0].fail()
        assert router.is_healthy(cell_pair[0])  # probes have not seen it
        router._sweep()
        assert not router.is_healthy(cell_pair[0])
        router.submit(make_request(1))
        assert router.placements[1] == "cell-1"

    def test_transitions_counted_both_ways(self, env, cell_pair):
        router = make_router(env, cell_pair)
        node = cell_pair[0].cluster.storage_nodes[0]
        node.fail()
        router._sweep()
        node.recover()
        router._sweep()
        assert router.monitors.counter("fleet.transitions").value == 2
        assert router.is_healthy(cell_pair[0])

    def test_probe_loop_exits_when_drained(self, env, cell_pair):
        router = make_router(env, cell_pair, duration=0.5, probe_interval=0.1)
        router.start()
        env.run()
        assert env.now >= 0.5
        assert router.monitors.counter("fleet.probes").value >= 5

    def test_double_start_raises(self, env, cell_pair):
        router = make_router(env, cell_pair)
        router.start()
        with pytest.raises(FleetError):
            router.start()
