"""Unit tests for budget-arbitrated fleet autoscaling."""

import pytest

from repro.errors import FleetError
from repro.fleet import FleetController
from repro.sim import MonitorHub


class StubPolicy:
    def __init__(self, lo, hi):
        self.min_servers = lo
        self.max_servers = hi


class StubAutoscaler:
    def __init__(self, lo=2, hi=4, active=None):
        self.policy = StubPolicy(lo, hi)
        self.active = lo if active is None else active
        self.arbiter = None
        self.started = False

    def start(self):
        self.started = True


class StubWindow:
    def p99(self, now):
        return 0.0

    def count(self, now):
        return 0


class StubBoard:
    window = StubWindow()


class StubScheduler:
    def queued_total(self):
        return 0


class StubCell:
    def __init__(self, name, autoscaler=None):
        self.name = name
        self.autoscaler = autoscaler
        self.board = StubBoard()
        self.scheduler = StubScheduler()

    def drained(self, duration):
        return True


def make_controller(env, cells, **kw):
    return FleetController(env, cells, MonitorHub(env), **kw)


class TestBudget:
    def test_default_budget_is_the_sum_of_clamps(self, env):
        cells = [
            StubCell("a", StubAutoscaler(2, 4)),
            StubCell("b", StubAutoscaler(2, 3)),
            StubCell("c"),  # not autoscaled: contributes nothing
        ]
        assert make_controller(env, cells).budget == 7

    def test_budget_below_minimum_footprint_rejected(self, env):
        cells = [StubCell("a", StubAutoscaler(2, 4)), StubCell("b", StubAutoscaler(2, 4))]
        with pytest.raises(FleetError):
            make_controller(env, cells, budget=3)

    def test_nonpositive_interval_rejected(self, env):
        with pytest.raises(FleetError):
            make_controller(env, [StubCell("a")], interval=0.0)

    def test_total_active_sums_autoscaled_cells(self, env):
        cells = [
            StubCell("a", StubAutoscaler(2, 4, active=3)),
            StubCell("b", StubAutoscaler(2, 4, active=2)),
        ]
        assert make_controller(env, cells).total_active() == 5


class TestArbitration:
    def _fleet(self, env, budget=5):
        cells = [
            StubCell("a", StubAutoscaler(2, 4)),
            StubCell("b", StubAutoscaler(2, 4)),
        ]
        controller = make_controller(env, cells, budget=budget)
        return controller, cells

    def test_scale_up_within_budget_granted(self, env):
        controller, cells = self._fleet(env, budget=5)
        arbiter = controller._make_arbiter(cells[0])
        # Totals 4; a -> 3 projects to 5, exactly the budget.
        assert arbiter(cells[0].autoscaler, "up", 3)
        assert controller.decisions[-1]["verdict"] == "grant"
        assert controller.monitors.counter("fleet.scale_grants").value == 1

    def test_scale_up_over_budget_denied(self, env):
        controller, cells = self._fleet(env, budget=5)
        cells[1].autoscaler.active = 3  # totals 5: no headroom left
        arbiter = controller._make_arbiter(cells[0])
        assert not arbiter(cells[0].autoscaler, "up", 3)
        assert controller.decisions[-1]["verdict"] == "deny"
        assert controller.monitors.counter("fleet.scale_denied").value == 1

    def test_scale_down_always_granted(self, env):
        controller, cells = self._fleet(env, budget=4)
        cells[0].autoscaler.active = 4  # already over: up would be denied
        arbiter = controller._make_arbiter(cells[0])
        assert arbiter(cells[0].autoscaler, "down", 2)
        assert controller.monitors.counter("fleet.scale_grants").value == 1

    def test_ledger_records_the_decision_context(self, env):
        controller, cells = self._fleet(env, budget=5)
        controller._make_arbiter(cells[1])(cells[1].autoscaler, "up", 4)
        entry = controller.decisions[-1]
        assert entry["cell"] == "b"
        assert entry["direction"] == "up"
        assert entry["target"] == 4
        assert entry["budget"] == 5
        assert entry["verdict"] == "deny"  # 4 - 2 + 4 = 6 > 5


class TestLifecycle:
    def test_start_attaches_arbiters_and_control_loops(self, env):
        cells = [StubCell("a", StubAutoscaler()), StubCell("b")]
        controller = make_controller(env, cells)
        controller.start()
        assert cells[0].autoscaler.started
        assert cells[0].autoscaler.arbiter is not None

    def test_double_start_raises(self, env):
        controller = make_controller(env, [StubCell("a")])
        controller.start()
        with pytest.raises(FleetError):
            controller.start()

    def test_observe_loop_traces_until_drained(self, env):
        cells = [StubCell("a", StubAutoscaler(2, 4, active=3))]
        controller = make_controller(env, cells, interval=0.25, duration=0.5)
        controller.start()
        env.run()
        assert env.now == pytest.approx(0.5)
        assert [obs["t"] for obs in controller.trace] == pytest.approx([0.25, 0.5])
        assert all(obs["total_active"] == 3 for obs in controller.trace)
        assert controller.trace[-1]["a"]["active"] == 3
        assert controller.monitors.gauge("fleet.active_servers").level == 3
