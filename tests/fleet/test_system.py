"""Integration tests for the full federated fleet run."""

import json

import pytest

from repro.errors import FleetError
from repro.fleet import FleetSystem, LongtailStream
from repro.sim import Environment

from .conftest import TENANTS, make_cell

KiB = 1024


def build_fleet(env, cells=None, **kw):
    if cells is None:
        cells = [make_cell(env, "cell-0"), make_cell(env, "cell-1")]
    defaults = dict(duration=2.0, deadline=1.0, policy="least-loaded")
    defaults.update(kw)
    return FleetSystem(env, cells, TENANTS, **defaults)


def build_and_run(env):
    fleet = build_fleet(
        env,
        longtail=(
            LongtailStream("bg", "cell-0", KiB, ((0.0, 20.0), (1.0, 0.0))),
        ),
        longtail_capacity=64 * KiB,
    )
    return fleet.run(), fleet


class TestValidation:
    def test_no_cells_rejected(self, env):
        with pytest.raises(FleetError):
            FleetSystem(env, [], TENANTS, duration=1.0, deadline=1.0)

    def test_no_tenants_rejected(self, env, cell_pair):
        with pytest.raises(FleetError):
            FleetSystem(env, cell_pair, (), duration=1.0, deadline=1.0)

    def test_cell_on_a_different_clock_rejected(self, env):
        stray = make_cell(Environment(), "stray")
        cells = [make_cell(env, "cell-0"), stray]
        with pytest.raises(FleetError):
            build_fleet(env, cells=cells)

    def test_cell_missing_a_tenant_queue_rejected(self, env):
        partial = make_cell(env, "partial", tenants=TENANTS[:1])
        cells = [make_cell(env, "cell-0"), partial]
        with pytest.raises(FleetError):
            build_fleet(env, cells=cells)

    def test_runs_exactly_once(self, env):
        fleet = build_fleet(env)
        fleet.run()
        with pytest.raises(FleetError):
            fleet.run()


class TestRun:
    def test_conservation_and_consistency(self, env):
        summary, fleet = build_and_run(env)
        assert summary["generated"] > 0
        assert summary["routed"] == summary["generated"]
        assert summary["admitted"] + summary["rejected"] == summary["generated"]
        assert summary["settled"] == summary["admitted"]
        assert summary["digest_consistency"]["consistent"]
        assert summary["health"]["healthy_final"] == 2
        assert summary["longtail"]["conservation_ok"]
        assert sum(summary["placements"].values()) == summary["generated"]
        assert fleet.router.placements.keys() == fleet.router.requests.keys()

    def test_summary_is_json_serialisable(self, env):
        summary, _ = build_and_run(env)
        assert json.loads(json.dumps(summary)) == json.loads(json.dumps(summary))

    def test_identical_builds_replay_bit_identically(self, env):
        first, _ = build_and_run(env)
        second, _ = build_and_run(Environment())
        assert json.dumps(first, sort_keys=True) == json.dumps(
            second, sort_keys=True
        )

    def test_result_digest_covers_every_executed_request(self, env):
        summary, fleet = build_and_run(env)
        per_cell = sum(
            len(cell.executor.digests) for cell in fleet.cells
        )
        assert summary["result_digest"]["count"] == per_cell
