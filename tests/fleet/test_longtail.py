"""Unit tests for fluid long-tail aggregation."""

import pytest

from repro.errors import FleetError
from repro.fleet import LongtailAggregator, LongtailStream
from repro.sim import MonitorHub

CELLS = ("cell-0", "cell-1")


def stream(name="bg", cell="cell-0", bpr=100, phases=((0.0, 10.0),)):
    return LongtailStream(name, cell, bpr, phases)


def make_agg(env, streams, capacity=1000.0, horizon=1.0):
    return LongtailAggregator(
        env, MonitorHub(env), streams, CELLS, capacity, horizon
    )


class TestValidation:
    def test_nonpositive_bytes_per_request_rejected(self):
        with pytest.raises(FleetError):
            stream(bpr=0)

    def test_empty_phase_track_rejected(self):
        with pytest.raises(FleetError):
            stream(phases=())

    def test_unordered_phases_rejected(self):
        with pytest.raises(FleetError):
            stream(phases=((1.0, 5.0), (0.5, 2.0)))

    def test_negative_rate_rejected(self):
        with pytest.raises(FleetError):
            stream(phases=((0.0, -1.0),))

    def test_unknown_cell_rejected(self, env):
        with pytest.raises(FleetError):
            make_agg(env, [stream(cell="elsewhere")])

    def test_nonpositive_capacity_rejected(self, env):
        with pytest.raises(FleetError):
            make_agg(env, [stream()], capacity=0.0)

    def test_nonpositive_horizon_rejected(self, env):
        with pytest.raises(FleetError):
            make_agg(env, [stream()], horizon=0.0)

    def test_double_start_raises(self, env):
        agg = make_agg(env, [stream()])
        agg.start()
        with pytest.raises(FleetError):
            agg.start()


class TestDraining:
    def test_zero_rate_stream_offers_nothing(self, env):
        agg = make_agg(env, [stream(phases=((0.0, 0.0),))])
        agg.start()
        env.run()
        assert agg.offered_requests == 0
        assert agg.conservation_ok()
        assert agg.summary()["by_cell"] == {"cell-0": 0, "cell-1": 0}

    def test_single_phase_drains_exactly_the_offer(self, env):
        # 10 req/s for 1 s at 100 B each = 1000 B on a 1000 B/s link.
        agg = make_agg(env, [stream()], capacity=1000.0, horizon=1.0)
        agg.start()
        env.run()
        assert env.now == pytest.approx(1.0)
        assert agg.offered_requests == agg.completed_requests == 10
        assert agg.offered_bytes == agg.completed_bytes == 1000
        assert agg.by_cell == {"cell-0": 10, "cell-1": 0}
        assert agg.conservation_ok()
        assert agg.monitors.counter("fleet.longtail.requests").value == 10
        assert agg.monitors.counter("fleet.longtail.bytes").value == 1000

    def test_overlapping_phases_share_the_link_max_min(self, env):
        # Phase 0 offers 200 B at t=0 on a 100 B/s link; phase 1 offers
        # another 100 B at t=1 while half of phase 0 is still in flight.
        # From t=1 the two flows split the link 50/50, so both complete
        # at t=3 — the overlap is exactly a mid-run rate mutation.
        agg = make_agg(
            env,
            [stream(bpr=100, phases=((0.0, 2.0), (1.0, 1.0)))],
            capacity=100.0,
            horizon=2.0,
        )
        agg.start()
        env.run()
        assert env.now == pytest.approx(3.0)
        assert agg.completed_requests == 3
        assert agg.completed_bytes == 300
        assert agg.conservation_ok()

    def test_phases_truncate_at_the_horizon(self, env):
        agg = make_agg(
            env,
            [stream(phases=((0.0, 4.0), (5.0, 100.0)))],
            horizon=1.0,
        )
        agg.start()
        env.run()
        assert agg.offered_requests == 4  # the t=5 phase never starts
        assert agg.conservation_ok()

    def test_streams_account_to_their_own_cells(self, env):
        agg = make_agg(
            env,
            [
                stream(name="bg-0", cell="cell-0", phases=((0.0, 8.0),)),
                stream(name="bg-1", cell="cell-1", phases=((0.0, 2.0),)),
            ],
        )
        agg.start()
        env.run()
        assert agg.by_cell == {"cell-0": 8, "cell-1": 2}
        assert agg.conservation_ok()


class TestUtilization:
    def test_utilization_tracks_the_drain(self, env):
        # 2000 B on a 1000 B/s link: busy until t=2, idle after.
        agg = make_agg(
            env, [stream(bpr=200, phases=((0.0, 10.0),))], capacity=1000.0
        )
        seen = {}

        def probe():
            yield env.timeout(1.0)
            seen["mid"] = agg.utilization("cell-0")
            seen["other"] = agg.utilization("cell-1")

        agg.start()
        env.process(probe())
        env.run()
        assert seen["mid"] == pytest.approx(1.0)
        assert seen["other"] == pytest.approx(0.0)
        assert agg.utilization("cell-0") == pytest.approx(0.0)
