"""Shared fleet fixtures: small cells on one shared clock."""

from __future__ import annotations

import numpy as np
import pytest

from repro.fleet import Cell
from repro.harness.common import SERVE_SPEC, SERVE_STRIP, ingest_files
from repro.harness.platform import ExperimentPlatform, build_platform
from repro.serve import ServeConfig, ServeRequest, TenantSpec

TENANTS = (
    TenantSpec("alpha", rate=4.0, weight=2.0, kernels=("gaussian",), files=("dem_a",)),
    TenantSpec("beta", rate=2.0, weight=1.0, kernels=("gaussian",), files=("dem_b",)),
)


def make_cell(
    env,
    name,
    tenants=TENANTS,
    queue_capacity=4,
    concurrency=2,
    duration=2.0,
    files=("dem_a", "dem_b"),
    faults=None,
    recovery=None,
    autoscale=None,
    shard_slots=True,
):
    """One small serving cell (4 nodes) on the shared fleet clock."""
    platform = ExperimentPlatform(spec=SERVE_SPEC, strip_size=SERVE_STRIP)
    _, pfs = build_platform(4, platform, env=env)
    rng = np.random.default_rng(platform.seed)
    ingest_files(pfs, "DAS", rng, policy="replicated", names=files)
    config = ServeConfig(
        tenants=tenants,
        scheme="DAS",
        duration=duration,
        deadline=1.0,
        queue_capacity=queue_capacity,
        concurrency=concurrency,
        faults=faults,
        recovery=recovery,
        autoscale=autoscale,
    )
    return Cell(name, pfs, config, shard_slots=shard_slots)


def make_request(req_id, tenant="alpha", file="dem_a", deadline=10.0):
    return ServeRequest(
        req_id=req_id,
        tenant=tenant,
        operator="gaussian",
        file=file,
        arrival=0.0,
        deadline=deadline,
        cost=0,
    )


@pytest.fixture
def cell_pair(env):
    return [make_cell(env, "cell-0"), make_cell(env, "cell-1")]
