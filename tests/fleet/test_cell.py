"""Unit tests for the fleet serving cell wrapper."""

import pytest

from repro.errors import FleetError
from repro.fleet import Cell
from repro.serve import ServeConfig, TenantSpec

from .conftest import TENANTS, make_cell, make_request


class TestConstruction:
    def test_unknown_scheme_rejected(self, env):
        cell = make_cell(env, "c")
        config = ServeConfig(
            tenants=TENANTS, scheme="???", duration=1.0, deadline=1.0
        )
        with pytest.raises(FleetError):
            Cell("bad", cell.pfs, config)

    def test_no_tenants_rejected(self, env):
        cell = make_cell(env, "c")
        config = ServeConfig(
            tenants=(), scheme="DAS", duration=1.0, deadline=1.0
        )
        with pytest.raises(FleetError):
            Cell("bad", cell.pfs, config)

    def test_shares_the_fleet_clock(self, env):
        a = make_cell(env, "a")
        b = make_cell(env, "b")
        assert a.env is env and b.env is env
        assert a.cluster is not b.cluster

    def test_double_start_raises(self, env):
        cell = make_cell(env, "c")
        cell.start()
        with pytest.raises(FleetError):
            cell.start()


class TestRoutingSignals:
    def test_healthy_tracks_storage_nodes(self, env):
        cell = make_cell(env, "c")
        assert cell.healthy()
        assert cell.up_fraction() == 1.0
        cell.cluster.storage_nodes[0].fail()
        assert not cell.healthy()
        assert cell.up_fraction() == 0.5
        cell.cluster.storage_nodes[0].recover()
        assert cell.healthy()

    def test_hosts_by_pfs_residence(self, env):
        cell = make_cell(env, "c", files=("dem_a",))
        assert cell.hosts("dem_a")
        assert not cell.hosts("dem_b")

    def test_would_admit_respects_queue_capacity(self, env):
        cell = make_cell(env, "c", queue_capacity=2)
        assert cell.would_admit(make_request(1))
        assert cell.submit(make_request(1))
        assert cell.submit(make_request(2))
        assert not cell.would_admit(make_request(3))
        assert not cell.would_admit(make_request(4, tenant="nobody"))

    def test_load_counts_backlog_and_in_flight(self, env):
        cell = make_cell(env, "c", queue_capacity=8, concurrency=1)
        assert cell.load() == 0.0
        for i in range(1, 4):
            cell.submit(make_request(i))
        assert cell.load() == 3.0


class TestServing:
    def test_submitted_requests_settle_and_summarise(self, env):
        cell = make_cell(env, "c")
        cell.start()
        for i in range(1, 5):
            cell.submit(make_request(i))
        env.run()
        assert cell.board.total_admitted == 4
        assert cell.board.total_settled == 4
        assert cell.drained(duration=0.0)
        summary = cell.summary(elapsed=env.now)
        assert summary["cell"] == "c"
        assert summary["admitted"] == summary["settled"] == 4
        assert summary["result_digest"]["count"] == 4

    def test_sharded_slot_groups_key_on_primary_server(self, env):
        cell = make_cell(env, "c")
        group = cell.scheduler._slot_groups(make_request(1, file="dem_a"))
        assert group == cell.pfs.metadata.lookup("dem_a").layout.servers[0]
        assert group in cell.pfs.server_names

    def test_shard_slots_off_leaves_scheduler_unsharded(self, env):
        cell = make_cell(env, "c", shard_slots=False)
        assert cell.scheduler._slot_groups is None
