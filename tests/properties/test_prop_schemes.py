"""End-to-end property tests: random worlds through the full stack.

For arbitrary raster geometry, strip size, server count and kernel, an
offloaded execution on the DAS layout must equal the sequential
reference — the integration-level restatement of the decomposition
equivalence property, exercising layouts, local I/O, halo logic, the
transport and the AS helpers together.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ActiveRequest, ActiveStorageClient
from repro.hw import Cluster
from repro.kernels import default_registry
from repro.pfs import ParallelFileSystem
from repro.workloads import fractal_dem

KERNELS = ("flow-routing", "gaussian", "median", "laplace")


@st.composite
def offload_worlds(draw):
    n_servers = draw(st.integers(1, 5))
    spe = draw(st.sampled_from([32, 64, 128]))  # elements per strip
    rows = draw(st.integers(4, 40))
    cols = draw(st.integers(4, 40))
    seed = draw(st.integers(0, 2**16))
    kernel = draw(st.sampled_from(KERNELS))
    use_das_layout = draw(st.booleans())
    group = draw(st.integers(1, 4))
    return n_servers, spe * 8, rows, cols, seed, kernel, use_das_layout, group


@given(params=offload_worlds())
@settings(max_examples=25, deadline=None)
def test_offloaded_execution_matches_reference(params):
    n_servers, strip, rows, cols, seed, kernel, use_das_layout, group = params
    cluster = Cluster.build(n_compute=1, n_storage=n_servers)
    pfs = ParallelFileSystem(cluster, strip_size=strip)
    dem = fractal_dem(rows, cols, rng=np.random.default_rng(seed))

    if use_das_layout:
        layout = pfs.replicated_grouped(group, halo_strips=min(1, group))
    else:
        layout = pfs.round_robin()
    pfs.client("c0").ingest("dem", dem, layout)

    asc = ActiveStorageClient(pfs, home="c0")
    request = ActiveRequest(kernel, "dem", "out", replicate_output=use_das_layout)
    result = cluster.run(until=asc.execute_offload(request, asc.decide(request)))

    assert result.total_elements == dem.size
    ref = default_registry.get(kernel).reference(dem)
    got = pfs.client("c0").collect("out")
    assert np.array_equal(got, ref)
    if use_das_layout:
        assert pfs.client("c0").verify_replicas("out")


@given(
    seed=st.integers(0, 2**16),
    n_servers=st.integers(1, 4),
    rows=st.integers(8, 32),
    cols=st.integers(8, 32),
)
@settings(max_examples=15, deadline=None)
def test_reduction_offload_matches_reference(seed, n_servers, rows, cols):
    from repro.kernels import StatsReduction

    cluster = Cluster.build(n_compute=1, n_storage=n_servers)
    pfs = ParallelFileSystem(cluster, strip_size=512)
    dem = fractal_dem(rows, cols, rng=np.random.default_rng(seed))
    pfs.client("c0").ingest("dem", dem, pfs.round_robin())
    asc = ActiveStorageClient(pfs, home="c0")
    res = cluster.run(until=asc.submit_reduction("stats", "dem"))
    ref = StatsReduction().reference(dem)
    for key in ref:
        assert abs(res["value"][key] - ref[key]) <= 1e-9 * max(1.0, abs(ref[key]))
