"""Property tests: the transport conserves messages and bytes under
arbitrary traffic patterns."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import PlatformSpec
from repro.hw import Cluster
from repro.units import MiB


@st.composite
def traffic(draw):
    n_nodes = draw(st.integers(2, 5))
    msgs = draw(
        st.lists(
            st.tuples(
                st.integers(0, 4),  # src
                st.integers(0, 4),  # dst
                st.integers(1, 1_000_000),  # size
            ),
            min_size=1,
            max_size=25,
        )
    )
    return n_nodes, msgs


@given(params=traffic())
@settings(max_examples=50, deadline=None)
def test_every_message_delivered_exactly_once(params):
    n_nodes, msgs = params
    cluster = Cluster.build(n_compute=n_nodes, n_storage=1)
    names = cluster.compute_names

    sent = []
    for i, (s, d, size) in enumerate(msgs):
        src, dst = names[s % n_nodes], names[d % n_nodes]
        sent.append((src, dst, size, i))
        cluster.transport.send(src, dst, size, payload=i, tag="t")

    expected_per_node = {}
    for src, dst, size, i in sent:
        expected_per_node.setdefault(dst, []).append(i)

    received = {}

    def drain(node, count):
        got = []
        for _ in range(count):
            msg = yield cluster.transport.recv(node, tag="t")
            got.append(msg.payload)
        received[node] = got

    jobs = [
        cluster.env.process(drain(node, len(ids)))
        for node, ids in expected_per_node.items()
    ]

    def main():
        for job in jobs:
            yield job

    cluster.run(until=cluster.env.process(main()))

    for node, ids in expected_per_node.items():
        assert sorted(received[node]) == sorted(ids)

    # Byte accounting: every wire byte counted exactly once.
    wire = sum(size for src, dst, size, _ in sent if src != dst)
    loop = sum(size for src, dst, size, _ in sent if src == dst)
    assert cluster.monitors.counter("net.bytes_total").value == wire
    assert cluster.monitors.counter("net.loopback_bytes").value == loop


@given(
    sizes=st.lists(st.integers(1, 64) , min_size=1, max_size=10),
    seed=st.integers(0, 1000),
)
@settings(max_examples=30, deadline=None)
def test_transfer_times_bounded_by_serialisation(sizes, seed):
    """Any burst of same-direction transfers finishes no earlier than
    the bottleneck allows and no later than full serialisation."""
    spec = PlatformSpec(nic_bandwidth=10 * MiB, nic_latency=0.0, rpc_overhead=0.0)
    cluster = Cluster.build(n_compute=1, n_storage=1, spec=spec)
    byte_sizes = [s * 1024 for s in sizes]

    def main():
        jobs = [cluster.transport.send("c0", "s0", b) for b in byte_sizes]
        yield cluster.env.all_of(jobs)
        return cluster.env.now

    t = cluster.run(until=cluster.env.process(main()))
    total = sum(byte_sizes)
    assert t >= total / (10 * MiB) - 1e-9
    assert t <= total / (10 * MiB) * (1 + 1e-6) + 1e-6
