"""Property-based tests for the PFS data path.

For arbitrary raster shapes, strip sizes, layouts and access patterns:
bytes written through the system come back identical (through the
timed path, the local path and after redistribution).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw import Cluster
from repro.pfs import ParallelFileSystem


@st.composite
def worlds(draw):
    n_servers = draw(st.integers(1, 5))
    spe = draw(st.sampled_from([16, 32, 64]))  # elements per strip
    strip = spe * 8
    rows = draw(st.integers(1, 24))
    cols = draw(st.integers(1, 24))
    seed = draw(st.integers(0, 2**16))
    kind = draw(st.sampled_from(["rr", "grouped", "replicated"]))
    group = draw(st.integers(1, 4))
    return n_servers, strip, rows, cols, seed, kind, group


def build(n_servers, strip, rows, cols, seed, kind, group):
    cluster = Cluster.build(n_compute=1, n_storage=n_servers)
    pfs = ParallelFileSystem(cluster, strip_size=strip)
    if kind == "rr":
        layout = pfs.round_robin()
    elif kind == "grouped":
        layout = pfs.grouped(group)
    else:
        layout = pfs.replicated_grouped(group, halo_strips=min(1, group))
    data = np.random.default_rng(seed).random((rows, cols))
    pfs.client("c0").ingest("f", data, layout)
    return cluster, pfs, data


@given(params=worlds())
@settings(max_examples=60, deadline=None)
def test_ingest_collect_roundtrip(params):
    cluster, pfs, data = build(*params)
    client = pfs.client("c0")
    assert np.array_equal(client.collect("f"), data)
    assert client.verify_replicas("f")


@given(
    params=worlds(),
    frac_lo=st.floats(0, 1),
    frac_len=st.floats(0, 1),
)
@settings(max_examples=60, deadline=None)
def test_timed_read_any_range(params, frac_lo, frac_len):
    cluster, pfs, data = build(*params)
    client = pfs.client("c0")
    raw = data.view(np.uint8).reshape(-1)
    offset = int(frac_lo * (raw.size - 1))
    length = int(frac_len * (raw.size - offset))

    def main():
        return (yield client.read("f", offset, length))

    got = cluster.run(until=cluster.env.process(main()))
    assert np.array_equal(got, raw[offset : offset + length])


@given(params=worlds(), seed2=st.integers(0, 2**16))
@settings(max_examples=40, deadline=None)
def test_overwrite_roundtrip(params, seed2):
    cluster, pfs, data = build(*params)
    client = pfs.client("c0")
    rng = np.random.default_rng(seed2)
    n = data.size
    first = int(rng.integers(0, n))
    count = int(rng.integers(0, n - first)) if n - first else 0
    patch = rng.random(count)

    def main():
        if count:
            yield client.write_elems("f", first, patch)
        return (yield client.read_elems("f", 0, n))

    got = cluster.run(until=cluster.env.process(main()))
    expected = data.reshape(-1).copy()
    expected[first : first + count] = patch
    assert np.array_equal(got, expected)
    assert client.verify_replicas("f")


@given(params=worlds(), group2=st.integers(1, 5))
@settings(max_examples=40, deadline=None)
def test_redistribution_preserves_bytes(params, group2):
    cluster, pfs, data = build(*params)
    client = pfs.client("c0")
    target = pfs.replicated_grouped(group2, halo_strips=min(1, group2))

    def main():
        return (yield pfs.redistributor.redistribute("f", target))

    cluster.run(until=cluster.env.process(main()))
    assert np.array_equal(client.collect("f"), data)
    assert client.verify_replicas("f")
    # The store holds exactly what the new layout wants: no stale copies.
    meta = pfs.metadata.lookup("f")
    for server, ds in pfs.servers.items():
        held = set(ds.held_strips("f"))
        wanted = {
            s
            for s in range(target.n_strips(meta.size))
            if target.holds(server, s)
        }
        assert held == wanted


@given(params=worlds(), group_a=st.integers(1, 4), group_b=st.integers(1, 4))
@settings(max_examples=30, deadline=None)
def test_redistribution_round_trip(params, group_a, group_b):
    """A -> B -> A returns to exactly the original placement and bytes."""
    cluster, pfs, data = build(*params)
    client = pfs.client("c0")
    original = pfs.metadata.lookup("f").layout
    layout_a = pfs.replicated_grouped(group_a, halo_strips=min(1, group_a))
    layout_b = pfs.replicated_grouped(group_b, halo_strips=min(1, group_b))

    def main():
        yield pfs.redistributor.redistribute("f", layout_a)
        yield pfs.redistributor.redistribute("f", layout_b)
        yield pfs.redistributor.redistribute("f", original)

    cluster.run(until=cluster.env.process(main()))
    assert np.array_equal(client.collect("f"), data)
    assert client.verify_replicas("f")
    meta = pfs.metadata.lookup("f")
    for server, ds in pfs.servers.items():
        held = set(ds.held_strips("f"))
        wanted = {
            s
            for s in range(original.n_strips(meta.size))
            if original.holds(server, s)
        }
        assert held == wanted
