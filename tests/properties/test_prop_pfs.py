"""Property-based tests for the PFS data path.

For arbitrary raster shapes, strip sizes, layouts and access patterns:
bytes written through the system come back identical (through the
timed path, the local path and after redistribution).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw import Cluster
from repro.pfs import ParallelFileSystem


@st.composite
def worlds(draw):
    n_servers = draw(st.integers(1, 5))
    spe = draw(st.sampled_from([16, 32, 64]))  # elements per strip
    strip = spe * 8
    rows = draw(st.integers(1, 24))
    cols = draw(st.integers(1, 24))
    seed = draw(st.integers(0, 2**16))
    kind = draw(st.sampled_from(["rr", "grouped", "replicated"]))
    group = draw(st.integers(1, 4))
    return n_servers, strip, rows, cols, seed, kind, group


def build(n_servers, strip, rows, cols, seed, kind, group):
    cluster = Cluster.build(n_compute=1, n_storage=n_servers)
    pfs = ParallelFileSystem(cluster, strip_size=strip)
    if kind == "rr":
        layout = pfs.round_robin()
    elif kind == "grouped":
        layout = pfs.grouped(group)
    else:
        layout = pfs.replicated_grouped(group, halo_strips=min(1, group))
    data = np.random.default_rng(seed).random((rows, cols))
    pfs.client("c0").ingest("f", data, layout)
    return cluster, pfs, data


@given(params=worlds())
@settings(max_examples=60, deadline=None)
def test_ingest_collect_roundtrip(params):
    cluster, pfs, data = build(*params)
    client = pfs.client("c0")
    assert np.array_equal(client.collect("f"), data)
    assert client.verify_replicas("f")


@given(
    params=worlds(),
    frac_lo=st.floats(0, 1),
    frac_len=st.floats(0, 1),
)
@settings(max_examples=60, deadline=None)
def test_timed_read_any_range(params, frac_lo, frac_len):
    cluster, pfs, data = build(*params)
    client = pfs.client("c0")
    raw = data.view(np.uint8).reshape(-1)
    offset = int(frac_lo * (raw.size - 1))
    length = int(frac_len * (raw.size - offset))

    def main():
        return (yield client.read("f", offset, length))

    got = cluster.run(until=cluster.env.process(main()))
    assert np.array_equal(got, raw[offset : offset + length])


@given(params=worlds(), seed2=st.integers(0, 2**16))
@settings(max_examples=40, deadline=None)
def test_overwrite_roundtrip(params, seed2):
    cluster, pfs, data = build(*params)
    client = pfs.client("c0")
    rng = np.random.default_rng(seed2)
    n = data.size
    first = int(rng.integers(0, n))
    count = int(rng.integers(0, n - first)) if n - first else 0
    patch = rng.random(count)

    def main():
        if count:
            yield client.write_elems("f", first, patch)
        return (yield client.read_elems("f", 0, n))

    got = cluster.run(until=cluster.env.process(main()))
    expected = data.reshape(-1).copy()
    expected[first : first + count] = patch
    assert np.array_equal(got, expected)
    assert client.verify_replicas("f")


@given(
    params=worlds(),
    range_seed=st.integers(0, 2**16),
    n_ranges=st.integers(2, 5),
)
@settings(max_examples=40, deadline=None)
def test_batched_read_same_bytes_fewer_headers(params, range_seed, n_ranges):
    """Byte conservation of the batched exchange: one scattered read
    moves exactly the same payload and extent descriptors as the
    equivalent separate reads, and strictly fewer request headers
    whenever two ranges touch the same server."""
    cluster, pfs, data = build(*params)
    client = pfs.client("c0")
    meta = pfs.metadata.lookup("f")
    raw = data.view(np.uint8).reshape(-1)
    rng = np.random.default_rng(range_seed)
    ranges = []
    for _ in range(n_ranges):
        offset = int(rng.integers(0, raw.size))
        length = int(rng.integers(1, raw.size - offset + 1))
        ranges.append((offset, length))

    monitors = cluster.monitors

    def wire():
        return (
            monitors.counter("pfs.rpc.header_bytes").value,
            monitors.counter("pfs.rpc.extent_desc_bytes").value,
        )

    marks = {}

    def main():
        parts = []
        for offset, length in ranges:
            parts.append((yield client.read("f", offset, length)))
        marks["mid"] = wire()
        batched = yield client.read_scattered("f", ranges)
        marks["end"] = wire()
        return np.concatenate(parts), batched

    start = wire()
    unbatched, batched = cluster.run(until=cluster.env.process(main()))

    expected = np.concatenate([raw[o : o + n] for o, n in ranges])
    assert np.array_equal(unbatched, expected)
    assert np.array_equal(batched, expected)

    un_hdr, un_ext = (m - s for m, s in zip(marks["mid"], start))
    ba_hdr, ba_ext = (e - m for e, m in zip(marks["end"], marks["mid"]))
    # Same payload => same per-extent descriptors either way.
    assert ba_ext == un_ext
    # Headers collapse to one per *distinct* touched server.
    per_range = [
        {e.server for e in meta.layout.map_extent(o, n)} for o, n in ranges
    ]
    if sum(len(s) for s in per_range) > len(set().union(*per_range)):
        assert ba_hdr < un_hdr
    else:
        assert ba_hdr == un_hdr


@given(params=worlds(), group2=st.integers(1, 5))
@settings(max_examples=40, deadline=None)
def test_redistribution_preserves_bytes(params, group2):
    cluster, pfs, data = build(*params)
    client = pfs.client("c0")
    target = pfs.replicated_grouped(group2, halo_strips=min(1, group2))

    def main():
        return (yield pfs.redistributor.redistribute("f", target))

    cluster.run(until=cluster.env.process(main()))
    assert np.array_equal(client.collect("f"), data)
    assert client.verify_replicas("f")
    # The store holds exactly what the new layout wants: no stale copies.
    meta = pfs.metadata.lookup("f")
    for server, ds in pfs.servers.items():
        held = set(ds.held_strips("f"))
        wanted = {
            s
            for s in range(target.n_strips(meta.size))
            if target.holds(server, s)
        }
        assert held == wanted


@given(params=worlds(), group_a=st.integers(1, 4), group_b=st.integers(1, 4))
@settings(max_examples=30, deadline=None)
def test_redistribution_round_trip(params, group_a, group_b):
    """A -> B -> A returns to exactly the original placement and bytes."""
    cluster, pfs, data = build(*params)
    client = pfs.client("c0")
    original = pfs.metadata.lookup("f").layout
    layout_a = pfs.replicated_grouped(group_a, halo_strips=min(1, group_a))
    layout_b = pfs.replicated_grouped(group_b, halo_strips=min(1, group_b))

    def main():
        yield pfs.redistributor.redistribute("f", layout_a)
        yield pfs.redistributor.redistribute("f", layout_b)
        yield pfs.redistributor.redistribute("f", original)

    cluster.run(until=cluster.env.process(main()))
    assert np.array_equal(client.collect("f"), data)
    assert client.verify_replicas("f")
    meta = pfs.metadata.lookup("f")
    for server, ds in pfs.servers.items():
        held = set(ds.held_strips("f"))
        wanted = {
            s
            for s in range(original.n_strips(meta.size))
            if original.holds(server, s)
        }
        assert held == wanted
