"""Property-based tests for the bandwidth model.

* The vectorised Eq. (5) accounting equals a brute-force oracle for
  arbitrary layouts, file sizes and offset sets.
* The paper's Eq. (17) divisibility criterion is *sound*: whenever it
  holds, the exact per-element count of cross-server dependencies for
  that stride is zero.
* Model ordering: strip-granular transfers never move fewer bytes than
  exact transfers; a replicated layout never moves more than its
  unreplicated counterpart.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    cross_server_elements,
    dependence_is_local,
    offload_interserver_bytes,
)
from repro.kernels import DependencePattern
from repro.pfs import GroupedLayout, ReplicatedGroupedLayout, RoundRobinLayout
from repro.pfs.datafile import FileMeta

E = 8


def brute_force(layout, n_elements, offsets):
    total = 0
    for i in range(n_elements):
        src = layout.server_index((i * E) // layout.strip_size)
        for d in offsets:
            j = i + d
            if 0 <= j < n_elements and layout.server_index(
                (j * E) // layout.strip_size
            ) != src:
                total += 1
    return total


@st.composite
def small_layouts(draw):
    n_servers = draw(st.integers(1, 5))
    servers = [f"s{i}" for i in range(n_servers)]
    spe = draw(st.sampled_from([2, 4, 8]))  # elements per strip
    strip = spe * E
    if draw(st.booleans()):
        return RoundRobinLayout(servers, strip)
    return GroupedLayout(servers, strip, draw(st.integers(1, 4)))


@given(
    layout=small_layouts(),
    n_elements=st.integers(1, 300),
    offsets=st.lists(st.integers(-40, 40), min_size=1, max_size=5),
)
@settings(max_examples=150, deadline=None)
def test_cross_server_elements_matches_brute_force(layout, n_elements, offsets):
    got = cross_server_elements(layout, n_elements, E, np.array(offsets))
    assert got == brute_force(layout, n_elements, offsets)


@given(
    n_servers=st.integers(1, 6),
    spe=st.sampled_from([2, 4, 8]),
    group=st.integers(1, 4),
    rounds=st.integers(1, 5),
    n_elements=st.integers(10, 400),
)
@settings(max_examples=100, deadline=None)
def test_eq17_criterion_soundness(n_servers, spe, group, rounds, n_elements):
    """A stride of whole server rounds is free under the grouped layout."""
    servers = [f"s{i}" for i in range(n_servers)]
    strip = spe * E
    stride = rounds * group * spe * n_servers
    assert dependence_is_local(stride, E, strip, n_servers, group)
    layout = GroupedLayout(servers, strip, group)
    assert (
        cross_server_elements(layout, n_elements, E, np.array([-stride, stride])) == 0
    )


@given(
    n_servers=st.integers(2, 6),
    spe=st.sampled_from([4, 8]),
    stride_strips=st.integers(1, 10),
    n_strips=st.integers(4, 60),
)
@settings(max_examples=100, deadline=None)
def test_eq17_criterion_completeness_for_strip_aligned_strides(
    n_servers, spe, stride_strips, n_strips
):
    """For strip-aligned strides the criterion is exact: it holds iff
    no dependency crosses servers (when the file is long enough for the
    stride to matter)."""
    servers = [f"s{i}" for i in range(n_servers)]
    strip = spe * E
    stride = stride_strips * spe
    layout = RoundRobinLayout(servers, strip)
    n_elements = n_strips * spe
    crossings = cross_server_elements(layout, n_elements, E, np.array([stride]))
    local = dependence_is_local(stride, E, strip, n_servers)
    if stride < n_elements:
        assert local == (crossings == 0)


@given(
    n_servers=st.integers(1, 5),
    spe=st.sampled_from([4, 8]),
    group=st.integers(1, 4),
    halo=st.integers(0, 4),
    n_strips=st.integers(2, 40),
    width=st.sampled_from([2, 4]),
)
@settings(max_examples=100, deadline=None)
def test_strip_model_dominates_exact_model(n_servers, spe, group, halo, n_strips, width):
    servers = [f"s{i}" for i in range(n_servers)]
    strip = spe * E
    halo = min(halo, group)
    layout = ReplicatedGroupedLayout(servers, strip, group, halo_strips=halo)
    size = n_strips * strip
    n_elements = size // E
    if n_elements % width:
        return
    meta = FileMeta("f", size=size, layout=layout, shape=(n_elements // width, width))
    pattern = DependencePattern.eight_neighbor("op")
    strip_cost = offload_interserver_bytes(layout, meta, pattern, "strip")
    exact_cost = offload_interserver_bytes(layout, meta, pattern, "exact")
    assert strip_cost >= exact_cost >= 0


@given(
    n_servers=st.integers(1, 5),
    spe=st.sampled_from([4, 8]),
    group=st.integers(1, 4),
    n_strips=st.integers(2, 40),
    width=st.sampled_from([2, 4]),
)
@settings(max_examples=100, deadline=None)
def test_replication_never_increases_halo_traffic(n_servers, spe, group, n_strips, width):
    servers = [f"s{i}" for i in range(n_servers)]
    strip = spe * E
    size = n_strips * strip
    n_elements = size // E
    if n_elements % width:
        return
    plain = GroupedLayout(servers, strip, group)
    replicated = ReplicatedGroupedLayout(servers, strip, group, halo_strips=min(1, group))
    pattern = DependencePattern.eight_neighbor("op")
    meta_plain = FileMeta(
        "f", size=size, layout=plain, shape=(n_elements // width, width)
    )
    meta_repl = FileMeta(
        "f", size=size, layout=replicated, shape=(n_elements // width, width)
    )
    assert offload_interserver_bytes(
        replicated, meta_repl, pattern, "strip"
    ) <= offload_interserver_bytes(plain, meta_plain, pattern, "strip")
