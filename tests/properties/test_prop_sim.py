"""Property-based tests for the simulation engine and fluid network.

* The clock never goes backwards, whatever the timeout mix.
* Resources never exceed capacity and never starve a waiter forever.
* The fluid scheduler conserves bytes: every flow completes, and no
  link ever carries more than its capacity; completion times are lower-
  bounded by ``size / capacity`` and upper-bounded by serial execution.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.fluid import FluidScheduler
from repro.sim import Environment, Resource


@given(delays=st.lists(st.floats(0, 100, allow_nan=False), min_size=1, max_size=30))
@settings(max_examples=100, deadline=None)
def test_clock_monotone_over_arbitrary_timeouts(delays):
    env = Environment()
    observed = []

    def watcher(d):
        yield env.timeout(d)
        observed.append(env.now)

    for d in delays:
        env.process(watcher(d))
    env.run()
    assert observed == sorted(observed)
    assert env.now == max(delays)


@given(
    capacity=st.integers(1, 5),
    holds=st.lists(st.floats(0.1, 5.0), min_size=1, max_size=20),
)
@settings(max_examples=100, deadline=None)
def test_resource_never_exceeds_capacity(capacity, holds):
    env = Environment()
    res = Resource(env, capacity=capacity)
    active = [0]
    peak = [0]
    completed = [0]

    def user(hold):
        with res.request() as req:
            yield req
            active[0] += 1
            peak[0] = max(peak[0], active[0])
            yield env.timeout(hold)
            active[0] -= 1
        completed[0] += 1

    for hold in holds:
        env.process(user(hold))
    env.run()
    assert peak[0] <= capacity
    assert completed[0] == len(holds)  # nobody starves


@given(
    n_nodes=st.integers(2, 5),
    flows=st.lists(
        st.tuples(
            st.integers(0, 4),  # src index (mod n_nodes)
            st.integers(0, 4),  # dst index
            st.floats(1.0, 1000.0),  # size
            st.floats(0.0, 5.0),  # start delay
        ),
        min_size=1,
        max_size=15,
    ),
)
@settings(max_examples=80, deadline=None)
def test_fluid_flows_all_complete_within_bounds(n_nodes, flows):
    env = Environment()
    sched = FluidScheduler(env)
    capacity = 100.0
    for i in range(n_nodes):
        sched.add_link(f"n{i}.tx", capacity)
        sched.add_link(f"n{i}.rx", capacity)

    finished = []

    def launch(src, dst, size, delay):
        yield env.timeout(delay)
        start = env.now
        yield sched.start((f"n{src}.tx", f"n{dst}.rx"), size)
        finished.append((start, env.now, size))

    usable = []
    for src, dst, size, delay in flows:
        src %= n_nodes
        dst %= n_nodes
        if src == dst:
            continue
        usable.append((src, dst, size, delay))
        env.process(launch(src, dst, size, delay))
    env.run()

    assert len(finished) == len(usable)
    assert sched.active_flows == 0
    total_bytes = sum(size for _, _, size, _ in usable)
    for start, end, size in finished:
        # Lower bound: the flow can never beat its bottleneck link.
        assert end - start >= size / capacity - 1e-6
        # Upper bound: total serialisation of everything.
        assert end - start <= total_bytes / capacity * n_nodes + 10.0


@given(
    sizes=st.lists(st.floats(1.0, 500.0), min_size=2, max_size=8),
)
@settings(max_examples=80, deadline=None)
def test_fluid_shared_link_is_work_conserving(sizes):
    """All flows share one tx link: the link must finish exactly at
    sum(sizes)/capacity — fair sharing never wastes capacity."""
    env = Environment()
    sched = FluidScheduler(env)
    capacity = 50.0
    sched.add_link("src.tx", capacity)
    for i in range(len(sizes)):
        sched.add_link(f"d{i}.rx", capacity)

    def launch(i, size):
        yield sched.start(("src.tx", f"d{i}.rx"), size)

    procs = [env.process(launch(i, s)) for i, s in enumerate(sizes)]
    env.run()
    assert env.now * capacity >= sum(sizes) - 1e-6
    assert env.now * capacity <= sum(sizes) * (1 + 1e-4) + 1e-3
