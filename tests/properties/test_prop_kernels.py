"""Property-based tests for kernels: decomposition equivalence.

The property that makes every scheme agree: splitting a raster into
*any* partition of contiguous element ranges and processing each range
with its halo window reproduces the whole-raster reference exactly.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels import DependencePattern, default_registry
from repro.kernels.pattern import OffsetTerm

KERNELS = ("flow-routing", "flow-accumulation", "gaussian", "median", "slope")


@st.composite
def raster_and_cuts(draw):
    rows = draw(st.integers(3, 24))
    cols = draw(st.integers(3, 24))
    seed = draw(st.integers(0, 2**16))
    rng = np.random.default_rng(seed)
    raster = rng.random((rows, cols))
    n = rows * cols
    n_cuts = draw(st.integers(0, 6))
    cuts = sorted(draw(st.lists(st.integers(1, n - 1), min_size=n_cuts, max_size=n_cuts)))
    bounds = [0] + cuts + [n]
    ranges = [
        (a, b - a) for a, b in zip(bounds, bounds[1:]) if b > a
    ]
    return raster, ranges


@given(data=raster_and_cuts(), kernel_name=st.sampled_from(KERNELS))
@settings(max_examples=120, deadline=None)
def test_any_partition_reproduces_reference(data, kernel_name):
    raster, ranges = data
    kernel = default_registry.get(kernel_name)
    if kernel_name == "flow-accumulation":
        raster = default_registry.get("flow-routing").reference(raster)
    ref = kernel.reference(raster).reshape(-1)
    out = np.empty_like(ref)
    for first, count in ranges:
        out[first : first + count] = kernel.apply_range(raster, first, count)
    assert np.array_equal(out, ref)


@given(
    seed=st.integers(0, 2**16),
    rows=st.integers(3, 20),
    cols=st.integers(3, 20),
)
@settings(max_examples=60, deadline=None)
def test_flow_routing_invariants(seed, rows, cols):
    rng = np.random.default_rng(seed)
    dem = rng.random((rows, cols))
    dirs = default_registry.get("flow-routing").reference(dem)
    # Codes in 0..8; flow always goes strictly downhill.
    assert dirs.min() >= 0 and dirs.max() <= 8
    from repro.kernels.stencil import D8_OFFSETS

    rr, cc = np.nonzero(dirs > 0)
    for r, c in zip(rr[:50], cc[:50]):
        dr, dc = D8_OFFSETS[int(dirs[r, c]) - 1]
        assert 0 <= r + dr < rows and 0 <= c + dc < cols
        assert dem[r + dr, c + dc] < dem[r, c]


@given(
    seed=st.integers(0, 2**16),
    rows=st.integers(3, 16),
    cols=st.integers(3, 16),
)
@settings(max_examples=60, deadline=None)
def test_median_and_gaussian_bounded_by_input_range(seed, rows, cols):
    rng = np.random.default_rng(seed)
    img = rng.random((rows, cols))
    for name in ("median", "gaussian"):
        out = default_registry.get(name).reference(img)
        assert out.min() >= img.min() - 1e-12
        assert out.max() <= img.max() + 1e-12


@given(
    seed=st.integers(0, 2**16),
    rows=st.integers(3, 16),
    cols=st.integers(3, 16),
    shift=st.floats(-100, 100),
)
@settings(max_examples=60, deadline=None)
def test_slope_invariant_under_constant_shift(seed, rows, cols, shift):
    rng = np.random.default_rng(seed)
    dem = rng.random((rows, cols))
    slope = default_registry.get("slope")
    assert np.allclose(slope.reference(dem), slope.reference(dem + shift), atol=1e-9)


@given(
    seed=st.integers(0, 2**16),
    rows=st.integers(3, 16),
    cols=st.integers(3, 16),
)
@settings(max_examples=60, deadline=None)
def test_gaussian_preserves_constant_rasters(seed, rows, cols):
    value = float(np.random.default_rng(seed).uniform(-10, 10))
    flat = np.full((rows, cols), value)
    out = default_registry.get("gaussian").reference(flat)
    assert np.allclose(out, value, atol=1e-12)


offset_terms = st.builds(
    OffsetTerm,
    width_coef=st.integers(-3, 3),
    const=st.integers(-50, 50),
)


@given(
    name=st.text(
        alphabet=st.characters(min_codepoint=33, max_codepoint=126, exclude_characters=":#"),
        min_size=1,
        max_size=20,
    ),
    terms=st.lists(offset_terms, min_size=0, max_size=10),
)
@settings(max_examples=150)
def test_pattern_text_roundtrip(name, terms):
    pattern = DependencePattern(name.strip() or "op", terms)
    if not pattern.name:
        return
    [parsed] = DependencePattern.parse(pattern.to_text())
    assert parsed == pattern


@given(terms=st.lists(offset_terms, min_size=1, max_size=10), width=st.integers(1, 200))
@settings(max_examples=100)
def test_reach_bounds_offsets(terms, width):
    pattern = DependencePattern("op", terms)
    offsets = pattern.offsets(width)
    assert pattern.reach(width) == int(np.abs(offsets).max()) if offsets.size else 0
    for off in offsets:
        if off < 0:
            assert -off <= pattern.reach_before(width)
        elif off > 0:
            assert off <= pattern.reach_after(width)
