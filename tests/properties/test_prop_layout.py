"""Property-based tests for striping layouts.

Invariants that must hold for *any* layout, file size and byte range:

* ``map_extent`` partitions the requested range exactly (no gaps, no
  overlap, each piece within one strip);
* every strip has exactly one primary and the primary is in its replica
  list;
* placement tables cover every strip of the file;
* the replicated layout's defining guarantee: each server can reach
  ``halo_strips`` strips on each side of every primary run locally.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pfs import GroupedLayout, ReplicatedGroupedLayout, RoundRobinLayout

servers_st = st.integers(min_value=1, max_value=9).map(
    lambda n: [f"s{i}" for i in range(n)]
)
strip_size_st = st.sampled_from([64, 256, 1024, 4096])


@st.composite
def layouts(draw):
    servers = draw(servers_st)
    strip_size = draw(strip_size_st)
    kind = draw(st.sampled_from(["rr", "grouped", "replicated"]))
    if kind == "rr":
        return RoundRobinLayout(servers, strip_size)
    group = draw(st.integers(min_value=1, max_value=6))
    if kind == "grouped":
        return GroupedLayout(servers, strip_size, group)
    halo = draw(st.integers(min_value=0, max_value=group))
    return ReplicatedGroupedLayout(servers, strip_size, group, halo_strips=halo)


@given(layout=layouts(), offset=st.integers(0, 10_000), length=st.integers(0, 20_000))
@settings(max_examples=200)
def test_map_extent_partitions_range(layout, offset, length):
    extents = layout.map_extent(offset, length)
    assert sum(e.length for e in extents) == length
    pos = offset
    for e in extents:
        assert e.offset == pos
        assert e.length >= 1
        assert e.in_strip == e.offset - e.strip * layout.strip_size
        assert 0 <= e.in_strip < layout.strip_size
        assert e.in_strip + e.length <= layout.strip_size
        assert e.server in layout.replicas(e.strip)
        pos = e.end
    assert pos == offset + length


@given(layout=layouts(), strip=st.integers(0, 5000))
@settings(max_examples=200)
def test_primary_is_first_replica(layout, strip):
    replicas = layout.replicas(strip)
    assert replicas[0] == layout.primary_server(strip)
    assert len(set(replicas)) == len(replicas)
    for server in replicas:
        assert layout.holds(server, strip)


@given(layout=layouts(), file_size=st.integers(1, 500_000))
@settings(max_examples=100)
def test_placement_table_covers_file(layout, file_size):
    table = layout.placement_table(file_size)
    n = layout.n_strips(file_size)
    primaries = {
        s
        for server, strips in table.items()
        for s in strips
        if layout.primary_server(s) == server
    }
    assert primaries == set(range(n))


@given(layout=layouts(), file_size=st.integers(1, 500_000))
@settings(max_examples=100)
def test_primary_runs_partition_strips(layout, file_size):
    n = layout.n_strips(file_size)
    seen = []
    for server in layout.servers:
        for first, last in layout.primary_runs(server, file_size):
            assert first <= last
            for s in range(first, last + 1):
                assert layout.primary_server(s) == server
            seen.extend(range(first, last + 1))
    assert sorted(seen) == list(range(n))


@given(
    servers=servers_st,
    strip_size=strip_size_st,
    group=st.integers(1, 6),
    halo=st.integers(0, 6),
    n_strips=st.integers(1, 200),
)
@settings(max_examples=150)
def test_replicated_layout_halo_locality(servers, strip_size, group, halo, n_strips):
    halo = min(halo, group)
    layout = ReplicatedGroupedLayout(servers, strip_size, group, halo_strips=halo)
    file_size = n_strips * strip_size
    for server in layout.servers:
        for first, last in layout.primary_runs(server, file_size):
            for d in range(1, halo + 1):
                if first - d >= 0:
                    assert layout.holds(server, first - d)
                if last + d < n_strips:
                    assert layout.holds(server, last + d)


@given(layout=layouts(), file_size=st.integers(0, 100_000))
@settings(max_examples=100)
def test_storage_bytes_at_least_file_size(layout, file_size):
    stored = layout.storage_bytes(file_size)
    assert stored >= file_size
    if isinstance(layout, ReplicatedGroupedLayout):
        # Paper's bound: overhead <= 2h/r of the file plus edge effects.
        bound = file_size * (1 + layout.capacity_overhead()) + 2 * layout.strip_size
        assert stored <= bound
    elif not isinstance(layout, ReplicatedGroupedLayout):
        assert stored == file_size
