"""Tests for report export (JSON/CSV) and the runner's --output-dir."""

import csv
import json

import pytest

from repro.errors import HarnessError
from repro.harness import report_to_csv, report_to_json, save_report
from repro.harness.experiments import ExperimentReport, table1
from repro.harness.runner import main


@pytest.fixture
def report():
    return table1()


def test_json_contains_rows_and_checks(report):
    data = json.loads(report_to_json(report))
    assert data["experiment"] == "table1"
    assert data["all_checks_pass"] is True
    assert len(data["rows"]) == 3
    assert all("claim" in c and "passed" in c for c in data["checks"])


def test_csv_round_trips_rows(report):
    text = report_to_csv(report)
    rows = list(csv.DictReader(text.splitlines()))
    assert len(rows) == 3
    assert {r["name"] for r in rows} == {
        "flow-routing",
        "flow-accumulation",
        "gaussian",
    }


def test_csv_handles_heterogeneous_rows():
    report = ExperimentReport(
        experiment="x",
        title="t",
        rows=[{"a": 1}, {"a": 2, "b": "extra"}],
    )
    rows = list(csv.DictReader(report_to_csv(report).splitlines()))
    assert rows[0]["b"] == ""
    assert rows[1]["b"] == "extra"


def test_empty_report_csv():
    report = ExperimentReport(experiment="x", title="t", rows=[])
    assert report_to_csv(report) == ""


def test_save_report_by_extension(report, tmp_path):
    j = save_report(report, tmp_path / "out" / "table1.json")
    c = save_report(report, tmp_path / "out" / "table1.csv")
    assert json.loads(j.read_text())["experiment"] == "table1"
    assert c.read_text().startswith("name,")


def test_save_report_unknown_extension(report, tmp_path):
    with pytest.raises(HarnessError):
        save_report(report, tmp_path / "table1.xlsx")


def test_runner_output_dir(tmp_path, capsys):
    assert main(["table1", "--output-dir", str(tmp_path)]) == 0
    assert (tmp_path / "table1.json").exists()
    assert (tmp_path / "table1.csv").exists()
