"""The docs-consistency checker CI runs (scripts/check_docs.py).

The script is stdlib-only and lives outside the package, so load it by
path.  Coverage: GitHub slug rules, anchor extraction, link checking
(files and anchors), and the two ways a document can pin a flag on the
harness (fenced invocations with continuations, inline code spans).
"""

import importlib.util
import subprocess
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[2]
SCRIPT = REPO / "scripts" / "check_docs.py"

spec = importlib.util.spec_from_file_location("check_docs", SCRIPT)
check_docs = importlib.util.module_from_spec(spec)
spec.loader.exec_module(check_docs)


class TestSlug:
    @pytest.mark.parametrize(
        "heading,slug",
        [
            ("# Plain Title", "plain-title"),
            ("## Reading the SLO board", "reading-the-slo-board"),
            ("### `autoscale` rows (one per deployment cell)",
             "autoscale-rows-one-per-deployment-cell"),
            ("## Faults and failover (`repro.faults`)",
             "faults-and-failover-reprofaults"),
        ],
    )
    def test_github_slugs(self, heading, slug):
        assert check_docs.github_slug(heading) == slug


class TestAnchors:
    def test_extracts_headings_outside_fences(self, tmp_path):
        doc = tmp_path / "d.md"
        doc.write_text(
            "# Top\n\n```bash\n# a comment, not a heading\n```\n\n## Sub One\n"
        )
        assert check_docs.heading_anchors(doc) == {"top", "sub-one"}


class TestLinks:
    def test_clean_doc_passes(self, tmp_path):
        (tmp_path / "other.md").write_text("# Other Page\n")
        doc = tmp_path / "d.md"
        doc.write_text(
            "see [o](other.md), [a](other.md#other-page),"
            " [w](https://example.com)\n"
        )
        assert check_docs.check_links(doc) == []

    def test_missing_file_reported(self, tmp_path):
        doc = tmp_path / "d.md"
        doc.write_text("see [x](missing.md)\n")
        problems = check_docs.check_links(doc)
        assert len(problems) == 1 and "missing.md" in problems[0]

    def test_bad_anchor_reported(self, tmp_path):
        (tmp_path / "other.md").write_text("# Other Page\n")
        doc = tmp_path / "d.md"
        doc.write_text("see [x](other.md#nope)\n")
        problems = check_docs.check_links(doc)
        assert len(problems) == 1 and "#nope" in problems[0]

    def test_same_file_anchor(self, tmp_path):
        doc = tmp_path / "d.md"
        doc.write_text("# Here\n\njump [down](#here), not [up](#gone)\n")
        problems = check_docs.check_links(doc)
        assert len(problems) == 1 and "#gone" in problems[0]

    def test_links_inside_fences_ignored(self, tmp_path):
        doc = tmp_path / "d.md"
        doc.write_text("```\n[x](missing.md)\n```\n")
        assert check_docs.check_links(doc) == []


class TestFlags:
    def test_harness_commands_yield_flags(self, tmp_path):
        doc = tmp_path / "d.md"
        doc.write_text(
            "```bash\npython -m repro.harness serve-bench --batch-max 8\n"
            "pytest tests/ --quiet\n```\n"
        )
        flags = [f for _, f, _ in check_docs.documented_flags(doc)]
        # pytest's flag is not attributed to the harness.
        assert flags == ["--batch-max"]

    def test_continuation_lines_followed(self, tmp_path):
        doc = tmp_path / "d.md"
        doc.write_text(
            "```bash\npython -m repro.harness chaos-bench \\\n"
            "    --chaos-spec 'crash:s1@1.0' --bench-dir out\n```\n"
        )
        flags = [f for _, f, _ in check_docs.documented_flags(doc)]
        assert flags == ["--chaos-spec", "--bench-dir"]

    def test_inline_spans_yield_flags(self, tmp_path):
        doc = tmp_path / "d.md"
        doc.write_text("pass `--batch-max N`; `not a flag`; `x --inner`\n")
        flags = [f for _, f, _ in check_docs.documented_flags(doc)]
        # Only spans that *start* with a flag count.
        assert flags == ["--batch-max"]

    def test_foreign_flags_skipped(self, tmp_path):
        doc = tmp_path / "d.md"
        doc.write_text("pip wants `--no-build-isolation` here\n")
        assert check_docs.documented_flags(doc) == []

    def test_unknown_flag_fails_check(self, tmp_path):
        doc = tmp_path / "d.md"
        doc.write_text("```\npython -m repro.harness all --bogus\n```\n")
        problems = check_docs.check_flags(doc, {"--scale-kb"})
        assert len(problems) == 1 and "--bogus" in problems[0]

    def test_real_parser_knows_the_real_flags(self):
        known = check_docs.harness_flags()
        assert {"--scale-kb", "--bench-dir", "--chaos-spec", "--batch-max"} <= known


class TestScenarioSchema:
    VOCAB = {"name", "duration", "conservation", "black-friday"}

    def test_clean_doc_passes(self, tmp_path):
        doc = tmp_path / "d.md"
        doc.write_text(
            "| `name` | required |\n| `duration` | required |\n\n"
            "checks: `conservation`; library: `black-friday`\n"
        )
        assert check_docs.check_scenario_fields(doc, self.VOCAB) == []

    def test_undocumented_token_reported(self, tmp_path):
        doc = tmp_path / "d.md"
        doc.write_text(
            "| `name` | required |\n| `duration` | required |\n\n"
            "library: `black-friday`\n"
        )
        problems = check_docs.check_scenario_fields(doc, self.VOCAB)
        assert len(problems) == 1 and "'conservation'" in problems[0]

    def test_phantom_table_row_reported(self, tmp_path):
        doc = tmp_path / "d.md"
        doc.write_text(
            "| `name` | x |\n| `duration` | x |\n| `bogus_field` | x |\n\n"
            "`conservation` `black-friday`\n"
        )
        problems = check_docs.check_scenario_fields(doc, self.VOCAB)
        assert len(problems) == 1 and "'bogus_field'" in problems[0]

    def test_fenced_examples_do_not_count_as_documentation(self, tmp_path):
        doc = tmp_path / "d.md"
        doc.write_text(
            "```json\n{\"name\": 1, \"duration\": 2}\n"
            "conservation black-friday\n```\n"
        )
        problems = check_docs.check_scenario_fields(doc, self.VOCAB)
        assert len(problems) == len(self.VOCAB)

    def test_dotted_spans_document_their_parts(self, tmp_path):
        doc = tmp_path / "d.md"
        doc.write_text("`workload.tenants[].name` and `duration`:"
                       " `conservation`, `black-friday`\n")
        assert check_docs.check_scenario_fields(doc, self.VOCAB) == []

    def test_real_vocabulary_covers_schema_checks_and_library(self):
        vocab = check_docs.scenario_vocabulary()
        assert {"topology", "think_time", "crc_identity", "rolling-upgrade"} <= vocab


class TestEndToEnd:
    def test_repo_docs_are_clean(self):
        """The committed documents must pass their own checker."""
        proc = subprocess.run(
            [sys.executable, str(SCRIPT)], capture_output=True, text=True
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
