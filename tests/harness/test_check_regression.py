"""The bench regression gate (scripts/check_regression.py).

The script is stdlib-only and lives outside the package, so load it by
path.  Coverage: the newly-added-bench seeding path — with a history
ledger, a candidate file with no committed baseline must seed its
ledger and pass instead of erroring, and the seeded entry must become
the reference the next run is gated against; without ``--history-dir``
a missing baseline stays a hard failure.
"""

import importlib.util
import json
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[2]
SCRIPT = REPO / "scripts" / "check_regression.py"

spec = importlib.util.spec_from_file_location("check_regression", SCRIPT)
check_regression = importlib.util.module_from_spec(spec)
spec.loader.exec_module(check_regression)


def _payload(bench="serve", events=1200, scale=64):
    return {
        "schema": 1,
        "bench": bench,
        "scale_kb": scale,
        "wall_seconds_total": 1.0,
        "events_dispatched_total": events,
        "events_per_wall_second": events,
        "experiments": {},
    }


@pytest.fixture
def tree(tmp_path):
    base = tmp_path / "base"
    cand = tmp_path / "cand"
    hist = tmp_path / "hist"
    base.mkdir()
    cand.mkdir()
    return base, cand, hist


def _write(directory: Path, name: str, payload: dict):
    (directory / name).write_text(json.dumps(payload))


def _run(base, cand, hist=None, files=None):
    argv = ["--baseline", str(base), "--candidate", str(cand), "--no-wall"]
    if hist is not None:
        argv += ["--history-dir", str(hist)]
    if files:
        argv += ["--files", *files]
    return check_regression.main(argv)


class TestNewBenchSeeding:
    def test_missing_ledger_file_seeds_and_passes(self, tree):
        base, cand, hist = tree
        _write(base, "BENCH_serve.json", _payload())
        _write(cand, "BENCH_serve.json", _payload())
        assert _run(base, cand, hist) == 0
        entries = (hist / "BENCH_serve.jsonl").read_text().splitlines()
        assert len(entries) == 1
        assert json.loads(entries[0])["checks_pass"] is True

    def test_candidate_only_bench_seeds_and_passes(self, tree):
        base, cand, hist = tree
        _write(base, "BENCH_serve.json", _payload())
        _write(cand, "BENCH_serve.json", _payload())
        _write(cand, "BENCH_engine.json", _payload(bench="engine", events=99))
        # Default file list must pick up the candidate-only bench.
        assert _run(base, cand, hist) == 0
        seeded = json.loads((hist / "BENCH_engine.jsonl").read_text())
        assert seeded["bench"] == "engine"
        assert seeded["events_dispatched_total"] == 99
        assert seeded["checks_pass"] is True

    def test_seeded_entry_gates_the_next_run(self, tree):
        base, cand, hist = tree
        _write(base, "BENCH_serve.json", _payload())
        _write(cand, "BENCH_serve.json", _payload())
        _write(cand, "BENCH_engine.json", _payload(bench="engine", events=99))
        assert _run(base, cand, hist) == 0
        # Same events: still passes, ledger grows.
        assert _run(base, cand, hist) == 0
        # Drifted events: the seeded entry is now the reference.
        _write(cand, "BENCH_engine.json", _payload(bench="engine", events=100))
        assert _run(base, cand, hist) == 1
        entries = [
            json.loads(line)
            for line in (hist / "BENCH_engine.jsonl").read_text().splitlines()
        ]
        assert [e["checks_pass"] for e in entries] == [True, True, False]

    def test_failed_seed_never_becomes_reference(self, tree):
        base, cand, hist = tree
        _write(base, "BENCH_serve.json", _payload())
        _write(cand, "BENCH_serve.json", _payload(events=7777))  # drift
        assert _run(base, cand, hist) == 1
        # The logged failure must not gate (or pass) the next run.
        _write(cand, "BENCH_serve.json", _payload())
        assert _run(base, cand, hist) == 0

    def test_without_history_dir_missing_baseline_still_fails(self, tree):
        base, cand, _ = tree
        _write(base, "BENCH_serve.json", _payload())
        _write(cand, "BENCH_serve.json", _payload())
        _write(cand, "BENCH_engine.json", _payload(bench="engine"))
        # Named explicitly: hard failure, as before.
        assert _run(base, cand, files=["BENCH_engine.json"]) == 1
        # Default list without a ledger ignores candidate-only strays.
        assert _run(base, cand) == 0

    def test_missing_candidate_fails_even_with_history(self, tree):
        base, cand, hist = tree
        _write(base, "BENCH_serve.json", _payload())
        assert _run(base, cand, hist, files=["BENCH_serve.json"]) == 1
