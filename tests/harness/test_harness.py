"""Tests for the experiment harness (fast, tiny scales)."""

import numpy as np
import pytest

from repro.errors import HarnessError, UnknownExperimentError
from repro.harness import (
    ExperimentPlatform,
    build_platform,
    ingest_for_scheme,
    make_input,
    run_cell,
    run_experiment,
)
from repro.harness.experiments import table1
from repro.harness.runner import build_parser, main
from repro.pfs import ReplicatedGroupedLayout, RoundRobinLayout
from repro.units import KiB
from repro.workloads import DatasetSpec, dataset_for_label

#: 64 KiB stand in for one paper GB -> sub-second cells.
TINY = 64 * KiB


class TestPlatform:
    def test_half_storage_split(self):
        cluster, pfs = build_platform(24)
        assert len(cluster.storage_nodes) == 12
        assert len(cluster.compute_nodes) == 12

    def test_odd_counts_round_storage(self):
        cluster, _ = build_platform(5)
        assert len(cluster.storage_nodes) == 2
        assert len(cluster.compute_nodes) == 3

    def test_no_compute_partition_rejected(self):
        with pytest.raises(HarnessError):
            build_platform(1)

    def test_custom_platform_spec_applies(self):
        platform = ExperimentPlatform(strip_size=16 * KiB)
        _, pfs = build_platform(4, platform)
        assert pfs.strip_size == 16 * KiB


class TestIngestPolicy:
    def test_das_files_land_in_replicated_layout(self):
        _, pfs = build_platform(8)
        spec = dataset_for_label(1, scale=TINY)
        ingest_for_scheme(pfs, "DAS", "f", spec.generate(), "flow-routing")
        assert isinstance(pfs.metadata.lookup("f").layout, ReplicatedGroupedLayout)

    def test_other_schemes_get_round_robin(self):
        for scheme in ("TS", "NAS"):
            _, pfs = build_platform(8)
            spec = dataset_for_label(1, scale=TINY)
            ingest_for_scheme(pfs, scheme, "f", spec.generate(), "flow-routing")
            layout = pfs.metadata.lookup("f").layout
            assert type(layout) is RoundRobinLayout

    def test_flow_accumulation_input_is_direction_raster(self):
        spec = dataset_for_label(1, scale=TINY)
        dirs = make_input(spec, "flow-accumulation")
        assert set(np.unique(dirs)).issubset(set(float(x) for x in range(9)))
        dem = make_input(spec, "flow-routing")
        assert dem.shape == dirs.shape


class TestRunCell:
    def test_cell_produces_verified_record(self):
        spec = dataset_for_label(1, scale=TINY)
        rec = run_cell("DAS", "gaussian", spec, n_nodes=4)
        assert rec.verified
        assert rec.sim_seconds > 0
        assert rec.row["scheme"] == "DAS"

    def test_unknown_scheme_rejected(self):
        spec = dataset_for_label(1, scale=TINY)
        with pytest.raises(HarnessError):
            run_cell("XYZ", "gaussian", spec, n_nodes=4)


class TestExperiments:
    def test_table1_report(self):
        report = table1()
        assert report.all_checks_pass
        assert len(report.rows) == 3
        text = report.to_text()
        assert "flow-routing" in text
        assert "[PASS]" in text

    def test_unknown_experiment_rejected(self):
        with pytest.raises(UnknownExperimentError):
            run_experiment("fig99")

    def test_fig11_tiny_scale_holds_shape(self):
        report = run_experiment("fig11", scale=TINY, nodes=8)
        assert report.experiment == "fig11"
        assert len(report.rows) == 9  # 3 schemes x 3 kernels
        assert report.all_checks_pass, report.to_text()


class TestRunnerCLI:
    def test_parser_accepts_experiments(self):
        args = build_parser().parse_args(["table1"])
        assert args.experiment == "table1"
        assert args.scale_kb == 1024

    def test_parser_rejects_unknown(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    def test_main_runs_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Description of data analysis kernels" in out
