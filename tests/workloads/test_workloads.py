"""Unit tests for the synthetic workload generators."""

import numpy as np
import pytest

from repro.workloads import (
    DatasetSpec,
    add_salt_pepper,
    dataset_for_label,
    fractal_dem,
    phantom_image,
    ramp_dem,
    raster_shape_for_bytes,
)


class TestFractalDem:
    def test_shape_and_dtype(self):
        dem = fractal_dem(30, 50)
        assert dem.shape == (30, 50)
        assert dem.dtype == np.float64
        assert dem.flags["C_CONTIGUOUS"]

    def test_deterministic_for_same_rng_seed(self):
        a = fractal_dem(16, 16, rng=np.random.default_rng(5))
        b = fractal_dem(16, 16, rng=np.random.default_rng(5))
        assert np.array_equal(a, b)

    def test_relief_bounds(self):
        dem = fractal_dem(32, 32, relief=500.0, tilt=0.0)
        assert dem.min() >= 0.0
        assert dem.max() <= 500.0 + 1e-9

    def test_tilt_raises_southern_rows(self):
        dem = fractal_dem(64, 64, tilt=1.0)
        assert dem[-8:].mean() > dem[:8].mean()

    def test_invalid_shape_rejected(self):
        with pytest.raises(ValueError):
            fractal_dem(0, 10)


class TestRampDem:
    def test_pure_ramp_is_monotone(self):
        ramp = ramp_dem(8, 8)
        assert ramp[0, 0] == 0
        assert ramp[7, 7] == 14
        assert (np.diff(ramp, axis=0) > 0).all()

    def test_noise_stays_bounded(self):
        ramp = ramp_dem(8, 8, noise=0.2, rng=np.random.default_rng(1))
        clean = ramp_dem(8, 8)
        assert np.abs(ramp - clean).max() <= 0.2


class TestPhantom:
    def test_nonnegative_intensity(self):
        img = phantom_image(32, 48, rng=np.random.default_rng(2))
        assert img.min() >= 0.0
        assert img.shape == (32, 48)

    def test_noiseless_phantom_peaks_at_one(self):
        img = phantom_image(64, 64, noise_sigma=0.0, rng=np.random.default_rng(2))
        assert img.max() == pytest.approx(1.0)

    def test_invalid_shape_rejected(self):
        with pytest.raises(ValueError):
            phantom_image(10, -1)


class TestSaltPepper:
    def test_fraction_of_pixels_corrupted(self):
        img = phantom_image(64, 64, noise_sigma=0.0, rng=np.random.default_rng(3))
        noisy = add_salt_pepper(img, fraction=0.1, rng=np.random.default_rng(3))
        changed = (noisy != img).sum()
        # Some chosen pixels may already equal min/max; allow slack, and
        # the corrupted count itself is round(fraction * size).
        assert 0.08 * img.size <= changed <= round(0.1 * img.size) + 1

    def test_original_untouched(self):
        img = phantom_image(16, 16, rng=np.random.default_rng(4))
        copy = img.copy()
        add_salt_pepper(img, fraction=0.5, rng=np.random.default_rng(4))
        assert np.array_equal(img, copy)

    def test_zero_fraction_identity(self):
        img = phantom_image(16, 16, rng=np.random.default_rng(4))
        assert np.array_equal(add_salt_pepper(img, 0.0), img)

    def test_bad_fraction_rejected(self):
        with pytest.raises(ValueError):
            add_salt_pepper(np.zeros((4, 4)), fraction=1.5)


class TestDatasetSpecs:
    def test_shape_for_bytes_close_and_under(self):
        rows, cols = raster_shape_for_bytes(10_000_000)
        assert rows * cols * 8 <= 10_000_000
        assert rows * cols * 8 >= 0.95 * 10_000_000

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            raster_shape_for_bytes(4)

    def test_label_scaling(self):
        spec = dataset_for_label(24, scale=1024)
        assert spec.label_gb == 24
        assert abs(spec.n_bytes - 24 * 1024) / (24 * 1024) < 0.1

    def test_generate_dem_and_image(self):
        dem_spec = dataset_for_label(1, kind="dem", scale=64 * 1024)
        img_spec = dataset_for_label(1, kind="image", scale=64 * 1024)
        assert dem_spec.generate().shape == dem_spec.shape
        assert img_spec.generate().shape == img_spec.shape

    def test_unknown_kind_rejected(self):
        spec = DatasetSpec(label_gb=1, rows=10, cols=10, kind="hologram")
        with pytest.raises(ValueError):
            spec.generate()

    def test_generation_deterministic_by_seed(self):
        spec = dataset_for_label(1, scale=64 * 1024, seed=9)
        assert np.array_equal(spec.generate(), spec.generate())
