"""Integration tests: concurrent clients and overlapping operations.

The data servers and AS helpers are shared services; several clients
and several offloaded operations must interleave without corrupting
each other's files or stats.
"""

import numpy as np
import pytest

from repro.core import ActiveRequest, ActiveStorageClient
from repro.hw import Cluster
from repro.kernels import default_registry
from repro.pfs import ParallelFileSystem
from repro.units import KiB
from repro.workloads import fractal_dem, phantom_image
from repro.harness.platform import ingest_for_scheme


@pytest.fixture
def world():
    cluster = Cluster.build(n_compute=4, n_storage=4)
    pfs = ParallelFileSystem(cluster, strip_size=4 * KiB)
    return cluster, pfs


def test_concurrent_reads_from_many_clients(world, drive):
    cluster, pfs = world
    dem = fractal_dem(96, 128, rng=np.random.default_rng(61))
    pfs.client("c0").ingest("dem", dem, pfs.round_robin())
    raw = dem.view(np.uint8).reshape(-1)

    def reader(home, offset, length, out):
        data = yield pfs.client(home).read("dem", offset, length)
        out[home] = data

    out = {}
    jobs = [
        cluster.env.process(reader(f"c{i}", i * 10_000, 20_000, out))
        for i in range(4)
    ]

    def main():
        for job in jobs:
            yield job

    drive(cluster, cluster.env.process(main()))
    for i in range(4):
        assert np.array_equal(out[f"c{i}"], raw[i * 10_000 : i * 10_000 + 20_000])


def test_two_offloads_on_different_files_interleave(world, drive):
    cluster, pfs = world
    dem = fractal_dem(128, 128, rng=np.random.default_rng(62))
    img = phantom_image(128, 128, rng=np.random.default_rng(63))
    ingest_for_scheme(pfs, "DAS", "dem", dem, "flow-routing")
    ingest_for_scheme(pfs, "DAS", "img", img, "gaussian")

    asc0 = ActiveStorageClient(pfs, home="c0")
    # Second client reuses the already-running AS helper processes.
    asc1 = ActiveStorageClient(pfs, home="c1", start_servers=False)
    asc1.servers = asc0.servers

    def main():
        a = asc0.submit(ActiveRequest("flow-routing", "dem", "dirs"))
        b = asc1.submit(ActiveRequest("gaussian", "img", "smooth"))
        ra = yield a
        rb = yield b
        return ra, rb

    ra, rb = drive(cluster, cluster.env.process(main()))
    assert ra.offloaded and rb.offloaded
    client = pfs.client("c0")
    assert np.array_equal(
        client.collect("dirs"), default_registry.get("flow-routing").reference(dem)
    )
    assert np.array_equal(
        client.collect("smooth"), default_registry.get("gaussian").reference(img)
    )


def test_concurrent_offloads_slower_than_isolated_but_correct(world, drive):
    """Two simultaneous operations share the servers: both complete,
    both are correct, and the makespan exceeds a single isolated op."""
    cluster, pfs = world
    dem = fractal_dem(128, 128, rng=np.random.default_rng(64))
    ingest_for_scheme(pfs, "DAS", "a", dem, "gaussian")
    ingest_for_scheme(pfs, "DAS", "b", dem, "gaussian")
    asc = ActiveStorageClient(pfs, home="c0")

    def both():
        j1 = asc.submit(ActiveRequest("gaussian", "a", "a.out"))
        j2 = asc.submit(ActiveRequest("gaussian", "b", "b.out"))
        r1 = yield j1
        r2 = yield j2
        return max(r1.elapsed, r2.elapsed)

    start = cluster.env.now
    makespan = drive(cluster, cluster.env.process(both()))

    # Isolated baseline on a fresh world.
    cluster2 = Cluster.build(n_compute=4, n_storage=4)
    pfs2 = ParallelFileSystem(cluster2, strip_size=4 * KiB)
    ingest_for_scheme(pfs2, "DAS", "a", dem, "gaussian")
    asc2 = ActiveStorageClient(pfs2, home="c0")
    single = drive(
        cluster2, asc2.submit(ActiveRequest("gaussian", "a", "a.out"))
    ).elapsed

    assert makespan > single
    ref = default_registry.get("gaussian").reference(dem)
    assert np.array_equal(pfs.client("c0").collect("a.out"), ref)
    assert np.array_equal(pfs.client("c0").collect("b.out"), ref)


def test_reads_during_offload_see_consistent_input(world, drive):
    """A client reading the *input* file while it is being processed
    must see unmodified input bytes (operations write only the output
    file)."""
    cluster, pfs = world
    dem = fractal_dem(128, 128, rng=np.random.default_rng(65))
    ingest_for_scheme(pfs, "DAS", "dem", dem, "gaussian")
    asc = ActiveStorageClient(pfs, home="c0")
    raw = dem.view(np.uint8).reshape(-1)

    def reader():
        got = yield pfs.client("c1").read("dem", 0, dem.nbytes)
        return got

    def main():
        job = asc.submit(ActiveRequest("gaussian", "dem", "out"))
        read = cluster.env.process(reader())
        res = yield job
        data = yield read
        return res, data

    res, data = drive(cluster, cluster.env.process(main()))
    assert np.array_equal(data, raw)
    assert res.offloaded
