"""Unit tests for the bandwidth predictor (paper Section III-C).

Includes a brute-force oracle for the per-element model: enumerate
every (element, offset) pair and compare servers directly — the paper's
Eq. (5) computed the obvious slow way.
"""

import numpy as np
import pytest

from repro.core import (
    BandwidthPredictor,
    cross_server_elements,
    dependence_is_local,
    element_movement_bytes,
    location_grouped,
    location_round_robin,
    offload_interserver_bytes,
    remote_halo_bytes,
    replication_bytes,
    strip_of_element,
)
from repro.errors import KernelError
from repro.kernels import DependencePattern
from repro.pfs import (
    GroupedLayout,
    ReplicatedGroupedLayout,
    RoundRobinLayout,
)
from repro.pfs.datafile import FileMeta

SERVERS = ["s0", "s1", "s2", "s3"]
E = 8
STRIP = 64  # 8 elements per strip — small enough to brute force


def brute_force_cross(layout, n_elements, offsets):
    """Oracle for cross_server_elements."""
    total = 0
    for i in range(n_elements):
        src = layout.server_index((i * E) // layout.strip_size)
        for d in offsets:
            j = i + d
            if 0 <= j < n_elements:
                dst = layout.server_index((j * E) // layout.strip_size)
                if dst != src:
                    total += 1
    return total


class TestPaperEquations:
    def test_eq1_strip_of_element(self):
        assert strip_of_element(0, E, STRIP) == 0
        assert strip_of_element(7, E, STRIP) == 0
        assert strip_of_element(8, E, STRIP) == 1

    def test_eq2_round_robin_location(self):
        assert location_round_robin(0, E, STRIP, 4) == 0
        assert location_round_robin(8, E, STRIP, 4) == 1
        assert location_round_robin(32, E, STRIP, 4) == 0

    def test_eq14_grouped_location(self):
        # r=2: elements 0..15 on server 0, 16..31 on server 1, ...
        assert location_grouped(15, E, STRIP, 4, group=2) == 0
        assert location_grouped(16, E, STRIP, 4, group=2) == 1

    def test_eq17_divisibility_criterion(self):
        # stride*E multiple of strip*D -> local.
        assert dependence_is_local(32, E, STRIP, 4)          # 32*8 = 64*4
        assert not dependence_is_local(8, E, STRIP, 4)       # one strip over
        assert dependence_is_local(64, E, STRIP, 4, group=2)  # 64*8 = 2*64*4
        assert not dependence_is_local(32, E, STRIP, 4, group=2)

    def test_eq17_consistent_with_locations(self):
        # Whenever the criterion holds, shifted locations agree everywhere.
        stride = 32
        assert dependence_is_local(stride, E, STRIP, 4)
        for i in range(0, 200):
            assert location_round_robin(i, E, STRIP, 4) == location_round_robin(
                i + stride, E, STRIP, 4
            )


class TestCrossServerElements:
    @pytest.mark.parametrize("offsets", [[-1, 1], [-8, 8], [-11, -1, 1, 11], [5]])
    @pytest.mark.parametrize("n_elements", [8, 64, 100, 129])
    def test_matches_brute_force_round_robin(self, offsets, n_elements):
        layout = RoundRobinLayout(SERVERS, STRIP)
        got = cross_server_elements(layout, n_elements, E, np.array(offsets))
        assert got == brute_force_cross(layout, n_elements, offsets)

    @pytest.mark.parametrize("group", [1, 2, 3])
    def test_matches_brute_force_grouped(self, group):
        layout = GroupedLayout(SERVERS, STRIP, group)
        offsets = [-9, -1, 1, 9]
        got = cross_server_elements(layout, 150, E, np.array(offsets))
        assert got == brute_force_cross(layout, 150, offsets)

    def test_zero_offset_free(self):
        layout = RoundRobinLayout(SERVERS, STRIP)
        assert cross_server_elements(layout, 100, E, np.array([0])) == 0

    def test_aligned_stride_is_free(self):
        layout = RoundRobinLayout(SERVERS, STRIP)
        # stride of a whole server round: 8 elems/strip * 4 servers.
        assert cross_server_elements(layout, 500, E, np.array([-32, 32])) == 0

    def test_element_size_must_divide_strip(self):
        layout = RoundRobinLayout(SERVERS, strip_size=60)
        with pytest.raises(KernelError):
            cross_server_elements(layout, 10, 8, np.array([1]))

    def test_movement_bytes_scales_by_element_size(self):
        layout = RoundRobinLayout(SERVERS, STRIP)
        crosses = cross_server_elements(layout, 64, E, np.array([8]))
        assert element_movement_bytes(layout, 64, E, np.array([8])) == crosses * E


def make_meta(n_strips=16, layout=None, width=None):
    layout = layout or RoundRobinLayout(SERVERS, STRIP)
    size = n_strips * STRIP
    n_elements = size // E
    shape = None
    if width:
        assert n_elements % width == 0
        shape = (n_elements // width, width)
    return FileMeta("f", size=size, layout=layout, shape=shape)


class TestRunHaloModel:
    def test_round_robin_every_run_pulls_both_neighbors(self):
        meta = make_meta(16, width=4)
        pattern = DependencePattern.eight_neighbor("op")
        total = offload_interserver_bytes(meta.layout, meta, pattern, "strip")
        # 16 single-strip runs; interior ones pull 2 strips, the first
        # and last pull 1 -> 30 strips of 64 B.
        assert total == 30 * STRIP

    def test_exact_granularity_charges_reach_only(self):
        meta = make_meta(16, width=4)
        pattern = DependencePattern.eight_neighbor("op")
        total = offload_interserver_bytes(meta.layout, meta, pattern, "exact")
        # Reach = width+1 = 5 elements = 40 B per side; strictly less
        # than pulling whole strips.
        assert 0 < total < 30 * STRIP
        # 14 interior runs * 2 sides + 2 edge runs * 1 side = 30 sides
        assert total == 30 * 40

    def test_replicated_layout_localises_halo(self):
        layout = ReplicatedGroupedLayout(SERVERS, STRIP, group=4, halo_strips=1)
        meta = make_meta(16, layout=layout, width=4)
        pattern = DependencePattern.eight_neighbor("op")
        assert offload_interserver_bytes(layout, meta, pattern, "strip") == 0

    def test_grouped_without_replication_still_pays_boundaries(self):
        layout = GroupedLayout(SERVERS, STRIP, group=4)
        meta = make_meta(16, layout=layout, width=4)
        pattern = DependencePattern.eight_neighbor("op")
        total = offload_interserver_bytes(layout, meta, pattern, "strip")
        # 4 groups: first run pulls 1, last pulls 1, middle two pull 2.
        assert total == 6 * STRIP

    def test_independent_pattern_free(self):
        meta = make_meta(16, width=8)
        assert (
            offload_interserver_bytes(
                meta.layout, meta, DependencePattern.independent("scan"), "strip"
            )
            == 0
        )

    def test_sparse_stride_charges_shifted_windows_only(self):
        meta = make_meta(16)  # flat file, no raster shape
        aligned = DependencePattern.stride("x", 32)  # whole server round
        assert offload_interserver_bytes(meta.layout, meta, aligned, "strip") == 0
        unaligned = DependencePattern.stride("y", 8)  # exactly one strip
        total = offload_interserver_bytes(meta.layout, meta, unaligned, "strip")
        assert total == 30 * STRIP

    def test_remote_halo_respects_local_replicas(self):
        layout = ReplicatedGroupedLayout(SERVERS, STRIP, group=4, halo_strips=1)
        offsets = np.array([-8, 8]) * E  # one strip each way, in bytes
        assert (
            remote_halo_bytes(layout, 16 * STRIP, "s0", (0, 3), offsets, "strip") == 0
        )


class TestReplicationBytes:
    def test_plain_layout_has_none(self):
        layout = RoundRobinLayout(SERVERS, STRIP)
        assert replication_bytes(layout, 16 * STRIP) == 0

    def test_replicated_layout_counts_copies(self):
        layout = ReplicatedGroupedLayout(SERVERS, STRIP, group=4, halo_strips=1)
        extra = replication_bytes(layout, 16 * STRIP)
        assert extra == 7 * STRIP  # 4 groups: 3 head + 4 tail replicas


class TestPredictor:
    def test_unknown_model_rejected(self):
        with pytest.raises(KernelError):
            BandwidthPredictor(model="psychic")

    def test_predict_reports_benefit(self):
        meta = make_meta(64, width=16)
        pattern = DependencePattern.eight_neighbor("op")
        pred = BandwidthPredictor("strip").predict(meta, pattern)
        assert pred.normal_bytes == meta.size
        assert pred.offload_halo_bytes > 0
        # Round-robin + strip halo moves ~2x the file: not beneficial.
        assert not pred.offload_beneficial

    def test_predict_under_candidate_layout(self):
        meta = make_meta(64, width=4)
        pattern = DependencePattern.eight_neighbor("op")
        candidate = ReplicatedGroupedLayout(SERVERS, STRIP, group=8, halo_strips=1)
        pred = BandwidthPredictor("strip").predict(meta, pattern, layout=candidate)
        assert pred.offload_halo_bytes == 0
        assert pred.offload_beneficial

    def test_normal_write_back_doubles_cost(self):
        meta = make_meta(16, width=8)
        pattern = DependencePattern.independent("scan")
        p1 = BandwidthPredictor().predict(meta, pattern)
        p2 = BandwidthPredictor().predict(meta, pattern, normal_write_back=True)
        assert p2.normal_bytes == 2 * p1.normal_bytes

    def test_element_model_uses_eq5(self):
        meta = make_meta(16, width=8)
        pattern = DependencePattern.eight_neighbor("op")
        pred = BandwidthPredictor("element").predict(meta, pattern)
        expected = element_movement_bytes(
            meta.layout, meta.n_elements, E, pattern.offsets(8)
        )
        assert pred.offload_halo_bytes == expected

    def test_strip_model_upper_bounds_exact(self):
        meta = make_meta(32, width=16)
        pattern = DependencePattern.eight_neighbor("op")
        strip = BandwidthPredictor("strip").predict(meta, pattern)
        exact = BandwidthPredictor("exact").predict(meta, pattern)
        assert strip.offload_halo_bytes >= exact.offload_halo_bytes
