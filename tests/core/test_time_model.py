"""Tests for the time-aware decision extension.

The headline property: on a platform whose network outruns its disks,
the byte-count engine and the time-aware engine *disagree* about
offloading a pre-distributed file — and the time-aware engine's choice
is the one the simulator actually measures as faster.
"""

import numpy as np
import pytest

from repro.config import PlatformSpec
from repro.core import DecisionEngine, KernelFeatures, LayoutOptimizer
from repro.core.time_model import TimeAwareDecisionEngine, TimeModel
from repro.hw import Cluster
from repro.kernels import DependencePattern
from repro.pfs import ParallelFileSystem, RoundRobinLayout
from repro.pfs.datafile import FileMeta
from repro.schemes import DynamicActiveStorageScheme, TraditionalScheme
from repro.units import GiB, KiB, MiB, us
from repro.workloads import fractal_dem

SERVERS = [f"s{i}" for i in range(4)]
EIGHT = DependencePattern.eight_neighbor("flow-routing")


def make_meta(n_strips=64, layout=None, width=32, strip=512):
    layout = layout or RoundRobinLayout(SERVERS, strip)
    size = n_strips * strip
    n_elements = size // 8
    return FileMeta(
        "f", size=size, layout=layout, shape=(n_elements // width, width)
    )


@pytest.fixture
def engine_pair():
    def build(spec):
        features = KernelFeatures.from_registry()
        byte_engine = DecisionEngine(features=features)
        time_engine = TimeAwareDecisionEngine(
            TimeModel(spec, n_storage=4, n_compute=4), features=features
        )
        return byte_engine, time_engine

    return build


class TestTimeModel:
    def test_requires_nodes(self):
        with pytest.raises(ValueError):
            TimeModel(PlatformSpec(), 0, 1)

    def test_normal_time_scales_with_size(self):
        tm = TimeModel(PlatformSpec(), 4, 4)
        small = tm.normal_seconds(make_meta(16), "gaussian")
        large = tm.normal_seconds(make_meta(64), "gaussian")
        assert large == pytest.approx(4 * small, rel=1e-6)

    def test_redistribution_counts_two_disk_passes(self):
        spec = PlatformSpec()
        tm = TimeModel(spec, 4, 4)
        moved = 4 * MiB
        expected = 2 * moved / (4 * spec.disk_bandwidth) + moved / (
            4 * spec.nic_bandwidth
        )
        assert tm.redistribution_seconds(moved) == pytest.approx(expected)

    def test_estimate_contains_all_three_paths(self, engine_pair):
        byte_engine, time_engine = engine_pair(PlatformSpec())
        est = time_engine.time_model.estimate(
            make_meta(), EIGHT, time_engine, pipeline_length=2
        )
        assert est.normal > 0
        assert est.offload_in_place > 0
        assert est.offload_redistributed > 0


class TestDecisionsOnPaperPlatform:
    """On the paper's (network-scarce) platform both engines agree."""

    def test_both_accept_predistributed_offload(self, engine_pair):
        byte_engine, time_engine = engine_pair(PlatformSpec())
        plan = LayoutOptimizer().plan(make_meta(), EIGHT)
        meta = make_meta(layout=plan.layout)
        assert byte_engine.decide(meta, "flow-routing").accept
        assert time_engine.decide(meta, "flow-routing").accept

    def test_both_reject_cold_one_shot(self, engine_pair):
        byte_engine, time_engine = engine_pair(PlatformSpec())
        meta = make_meta()
        assert not byte_engine.decide(meta, "flow-routing").accept
        assert not time_engine.decide(meta, "flow-routing").accept


class TestDecisionsOnFatNetwork:
    """Network (8 GiB/s) far outruns the disks (0.25 GiB/s): moving
    data is cheap, touching disks twice is not."""

    SPEC = PlatformSpec(
        nic_bandwidth=8 * GiB,
        nic_latency=5 * us,
        disk_bandwidth=0.25 * GiB,
        disk_seek=10 * us,
    )

    def predistributed_meta(self):
        plan = LayoutOptimizer().plan(make_meta(), EIGHT)
        return make_meta(layout=plan.layout)

    def test_engines_disagree(self, engine_pair):
        byte_engine, time_engine = engine_pair(self.SPEC)
        meta = self.predistributed_meta()
        # Byte engine: halo 0 + small replication < N -> offload.
        assert byte_engine.decide(meta, "flow-routing").accept
        # Time engine: offload means two disk passes on slow disks while
        # the fat network makes client-side processing cheap.
        assert not time_engine.decide(meta, "flow-routing").accept

    def test_time_engine_choice_is_actually_faster(self):
        """Measure both choices in the simulator: on the fat-network
        platform, serving the pre-distributed request as normal I/O
        (the time-aware verdict) beats offloading it (the byte-count
        verdict)."""

        def run(force_offload: bool) -> float:
            cluster = Cluster.build(n_compute=8, n_storage=8, spec=self.SPEC)
            pfs = ParallelFileSystem(cluster, strip_size=16 * KiB)
            dem = fractal_dem(512, 512, rng=np.random.default_rng(31))
            meta_probe = pfs.metadata.create(
                "probe", dem.nbytes, pfs.round_robin(), shape=dem.shape
            )
            plan = LayoutOptimizer().plan(
                meta_probe, KernelFeatures.from_registry().get("gaussian")
            )
            pfs.metadata.unlink("probe")
            pfs.client("c0").ingest("dem", dem, plan.layout)
            if force_offload:
                from repro.core import ActiveRequest, ActiveStorageClient

                asc = ActiveStorageClient(pfs, home="c0")
                req = ActiveRequest("gaussian", "dem", "out")
                result = cluster.run(
                    until=asc.execute_offload(req, asc.decide(req))
                )
                return result.elapsed
            scheme = TraditionalScheme(pfs)
            result = cluster.run(until=scheme.run_operation("gaussian", "dem", "out"))
            return result.elapsed

        t_offload = run(force_offload=True)
        t_normal = run(force_offload=False)
        assert t_normal < t_offload


class TestTimeAwareThroughScheme:
    def test_scheme_accepts_custom_engine(self, drive):
        cluster = Cluster.build(n_compute=4, n_storage=4)
        pfs = ParallelFileSystem(cluster, strip_size=4 * KiB)
        dem = fractal_dem(128, 256, rng=np.random.default_rng(7))
        from repro.harness.platform import ingest_for_scheme

        ingest_for_scheme(pfs, "DAS", "in", dem, "gaussian")
        engine = TimeAwareDecisionEngine(
            TimeModel(cluster.spec, 4, 4), features=KernelFeatures.from_registry()
        )
        scheme = DynamicActiveStorageScheme(pfs, engine=engine)
        res = drive(cluster, scheme.run_operation("gaussian", "in", "out"))
        assert res.offloaded  # paper platform: offload is right
        from repro.kernels import default_registry

        ref = default_registry.get("gaussian").reference(dem)
        assert np.array_equal(pfs.client("c0").collect("out"), ref)
