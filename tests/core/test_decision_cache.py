"""Unit tests for the decision cache (memo over the decision engine)."""

import pytest

from repro.core import DecisionEngine, KernelFeatures
from repro.core.decision_cache import DecisionCache, layout_signature, pattern_signature
from repro.errors import ActiveStorageError
from repro.kernels import DependencePattern
from repro.pfs import ReplicatedGroupedLayout, RoundRobinLayout
from repro.pfs.datafile import FileMeta

SERVERS = [f"s{i}" for i in range(4)]
E = 8
STRIP = 512


def make_meta(name="f", n_strips=64, layout=None, width=32):
    layout = layout or RoundRobinLayout(SERVERS, STRIP)
    size = n_strips * STRIP
    n_elements = size // E
    shape = (n_elements // width, width) if width else None
    return FileMeta(name, size=size, layout=layout, shape=shape)


@pytest.fixture
def engine():
    return DecisionEngine(features=KernelFeatures.from_registry())


@pytest.fixture
def cache(engine):
    return DecisionCache(engine)


class TestCaching:
    def test_miss_then_hit(self, cache):
        meta = make_meta()
        first = cache.decide(meta, "flow-routing", pipeline_length=4)
        second = cache.decide(meta, "flow-routing", pipeline_length=4)
        assert second is first  # memoised, not recomputed
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1

    def test_key_excludes_file_name(self, cache):
        a = make_meta("a")
        b = make_meta("b")  # same layout / size / shape, different name
        first = cache.decide(a, "flow-routing")
        second = cache.decide(b, "flow-routing")
        assert second is first
        assert cache.stats.hits == 1

    def test_distinct_pipeline_lengths_are_distinct_entries(self, cache):
        meta = make_meta()
        cache.decide(meta, "flow-routing", pipeline_length=1)
        cache.decide(meta, "flow-routing", pipeline_length=4)
        assert cache.stats.misses == 2
        assert len(cache) == 2

    def test_distinct_layouts_are_distinct_entries(self, cache):
        rr = make_meta()
        grouped = make_meta(
            layout=ReplicatedGroupedLayout(SERVERS, STRIP, group=16, halo_strips=1)
        )
        cache.decide(rr, "flow-routing")
        cache.decide(grouped, "flow-routing")
        assert cache.stats.misses == 2

    def test_distinct_operators_are_distinct_entries(self, cache):
        meta = make_meta()
        cache.decide(meta, "flow-routing")
        cache.decide(meta, "gaussian")
        assert cache.stats.misses == 2

    def test_verdict_matches_uncached_engine(self, cache, engine):
        meta = make_meta()
        for k in (1, 4):
            cached = cache.decide(meta, "flow-routing", pipeline_length=k)
            direct = engine.decide(meta, "flow-routing", pipeline_length=k)
            assert cached.outcome == direct.outcome
            assert cached.accept == direct.accept


class TestEviction:
    def test_lru_eviction_at_capacity(self, engine):
        cache = DecisionCache(engine, capacity=2)
        m1 = cache.decide(make_meta(), "flow-routing", pipeline_length=1)
        cache.decide(make_meta(), "flow-routing", pipeline_length=2)
        cache.decide(make_meta(), "flow-routing", pipeline_length=3)  # evicts #1
        assert len(cache) == 2
        assert cache.stats.evictions == 1
        again = cache.decide(make_meta(), "flow-routing", pipeline_length=1)
        assert again is not m1  # recomputed after eviction
        assert cache.stats.misses == 4

    def test_hit_refreshes_recency(self, engine):
        cache = DecisionCache(engine, capacity=2)
        first = cache.decide(make_meta(), "flow-routing", pipeline_length=1)
        cache.decide(make_meta(), "flow-routing", pipeline_length=2)
        cache.decide(make_meta(), "flow-routing", pipeline_length=1)  # refresh #1
        cache.decide(make_meta(), "flow-routing", pipeline_length=3)  # evicts #2
        assert cache.decide(make_meta(), "flow-routing", pipeline_length=1) is first

    def test_capacity_must_be_positive(self, engine):
        with pytest.raises(ActiveStorageError):
            DecisionCache(engine, capacity=0)


class TestInvalidation:
    def test_invalidate_meta_drops_matching_entries(self, cache):
        meta = make_meta()
        cache.decide(meta, "flow-routing")
        cache.decide(meta, "gaussian")
        other = make_meta(n_strips=32)  # different size: survives
        cache.decide(other, "flow-routing")
        dropped = cache.invalidate_meta(meta)
        assert dropped == 2
        assert len(cache) == 1
        assert cache.stats.invalidations == 2

    def test_invalidate_with_pre_move_layout_after_in_place_swap(self, cache):
        """Redistribution mutates FileMeta.layout in place, so the caller
        must pass the old layout to hit the stale entries."""
        meta = make_meta()
        old_layout = meta.layout
        cache.decide(meta, "flow-routing", pipeline_length=4)
        # Simulate what Redistributor/metadata.set_layout does: swap the
        # layout on the same record.
        meta.layout = ReplicatedGroupedLayout(SERVERS, STRIP, group=16, halo_strips=1)
        assert cache.invalidate_meta(meta) == 0  # new geometry: nothing cached
        assert cache.invalidate_meta(meta, layout=old_layout) == 1
        assert len(cache) == 0

    def test_clear_empties_and_counts(self, cache):
        cache.decide(make_meta(), "flow-routing")
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.invalidations == 1


class TestBypass:
    def test_no_redistribution_bypasses_cache(self, cache):
        meta = make_meta()
        d = cache.decide(meta, "flow-routing", pipeline_length=10,
                         allow_redistribution=False)
        assert d.redistribute_to is None
        assert cache.stats.hits == 0
        assert cache.stats.misses == 0
        assert len(cache) == 0


class TestSignatures:
    def test_layout_signature_separates_geometry(self):
        rr = RoundRobinLayout(SERVERS, STRIP)
        rr2 = RoundRobinLayout(SERVERS, STRIP)
        grouped = ReplicatedGroupedLayout(SERVERS, STRIP, group=16, halo_strips=1)
        assert layout_signature(rr) == layout_signature(rr2)
        assert layout_signature(rr) != layout_signature(grouped)
        thin = ReplicatedGroupedLayout(SERVERS, STRIP, group=16, halo_strips=2)
        assert layout_signature(grouped) != layout_signature(thin)

    def test_pattern_signature_separates_patterns(self):
        eight = DependencePattern.eight_neighbor("a")
        indep = DependencePattern.independent("b")
        assert pattern_signature(eight) != pattern_signature(indep)

    def test_hit_rate_property(self, cache):
        assert cache.stats.hit_rate == 0.0
        meta = make_meta()
        cache.decide(meta, "flow-routing")
        cache.decide(meta, "flow-routing")
        assert cache.stats.hit_rate == 0.5


class TestTTL:
    """Time-based invalidation: verdicts age out of the cache."""

    def test_ttl_requires_a_clock(self, engine):
        with pytest.raises(ActiveStorageError):
            DecisionCache(engine, ttl=1.0)

    def test_ttl_must_be_positive(self, engine):
        with pytest.raises(ActiveStorageError):
            DecisionCache(engine, ttl=0.0, clock=lambda: 0.0)

    def test_fresh_entry_hits_within_ttl(self, engine):
        now = [0.0]
        cache = DecisionCache(engine, ttl=1.0, clock=lambda: now[0])
        meta = make_meta()
        first = cache.decide(meta, "gaussian")
        now[0] = 0.9
        assert cache.decide(meta, "gaussian") == first
        assert cache.stats.hits == 1
        assert cache.stats.expirations == 0

    def test_stale_entry_expires_and_recomputes(self, engine):
        now = [0.0]
        cache = DecisionCache(engine, ttl=1.0, clock=lambda: now[0])
        meta = make_meta()
        cache.decide(meta, "gaussian")
        now[0] = 1.5
        cache.decide(meta, "gaussian")
        assert cache.stats.expirations == 1
        assert cache.stats.misses == 2  # recomputed, not served stale
        assert cache.stats.hits == 0

    def test_recompute_restamps_the_entry(self, engine):
        now = [0.0]
        cache = DecisionCache(engine, ttl=1.0, clock=lambda: now[0])
        meta = make_meta()
        cache.decide(meta, "gaussian")
        now[0] = 1.5
        cache.decide(meta, "gaussian")  # expires + restamps at 1.5
        now[0] = 2.0
        cache.decide(meta, "gaussian")  # 0.5 old again: a hit
        assert cache.stats.hits == 1
        assert cache.stats.expirations == 1

    def test_no_ttl_never_expires(self, engine):
        cache = DecisionCache(engine)
        meta = make_meta()
        cache.decide(meta, "gaussian")
        cache.decide(meta, "gaussian")
        assert cache.stats.expirations == 0
        assert cache.stats.hits == 1

    def test_explicit_clear_on_membership_change(self, engine):
        # The serving layer clears the cache on crash/recover events;
        # clear() is the hook it uses.
        cache = DecisionCache(engine, ttl=10.0, clock=lambda: 0.0)
        meta = make_meta()
        cache.decide(meta, "gaussian")
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.invalidations == 1
