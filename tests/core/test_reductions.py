"""Tests for reduction kernels and their offloaded execution."""

import numpy as np
import pytest

from repro.core import ActiveStorageClient
from repro.errors import ActiveStorageError, KernelError, UnknownKernelError
from repro.hw import Cluster
from repro.kernels import (
    HistogramReduction,
    ReductionRegistry,
    StatsReduction,
    ThresholdCountReduction,
    default_reductions,
)
from repro.metrics import TrafficMeter
from repro.pfs import ParallelFileSystem
from repro.units import KiB
from repro.workloads import fractal_dem, phantom_image

DATA = phantom_image(96, 128, rng=np.random.default_rng(71))


class TestReductionKernels:
    def test_stats_reference(self):
        out = StatsReduction().reference(DATA)
        assert out["min"] == pytest.approx(DATA.min())
        assert out["max"] == pytest.approx(DATA.max())
        assert out["mean"] == pytest.approx(DATA.mean())
        assert out["var"] == pytest.approx(DATA.var(), rel=1e-9)
        assert out["n"] == DATA.size

    def test_stats_combine_matches_whole(self):
        k = StatsReduction()
        flat = DATA.reshape(-1)
        merged = k.combine(k.partial(flat[:1000]), k.partial(flat[1000:]))
        whole = k.partial(flat)
        for key in whole:
            assert merged[key] == pytest.approx(whole[key])

    def test_stats_empty_partial_is_identity(self):
        k = StatsReduction()
        merged = k.combine(k.partial(np.empty(0)), k.partial(DATA))
        whole = k.partial(DATA.reshape(-1))
        for key in whole:
            assert merged[key] == pytest.approx(whole[key])

    def test_histogram_reference_matches_numpy(self):
        k = HistogramReduction(lo=0.0, hi=1.2, bins=32)
        expected, _ = np.histogram(DATA.reshape(-1), bins=32, range=(0.0, 1.2))
        assert np.array_equal(k.reference(DATA), expected)

    def test_histogram_combine_is_binwise_sum(self):
        k = HistogramReduction(bins=16)
        a = k.partial(DATA.reshape(-1)[:500])
        b = k.partial(DATA.reshape(-1)[500:])
        assert np.array_equal(k.combine(a, b), k.partial(DATA.reshape(-1)))

    def test_histogram_invalid_params_rejected(self):
        with pytest.raises(KernelError):
            HistogramReduction(lo=1.0, hi=0.0)
        with pytest.raises(KernelError):
            HistogramReduction(bins=0)

    def test_threshold_count(self):
        k = ThresholdCountReduction(threshold=0.3)
        assert k.reference(DATA) == int((DATA > 0.3).sum())

    def test_patterns_are_independent(self):
        for kernel in default_reductions:
            assert kernel.pattern().is_independent

    def test_registry_lookup_and_errors(self):
        assert "stats" in default_reductions
        with pytest.raises(UnknownKernelError):
            default_reductions.get("bogus")
        reg = ReductionRegistry()
        reg.register(StatsReduction())
        with pytest.raises(KernelError):
            reg.register(StatsReduction())


class TestOffloadedReductions:
    @pytest.fixture
    def world(self):
        cluster = Cluster.build(n_compute=2, n_storage=4)
        pfs = ParallelFileSystem(cluster, strip_size=4 * KiB)
        dem = fractal_dem(128, 256, rng=np.random.default_rng(72))
        pfs.client("c0").ingest("dem", dem, pfs.round_robin())
        return cluster, pfs, dem

    def test_stats_offload_matches_reference(self, world, drive):
        cluster, pfs, dem = world
        asc = ActiveStorageClient(pfs, home="c0")
        res = drive(cluster, asc.submit_reduction("stats", "dem"))
        ref = StatsReduction().reference(dem)
        for key in ref:
            assert res["value"][key] == pytest.approx(ref[key])

    def test_histogram_offload_matches_reference(self, world, drive):
        cluster, pfs, dem = world
        asc = ActiveStorageClient(pfs, home="c0")
        res = drive(cluster, asc.submit_reduction("histogram", "dem"))
        lo, hi = 0.0, 1.0  # default HistogramReduction range
        expected, _ = np.histogram(dem.reshape(-1), bins=64, range=(lo, hi))
        assert np.array_equal(res["value"], expected)

    def test_reduction_moves_almost_nothing(self, world, drive):
        cluster, pfs, dem = world
        asc = ActiveStorageClient(pfs, home="c0")
        meter = TrafficMeter(cluster)
        drive(cluster, asc.submit_reduction("count-above", "dem"))
        traffic = meter.delta()
        assert traffic.wire_bytes < 0.05 * dem.nbytes
        assert traffic.server_bytes == 0  # no dependence, no halo

    def test_reduction_on_replicated_layout_counts_once(self, drive):
        """Replicated strips must not be double-counted: only primary
        runs contribute partials."""
        cluster = Cluster.build(n_compute=1, n_storage=4)
        pfs = ParallelFileSystem(cluster, strip_size=4 * KiB)
        dem = fractal_dem(128, 64, rng=np.random.default_rng(73))
        pfs.client("c0").ingest(
            "dem", dem, pfs.replicated_grouped(group=2, halo_strips=1)
        )
        asc = ActiveStorageClient(pfs, home="c0")
        res = drive(cluster, asc.submit_reduction("stats", "dem"))
        assert res["value"]["n"] == dem.size
        assert res["value"]["sum"] == pytest.approx(dem.sum())

    def test_unknown_reduction_rejected(self, world, drive):
        cluster, pfs, dem = world
        asc = ActiveStorageClient(pfs, home="c0")
        with pytest.raises(UnknownKernelError):
            drive(cluster, asc.submit_reduction("no-such-reduction", "dem"))

    def test_reduction_faster_than_client_side_scan(self, world, drive):
        """The classic active-storage result: the offloaded scan beats
        shipping the dataset to a client."""
        cluster, pfs, dem = world
        asc = ActiveStorageClient(pfs, home="c0")
        res = drive(cluster, asc.submit_reduction("stats", "dem"))

        cluster2 = Cluster.build(n_compute=2, n_storage=4)
        pfs2 = ParallelFileSystem(cluster2, strip_size=4 * KiB)
        pfs2.client("c0").ingest("dem", dem, pfs2.round_robin())

        def client_side():
            start = cluster2.env.now
            raw = yield pfs2.client("c0").read("dem", 0, dem.nbytes)
            yield cluster2.node("c0").cpu.run_kernel("stats", dem.size)
            StatsReduction().partial(raw.view(np.float64))
            return cluster2.env.now - start

        ts_elapsed = drive(cluster2, cluster2.env.process(client_side()))
        assert res["elapsed"] < 0.5 * ts_elapsed
