"""Tests for the locality-analysis helpers."""

import pytest

from repro.core import local_strides, locality_table
from repro.core.analysis import locality_table as _table

E = 8
STRIP = 64  # 8 elements per strip
D = 4


class TestLocalityTable:
    def test_eq17_column_matches_direct_check(self):
        rows = locality_table([8, 16, 32, 64], E, STRIP, D)
        verdicts = {r["stride"]: r["eq17_local"] for r in rows}
        assert verdicts == {8: False, 16: False, 32: True, 64: True}

    def test_exact_counts_zero_iff_local_for_aligned_strides(self):
        rows = locality_table([8, 16, 24, 32], E, STRIP, D, n_elements=256)
        for row in rows:
            if row["eq17_local"]:
                assert row["cross_server_deps"] == 0
            else:
                assert row["cross_server_deps"] > 0

    def test_sub_strip_stride_crosses_only_at_boundaries(self):
        # stride 1 fails Eq. (17) but only boundary elements cross:
        # the criterion is conservative, the exact count shows how much.
        [row] = locality_table([1], E, STRIP, D, n_elements=256)
        assert not row["eq17_local"]
        assert 0 < row["cross_fraction"] < 0.2

    def test_group_column_changes_verdicts(self):
        rows = locality_table([32], E, STRIP, D, groups=(1, 2))
        by_group = {r["group_r"]: r["eq17_local"] for r in rows}
        assert by_group == {1: True, 2: False}  # 32*8 = 64*4, not 2*64*4

    def test_rows_cover_cross_product(self):
        rows = locality_table([1, 2], E, STRIP, D, groups=(1, 2, 3))
        assert len(rows) == 6


class TestLocalStrides:
    def test_yields_server_round_multiples(self):
        assert list(local_strides(E, STRIP, D, limit=130)) == [32, 64, 96, 128]

    def test_group_factor_scales_the_round(self):
        assert list(local_strides(E, STRIP, D, group=2, limit=130)) == [64, 128]

    def test_all_yielded_strides_verify_exactly(self):
        from repro.core import cross_server_elements
        from repro.pfs import RoundRobinLayout
        import numpy as np

        layout = RoundRobinLayout([f"s{i}" for i in range(D)], STRIP)
        for stride in local_strides(E, STRIP, D, limit=200):
            assert (
                cross_server_elements(layout, 500, E, np.array([stride])) == 0
            )

    def test_non_integral_round_yields_nothing(self):
        # element size 7 never divides 64*4 evenly.
        assert list(local_strides(7, STRIP, D, limit=10_000)) == []
