"""Unit tests for the Kernel Features store."""

import pytest

from repro.core import KernelFeatures
from repro.errors import UnknownKernelError
from repro.kernels import DependencePattern, default_registry


def test_from_registry_covers_all_kernels():
    features = KernelFeatures.from_registry()
    for kernel in default_registry:
        assert kernel.name in features
        assert features.get(kernel.name) == kernel.pattern()


def test_unknown_operator_raises():
    with pytest.raises(UnknownKernelError):
        KernelFeatures().get("mystery")


def test_from_text_parses_paper_format():
    text = (
        "Name:flow-routing\n"
        "Dependence: -imgWidth+1, -imgWidth, -imgWidth-1, -1, 1,"
        " imgWidth-1, imgWidth, imgWidth+1\n"
    )
    features = KernelFeatures.from_text(text)
    assert features.get("flow-routing") == DependencePattern.eight_neighbor(
        "flow-routing"
    )


def test_text_roundtrip_preserves_store():
    original = KernelFeatures.from_registry()
    reparsed = KernelFeatures.from_text(original.to_text())
    assert reparsed.names() == original.names()
    for name in original.names():
        assert reparsed.get(name) == original.get(name)


def test_file_roundtrip(tmp_path):
    original = KernelFeatures.from_registry()
    path = tmp_path / "features.txt"
    original.save(path)
    loaded = KernelFeatures.from_file(path)
    assert loaded.names() == original.names()


def test_add_overwrites_record():
    features = KernelFeatures()
    features.add(DependencePattern.stride("op", 3))
    features.add(DependencePattern.stride("op", 5))
    assert features.get("op").offsets(1).tolist() == [-5, 5]
    assert len(features) == 1
