"""Unit tests for the layout optimizer and the offload decision engine."""

import pytest

from repro.core import (
    DecisionEngine,
    KernelFeatures,
    LayoutOptimizer,
    OFFLOAD_IN_PLACE,
    OFFLOAD_REDISTRIBUTE,
    SERVE_NORMAL,
)
from repro.errors import LayoutError
from repro.kernels import DependencePattern
from repro.pfs import ReplicatedGroupedLayout, RoundRobinLayout
from repro.pfs.datafile import FileMeta

SERVERS = [f"s{i}" for i in range(4)]
E = 8
STRIP = 512  # 64 elements per strip


def make_meta(n_strips=64, layout=None, width=32):
    layout = layout or RoundRobinLayout(SERVERS, STRIP)
    size = n_strips * STRIP
    n_elements = size // E
    shape = (n_elements // width, width) if width else None
    return FileMeta("f", size=size, layout=layout, shape=shape)


EIGHT = DependencePattern.eight_neighbor("flow-routing")


class TestLayoutOptimizer:
    def test_budget_must_be_positive(self):
        with pytest.raises(LayoutError):
            LayoutOptimizer(capacity_overhead_budget=0)

    def test_halo_strips_rounds_reach_up(self):
        opt = LayoutOptimizer()
        meta = make_meta(width=32)  # reach 33 elems = 264 B < 512 B strip
        assert opt.halo_strips_for(meta, EIGHT) == 1
        wide = make_meta(width=128)  # reach 129*8 = 1032 B -> 3 strips
        assert opt.halo_strips_for(wide, EIGHT) == 3

    def test_plan_meets_capacity_budget(self):
        opt = LayoutOptimizer(capacity_overhead_budget=0.25)
        plan = opt.plan(make_meta(), EIGHT)
        assert plan.fully_local
        assert plan.capacity_overhead <= 0.25
        assert isinstance(plan.layout, ReplicatedGroupedLayout)
        # 64 strips over 4 servers: r=16 balances perfectly (one group
        # per server) with the lowest overhead among balanced choices.
        assert plan.layout.group == 16

    def test_plan_prefers_balanced_groups(self):
        # 144 strips over 4 servers: r=8 (the bare budget answer) gives
        # 18 groups -> 5 groups on one server (40 strips) vs 4 (32) on
        # others; a balanced r keeps the max per-server load minimal.
        opt = LayoutOptimizer(capacity_overhead_budget=0.25)
        plan = opt.plan(make_meta(n_strips=144), EIGHT)
        import math

        r = plan.layout.group
        groups = math.ceil(144 / r)
        max_load = math.ceil(groups / 4) * r
        assert max_load == 36  # perfect 144/4 split

    def test_plan_clamps_group_to_server_share(self):
        opt = LayoutOptimizer(capacity_overhead_budget=0.01)  # wants r=200
        plan = opt.plan(make_meta(n_strips=64), EIGHT)
        assert plan.layout.group == 16  # 64 strips / 4 servers

    def test_independent_pattern_keeps_layout(self):
        plan = LayoutOptimizer().plan(make_meta(), DependencePattern.independent("x"))
        assert plan.layout is None
        assert plan.fully_local

    def test_infeasible_when_reach_exceeds_group(self):
        # 4 strips over 4 servers -> r max 1; halo needs 3 strips.
        meta = make_meta(n_strips=4, width=128)
        plan = LayoutOptimizer().plan(meta, EIGHT)
        assert plan.layout is None
        assert not plan.fully_local

    def test_already_optimal_detects_installed_layout(self):
        opt = LayoutOptimizer()
        meta = make_meta()
        assert not opt.already_optimal(meta, EIGHT)
        plan = opt.plan(meta, EIGHT)
        installed = make_meta(layout=plan.layout)
        assert opt.already_optimal(installed, EIGHT)

    def test_already_optimal_rejects_insufficient_halo(self):
        opt = LayoutOptimizer()
        thin = ReplicatedGroupedLayout(SERVERS, STRIP, group=8, halo_strips=1)
        meta = make_meta(layout=thin, width=128)  # needs 3 halo strips
        assert not opt.already_optimal(meta, EIGHT)


class TestDecisionEngine:
    @pytest.fixture
    def engine(self):
        return DecisionEngine(features=KernelFeatures.from_registry())

    def test_pipeline_amortisation_wins(self, engine):
        meta = make_meta()
        decision = engine.decide(meta, "flow-routing", pipeline_length=4)
        assert decision.outcome == OFFLOAD_REDISTRIBUTE
        assert decision.redistribute_to is not None
        assert decision.accept

    def test_one_shot_on_cold_file_served_normal(self, engine):
        meta = make_meta()
        decision = engine.decide(meta, "flow-routing", pipeline_length=1)
        assert decision.outcome == SERVE_NORMAL
        assert not decision.accept
        assert decision.redistribute_to is None

    def test_pre_distributed_file_offloads_in_place(self, engine):
        plan = LayoutOptimizer().plan(make_meta(), EIGHT)
        meta = make_meta(layout=plan.layout)
        decision = engine.decide(meta, "flow-routing")
        assert decision.outcome == OFFLOAD_IN_PLACE
        assert decision.prediction_current.offload_halo_bytes == 0

    def test_independent_operator_offloads_in_place(self, engine):
        engine.features.add(DependencePattern.independent("scan"))
        decision = engine.decide(make_meta(), "scan")
        assert decision.outcome == OFFLOAD_IN_PLACE

    def test_redistribution_can_be_disallowed(self, engine):
        meta = make_meta()
        decision = engine.decide(
            meta, "flow-routing", pipeline_length=10, allow_redistribution=False
        )
        assert decision.outcome == SERVE_NORMAL
        assert decision.prediction_planned is None

    def test_offload_cost_includes_amortised_redistribution(self, engine):
        meta = make_meta()
        decision = engine.decide(meta, "flow-routing", pipeline_length=4)
        assert decision.outcome == OFFLOAD_REDISTRIBUTE
        expected = (
            decision.prediction_planned.offload_bytes
            + decision.redistribution_penalty * decision.redistribution_bytes / 4
        )
        assert decision.offload_cost() == pytest.approx(expected)

    def test_longer_pipeline_never_flips_to_normal(self, engine):
        meta = make_meta()
        outcomes = [
            engine.decide(meta, "flow-routing", pipeline_length=k).accept
            for k in (1, 2, 4, 8, 16)
        ]
        # Once acceptance appears it persists for longer pipelines.
        first_accept = outcomes.index(True)
        assert all(outcomes[first_accept:])

    def test_decision_reason_is_informative(self, engine):
        decision = engine.decide(make_meta(), "flow-routing")
        assert "B" in decision.reason
        assert decision.pipeline_length == 1
