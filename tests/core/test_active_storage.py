"""Integration tests: AS servers, the Active Storage Client, pipelines."""

import numpy as np
import pytest

from repro.core import (
    ActiveRequest,
    ActiveStorageClient,
    Pipeline,
    PipelineStage,
)
from repro.errors import ActiveStorageError, OffloadRejectedError
from repro.hw import Cluster
from repro.kernels import default_registry
from repro.pfs import ParallelFileSystem
from repro.units import KiB
from repro.workloads import fractal_dem


@pytest.fixture
def world():
    cluster = Cluster.build(n_compute=2, n_storage=4)
    pfs = ParallelFileSystem(cluster, strip_size=4 * KiB)
    dem = fractal_dem(128, 256, rng=np.random.default_rng(3))  # 64 strips
    pfs.client("c0").ingest("dem", dem, pfs.round_robin())
    return cluster, pfs, dem


def test_submit_with_redistribution_produces_reference(world, drive):
    cluster, pfs, dem = world
    asc = ActiveStorageClient(pfs, home="c0")
    req = ActiveRequest("flow-routing", "dem", "dirs", pipeline_length=3)
    result = drive(cluster, asc.submit(req))
    assert result.offloaded
    assert result.redistribution_bytes > 0
    assert result.total_remote_halo_bytes == 0  # DAS layout localised it
    ref = default_registry.get("flow-routing").reference(dem)
    assert np.array_equal(pfs.client("c0").collect("dirs"), ref)
    assert pfs.client("c0").verify_replicas("dirs")


def test_submit_rejection_raises_with_decision(world, drive):
    cluster, pfs, dem = world
    asc = ActiveStorageClient(pfs, home="c0")
    req = ActiveRequest("flow-routing", "dem", "dirs", pipeline_length=1)
    with pytest.raises(OffloadRejectedError) as err:
        drive(cluster, asc.submit(req))
    assert err.value.decision.outcome == "serve-normal"


def test_force_offload_ignores_rejection(world, drive):
    cluster, pfs, dem = world
    asc = ActiveStorageClient(pfs, home="c0")
    req = ActiveRequest("flow-routing", "dem", "dirs", pipeline_length=1)
    result = drive(cluster, asc.submit(req, force_offload=True))
    assert result.offloaded
    ref = default_registry.get("flow-routing").reference(dem)
    assert np.array_equal(pfs.client("c0").collect("dirs"), ref)


def test_execute_offload_on_round_robin_pulls_remote_halo(world, drive):
    cluster, pfs, dem = world
    asc = ActiveStorageClient(pfs, home="c0")
    req = ActiveRequest("gaussian", "dem", "smooth", replicate_output=False)
    decision = asc.decide(req)
    result = drive(cluster, asc.execute_offload(req, decision))
    assert result.total_remote_halo_bytes > 0  # NAS-style neighbour pulls
    ref = default_registry.get("gaussian").reference(dem)
    assert np.array_equal(pfs.client("c0").collect("smooth"), ref)


def test_stats_cover_every_element(world, drive):
    cluster, pfs, dem = world
    asc = ActiveStorageClient(pfs, home="c0")
    req = ActiveRequest("median", "dem", "out", replicate_output=False)
    result = drive(cluster, asc.execute_offload(req, asc.decide(req)))
    assert result.total_elements == dem.size
    assert set(result.per_server) == set(pfs.server_names)
    assert all(s.runs >= 1 for s in result.per_server.values())


def test_existing_output_rejected(world, drive):
    cluster, pfs, dem = world
    asc = ActiveStorageClient(pfs, home="c0")
    pfs.metadata.create("dirs", dem.nbytes, pfs.round_robin())
    req = ActiveRequest("flow-routing", "dem", "dirs")
    with pytest.raises(ActiveStorageError):
        drive(cluster, asc.submit(req, force_offload=True))


def test_non_float64_input_rejected(world, drive):
    cluster, pfs, dem = world
    pfs.client("c0").ingest(
        "ints", np.zeros((64, 64), dtype=np.int32), pfs.round_robin()
    )
    asc = ActiveStorageClient(pfs, home="c0")
    req = ActiveRequest("gaussian", "ints", "out")
    with pytest.raises(ActiveStorageError):
        drive(cluster, asc.submit(req, force_offload=True))


def test_exact_halo_granularity_also_correct(world, drive):
    cluster, pfs, dem = world
    asc = ActiveStorageClient(pfs, home="c0", halo_granularity="exact")
    req = ActiveRequest("slope", "dem", "out", replicate_output=False)
    result = drive(cluster, asc.execute_offload(req, asc.decide(req)))
    ref = default_registry.get("slope").reference(dem)
    assert np.array_equal(pfs.client("c0").collect("out"), ref)
    assert result.total_remote_halo_bytes > 0


def test_unknown_halo_granularity_rejected(world):
    cluster, pfs, dem = world
    with pytest.raises(ActiveStorageError):
        ActiveStorageClient(pfs, home="c0", halo_granularity="telepathic")


class TestPipeline:
    def test_empty_pipeline_rejected(self):
        with pytest.raises(ActiveStorageError):
            Pipeline([])

    def test_requests_derive_names_and_lengths(self):
        pipe = Pipeline(["flow-routing", "flow-accumulation"])
        reqs = pipe.requests("dem")
        assert [r.operator for r in reqs] == ["flow-routing", "flow-accumulation"]
        assert reqs[0].output == "dem.flow-routing"
        assert reqs[1].file == "dem.flow-routing"
        assert [r.pipeline_length for r in reqs] == [2, 1]

    def test_explicit_stage_outputs(self):
        pipe = Pipeline([PipelineStage("gaussian", output="g1")])
        assert pipe.requests("img")[0].output == "g1"

    def test_submit_runs_stages_in_order(self, world, drive):
        cluster, pfs, dem = world
        asc = ActiveStorageClient(pfs, home="c0")
        pipe = Pipeline(
            [
                PipelineStage("flow-routing", output="dirs"),
                PipelineStage("flow-accumulation", output="acc"),
            ]
        )
        results = drive(cluster, pipe.submit(asc, "dem"))
        assert len(results) == 2
        assert all(r.offloaded for r in results)
        fr = default_registry.get("flow-routing")
        fa = default_registry.get("flow-accumulation")
        dirs = pfs.client("c0").collect("dirs")
        assert np.array_equal(dirs, fr.reference(dem))
        assert np.array_equal(pfs.client("c0").collect("acc"), fa.reference(dirs))

    def test_second_stage_needs_no_redistribution(self, world, drive):
        cluster, pfs, dem = world
        asc = ActiveStorageClient(pfs, home="c0")
        pipe = Pipeline(["flow-routing", "flow-accumulation"])
        results = drive(cluster, pipe.submit(asc, "dem"))
        assert results[0].decision.outcome == "offload-redistribute"
        assert results[1].decision.outcome == "offload-in-place"
        assert results[1].redistribution_bytes == 0
        assert results[1].total_remote_halo_bytes == 0


class TestASServerKnobs:
    def test_invalid_inflight_rejected(self, world):
        from repro.core.as_server import ASServer

        cluster, pfs, dem = world
        with pytest.raises(ActiveStorageError):
            ASServer(pfs, "s0", max_inflight_runs=0)

    def test_serial_runs_not_faster_than_pipelined(self, world, drive):
        from repro.core.as_server import ASServer

        def run(inflight):
            cluster = Cluster.build(n_compute=2, n_storage=4)
            pfs = ParallelFileSystem(cluster, strip_size=4 * KiB)
            dem = fractal_dem(128, 256, rng=np.random.default_rng(3))
            pfs.client("c0").ingest("dem", dem, pfs.round_robin())
            asc = ActiveStorageClient(pfs, home="c0", start_servers=False)
            asc.servers = {
                name: ASServer(pfs, name, max_inflight_runs=inflight)
                for name in pfs.server_names
            }
            req = ActiveRequest("gaussian", "dem", "out", replicate_output=False)
            res = drive(cluster, asc.execute_offload(req, asc.decide(req)))
            ref = default_registry.get("gaussian").reference(dem)
            assert np.array_equal(pfs.client("c0").collect("out"), ref)
            return res.elapsed

        serial = run(1)
        pipelined = run(4)
        assert pipelined <= serial


class TestRPCOverhead:
    def test_reply_charges_configured_overhead(self, drive):
        from repro.config import PlatformSpec
        from repro.units import GiB, us

        spec = PlatformSpec(nic_bandwidth=1 * GiB, nic_latency=0.0, rpc_overhead=500 * us)
        cluster = Cluster.build(n_compute=1, n_storage=1, spec=spec)

        def server():
            req = yield cluster.transport.recv("s0", tag="rpc")
            yield cluster.transport.reply(req, "pong", 1)

        cluster.env.process(server())

        def client():
            yield cluster.transport.call("c0", "s0", "ping", 1)
            return cluster.env.now

        t = drive(cluster, cluster.env.process(client()))
        assert t >= 500e-6  # the reply path includes the overhead
