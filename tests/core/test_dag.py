"""Tests for DAG-structured operation graphs."""

import numpy as np
import pytest

from repro.core import ActiveStorageClient, OperationGraph
from repro.errors import ActiveStorageError
from repro.hw import Cluster
from repro.kernels import default_registry
from repro.pfs import ParallelFileSystem
from repro.units import KiB
from repro.workloads import fractal_dem
from repro.harness.platform import ingest_for_scheme


@pytest.fixture
def world():
    cluster = Cluster.build(n_compute=2, n_storage=4)
    pfs = ParallelFileSystem(cluster, strip_size=4 * KiB)
    dem = fractal_dem(128, 256, rng=np.random.default_rng(91))
    ingest_for_scheme(pfs, "DAS", "dem", dem, "flow-routing")
    asc = ActiveStorageClient(pfs, home="c0")
    return cluster, pfs, dem, asc


class TestStructure:
    def test_duplicate_node_rejected(self):
        g = OperationGraph().add("a", "gaussian", "src")
        with pytest.raises(ActiveStorageError):
            g.add("a", "median", "src")

    def test_empty_graph_rejected(self):
        with pytest.raises(ActiveStorageError):
            OperationGraph().validate()

    def test_cycle_rejected(self):
        g = OperationGraph()
        g.add("a", "gaussian", "b").add("b", "gaussian", "a")
        with pytest.raises(ActiveStorageError, match="cycle"):
            g.validate()

    def test_descendant_counts(self):
        g = (
            OperationGraph()
            .add("dirs", "flow-routing", "dem")
            .add("acc", "flow-accumulation", "dirs")
            .add("smooth", "gaussian", "acc")
            .add("rough", "relief", "dirs")
        )
        assert g.descendants("dirs") == 3
        assert g.descendants("acc") == 1
        assert g.descendants("smooth") == 0
        assert g.roots() == ["dirs"]

    def test_children_and_parents(self):
        g = OperationGraph().add("a", "gaussian", "src").add("b", "median", "a")
        assert g.parents("a") is None  # src is a file, not a node
        assert g.parents("b") == "a"
        assert g.children("a") == ["b"]


class TestExecution:
    def test_linear_chain_matches_references(self, world, drive):
        cluster, pfs, dem, asc = world
        g = (
            OperationGraph()
            .add("dirs", "flow-routing", "dem")
            .add("acc", "flow-accumulation", "dirs")
        )
        results = drive(cluster, g.submit(asc))
        assert set(results) == {"dirs", "acc"}
        fr = default_registry.get("flow-routing")
        fa = default_registry.get("flow-accumulation")
        dirs = pfs.client("c0").collect("dirs")
        assert np.array_equal(dirs, fr.reference(dem))
        assert np.array_equal(pfs.client("c0").collect("acc"), fa.reference(dirs))

    def test_branching_graph_runs_all_products(self, world, drive):
        cluster, pfs, dem, asc = world
        g = (
            OperationGraph()
            .add("dirs", "flow-routing", "dem")
            .add("acc", "flow-accumulation", "dirs")
            .add("smooth", "gaussian", "dem")
            .add("rough", "relief", "dem")
        )
        results = drive(cluster, g.submit(asc))
        assert len(results) == 4
        client = pfs.client("c0")
        assert np.array_equal(
            client.collect("smooth"), default_registry.get("gaussian").reference(dem)
        )
        assert np.array_equal(
            client.collect("rough"), default_registry.get("relief").reference(dem)
        )

    def test_branches_overlap_in_time(self, world, drive):
        """Two independent products of the same input must not run
        strictly sequentially."""
        cluster, pfs, dem, asc = world
        g = (
            OperationGraph()
            .add("smooth", "gaussian", "dem")
            .add("rough", "relief", "dem")
        )
        results = drive(cluster, g.submit(asc))
        total = cluster.env.now
        serial = sum(r.elapsed for r in results.values())
        assert total < serial  # overlap happened

    def test_amortisation_follows_descendant_count(self, world, drive):
        cluster, pfs, dem, asc = world
        # Fresh round-robin file: the root decision sees 3 ops sharing
        # the pattern (itself + 2 descendants), enough to redistribute.
        pfs.client("c0").ingest(
            "cold", fractal_dem(128, 256, rng=np.random.default_rng(92)),
            pfs.round_robin(),
        )
        g = (
            OperationGraph()
            .add("c.dirs", "flow-routing", "cold")
            .add("c.acc", "flow-accumulation", "c.dirs")
            .add("c.smooth", "gaussian", "c.acc")
        )
        results = drive(cluster, g.submit(asc))
        assert results["c.dirs"].decision.outcome == "offload-redistribute"
        assert results["c.acc"].decision.outcome == "offload-in-place"
        assert results["c.smooth"].decision.outcome == "offload-in-place"
