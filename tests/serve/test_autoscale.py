"""The autoscale controller: policy, hysteresis, resizes, safety.

Three layers of coverage:

* pure logic — policy validation and :func:`scaled_layout` re-spanning;
* control loop — breach/calm streaks, the hysteresis band, cooldown and
  clamp, driven by hand-fed window samples against a real platform;
* integration — a full ramped serving run where resizes race in-flight
  requests, asserting conservation, cache invalidation, and that the
  per-request output CRCs match a never-resized run of the same
  workload (exactly-once, digest-identical across resizes).
"""

import numpy as np
import pytest

from repro.errors import ServeError
from repro.hw import Cluster
from repro.pfs import ParallelFileSystem
from repro.pfs.layout import GroupedLayout, RoundRobinLayout
from repro.pfs.replicated import ReplicatedGroupedLayout
from repro.serve import (
    AutoscaleController,
    AutoscalePolicy,
    ServeConfig,
    ServeSystem,
    SLOWindow,
    scaled_layout,
)
from repro.serve.autoscale import AutoscaleAction
from repro.serve.dispatch import LoadAwareExecutor
from repro.serve.workload import TenantSpec
from repro.units import KiB
from repro.workloads import fractal_dem


class TestPolicyValidation:
    def test_defaults_valid(self):
        AutoscalePolicy()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"min_servers": 0},
            {"min_servers": 3, "max_servers": 2},
            {"interval": 0.0},
            {"cooldown": -1.0},
            {"p99_low": 0.0},
            {"p99_low": 0.6, "p99_high": 0.5},
            {"queue_high": 0},
            {"breach_ticks": 0},
            {"calm_ticks": 0},
            {"step": 0},
            {"min_samples": 0},
        ],
    )
    def test_rejects_bad_knobs(self, kwargs):
        with pytest.raises(ServeError):
            AutoscalePolicy(**kwargs)


class TestScaledLayout:
    SERVERS4 = ["s0", "s1", "s2", "s3"]

    def test_empty_servers_raises(self):
        with pytest.raises(ServeError):
            scaled_layout(RoundRobinLayout(["s0"], 4 * KiB), [], 64 * KiB)

    def test_round_robin_respans(self):
        out = scaled_layout(
            RoundRobinLayout(["s0", "s1"], 4 * KiB), self.SERVERS4, 64 * KiB
        )
        assert isinstance(out, RoundRobinLayout)
        assert list(out.servers) == self.SERVERS4
        assert out.strip_size == 4 * KiB

    def test_grouped_shrinks_group_on_more_servers(self):
        # 16 strips over 2 servers needs group 8; over 4 it needs 4.
        old = GroupedLayout(["s0", "s1"], 4 * KiB, 8)
        out = scaled_layout(old, self.SERVERS4, 64 * KiB)
        assert isinstance(out, GroupedLayout)
        assert out.group == 4

    def test_replicated_preserves_halo(self):
        old = ReplicatedGroupedLayout(["s0", "s1"], 4 * KiB, 8, halo_strips=2)
        out = scaled_layout(old, self.SERVERS4, 64 * KiB)
        assert isinstance(out, ReplicatedGroupedLayout)
        assert out.halo_strips == 2
        assert out.group == 4

    def test_group_never_below_halo(self):
        # Halo reach bounds the group from below, or replication breaks.
        old = ReplicatedGroupedLayout(["s0"], 4 * KiB, 4, halo_strips=3)
        out = scaled_layout(old, self.SERVERS4, 16 * KiB)  # 4 strips
        assert out.group >= out.halo_strips


class FakeScheduler:
    def __init__(self):
        self.queues = {"t": []}


class FakeBoard:
    """Just enough board for the controller: a window and two totals."""

    def __init__(self, horizon=2.0):
        self.window = SLOWindow(horizon)
        self.total_admitted = 0
        self.total_settled = 0


def build_world(ingest_servers=2, halo=True):
    cluster = Cluster.build(n_compute=2, n_storage=4)
    pfs = ParallelFileSystem(cluster, strip_size=4 * KiB)
    dem = fractal_dem(128, 128, rng=np.random.default_rng(7))  # 16 strips
    subset = pfs.server_names[:ingest_servers]
    if halo:
        layout = ReplicatedGroupedLayout(subset, 4 * KiB, 8, halo_strips=1)
    else:
        layout = RoundRobinLayout(subset, 4 * KiB)
    pfs.client("c0").ingest("dem", dem, layout)
    return cluster, pfs


def build_controller(policy, duration=60.0, ingest_servers=2):
    cluster, pfs = build_world(ingest_servers=ingest_servers)
    executor = LoadAwareExecutor(pfs, scheme="DAS")
    scheduler = FakeScheduler()
    board = FakeBoard()
    controller = AutoscaleController(
        pfs, executor, scheduler, board, policy,
        files=("dem",), duration=duration,
    )
    return cluster, pfs, executor, scheduler, board, controller


def feed_breach(cluster, board, latency=5.0, period=0.1, until=10.0):
    """A process that keeps the window full of slow finishes."""

    def feeder():
        while cluster.env.now < until:
            board.window.record(cluster.env.now, latency)
            yield cluster.env.timeout(period)

    cluster.env.process(feeder(), name="breach-feeder")


class TestControllerConstruction:
    def test_clamp_beyond_cluster_raises(self):
        cluster, pfs = build_world()
        with pytest.raises(ServeError):
            AutoscaleController(
                pfs, LoadAwareExecutor(pfs, scheme="DAS"), FakeScheduler(),
                FakeBoard(), AutoscalePolicy(max_servers=9),
                files=("dem",), duration=10.0,
            )

    def test_no_files_raises(self):
        cluster, pfs = build_world()
        with pytest.raises(ServeError):
            AutoscaleController(
                pfs, LoadAwareExecutor(pfs, scheme="DAS"), FakeScheduler(),
                FakeBoard(), AutoscalePolicy(),
                files=(), duration=10.0,
            )

    def test_initial_partition_outside_clamp_raises(self):
        cluster, pfs = build_world(ingest_servers=4)
        with pytest.raises(ServeError):
            AutoscaleController(
                pfs, LoadAwareExecutor(pfs, scheme="DAS"), FakeScheduler(),
                FakeBoard(), AutoscalePolicy(min_servers=1, max_servers=2),
                files=("dem",), duration=10.0,
            )

    def test_start_twice_raises(self):
        *_, controller = build_controller(AutoscalePolicy(min_servers=2))
        controller.start()
        with pytest.raises(ServeError):
            controller.start()


class TestHysteresis:
    """Streak logic, exercised tick by tick without running the sim.

    ``_tick()`` is a generator that only yields when it commits a
    resize, so a no-action tick can be driven synchronously with
    ``list()`` and its streak bookkeeping inspected directly.
    """

    def policy(self, **kwargs):
        defaults = dict(
            min_servers=2, max_servers=4, breach_ticks=3, calm_ticks=3,
            min_samples=1, p99_low=0.2, p99_high=0.5,
        )
        defaults.update(kwargs)
        return AutoscalePolicy(**defaults)

    def test_single_breach_tick_does_not_scale(self):
        *_, board, controller = build_controller(self.policy())[3:]
        board.window.record(0.0, 5.0)
        assert list(controller._tick()) == []
        assert controller._breach_streak == 1
        assert controller.active == 2
        assert controller.actions == []

    def test_queue_depth_alone_breaches(self):
        _, _, _, scheduler, _, controller = build_controller(self.policy())
        scheduler.queues["t"] = list(range(30))  # >= queue_high
        list(controller._tick())
        assert controller._breach_streak == 1

    def test_ambiguous_band_resets_both_streaks(self):
        *_, board, controller = build_controller(self.policy())[3:]
        board.window.record(0.0, 5.0)
        list(controller._tick())
        assert controller._breach_streak == 1
        # p99 lands between p99_low and p99_high: neither breach nor calm.
        board.window._samples.clear()
        board.window.record(0.0, 0.3)
        list(controller._tick())
        assert controller._breach_streak == 0
        assert controller._calm_streak == 0

    def test_warm_up_gates_the_latency_breach(self):
        *_, board, controller = build_controller(
            self.policy(min_samples=5)
        )[3:]
        board.window.record(0.0, 5.0)  # breaching p99, but 1 < min_samples
        list(controller._tick())
        assert controller._breach_streak == 0

    def test_empty_window_idle_queues_count_calm(self):
        *_, controller = build_controller(self.policy())
        list(controller._tick())
        assert controller._calm_streak == 1

    def test_cooldown_holds_a_ready_scale_up(self):
        cluster, _, _, _, board, controller = build_controller(
            self.policy(breach_ticks=1, cooldown=100.0)
        )
        controller._last_action_at = 0.0  # pretend a resize just happened
        board.window.record(0.0, 5.0)
        assert list(controller._tick()) == []
        assert controller.actions == []
        holds = cluster.monitors.counter("autoscale.cooldown_holds").value
        assert holds == 1


class TestResize:
    def test_breach_streak_scales_up(self):
        policy = AutoscalePolicy(
            min_servers=2, max_servers=4, interval=0.25, breach_ticks=2,
            min_samples=1, cooldown=100.0,  # one action only
        )
        cluster, pfs, executor, _, board, controller = build_controller(
            policy, duration=5.0
        )
        feed_breach(cluster, board, until=4.0)
        controller.start()
        cluster.run()
        assert [a.direction for a in controller.actions] == ["up"]
        assert controller.active == 3
        assert controller.partition() == pfs.server_names[:3]
        # The file really moved: its layout now spans the new partition.
        layout = pfs.metadata.lookup("dem").layout
        assert list(layout.servers) == pfs.server_names[:3]
        assert layout.halo_strips == 1  # reach preserved across the move
        assert controller.actions[0].moved_bytes > 0
        assert cluster.monitors.counter("autoscale.scale_ups").value == 1

    def test_calm_streak_scales_down_and_drops_stray_caches(self):
        policy = AutoscalePolicy(
            min_servers=2, max_servers=4, interval=0.25, calm_ticks=2,
            cooldown=100.0,
        )
        cluster, pfs, executor, _, board, controller = build_controller(
            policy, duration=5.0, ingest_servers=3
        )
        # Warm the outgoing server's strip cache so the drop is visible
        # (the default platform runs cacheless; give it a budget first).
        third = pfs.server_names[2]
        pfs.servers[third].cache.budget = 64 * KiB
        pfs.servers[third].cache.insert(("dem", 0), 4 * KiB)
        assert len(pfs.servers[third].cache) == 1
        controller.start()
        cluster.run()
        assert [a.direction for a in controller.actions] == ["down"]
        assert controller.active == 2
        assert len(pfs.servers[third].cache) == 0
        layout = pfs.metadata.lookup("dem").layout
        assert list(layout.servers) == pfs.server_names[:2]

    def test_resize_invalidates_decision_cache(self):
        policy = AutoscalePolicy(
            min_servers=2, max_servers=4, interval=0.25, breach_ticks=1,
            min_samples=1, cooldown=100.0,
        )
        cluster, pfs, executor, _, board, controller = build_controller(
            policy, duration=2.0
        )
        # Warm the decision cache with the pre-resize geometry.
        meta = pfs.metadata.lookup("dem")
        executor.cache.decide(meta, "gaussian", pipeline_length=2)
        assert executor.cache.stats.misses == 1
        feed_breach(cluster, board, until=1.5)
        controller.start()
        cluster.run()
        assert controller.actions, "no resize happened"
        # The stale verdict is gone: the same consult misses again.
        executor.cache.decide(
            pfs.metadata.lookup("dem"), "gaussian", pipeline_length=2
        )
        assert executor.cache.stats.misses == 2

    def test_observer_mode_never_resizes(self):
        policy = AutoscalePolicy(
            min_servers=2, max_servers=2, interval=0.25, breach_ticks=1,
            min_samples=1,
        )
        cluster, pfs, executor, _, board, controller = build_controller(
            policy, duration=3.0
        )
        feed_breach(cluster, board, until=2.5)
        controller.start()
        cluster.run()
        assert controller.actions == []
        assert controller.active == 2
        assert cluster.monitors.counter("autoscale.breaches").value > 0
        assert [o for o in controller.trace if o["breach"]], "never observed"


def ramped_run(autoscale):
    """One small ramped serving run on the throttled serving platform
    (the default platform is too fast for a 4x surge to queue anything);
    returns (summary, system)."""
    from repro.harness.serve_bench import SERVE_SPEC

    cluster = Cluster.build(n_compute=4, n_storage=4, spec=SERVE_SPEC)
    pfs = ParallelFileSystem(cluster, strip_size=4 * KiB)
    dem = fractal_dem(128, 192, rng=np.random.default_rng(11))
    subset = pfs.server_names[:2]
    pfs.client("c0").ingest(
        "dem", dem, ReplicatedGroupedLayout(subset, 4 * KiB, 12, halo_strips=1)
    )
    config = ServeConfig(
        tenants=(
            TenantSpec("t", rate=8.0, kernels=("gaussian",), files=("dem",)),
        ),
        scheme="DAS",
        duration=6.0,
        deadline=0.5,
        concurrency=4,
        queue_capacity=12,
        ramp=((0.0, 1.0), (1.5, 4.0), (4.0, 0.25)),
        autoscale=autoscale,
    )
    system = ServeSystem(pfs, config)
    return system.run(), system


class TestServingIntegration:
    def test_resizes_race_in_flight_requests_safely(self):
        policy = AutoscalePolicy(
            min_servers=2, max_servers=4, interval=0.25, breach_ticks=2,
            calm_ticks=4, cooldown=0.5, min_samples=3, queue_high=6,
            p99_high=0.5, p99_low=0.25,
        )
        observer = AutoscalePolicy(
            min_servers=2, max_servers=2, interval=policy.interval,
            breach_ticks=policy.breach_ticks, calm_ticks=policy.calm_ticks,
            cooldown=policy.cooldown, min_samples=policy.min_samples,
            queue_high=policy.queue_high, p99_high=policy.p99_high,
            p99_low=policy.p99_low,
        )
        auto_summary, auto_system = ramped_run(policy)
        static_summary, static_system = ramped_run(observer)

        a = auto_summary["autoscale"]
        assert a["scale_ups"] >= 1, "surge never triggered a resize"
        # Exactly-once conservation straight through the resizes.
        assert auto_summary["admitted"] == auto_summary["settled"]
        assert static_summary["admitted"] == static_summary["settled"]
        # Digest-identical: any request completed by both runs produced
        # the same output bytes, resize or no resize.
        auto_digests = auto_system.executor.digests
        static_digests = static_system.executor.digests
        shared = set(auto_digests) & set(static_digests)
        assert shared, "runs completed no common requests"
        assert all(auto_digests[r] == static_digests[r] for r in shared)

    def test_summary_block_only_when_configured(self):
        summary, _ = ramped_run(None)
        assert "autoscale" not in summary

    def test_replay_is_bit_identical(self):
        policy = AutoscalePolicy(
            min_servers=2, max_servers=4, interval=0.25, breach_ticks=2,
            calm_ticks=4, cooldown=0.5, min_samples=3, queue_high=6,
        )
        first, _ = ramped_run(policy)
        second, _ = ramped_run(policy)
        assert first == second

    def test_action_log_round_trips_into_summary(self):
        policy = AutoscalePolicy(
            min_servers=2, max_servers=4, interval=0.25, breach_ticks=2,
            calm_ticks=4, cooldown=0.5, min_samples=3, queue_high=6,
        )
        summary, system = ramped_run(policy)
        block = summary["autoscale"]
        assert len(block["actions"]) == len(system.autoscaler.actions)
        for entry, action in zip(block["actions"], system.autoscaler.actions):
            assert isinstance(action, AutoscaleAction)
            assert entry["direction"] == action.direction
            assert entry["to"] == action.to_servers
