"""Redistribution vs in-flight reads: the per-file reader-writer fence.

A cold (round-robin) file under DAS serving triggers a redistribution
on first use.  These tests hammer one file with many concurrent
requests — some offloading, some diverted to normal-path reads — while
the move happens, and assert the fence kept every result correct and
the move exactly-once.
"""

import numpy as np
import pytest

from repro.hw import Cluster
from repro.pfs import ParallelFileSystem
from repro.serve.dispatch import LoadAwareExecutor
from repro.serve.workload import ServeRequest
from repro.units import KiB
from repro.workloads import fractal_dem


@pytest.fixture
def world():
    cluster = Cluster.build(n_compute=2, n_storage=4)
    pfs = ParallelFileSystem(cluster, strip_size=4 * KiB)
    dem = fractal_dem(128, 128, rng=np.random.default_rng(31))  # 16 strips
    pfs.client("c0").ingest("dem", dem, pfs.round_robin())
    return cluster, pfs, dem


def make_request(req_id, meta_size, pipeline_length=2):
    # pipeline_length=2 amortises the redistribution penalty so the
    # engine picks offload-redistribute on the cold round-robin layout;
    # pipeline_length=1 requests stay on the normal path.  Neither
    # changes the result bytes — it is purely a cost-model knob.
    return ServeRequest(
        req_id=req_id,
        tenant="t",
        operator="gaussian",
        file="dem",
        arrival=0.0,
        deadline=1e9,
        cost=meta_size,
        pipeline_length=pipeline_length,
    )


def hammer(cluster, executor, n_requests):
    """Launch ``n_requests`` concurrent executions against one file:
    every third request is a short (normal-path) pipeline, the rest
    offload — so reads race the redistribution both ways."""
    size = executor.pfs.metadata.lookup("dem").size
    procs = [
        executor.execute(
            make_request(i, size, pipeline_length=1 if i % 3 == 2 else 2)
        )
        for i in range(n_requests)
    ]
    results = []

    def join():
        for proc in procs:
            results.append((yield proc))

    cluster.run(until=cluster.env.process(join()))
    return results


def test_redistribution_races_in_flight_reads(world):
    cluster, pfs, _ = world
    executor = LoadAwareExecutor(pfs, scheme="DAS")
    results = hammer(cluster, executor, 12)
    assert len(results) == 12
    # The cold file was moved exactly once, not once per request: the
    # write fence serialised the movers and the re-consult found the
    # improved layout already installed.
    assert cluster.monitors.counter("serve.redistributions").value == 1
    # Mixed traffic really happened: both paths served requests.
    paths = {r["path"] for r in results}
    assert paths == {"offload", "normal"}
    # Every request produced the same result bytes, whether its read ran
    # before, during or after the move.
    digests = set(executor.digests.values())
    assert len(executor.digests) == 12
    assert len(digests) == 1


def test_replicas_consistent_after_racing_move(world):
    cluster, pfs, dem = world
    executor = LoadAwareExecutor(pfs, scheme="DAS")
    hammer(cluster, executor, 8)
    meta = pfs.metadata.lookup("dem")
    assert type(meta.layout).__name__ == "ReplicatedGroupedLayout"

    # After the dust settles the file's primaries and replicas agree
    # and a plain read returns the original bytes.
    assert pfs.client("c0").verify_replicas("dem")

    def check():
        return (yield pfs.client("c0").read("dem", 0, dem.nbytes))

    proc = cluster.env.process(check())
    cluster.run(until=proc)
    assert np.array_equal(proc.value, dem.view(np.uint8).reshape(-1))


def test_sequential_requests_reuse_the_moved_layout(world):
    cluster, pfs, _ = world
    executor = LoadAwareExecutor(pfs, scheme="DAS")
    size = pfs.metadata.lookup("dem").size

    def one(req_id):
        proc = executor.execute(make_request(req_id, size))
        cluster.run(until=proc)
        return proc.value

    first = one(0)
    second = one(1)
    assert first["path"] == "offload"
    assert second["path"] == "offload"
    assert cluster.monitors.counter("serve.redistributions").value == 1
