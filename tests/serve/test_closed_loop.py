"""Closed-loop workload: bounded population, think time, affinity.

The defining property of the closed loop is that offered load is an
*outcome*: each client waits for its previous request to settle before
thinking up the next, so in-flight demand can never exceed the
population and conservation (every generated request is admitted or
rejected; every admitted one settles exactly once) holds under any mix
of think times, affinities, service times and backend faults.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ServeError
from repro.harness.common import build_serve_platform, ingest_files
from repro.hw import Cluster
from repro.serve import (
    OUTCOMES,
    ClosedLoopWorkload,
    FairScheduler,
    OpenLoopWorkload,
    RetryPolicy,
    ServeConfig,
    ServeSystem,
    SLOBoard,
    TenantSpec,
)

import numpy as np


def closed_tenant(**overrides):
    kwargs = dict(
        name="c",
        mode="closed",
        population=2,
        think_time=0.1,
        affinity=0.5,
        files=("f",),
    )
    kwargs.update(overrides)
    return TenantSpec(**kwargs)


class TestSpecValidation:
    def test_closed_needs_positive_population(self):
        with pytest.raises(ServeError, match="population"):
            closed_tenant(population=0)

    def test_closed_needs_positive_think_time(self):
        with pytest.raises(ServeError, match="think_time"):
            closed_tenant(think_time=0.0)

    def test_affinity_is_a_probability(self):
        with pytest.raises(ServeError, match="affinity"):
            closed_tenant(affinity=1.5)

    def test_unknown_mode(self):
        with pytest.raises(ServeError, match="mode"):
            closed_tenant(mode="half-open")

    def test_open_loop_rejects_closed_tenants(self):
        cluster = Cluster.build(n_compute=1, n_storage=1)
        with pytest.raises(ServeError, match="ClosedLoopWorkload"):
            OpenLoopWorkload(cluster, (closed_tenant(),), duration=1.0,
                             deadline=1.0)

    def test_closed_loop_rejects_open_tenants(self):
        cluster = Cluster.build(n_compute=1, n_storage=1)
        with pytest.raises(ServeError, match="OpenLoopWorkload"):
            ClosedLoopWorkload(
                cluster, (TenantSpec("o", rate=1.0, files=("f",)),),
                duration=1.0, deadline=1.0,
            )


class RecordingSink:
    """Accepts everything instantly; settles after a scripted delay."""

    def __init__(self, cluster, delay=0.01, capacity=None):
        self.cluster = cluster
        self.delay = delay
        self.capacity = capacity
        self.requests = []
        self.in_flight = 0
        self.peak_in_flight = 0
        self.rejected = 0

    def submit(self, req):
        if self.capacity is not None and self.in_flight >= self.capacity:
            self.rejected += 1
            return False
        self.requests.append(req)
        self.in_flight += 1
        self.peak_in_flight = max(self.peak_in_flight, self.in_flight)
        self.cluster.env.process(self._settle(req))
        return True

    def _settle(self, req):
        yield self.cluster.env.timeout(self.delay)
        self.in_flight -= 1
        req.extra["settled"].succeed("completed")


class TestClosedLoopBehaviour:
    def test_in_flight_never_exceeds_population(self):
        cluster = Cluster.build(n_compute=1, n_storage=1)
        workload = ClosedLoopWorkload(
            cluster,
            (closed_tenant(population=3, think_time=0.02),),
            duration=2.0,
            deadline=1.0,
        )
        sink = RecordingSink(cluster, delay=0.5)  # slow system
        workload.start(sink)
        cluster.run()
        assert workload.generated == len(sink.requests)
        assert workload.generated > 0
        assert sink.peak_in_flight <= workload.population

    def test_full_affinity_pins_each_client_to_one_file(self):
        cluster = Cluster.build(n_compute=1, n_storage=1)
        workload = ClosedLoopWorkload(
            cluster,
            (closed_tenant(population=1, affinity=1.0, think_time=0.05,
                           files=("f0", "f1", "f2")),),
            duration=3.0,
            deadline=1.0,
        )
        sink = RecordingSink(cluster)
        workload.start(sink)
        cluster.run()
        assert len(sink.requests) > 5
        assert len({r.file for r in sink.requests}) == 1

    def test_zero_affinity_spreads_over_the_files(self):
        cluster = Cluster.build(n_compute=1, n_storage=1)
        workload = ClosedLoopWorkload(
            cluster,
            (closed_tenant(population=2, affinity=0.0, think_time=0.02,
                           files=("f0", "f1")),),
            duration=3.0,
            deadline=1.0,
        )
        sink = RecordingSink(cluster)
        workload.start(sink)
        cluster.run()
        assert {r.file for r in sink.requests} == {"f0", "f1"}

    def test_rejection_costs_a_think_gap_not_a_spin(self):
        cluster = Cluster.build(n_compute=1, n_storage=1)
        workload = ClosedLoopWorkload(
            cluster,
            (closed_tenant(population=2, think_time=0.05),),
            duration=2.0,
            deadline=1.0,
        )
        sink = RecordingSink(cluster, delay=10.0, capacity=1)
        workload.start(sink)
        cluster.run()  # terminates: no zero-time resubmit loop
        assert sink.rejected > 0

    def test_ids_never_collide_with_open_loop(self):
        from repro.serve.workload import CLOSED_ID_BASE

        cluster = Cluster.build(n_compute=1, n_storage=1)
        workload = ClosedLoopWorkload(
            cluster, (closed_tenant(),), duration=1.0, deadline=1.0
        )
        sink = RecordingSink(cluster)
        workload.start(sink)
        cluster.run()
        assert all(r.req_id > CLOSED_ID_BASE for r in sink.requests)


@pytest.fixture(scope="module")
def mixed_summary():
    def run():
        cluster, pfs = build_serve_platform()
        ingest_files(pfs, "DAS", np.random.default_rng(7))
        config = ServeConfig(
            tenants=(
                TenantSpec("open", rate=4.0, files=("dem_a",)),
                TenantSpec("closed", mode="closed", population=2,
                           think_time=0.1, affinity=0.8, files=("dem_b",)),
            ),
            duration=2.0,
            deadline=1.0,
        )
        return ServeSystem(pfs, config).run()

    return run(), run()


class TestMixedModeServing:
    def test_both_modes_serve(self, mixed_summary):
        summary, _ = mixed_summary
        assert summary["tenants"]["open"]["completed"] > 0
        assert summary["tenants"]["closed"]["completed"] > 0

    def test_conservation(self, mixed_summary):
        summary, _ = mixed_summary
        assert summary["admitted"] == summary["settled"]
        rejected = summary["tenants"]["_all"]["rejected"]
        assert summary["generated"] == summary["admitted"] + rejected

    def test_mixed_run_is_deterministic(self, mixed_summary):
        first, second = mixed_summary
        assert first == second


populations = st.integers(min_value=1, max_value=4)
think_times = st.floats(min_value=0.01, max_value=0.5)
affinities = st.floats(min_value=0.0, max_value=1.0)
service_lists = st.lists(
    st.floats(min_value=0.005, max_value=0.8), min_size=1, max_size=6
)
failure_lists = st.lists(st.booleans(), min_size=1, max_size=6)


class ChaosExecutor:
    """Backend whose per-call service times and faults are scripted."""

    def __init__(self, cluster, services, failures):
        self.env = cluster.env
        self.services = services
        self.failures = failures
        self.calls = 0

    def request_cost(self, req):
        return 1024

    def execute(self, req):
        return self.env.process(self._run(req))

    def _run(self, req):
        i = self.calls
        self.calls += 1
        yield self.env.timeout(self.services[i % len(self.services)])
        if self.failures[i % len(self.failures)]:
            raise RuntimeError("chaos")
        return True


@given(
    population=populations,
    think_time=think_times,
    affinity=affinities,
    services=service_lists,
    failures=failure_lists,
)
@settings(max_examples=40, deadline=None)
def test_closed_loop_conservation_under_chaos(
    population, think_time, affinity, services, failures
):
    """Whatever the backend does, the closed loop's accounting is exact:
    generated == admitted + rejected, every admitted request settles in
    exactly one outcome, and in-flight never exceeds the population."""
    cluster = Cluster.build(n_compute=1, n_storage=1)
    executor = ChaosExecutor(cluster, services, failures)
    board = SLOBoard(cluster.monitors)
    tenants = (
        closed_tenant(population=population, think_time=think_time,
                      affinity=affinity, files=("f0", "f1")),
    )
    sched = FairScheduler(
        cluster,
        tenants,
        executor,
        board,
        queue_capacity=2,  # small: force rejections into the accounting
        concurrency=1,
        quantum=1024,
        retry=RetryPolicy(max_attempts=2, backoff=0.01),
    )
    workload = ClosedLoopWorkload(cluster, tenants, duration=3.0, deadline=0.5)
    workload.start(sched)
    cluster.run()

    stats = board.tenants["c"]
    assert board.conservation_ok(), board.unsettled()
    assert stats.settled == stats.admitted
    assert stats.admitted + stats.rejected == workload.generated
    assert sum(stats.outcomes[o] for o in OUTCOMES) == stats.admitted
