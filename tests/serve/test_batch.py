"""The batched offload fan-out: keying, window merging, fairness
charging, amortisation, and bit-identical results.

Unit level: batch keys and queue draining are pure and deterministic;
expired riders settle at drain time; a batch-incapable executor is
rejected up front.  Integration level: a burst of same-key requests over
the real storage stack completes with fewer fan-outs, fewer header and
halo bytes, and byte-identical outputs compared to unbatched dispatch.
"""

from collections import deque

import numpy as np
import pytest

from repro.errors import ServeError
from repro.harness.platform import ExperimentPlatform, build_platform, ingest_for_scheme
from repro.harness.serve_bench import SERVE_NODES, SERVE_SPEC, SERVE_STRIP
from repro.serve import (
    COMPLETED,
    EXPIRED,
    FairScheduler,
    LoadAwareExecutor,
    SLOBoard,
    ServeRequest,
    TenantSpec,
    batch_key,
    merge_window,
)
from repro.workloads import fractal_dem

QUANTUM = 1024


def _req(req_id, tenant, file="f", operator="op", deadline=1000.0, cost=QUANTUM):
    return ServeRequest(
        req_id=req_id,
        tenant=tenant,
        operator=operator,
        file=file,
        arrival=0.0,
        deadline=deadline,
        cost=cost,
    )


class TestBatchKey:
    def test_same_footprint_same_key(self):
        assert batch_key(_req(1, "a")) == batch_key(_req(2, "b"))

    def test_output_name_is_excluded(self):
        a, b = _req(1, "a"), _req(2, "a")
        assert a.output != b.output
        assert batch_key(a) == batch_key(b)

    def test_file_kernel_pipeline_all_distinguish(self):
        base = _req(1, "a")
        assert batch_key(_req(2, "a", file="g")) != batch_key(base)
        assert batch_key(_req(3, "a", operator="other")) != batch_key(base)
        other = _req(4, "a")
        other.pipeline_length = 3
        assert batch_key(other) != batch_key(base)


class TestMergeWindow:
    def _queues(self):
        return {
            "a": deque([_req(2, "a"), _req(3, "a", file="g")]),
            "b": deque([_req(4, "b"), _req(5, "b")]),
        }

    def test_drains_matching_across_tenants_in_order(self):
        queues = self._queues()
        riders = merge_window(queues, _req(1, "a"), batch_max=8)
        assert [r.req_id for r in riders] == [2, 4, 5]
        # Non-matching requests stay queued.
        assert [r.req_id for r in queues["a"]] == [3]
        assert not queues["b"]

    def test_respects_batch_max(self):
        queues = self._queues()
        riders = merge_window(queues, _req(1, "a"), batch_max=2)
        assert [r.req_id for r in riders] == [2]
        assert [r.req_id for r in queues["b"]] == [4, 5]

    def test_batch_max_one_merges_nothing(self):
        queues = self._queues()
        assert merge_window(queues, _req(1, "a"), batch_max=1) == []
        assert len(queues["a"]) == 2 and len(queues["b"]) == 2


class BatchStub:
    """Executor stub serving any batch in one fixed-time pass."""

    def __init__(self, cluster, service=1.0):
        self.env = cluster.env
        self.service = service
        self.batches = []

    def request_cost(self, req):
        return QUANTUM

    def execute(self, req):
        return self.execute_batch([req])

    def execute_batch(self, batch):
        self.batches.append([r.req_id for r in batch])
        return self.env.process(self._run())

    def _run(self):
        yield self.env.timeout(self.service)
        return True


class TestSchedulerBatching:
    def test_batching_requires_batch_capable_executor(self):
        from repro.hw import Cluster

        cluster = Cluster.build(n_compute=1, n_storage=1)

        class NoBatch:
            def request_cost(self, req):
                return QUANTUM

            def execute(self, req):  # pragma: no cover - never dispatched
                raise AssertionError

        board = SLOBoard(cluster.monitors)
        with pytest.raises(ServeError):
            FairScheduler(
                cluster, (TenantSpec("t", rate=1.0),), NoBatch(), board,
                batch_max=2,
            )

    def test_one_fanout_serves_the_whole_burst(self):
        from repro.hw import Cluster

        cluster = Cluster.build(n_compute=1, n_storage=1)
        stub = BatchStub(cluster)
        board = SLOBoard(cluster.monitors)
        sched = FairScheduler(
            cluster, (TenantSpec("t", rate=1.0),), stub, board,
            concurrency=1, quantum=QUANTUM, batch_max=8,
        )
        for i in range(1, 7):
            sched.submit(_req(i, "t"))
        cluster.run()
        assert board.tenants["t"].outcomes[COMPLETED] == 6
        # One leader + five riders in a single fan-out.
        assert stub.batches == [[1, 2, 3, 4, 5, 6]]
        assert sched.batch_stats.dispatches == 1
        assert sched.batch_stats.requests == 6
        assert sched.batch_stats.hit_rate == pytest.approx(5 / 6)

    def test_riders_charge_their_own_tenant_deficit(self):
        from repro.hw import Cluster

        cluster = Cluster.build(n_compute=1, n_storage=1)
        stub = BatchStub(cluster, service=0.5)
        board = SLOBoard(cluster.monitors)
        sched = FairScheduler(
            cluster,
            (TenantSpec("a", rate=1.0, weight=1), TenantSpec("b", rate=1.0, weight=1)),
            stub,
            board,
            concurrency=1,
            quantum=QUANTUM,
            batch_max=4,
        )
        sched.submit(_req(1, "a"))
        sched.submit(_req(2, "b"))
        cluster.run()
        # b's request rode a's fan-out; b paid for it from its own
        # deficit (debt), so its balance went negative, not a's.
        assert stub.batches == [[1, 2]]
        assert sched._deficit["b"] <= 0.0
        assert board.tenants["b"].outcomes[COMPLETED] == 1

    def test_expired_rider_settles_at_drain(self):
        from repro.hw import Cluster

        cluster = Cluster.build(n_compute=1, n_storage=1)
        stub = BatchStub(cluster, service=1.0)
        board = SLOBoard(cluster.monitors)
        sched = FairScheduler(
            cluster, (TenantSpec("t", rate=1.0),), stub, board,
            concurrency=1, quantum=QUANTUM, batch_max=4,
        )
        # r1 occupies the slot for 1s; r2 (key B) then leads a batch in
        # which r3 (key B) has already expired; r4 (key B) still rides.
        sched.submit(_req(1, "t", file="a"))
        sched.submit(_req(2, "t", file="b"))
        sched.submit(_req(3, "t", file="b", deadline=0.3))
        sched.submit(_req(4, "t", file="b"))
        cluster.run()
        stats = board.tenants["t"]
        assert stats.outcomes[EXPIRED] == 1
        assert stats.outcomes[COMPLETED] == 3
        assert stats.settled == stats.admitted == 4
        assert stub.batches == [[1], [2, 4]]


def _das_burst(batch_max, n=6, tenants=("t",)):
    """Run an n-request same-(file, kernel) burst over the real stack."""
    platform = ExperimentPlatform(spec=SERVE_SPEC, strip_size=SERVE_STRIP)
    cluster, pfs = build_platform(SERVE_NODES, platform)
    rng = np.random.default_rng(platform.seed)
    ingest_for_scheme(pfs, "DAS", "dem", fractal_dem(64, 96, rng=rng), "gaussian")
    executor = LoadAwareExecutor(pfs, scheme="DAS")
    board = SLOBoard(cluster.monitors)
    specs = tuple(TenantSpec(t, rate=1.0, files=("dem",)) for t in tenants)
    sched = FairScheduler(
        cluster, specs, executor, board,
        queue_capacity=64, concurrency=2, batch_max=batch_max,
    )
    for i in range(1, n + 1):
        sched.submit(
            ServeRequest(
                req_id=i,
                tenant=tenants[(i - 1) % len(tenants)],
                operator="gaussian",
                file="dem",
                arrival=0.0,
                deadline=1e9,
                cost=0,
            )
        )
    cluster.run()
    return cluster, board, executor, sched


class TestEndToEndAmortisation:
    @pytest.fixture(scope="class")
    def runs(self):
        return {bm: _das_burst(bm) for bm in (1, 8)}

    def test_everything_completes_both_ways(self, runs):
        for _, board, _, _ in runs.values():
            assert board.conservation_ok()
            assert board.tenants["t"].outcomes[COMPLETED] == 6

    def test_batched_uses_fewer_fanouts(self, runs):
        _, _, _, unbatched = runs[1]
        _, _, _, batched = runs[8]
        assert unbatched.batch_stats.dispatches == 6
        assert unbatched.batch_stats.hit_rate == 0.0
        assert batched.batch_stats.dispatches < 6
        assert batched.batch_stats.hit_rate > 0.0

    def test_outputs_bit_identical(self, runs):
        _, _, ex_off, _ = runs[1]
        _, _, ex_on, _ = runs[8]
        assert ex_off.digests  # digests were actually recorded
        assert ex_on.digests == ex_off.digests
        assert ex_on.result_digest() == ex_off.result_digest()

    def test_fewer_header_bytes_same_extent_bytes(self, runs):
        def wire(cluster):
            m = cluster.monitors
            return (
                m.counter("pfs.rpc.header_bytes").value
                + m.counter("as.rpc.header_bytes").value,
                m.counter("pfs.rpc.extent_desc_bytes").value,
            )

        hdr_off, ext_off = wire(runs[1][0])
        hdr_on, ext_on = wire(runs[8][0])
        assert hdr_on < hdr_off
        assert ext_on < ext_off  # fewer halo reads => fewer extents too

    def test_fewer_halo_bytes(self, runs):
        def halo(cluster):
            m = cluster.monitors
            return (
                m.counter("as.halo_bytes_local").value
                + m.counter("as.halo_bytes_remote").value
            )

        assert halo(runs[8][0]) < halo(runs[1][0])

    def test_batched_is_not_slower(self, runs):
        assert runs[8][0].env.now <= runs[1][0].env.now

    def test_cross_tenant_merge(self):
        _, board, _, sched = _das_burst(8, n=4, tenants=("a", "b"))
        assert sched.batch_stats.merged > 0
        for t in ("a", "b"):
            assert board.tenants[t].outcomes[COMPLETED] == 2
