"""End-to-end fault-tolerant serving: crash a data server mid-run.

The acceptance story of the fault subsystem, at test scale: with full
neighbour replication (``halo_strips == group``) and a recovery policy,
a single data-server crash mid-workload loses *zero* requests; with
replication disabled, the same crash loses some.  And with no faults
configured, the subsystem is invisible.
"""

import pytest

from repro.faults import FaultPlan, RecoveryPolicy
from repro.harness.chaos_bench import chaos_cell, single_crash_plan
from repro.harness.platform import ExperimentPlatform, build_platform
from repro.harness.serve_bench import SERVE_NODES, SERVE_SPEC, SERVE_STRIP

DURATION = 1.5
RECOVERY = RecoveryPolicy(rpc_timeout=0.25, max_attempts=2, backoff=0.02)


def crash_plan():
    _, pfs = build_platform(
        SERVE_NODES, ExperimentPlatform(spec=SERVE_SPEC, strip_size=SERVE_STRIP)
    )
    return single_crash_plan(pfs, DURATION)


@pytest.fixture(scope="module")
def replicated_crash():
    return chaos_cell(
        "TS", DURATION, faults=crash_plan(), recovery=RECOVERY, replicated=True
    )


@pytest.fixture(scope="module")
def unreplicated_crash():
    return chaos_cell(
        "TS", DURATION, faults=crash_plan(), recovery=RECOVERY, replicated=False
    )


class TestReplicatedSurvivesTheCrash:
    def test_every_request_finishes(self, replicated_crash):
        t = replicated_crash["tenants"]["_all"]
        assert replicated_crash["generated"] > 0
        assert t["availability"] == 1.0
        assert t["failed"] == 0 and t["expired"] == 0

    def test_failover_served_the_outage(self, replicated_crash):
        faults = replicated_crash["faults"]
        assert faults["crashes"] == 1
        assert faults["recoveries"] == 1
        assert faults["failover_reads"] > 0

    def test_mttr_matches_the_plan(self, replicated_crash):
        faults = replicated_crash["faults"]
        assert faults["mttr"] == pytest.approx(0.4 * DURATION)
        assert faults["still_down"] == []

    def test_conservation(self, replicated_crash):
        assert replicated_crash["admitted"] == replicated_crash["settled"]


class TestReplicationIsLoadBearing:
    def test_unreplicated_crash_loses_requests(
        self, replicated_crash, unreplicated_crash
    ):
        rep = replicated_crash["tenants"]["_all"]
        unrep = unreplicated_crash["tenants"]["_all"]
        finished = lambda t: t["completed"] + t["late"]
        assert unrep["availability"] < 1.0
        assert finished(unrep) < finished(rep)

    def test_failures_are_clean_not_hung(self, unreplicated_crash):
        # Detection turns lost requests into terminal failures; nothing
        # is left admitted-but-unsettled.
        assert unreplicated_crash["admitted"] == unreplicated_crash["settled"]


class TestFaultFreeRuns:
    def test_no_faults_means_no_faults_block(self):
        summary = chaos_cell("TS", DURATION)
        assert "faults" not in summary

    def test_recovery_only_run_reports_zero_fault_activity(self):
        summary = chaos_cell("TS", DURATION, recovery=RECOVERY)
        faults = summary["faults"]
        assert faults["crashes"] == 0
        assert faults["failover_reads"] == 0
        assert summary["tenants"]["_all"]["availability"] == 1.0

    def test_decision_cache_cleared_on_membership_change(self):
        summary = chaos_cell(
            "DAS", DURATION, faults=crash_plan(), recovery=RECOVERY
        )
        stats = summary["decision_cache"]
        # The crash and the recovery each flushed the cache, so at least
        # two extra misses happened beyond the three (tenant, kernel)
        # combinations.
        assert stats["invalidations"] > 0
        assert summary["faults"]["events_applied"] == 2
