"""Unit tests for admission control, DWRR fairness, deadlines, retries."""

import pytest

from repro.errors import AdmissionError, ServeError
from repro.hw import Cluster
from repro.serve import (
    COMPLETED,
    EXPIRED,
    FAILED,
    LATE,
    FairScheduler,
    RetryPolicy,
    SLOBoard,
    ServeRequest,
    TenantSpec,
)

QUANTUM = 1024


class StubExecutor:
    """Deterministic fake backend: fixed service time, scripted faults."""

    def __init__(self, cluster, service=0.1, fail_first=0):
        self.env = cluster.env
        self.service = service
        #: Number of executions (across all requests) that raise first.
        self.fail_first = fail_first
        self.calls = 0

    def request_cost(self, req):
        return QUANTUM

    def execute(self, req):
        return self.env.process(self._run(req))

    def _run(self, req):
        self.calls += 1
        call = self.calls
        yield self.env.timeout(self.service)
        if call <= self.fail_first:
            raise RuntimeError(f"injected fault #{call}")
        return f"ok:{req.req_id}"


def make_cluster():
    return Cluster.build(n_compute=1, n_storage=1)


def make_request(req_id, tenant, now=0.0, deadline=10.0, cost=QUANTUM):
    return ServeRequest(
        req_id=req_id,
        tenant=tenant,
        operator="gaussian",
        file="f",
        arrival=now,
        deadline=now + deadline,
        cost=cost,
    )


def build(cluster, tenants, executor, **kw):
    board = SLOBoard(cluster.monitors)
    sched = FairScheduler(
        cluster, tenants, executor, board, quantum=QUANTUM, **kw
    )
    return board, sched


class TestAdmission:
    def test_queue_full_rejects(self):
        cluster = make_cluster()
        executor = StubExecutor(cluster, service=1.0)
        board, sched = build(
            cluster, (TenantSpec("t", rate=1.0),), executor,
            queue_capacity=2, concurrency=1,
        )
        results = [sched.submit(make_request(i, "t")) for i in (1, 2, 3)]
        assert results == [True, True, False]
        assert board.tenants["t"].admitted == 2
        assert board.tenants["t"].rejected == 1

    def test_unknown_tenant_raises(self):
        cluster = make_cluster()
        board, sched = build(
            cluster, (TenantSpec("t", rate=1.0),), StubExecutor(cluster)
        )
        with pytest.raises(AdmissionError):
            sched.submit(make_request(1, "nobody"))

    def test_admission_fills_cost_from_executor(self):
        cluster = make_cluster()
        board, sched = build(
            cluster, (TenantSpec("t", rate=1.0),), StubExecutor(cluster)
        )
        req = make_request(1, "t", cost=0)
        sched.submit(req)
        assert req.cost == QUANTUM


class TestOutcomes:
    def test_completed_within_deadline(self):
        cluster = make_cluster()
        board, sched = build(
            cluster, (TenantSpec("t", rate=1.0),), StubExecutor(cluster, service=0.1)
        )
        req = make_request(1, "t", deadline=1.0)
        sched.submit(req)
        cluster.run()
        assert board.tenants["t"].outcomes[COMPLETED] == 1
        assert req.finished == pytest.approx(0.1)
        assert board.conservation_ok()

    def test_late_and_expired_under_slow_backend(self):
        # Service 1.0 s, deadline 0.5 s, one slot: the first request
        # finishes late at t=1; the second is already dead when it is
        # dequeued and is dropped as expired.
        cluster = make_cluster()
        executor = StubExecutor(cluster, service=1.0)
        board, sched = build(
            cluster, (TenantSpec("t", rate=1.0),), executor, concurrency=1
        )
        sched.submit(make_request(1, "t", deadline=0.5))
        sched.submit(make_request(2, "t", deadline=0.5))
        cluster.run()
        assert board.tenants["t"].outcomes[LATE] == 1
        assert board.tenants["t"].outcomes[EXPIRED] == 1
        assert executor.calls == 1  # the expired one never ran
        assert board.conservation_ok()

    def test_retry_then_success(self):
        cluster = make_cluster()
        executor = StubExecutor(cluster, service=0.1, fail_first=2)
        board, sched = build(
            cluster,
            (TenantSpec("t", rate=1.0),),
            executor,
            retry=RetryPolicy(max_attempts=3, backoff=0.1),
        )
        req = make_request(1, "t", deadline=10.0)
        sched.submit(req)
        cluster.run()
        assert board.tenants["t"].outcomes[COMPLETED] == 1
        assert board.tenants["t"].retries == 2
        assert req.attempts == 3
        # 3 runs of 0.1 plus backoffs 0.1 and 0.2.
        assert req.finished == pytest.approx(0.6)

    def test_permanent_failure_settles_failed(self):
        cluster = make_cluster()
        executor = StubExecutor(cluster, service=0.1, fail_first=99)
        board, sched = build(
            cluster,
            (TenantSpec("t", rate=1.0),),
            executor,
            retry=RetryPolicy(max_attempts=2, backoff=0.01),
        )
        req = make_request(1, "t")
        sched.submit(req)
        cluster.run()
        assert board.tenants["t"].outcomes[FAILED] == 1
        assert req.attempts == 2
        assert "injected fault" in req.extra["error"]
        assert board.conservation_ok()

    def test_backoff_grows_geometrically(self):
        policy = RetryPolicy(max_attempts=4, backoff=0.05, backoff_factor=2.0)
        assert policy.delay(1) == pytest.approx(0.05)
        assert policy.delay(2) == pytest.approx(0.10)
        assert policy.delay(3) == pytest.approx(0.20)

    def test_bad_retry_policy_rejected(self):
        with pytest.raises(ServeError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ServeError):
            RetryPolicy(backoff=-1.0)


class TestFairness:
    def test_dwrr_respects_weights(self):
        # Tenant a (weight 2) should dispatch twice as often as b
        # (weight 1) while both stay backlogged; every request costs
        # exactly one quantum so deficits convert directly to counts.
        cluster = make_cluster()
        executor = StubExecutor(cluster, service=0.01)
        tenants = (TenantSpec("a", rate=1.0, weight=2.0), TenantSpec("b", rate=1.0))
        board, sched = build(
            cluster, tenants, executor, queue_capacity=32, concurrency=1
        )
        rid = 0
        for _ in range(8):
            rid += 1
            sched.submit(make_request(rid, "a", deadline=100.0))
        for _ in range(8):
            rid += 1
            sched.submit(make_request(rid, "b", deadline=100.0))
        cluster.run()
        first_six = sched.dispatch_log[:6]
        counts = {t: sum(1 for name, _ in first_six if name == t) for t in ("a", "b")}
        assert counts == {"a": 4, "b": 2}
        assert board.conservation_ok()

    def test_no_tenant_starved(self):
        cluster = make_cluster()
        executor = StubExecutor(cluster, service=0.01)
        tenants = (TenantSpec("a", rate=1.0, weight=8.0), TenantSpec("b", rate=1.0))
        board, sched = build(
            cluster, tenants, executor, queue_capacity=32, concurrency=1
        )
        for i in range(1, 21):
            sched.submit(make_request(i, "a", deadline=100.0))
        sched.submit(make_request(100, "b", deadline=100.0))
        cluster.run()
        dispatched_tenants = [name for name, _ in sched.dispatch_log]
        # One DWRR round grants a at most weight_a quantum-sized
        # dispatches, so b's lone request is served after at most one
        # full round — long before a's 20-deep backlog drains.
        assert "b" in dispatched_tenants[:9]


class TestSLOBoard:
    def test_double_settle_raises(self):
        board = SLOBoard()
        req = make_request(1, "t")
        board.admitted(req)
        req.finished = 0.5
        board.settle(req, COMPLETED)
        with pytest.raises(ServeError):
            board.settle(req, LATE)

    def test_settle_without_admission_raises(self):
        board = SLOBoard()
        req = make_request(1, "t")
        req.finished = 0.5
        with pytest.raises(ServeError):
            board.settle(req, COMPLETED)

    def test_unknown_outcome_raises(self):
        board = SLOBoard()
        req = make_request(1, "t")
        board.admitted(req)
        with pytest.raises(ServeError):
            board.settle(req, "vanished")

    def test_double_admission_raises(self):
        board = SLOBoard()
        req = make_request(1, "t")
        board.admitted(req)
        with pytest.raises(ServeError):
            board.admitted(req)

    def test_unsettled_lists_leaks(self):
        board = SLOBoard()
        r1, r2 = make_request(1, "t"), make_request(2, "t")
        board.admitted(r1)
        board.admitted(r2)
        r1.finished = 0.1
        board.settle(r1, COMPLETED)
        assert not board.conservation_ok()
        assert board.unsettled() == [2]

    def test_summary_has_all_row(self):
        board = SLOBoard()
        req = make_request(1, "t")
        board.admitted(req)
        req.finished = 0.25
        board.settle(req, COMPLETED)
        summary = board.summary(elapsed=1.0)
        assert summary["_all"]["admitted"] == 1
        assert summary["_all"]["throughput"] == 1.0
        assert summary["t"]["lat_p50"] == 0.25
