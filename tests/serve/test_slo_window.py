"""SLOWindow percentile/window math: the autoscale controller's signal.

The controller's breach/calm logic leans on exact edge behaviour —
empty windows mean *no signal* (not "0 ms, all healthy"), a lone sample
is its own p99, and slow finishes age out precisely one horizon later —
so these tests pin that contract, including the warm-up arithmetic the
``min_samples`` knob relies on.
"""

import pytest

from repro.errors import ServeError
from repro.serve import SLOBoard, SLOWindow
from repro.serve.workload import ServeRequest


def make_request(req_id, arrival, finished, deadline=1e9):
    req = ServeRequest(
        req_id=req_id,
        tenant="t",
        operator="gaussian",
        file="dem",
        arrival=arrival,
        deadline=deadline,
        cost=1,
    )
    req.finished = finished
    return req


class TestConstruction:
    def test_rejects_zero_horizon(self):
        with pytest.raises(ServeError):
            SLOWindow(0.0)

    def test_rejects_negative_horizon(self):
        with pytest.raises(ServeError):
            SLOWindow(-1.0)


class TestEmptyWindow:
    """An empty window must read as *no signal*."""

    def test_count_is_zero(self):
        assert SLOWindow(2.0).count(now=10.0) == 0

    def test_p99_is_zero(self):
        assert SLOWindow(2.0).p99(now=10.0) == 0.0

    def test_latencies_empty(self):
        assert SLOWindow(2.0).latencies(now=10.0) == []

    def test_len_is_zero(self):
        assert len(SLOWindow(2.0)) == 0

    def test_summary_counts_nothing(self):
        assert SLOWindow(2.0).summary(now=10.0).count == 0


class TestSingleSample:
    """With one sample, every percentile IS that sample (nearest rank)."""

    def test_single_sample_is_the_p99(self):
        w = SLOWindow(2.0)
        w.record(finish=1.0, latency=0.42)
        assert w.p99(now=1.0) == pytest.approx(0.42)

    def test_single_sample_count(self):
        w = SLOWindow(2.0)
        w.record(finish=1.0, latency=0.42)
        assert w.count(now=1.0) == 1


class TestWarmUp:
    """Counts grow one by one — the ``min_samples`` warm-up signal."""

    def test_count_tracks_records(self):
        w = SLOWindow(10.0)
        for i in range(5):
            w.record(finish=float(i), latency=0.1)
            assert w.count(now=float(i)) == i + 1

    def test_p99_tracks_worst_recent_sample(self):
        # Nearest-rank p99 over a handful of samples is the max.
        w = SLOWindow(10.0)
        for i, lat in enumerate((0.1, 0.3, 0.2, 0.9, 0.4)):
            w.record(finish=float(i), latency=lat)
        assert w.p99(now=4.0) == pytest.approx(0.9)


class TestPruning:
    def test_sample_visible_within_horizon(self):
        w = SLOWindow(2.0)
        w.record(finish=1.0, latency=0.5)
        assert w.count(now=2.9) == 1

    def test_sample_ages_out_at_horizon(self):
        # finish <= now - horizon falls out: at now=3.0 the cutoff is
        # exactly the finish time, so the sample is gone.
        w = SLOWindow(2.0)
        w.record(finish=1.0, latency=0.5)
        assert w.count(now=3.0) == 0
        assert w.p99(now=3.0) == 0.0

    def test_slow_burst_ages_out_together(self):
        w = SLOWindow(2.0)
        for finish in (1.0, 1.1, 1.2):
            w.record(finish=finish, latency=5.0)
        w.record(finish=3.0, latency=0.1)
        assert w.p99(now=3.0) == pytest.approx(5.0)
        # One horizon after the burst, only the fast finish remains.
        assert w.latencies(now=3.3) == [0.1]
        assert w.p99(now=3.3) == pytest.approx(0.1)

    def test_pruning_is_permanent(self):
        # latencies() prunes in place; a later query at an earlier time
        # cannot resurrect the dropped samples (finish times and query
        # times both move forward in a simulation).
        w = SLOWindow(2.0)
        w.record(finish=1.0, latency=0.5)
        w.latencies(now=5.0)
        assert len(w) == 0


class TestOrdering:
    def test_out_of_order_finish_raises(self):
        w = SLOWindow(2.0)
        w.record(finish=2.0, latency=0.1)
        with pytest.raises(ServeError):
            w.record(finish=1.0, latency=0.1)

    def test_equal_finish_times_allowed(self):
        # Two requests settling at the same simulated instant are fine.
        w = SLOWindow(2.0)
        w.record(finish=2.0, latency=0.1)
        w.record(finish=2.0, latency=0.3)
        assert w.count(now=2.0) == 2


class TestBoardIntegration:
    """The board feeds the window on finish outcomes only."""

    def test_completed_and_late_enter_window(self):
        board = SLOBoard(window_horizon=10.0)
        done = make_request(1, arrival=0.0, finished=1.0)
        late = make_request(2, arrival=0.0, finished=2.0, deadline=1.5)
        board.admitted(done)
        board.admitted(late)
        board.settle(done, "completed")
        board.settle(late, "late")
        assert board.window.count(now=2.0) == 2

    def test_expired_and_failed_stay_out(self):
        # Never-finished requests have no latency to report.
        board = SLOBoard(window_horizon=10.0)
        expired = make_request(1, arrival=0.0, finished=None)
        failed = make_request(2, arrival=0.0, finished=None)
        board.admitted(expired)
        board.admitted(failed)
        board.settle(expired, "expired")
        board.settle(failed, "failed")
        assert board.window.count(now=5.0) == 0

    def test_default_horizon(self):
        assert SLOBoard().window.horizon == SLOBoard.WINDOW_HORIZON
