"""Unit tests for sharded admission slots (FairScheduler slot_groups)."""

import pytest

from repro.hw import Cluster
from repro.serve import COMPLETED, FairScheduler, SLOBoard, ServeRequest, TenantSpec

QUANTUM = 1024


class StubExecutor:
    """Fixed-service-time backend recording per-request finish times."""

    def __init__(self, cluster, service=0.5):
        self.env = cluster.env
        self.service = service
        self.finished = {}

    def request_cost(self, req):
        return QUANTUM

    def execute(self, req):
        return self.env.process(self._run(req))

    def _run(self, req):
        yield self.env.timeout(self.service)
        self.finished[req.req_id] = self.env.now
        return f"ok:{req.req_id}"


def make_request(req_id, tenant, file="f", deadline=100.0):
    return ServeRequest(
        req_id=req_id,
        tenant=tenant,
        operator="gaussian",
        file=file,
        arrival=0.0,
        deadline=deadline,
        cost=QUANTUM,
    )


def build(tenants, service=0.5, concurrency=1, slot_groups=None):
    cluster = Cluster.build(n_compute=1, n_storage=1)
    executor = StubExecutor(cluster, service=service)
    board = SLOBoard(cluster.monitors)
    sched = FairScheduler(
        cluster,
        tenants,
        executor,
        board,
        quantum=QUANTUM,
        queue_capacity=32,
        concurrency=concurrency,
        slot_groups=slot_groups,
    )
    return cluster, executor, board, sched


def by_file(req):
    return req.file


class TestShardedSlots:
    def test_default_path_builds_no_group_pools(self):
        cluster, executor, board, sched = build((TenantSpec("t", rate=1.0),))
        sched.submit(make_request(1, "t"))
        cluster.run()
        assert sched._group_slots == {}
        assert board.tenants["t"].outcomes[COMPLETED] == 1

    def test_one_pool_per_group_at_full_capacity_each(self):
        tenants = (TenantSpec("a", rate=1.0), TenantSpec("b", rate=1.0))
        cluster, executor, board, sched = build(
            tenants, concurrency=2, slot_groups=by_file
        )
        sched.submit(make_request(1, "a", file="f1"))
        sched.submit(make_request(2, "b", file="f2"))
        cluster.run()
        assert sorted(sched._group_slots) == ["f1", "f2"]
        assert all(
            pool.capacity == 2 for pool in sched._group_slots.values()
        )
        assert board.conservation_ok()

    def test_hot_group_does_not_block_other_groups(self):
        # One slot per group: with the pool sharded by file, a request
        # on the cold file runs concurrently with the hot one instead
        # of queueing behind it on a global slot.
        tenants = (TenantSpec("a", rate=1.0), TenantSpec("b", rate=1.0))
        cluster, executor, board, sched = build(
            tenants, service=0.5, concurrency=1, slot_groups=by_file
        )
        sched.submit(make_request(1, "a", file="hot"))
        sched.submit(make_request(2, "b", file="cold"))
        cluster.run()
        assert executor.finished[1] == pytest.approx(0.5)
        assert executor.finished[2] == pytest.approx(0.5)

    def test_unsharded_control_serialises_the_same_pair(self):
        tenants = (TenantSpec("a", rate=1.0), TenantSpec("b", rate=1.0))
        cluster, executor, board, sched = build(
            tenants, service=0.5, concurrency=1
        )
        sched.submit(make_request(1, "a", file="hot"))
        sched.submit(make_request(2, "b", file="cold"))
        cluster.run()
        assert sorted(executor.finished.values()) == pytest.approx([0.5, 1.0])

    def test_same_group_still_serialises(self):
        tenants = (TenantSpec("a", rate=1.0), TenantSpec("b", rate=1.0))
        cluster, executor, board, sched = build(
            tenants, service=0.5, concurrency=1, slot_groups=by_file
        )
        sched.submit(make_request(1, "a", file="hot"))
        sched.submit(make_request(2, "b", file="hot"))
        cluster.run()
        assert sorted(executor.finished.values()) == pytest.approx([0.5, 1.0])

    def test_blocked_tenant_keeps_its_turn_and_drains_later(self):
        # A deep single-group backlog on one slot: the dispatcher must
        # sleep on the kick event while the group pool is full and wake
        # on every release — a lost wakeup would leave queues stranded
        # and fail conservation.
        cluster, executor, board, sched = build(
            (TenantSpec("t", rate=1.0),), service=0.1, concurrency=1,
            slot_groups=by_file,
        )
        for i in range(1, 9):
            sched.submit(make_request(i, "t", file="only"))
        cluster.run()
        assert board.tenants["t"].outcomes[COMPLETED] == 8
        assert board.conservation_ok()
        assert sched.queued_total() == 0
        assert sched.slots_in_use() == 0

    def test_accounting_totals_cover_group_pools(self):
        tenants = (TenantSpec("a", rate=1.0), TenantSpec("b", rate=1.0))
        cluster, executor, board, sched = build(
            tenants, service=1.0, concurrency=1, slot_groups=by_file
        )
        sched.submit(make_request(1, "a", file="f1"))
        sched.submit(make_request(2, "b", file="f2"))
        sched.submit(make_request(3, "a", file="f1"))

        def probe():
            yield cluster.env.timeout(0.5)
            # Both groups hold one in-flight request; one more queued.
            assert sched.slots_in_use() == 2
            assert sched.queued_total() == 1

        cluster.env.process(probe())
        cluster.run()
        assert board.conservation_ok()
