"""Property tests for the serving layer's core invariants.

* **Conservation**: every admitted request settles in exactly one
  terminal outcome, whatever mix of arrivals, costs, deadlines and
  injected faults the backend throws at the scheduler.
* **No starvation**: under DWRR with quantum-sized requests, any
  backlogged tenant's dispatch share tracks its weight round by round;
  no backlogged tenant waits more than one full round.
* **Batched dispatch preserves both**: with ``batch_max > 1`` riders
  charge their own tenant's deficit (possibly into debt), so
  conservation still holds under chaos and no tenant waits more than
  one *batch round* beyond its weight.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ServeError
from repro.hw import Cluster
from repro.serve import (
    OUTCOMES,
    FairScheduler,
    RetryPolicy,
    SLOBoard,
    ServeRequest,
    TenantSpec,
)

QUANTUM = 1024


class ChaosExecutor:
    """Backend whose per-call service times and faults are scripted."""

    def __init__(self, cluster, services, failures):
        self.env = cluster.env
        self.services = services  # list of service times, cycled
        self.failures = failures  # list of bools, cycled
        self.calls = 0

    def request_cost(self, req):
        return QUANTUM

    def execute(self, req):
        return self.env.process(self._run(req))

    def _run(self, req):
        i = self.calls
        self.calls += 1
        yield self.env.timeout(self.services[i % len(self.services)])
        if self.failures[i % len(self.failures)]:
            raise RuntimeError("chaos")
        return True


class BatchChaosExecutor(ChaosExecutor):
    """Chaos backend that also accepts whole batches (one pass each)."""

    def execute(self, req):
        return self.execute_batch([req])

    def execute_batch(self, batch):
        return self.env.process(self._run(batch[0]))


arrival_lists = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=2.0),   # inter-arrival gap
        st.floats(min_value=0.05, max_value=3.0),  # relative deadline
        st.integers(min_value=1, max_value=4 * QUANTUM),  # cost
    ),
    min_size=1,
    max_size=25,
)
service_lists = st.lists(
    st.floats(min_value=0.01, max_value=1.5), min_size=1, max_size=8
)
failure_lists = st.lists(st.booleans(), min_size=1, max_size=8)


@given(arrivals=arrival_lists, services=service_lists, failures=failure_lists)
@settings(max_examples=40, deadline=None)
def test_conservation_exactly_once(arrivals, services, failures):
    cluster = Cluster.build(n_compute=1, n_storage=1)
    env = cluster.env
    executor = ChaosExecutor(cluster, services, failures)
    board = SLOBoard(cluster.monitors)
    sched = FairScheduler(
        cluster,
        (TenantSpec("t", rate=1.0),),
        executor,
        board,
        queue_capacity=8,
        concurrency=2,
        quantum=QUANTUM,
        retry=RetryPolicy(max_attempts=2, backoff=0.01),
    )

    def feed():
        for i, (gap, rel_deadline, cost) in enumerate(arrivals, start=1):
            yield env.timeout(gap)
            sched.submit(
                ServeRequest(
                    req_id=i,
                    tenant="t",
                    operator="op",
                    file="f",
                    arrival=env.now,
                    deadline=env.now + rel_deadline,
                    cost=cost,
                )
            )

    env.process(feed())
    cluster.run()

    stats = board.tenants["t"]
    # Exactly-once settlement over admitted; rejected outside the set.
    assert board.conservation_ok(), board.unsettled()
    assert stats.settled == stats.admitted
    assert stats.admitted + stats.rejected == len(arrivals)
    assert sum(stats.outcomes[o] for o in OUTCOMES) == stats.admitted


weights = st.tuples(
    st.integers(min_value=1, max_value=5), st.integers(min_value=1, max_value=5)
)


@given(w=weights, backlog=st.integers(min_value=10, max_value=30))
@settings(max_examples=25, deadline=None)
def test_no_starvation_under_weighted_backlog(w, backlog):
    """With quantum-sized requests and both tenants backlogged, every
    round dispatches exactly weight_a : weight_b, so over any prefix the
    normalised dispatch counts stay within one round of each other."""
    wa, wb = w
    cluster = Cluster.build(n_compute=1, n_storage=1)
    executor = ChaosExecutor(cluster, [0.001], [False])
    board = SLOBoard(cluster.monitors)
    sched = FairScheduler(
        cluster,
        (TenantSpec("a", rate=1.0, weight=wa), TenantSpec("b", rate=1.0, weight=wb)),
        executor,
        board,
        queue_capacity=64,
        concurrency=1,
        quantum=QUANTUM,
    )
    rid = 0
    for _ in range(backlog):
        rid += 1
        sched.submit(_req(rid, "a"))
    for _ in range(backlog):
        rid += 1
        sched.submit(_req(rid, "b"))
    cluster.run()

    assert board.conservation_ok()
    log = [name for name, _ in sched.dispatch_log]
    assert len(log) == 2 * backlog
    # Both tenants' first dispatches land within the first round.
    assert "a" in log[: wa + wb]
    assert "b" in log[: wa + wb]
    # While both are backlogged, normalised shares diverge by at most
    # one round's grant.
    joint_rounds = min(backlog // wa, backlog // wb)
    horizon = joint_rounds * (wa + wb)
    ca = cb = 0
    for name in log[:horizon]:
        if name == "a":
            ca += 1
        else:
            cb += 1
        assert abs(ca / wa - cb / wb) <= 2.0, (ca, cb, wa, wb)


def _req(req_id, tenant, file="f"):
    return ServeRequest(
        req_id=req_id,
        tenant=tenant,
        operator="op",
        file=file,
        arrival=0.0,
        deadline=1000.0,
        cost=QUANTUM,
    )


@given(
    arrivals=arrival_lists,
    services=service_lists,
    failures=failure_lists,
    batch_max=st.integers(min_value=2, max_value=4),
    files=st.lists(st.sampled_from(["f0", "f1"]), min_size=1, max_size=8),
)
@settings(max_examples=40, deadline=None)
def test_conservation_exactly_once_batched(
    arrivals, services, failures, batch_max, files
):
    """Batched dispatch under chaos (mixed keys, faults, expiries) still
    settles every admitted request exactly once."""
    cluster = Cluster.build(n_compute=1, n_storage=1)
    env = cluster.env
    executor = BatchChaosExecutor(cluster, services, failures)
    board = SLOBoard(cluster.monitors)
    sched = FairScheduler(
        cluster,
        (TenantSpec("t", rate=1.0),),
        executor,
        board,
        queue_capacity=8,
        concurrency=2,
        quantum=QUANTUM,
        retry=RetryPolicy(max_attempts=2, backoff=0.01),
        batch_max=batch_max,
    )

    def feed():
        for i, (gap, rel_deadline, cost) in enumerate(arrivals, start=1):
            yield env.timeout(gap)
            sched.submit(
                ServeRequest(
                    req_id=i,
                    tenant="t",
                    operator="op",
                    file=files[i % len(files)],
                    arrival=env.now,
                    deadline=env.now + rel_deadline,
                    cost=cost,
                )
            )

    env.process(feed())
    cluster.run()

    stats = board.tenants["t"]
    assert board.conservation_ok(), board.unsettled()
    assert stats.settled == stats.admitted
    assert stats.admitted + stats.rejected == len(arrivals)
    assert sum(stats.outcomes[o] for o in OUTCOMES) == stats.admitted
    assert sched.batch_stats.requests >= sched.batch_stats.dispatches


@given(
    w=weights,
    backlog=st.integers(min_value=10, max_value=30),
    batch_max=st.integers(min_value=2, max_value=4),
    shared_key=st.booleans(),
)
@settings(max_examples=25, deadline=None)
def test_no_starvation_under_batched_backlog(w, backlog, batch_max, shared_key):
    """DWRR fairness survives batching: riders prepay their own tenant's
    deficit, so each tenant's first dispatch still lands within one
    *batch round* of grants and normalised shares stay within one batch
    window of each other — a tenant never waits more than one batch
    round beyond its weight."""
    wa, wb = w
    cluster = Cluster.build(n_compute=1, n_storage=1)
    executor = BatchChaosExecutor(cluster, [0.001], [False])
    board = SLOBoard(cluster.monitors)
    sched = FairScheduler(
        cluster,
        (TenantSpec("a", rate=1.0, weight=wa), TenantSpec("b", rate=1.0, weight=wb)),
        executor,
        board,
        queue_capacity=64,
        concurrency=1,
        quantum=QUANTUM,
        batch_max=batch_max,
    )
    # shared_key=True lets batches merge across tenants (one file);
    # False keeps keys disjoint so merging is intra-tenant only.
    file_for = (lambda t: "f") if shared_key else (lambda t: f"file-{t}")
    rid = 0
    for _ in range(backlog):
        rid += 1
        sched.submit(_req(rid, "a", file=file_for("a")))
    for _ in range(backlog):
        rid += 1
        sched.submit(_req(rid, "b", file=file_for("b")))
    cluster.run()

    assert board.conservation_ok()
    log = [name for name, _ in sched.dispatch_log]
    assert len(log) == 2 * backlog
    # Both tenants' first dispatches land within one batch round.
    horizon = (wa + wb) * batch_max
    assert "a" in log[:horizon]
    assert "b" in log[:horizon]
    if not shared_key:
        # With disjoint keys, merging is intra-tenant only: a tenant can
        # overshoot its grant by at most one batch window of riders
        # (prepaid into debt), so normalised dispatch counts diverge by
        # at most one round plus one window each.
        joint_rounds = min(backlog // wa, backlog // wb)
        prefix = joint_rounds * (wa + wb)
        ca = cb = 0
        for name in log[:prefix]:
            if name == "a":
                ca += 1
            else:
                cb += 1
            assert abs(ca / wa - cb / wb) <= 2.0 * batch_max, (
                ca, cb, wa, wb, batch_max,
            )
    else:
        # Cross-tenant merging makes raw counts key-driven, not
        # weight-driven (riders are spare capacity prepaid by their own
        # tenant), so fairness shows up as prepayment, not share bounds.
        assert sched._deficit["a"] <= QUANTUM * wa
        assert sched._deficit["b"] <= QUANTUM * wb
    for t in ("a", "b"):
        assert board.tenants[t].settled == backlog


def test_serve_error_is_not_retried():
    """Accounting bugs (ServeError) must propagate, never be retried."""
    cluster = Cluster.build(n_compute=1, n_storage=1)
    env = cluster.env

    class PoisonExecutor:
        def request_cost(self, req):
            return QUANTUM

        def execute(self, req):
            return env.process(self._run())

        def _run(self):
            yield env.timeout(0.01)
            raise ServeError("ledger corruption")

    board = SLOBoard(cluster.monitors)
    sched = FairScheduler(
        cluster, (TenantSpec("t", rate=1.0),), PoisonExecutor(), board
    )
    sched.submit(_req(1, "t"))
    try:
        cluster.run()
        raised = False
    except ServeError:
        raised = True
    assert raised
    assert board.tenants["t"].retries == 0
