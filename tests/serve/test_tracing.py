"""Tracing's determinism contract against real serving runs.

The two halves of the observability bargain, end to end:

* **Non-perturbing** — a traced run settles every request with the same
  digests and latencies as the untraced run of the same cell;
* **Complete** — the tree it collects explains (nearly) all of every
  request's latency, exports to structurally valid Perfetto JSON, and
  survives the critical-path acceptance bounds.
"""

import json

import pytest

from repro.harness.serve_bench import serve_cell
from repro.harness.tracing import (
    MAX_ATTRIBUTION_ERROR,
    MIN_COVERAGE,
    traced_replay,
)
from repro.metrics.critical_path import critical_path
from repro.obs import Tracer, trace_document, validate_trace

DURATION = 1.5


@pytest.fixture(scope="module")
def untraced():
    return serve_cell("DAS", load=1.0, duration=DURATION)


@pytest.fixture(scope="module")
def traced():
    tracer = Tracer()
    summary = serve_cell("DAS", load=1.0, duration=DURATION, tracer=tracer)
    return tracer, summary


class TestNonPerturbation:
    def test_traced_summary_is_bit_identical(self, untraced, traced):
        _, summary = traced
        assert summary == untraced

    def test_every_settled_request_has_a_closed_root(self, traced):
        tracer, summary = traced
        settled = sum(
            summary["tenants"][t][k]
            for t in summary["tenants"]
            if t != "_all"
            for k in ("completed", "late", "expired", "failed")
        )
        closed = [
            root for root in tracer.requests.values() if root.end is not None
        ]
        assert len(closed) == settled
        assert all("outcome" in root.attrs for root in closed)


class TestCoverage:
    def test_critical_path_meets_the_acceptance_bounds(self, traced):
        tracer, _ = traced
        report = critical_path(tracer)
        assert report.count > 0
        assert report.min_coverage() >= MIN_COVERAGE
        assert report.max_attribution_error() <= MAX_ATTRIBUTION_ERROR

    def test_the_tree_spans_the_whole_serving_path(self, traced):
        tracer, _ = traced
        cats = {span.cat for span in tracer.spans}
        assert {"request", "queue", "attempt", "rpc"} <= cats

    def test_export_validates_clean(self, traced):
        tracer, _ = traced
        doc = trace_document(tracer, meta={"cell": "test"})
        assert validate_trace(doc) == []


class TestTracedReplayHelper:
    def test_all_four_checks_pass_and_files_land(
        self, untraced, tmp_path_factory
    ):
        trace_dir = tmp_path_factory.mktemp("traces")
        checks, paths = traced_replay(
            "cell",
            lambda tracer: serve_cell(
                "DAS", load=1.0, duration=DURATION, tracer=tracer
            ),
            untraced,
            trace_dir,
            meta={"cell": "test"},
        )
        assert len(checks) == 4
        assert all(ok for _, ok in checks), [m for m, ok in checks if not ok]
        trace_path = trace_dir / "cell.trace.json"
        attribution_path = trace_dir / "cell.attribution.json"
        assert sorted(paths) == [attribution_path, trace_path]
        doc = json.loads(trace_path.read_text())
        assert validate_trace(doc) == []
        report = json.loads(attribution_path.read_text())
        assert report["requests"] > 0
        assert report["min_coverage"] >= MIN_COVERAGE
