"""End-to-end serving tests over the real storage stack.

Low load: everything completes in time, nothing is shed, the decision
cache absorbs repeat consults.  Saturating load: overload is visible
(late / expired / p99 past the deadline), never silent.  And the whole
pipeline is bit-identically deterministic from the root seed.
"""

import pytest

from repro.harness.serve_bench import DEADLINE, serve_bench, serve_cell
from repro.units import KiB

FAST = dict(duration=2.0)


@pytest.fixture(scope="module")
def low_load_das():
    return serve_cell("DAS", 0.5, **FAST)


class TestLowLoad:
    def test_everything_completes(self, low_load_das):
        t = low_load_das["tenants"]["_all"]
        assert low_load_das["generated"] > 0
        assert t["admitted"] == low_load_das["generated"]
        assert t["completed"] == t["admitted"]
        assert t["rejected"] == t["late"] == t["expired"] == t["failed"] == 0

    def test_tail_meets_deadline(self, low_load_das):
        assert low_load_das["tenants"]["_all"]["lat_p99"] <= DEADLINE

    def test_conservation(self, low_load_das):
        assert low_load_das["admitted"] == low_load_das["settled"]

    def test_decision_cache_is_hot(self, low_load_das):
        stats = low_load_das["decision_cache"]
        assert stats["hits"] > 0
        assert stats["hits"] > stats["misses"]

    def test_offload_path_used(self, low_load_das):
        assert low_load_das["paths"]["offload"] > 0

    def test_all_tenants_served(self, low_load_das):
        for name in ("alpha", "beta", "gamma"):
            assert low_load_das["tenants"][name]["completed"] > 0


class TestSaturation:
    def test_nas_overload_is_visible(self):
        summary = serve_cell("NAS", 8.0, **FAST)
        t = summary["tenants"]["_all"]
        shed_or_slow = (
            t["late"] + t["expired"] + t["rejected"] > 0
            or t["lat_p99"] > DEADLINE
        )
        assert shed_or_slow
        # Overload never breaks accounting.
        assert summary["admitted"] == summary["settled"]

    def test_das_beats_nas_at_same_load(self):
        das = serve_cell("DAS", 2.0, **FAST)["tenants"]["_all"]
        nas = serve_cell("NAS", 2.0, **FAST)["tenants"]["_all"]
        assert das["lat_p99"] < nas["lat_p99"]


class TestDeterminism:
    @pytest.mark.parametrize("scheme", ["TS", "DAS"])
    def test_same_seed_same_summary(self, scheme):
        a = serve_cell(scheme, 1.0, **FAST)
        b = serve_cell(scheme, 1.0, **FAST)
        assert a == b


class TestBenchSmoke:
    def test_serve_bench_report(self):
        report = serve_bench(
            scale=512 * KiB,
            loads=(0.5,),
            schemes=("TS", "DAS"),
            verify=True,
            batch_max=4,
        )
        # TS@0.5 + DAS@0.5 unbatched, then the batch comparison doubles
        # the DAS loads (0.5 and the extra overload) both ways.
        assert len(report.rows) == 5
        for row in report.rows:
            assert row["completed"] > 0
        batched = [r for r in report.rows if r["batch"] > 1]
        assert batched and any(r["batch_hit_rate"] > 0 for r in batched)
        # Applicable checks on this reduced sweep: cache heat, the four
        # batching amortisation/identity claims, conservation, replay —
        # all must hold.
        assert report.checks
        assert all(ok for _, ok in report.checks)

    def test_serve_bench_batching_off_is_plain_sweep(self):
        report = serve_bench(
            scale=512 * KiB, loads=(0.5,), schemes=("TS",), verify=False,
            batch_max=1,
        )
        assert len(report.rows) == 1
        assert report.rows[0]["batch"] == 1
