"""Unit tests for the Environment and Process machinery."""

import pytest

from repro.errors import InterruptError, SimulationError
from repro.sim import Environment


def test_run_until_number_advances_clock(env):
    env.timeout(100)
    env.run(until=10.0)
    assert env.now == 10.0


def test_run_until_past_raises(env):
    env.timeout(1)
    env.run(until=5)
    with pytest.raises(SimulationError):
        env.run(until=3)


def test_run_drains_queue_without_until(env):
    env.timeout(7)
    env.run()
    assert env.now == 7


def test_step_on_empty_queue_raises(env):
    with pytest.raises(SimulationError):
        env.step()


def test_peek_reports_next_event_time(env):
    env.timeout(4)
    env.timeout(2)
    assert env.peek() == 2


def test_peek_empty_is_inf(env):
    assert env.peek() == float("inf")


def test_process_requires_generator(env):
    with pytest.raises(SimulationError):
        env.process(lambda: None)  # type: ignore[arg-type]


def test_process_return_value(env):
    def proc():
        yield env.timeout(1)
        return "result"

    assert env.run(until=env.process(proc())) == "result"


def test_process_exception_propagates_through_run(env):
    def proc():
        yield env.timeout(1)
        raise KeyError("inside")

    with pytest.raises(KeyError):
        env.run(until=env.process(proc()))


def test_run_until_already_processed_event(env):
    t = env.timeout(1, "v")
    env.run()
    assert env.run(until=t) == "v"


def test_process_chain_waits_on_subprocess(env):
    def child():
        yield env.timeout(3)
        return "child-value"

    def parent():
        value = yield env.process(child())
        return (env.now, value)

    assert env.run(until=env.process(parent())) == (3, "child-value")


def test_yield_non_event_raises_inside_process(env):
    def proc():
        yield "not an event"  # type: ignore[misc]

    with pytest.raises(SimulationError, match="non-event"):
        env.run(until=env.process(proc()))


def test_yield_non_event_can_be_caught(env):
    def proc():
        try:
            yield 42  # type: ignore[misc]
        except SimulationError:
            return "caught"

    assert env.run(until=env.process(proc())) == "caught"


def test_schedule_into_past_rejected(env):
    ev = env.event()
    with pytest.raises(SimulationError):
        env.schedule(ev, delay=-0.5)


class TestInterrupts:
    def test_interrupt_wakes_sleeper(self, env):
        def sleeper():
            try:
                yield env.timeout(100)
                return "overslept"
            except InterruptError as exc:
                return ("interrupted", exc.cause, env.now)

        p = env.process(sleeper())

        def killer():
            yield env.timeout(2)
            p.interrupt("wake up")

        env.process(killer())
        assert env.run(until=p) == ("interrupted", "wake up", 2)

    def test_interrupt_dead_process_raises(self, env):
        def quick():
            yield env.timeout(1)

        p = env.process(quick())
        env.run()
        with pytest.raises(SimulationError):
            p.interrupt()

    def test_self_interrupt_rejected(self, env):
        def selfish():
            yield env.timeout(0)
            env.active_process.interrupt()

        with pytest.raises(SimulationError, match="interrupt itself"):
            env.run(until=env.process(selfish()))

    def test_interrupted_process_can_rewait(self, env):
        def sleeper():
            try:
                yield env.timeout(100)
            except InterruptError:
                yield env.timeout(1)  # go back to sleep briefly
            return env.now

        p = env.process(sleeper())

        def killer():
            yield env.timeout(5)
            p.interrupt()

        env.process(killer())
        assert env.run(until=p) == 6

    def test_uncaught_interrupt_fails_process(self, env):
        def sleeper():
            yield env.timeout(100)

        p = env.process(sleeper())

        def killer():
            yield env.timeout(1)
            p.interrupt("fatal")

        env.process(killer())
        with pytest.raises(InterruptError):
            env.run(until=p)


def test_is_alive_lifecycle(env):
    def proc():
        yield env.timeout(2)

    p = env.process(proc())
    assert p.is_alive
    env.run()
    assert not p.is_alive


def test_active_process_visible_inside(env):
    seen = []

    def proc():
        seen.append(env.active_process)
        yield env.timeout(0)

    p = env.process(proc())
    env.run()
    assert seen == [p]
    assert env.active_process is None


def test_two_environments_do_not_share_events():
    a, b = Environment(), Environment()

    def proc():
        yield b.timeout(1)

    with pytest.raises(SimulationError, match="different environment"):
        a.run(until=a.process(proc()))


def test_simultaneous_events_fifo_within_priority(env):
    order = []
    for name in "abc":
        t = env.timeout(1, name)
        t.callbacks.append(lambda ev: order.append(ev.value))
    env.run()
    assert order == ["a", "b", "c"]
