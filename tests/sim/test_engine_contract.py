"""The scheduling contract that makes replay bit-identical.

docs/ARCHITECTURE.md ("Engine internals & scheduling contract") pins
the ordering rule: events at equal simulated time process in priority
class order (urgent before normal) and FIFO within a class, with
insertion ids handed out in creation order.  The committed BENCH
baselines depend on it — these tests are the executable form.

Also covered here: the clock-advance hook machinery the fluid network
settles through, lazy `Event.cancel()`, and the non-event-yield resume
path (a generator that *catches* the injected error must keep being
driven — it used to strand forever).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.sim import Environment
from repro.sim.events import NORMAL, URGENT, Event


def _scheduled(env, priority, label, log):
    """A manually triggered event that logs its label when dispatched."""
    ev = Event(env)
    ev._ok = True
    ev._value = None
    ev.callbacks.append(lambda _e: log.append(label))
    env.schedule(ev, priority=priority)
    return ev


# -- (time, priority, FIFO) ordering ----------------------------------------
@given(
    entries=st.lists(
        st.tuples(
            st.sampled_from([0.0, 0.0, 1.0, 1.0, 2.0]),  # ties likely
            st.sampled_from([URGENT, NORMAL]),
        ),
        min_size=1,
        max_size=40,
    )
)
@settings(max_examples=200, deadline=None)
def test_same_timestamp_order_is_priority_then_insertion(entries):
    env = Environment()
    log = []
    for i, (delay, priority) in enumerate(entries):
        ev = Event(env)
        ev._ok = True
        ev._value = None
        ev.callbacks.append(lambda _e, i=i: log.append(i))
        env.schedule(ev, priority=priority, delay=delay)
    env.run()
    # Stable sort by (time, priority) over creation order is exactly
    # the contract; insertion order breaks the remaining ties.
    expected = sorted(range(len(entries)), key=lambda i: (entries[i][0], entries[i][1]))
    assert log == expected


@given(
    delays=st.lists(st.sampled_from([0.0, 0.5, 0.5, 1.0]), min_size=1, max_size=20)
)
@settings(max_examples=100, deadline=None)
def test_replay_dispatches_identical_sequence(delays):
    def run_once():
        env = Environment()
        log = []

        def worker(i, d):
            yield env.timeout(d)
            log.append((i, env.now))
            yield env.timeout(d)
            log.append((i, env.now))

        for i, d in enumerate(delays):
            env.process(worker(i, d))
        env.run()
        return log, env.dispatched

    first = run_once()
    second = run_once()
    assert first == second


def test_urgent_processes_before_normal_at_equal_time():
    env = Environment()
    log = []
    _scheduled(env, NORMAL, "normal-1", log)
    _scheduled(env, URGENT, "urgent", log)
    _scheduled(env, NORMAL, "normal-2", log)
    env.run()
    assert log == ["urgent", "normal-1", "normal-2"]


# -- clock-advance hooks ----------------------------------------------------
def test_advance_hook_runs_once_before_clock_moves():
    env = Environment()
    fired = []
    env.add_advance_hook(lambda: fired.append(env.now))

    def proc(env):
        env._hooks_armed = True
        yield env.timeout(0.0)  # same-instant event: hook must not run yet
        env._hooks_armed = True  # re-arm at the same instant
        yield env.timeout(1.0)

    env.process(proc(env))
    env.run()
    # Exactly one settle as the clock leaves t=0: the same-instant
    # timeout did not trigger it, and both armings coalesced.
    assert fired == [0.0]


def test_advance_hook_not_called_unless_armed():
    env = Environment()
    fired = []
    env.add_advance_hook(lambda: fired.append(env.now))

    def proc(env):
        yield env.timeout(1.0)

    env.process(proc(env))
    env.run()
    assert fired == []


def test_advance_hook_runs_before_idle_out():
    # A hook armed during the *last* event's dispatch still runs — the
    # engine settles hooks before concluding the queue has drained, and
    # events the hook plants are processed rather than lost (this is
    # how fluid completion timers survive toward `run(until=...)`).
    env = Environment()
    fired = []

    def plant():
        t = env.timeout(2.0)
        t.callbacks.append(lambda _e: fired.append(env.now))

    env.add_advance_hook(plant)

    def proc(env):
        yield env.timeout(1.0)
        env._hooks_armed = True  # armed as the final event is dispatched

    env.process(proc(env))
    env.run()
    assert fired == [3.0]
    assert env.now == 3.0


def test_step_honours_advance_hooks():
    env = Environment()
    fired = []
    env.add_advance_hook(lambda: fired.append(env.now))
    env.timeout(1.0)
    env._hooks_armed = True
    env.step()
    assert fired == [0.0]
    assert env.now == 1.0


# -- lazy cancellation ------------------------------------------------------
def test_cancelled_timeout_is_a_no_op_but_clock_still_advances():
    env = Environment()
    fired = []
    t = env.timeout(1.0)
    t.callbacks.append(lambda _e: fired.append("boom"))
    t.cancel()
    env.run()
    assert fired == []
    assert env.now == 1.0  # the heap entry still paced the clock


def test_cancelled_failure_is_defused():
    env = Environment()
    ev = env.event()
    ev.fail(RuntimeError("lost race"))
    ev.cancel()
    env.run()  # must not re-raise the unobserved failure


def test_cancel_after_processing_is_harmless():
    env = Environment()
    t = env.timeout(1.0)
    env.run()
    assert t.processed
    t.cancel()


# -- non-event-yield resume path --------------------------------------------
def test_yielding_a_non_event_fails_the_process():
    env = Environment()

    def bad(env):
        yield 42

    env.process(bad(env))
    with pytest.raises(SimulationError, match="non-event"):
        env.run()


def test_generator_that_catches_the_non_event_error_keeps_running():
    # Regression: the resume loop used to fall through after a
    # non-event yield, stranding the generator forever even if it
    # handled the error and yielded a real event next.
    env = Environment()
    log = []

    def resilient(env):
        try:
            yield "not an event"
        except SimulationError:
            log.append("caught")
        yield env.timeout(1.0)
        log.append("done")

    proc = env.process(resilient(env))
    env.run()
    assert log == ["caught", "done"]
    assert not proc.is_alive
