"""Unit tests for the shared-reader / exclusive-writer lock."""

from repro.sim import Environment, ReadWriteLock


def drain(env):
    env.run()


class TestSyncGrant:
    def test_uncontended_read_granted_synchronously(self, env):
        lock = ReadWriteLock(env)
        before = len(env._queue)
        claim = lock.acquire_read()
        assert claim.triggered
        # The fast path schedules nothing: fencing a hot read path is free.
        assert len(env._queue) == before
        assert lock.readers == 1
        claim.release()
        assert lock.readers == 0

    def test_many_concurrent_readers(self, env):
        lock = ReadWriteLock(env)
        claims = [lock.acquire_read() for _ in range(5)]
        assert all(c.triggered for c in claims)
        assert lock.readers == 5
        for c in claims:
            c.release()
        assert lock.readers == 0

    def test_write_grant_goes_through_an_event(self, env):
        lock = ReadWriteLock(env)
        claim = lock.acquire_write()
        got = []

        def writer():
            yield claim
            got.append(env.now)
            claim.release()

        env.process(writer())
        drain(env)
        assert got == [0]
        assert not lock.write_locked


class TestExclusion:
    def test_writer_waits_for_readers(self, env):
        lock = ReadWriteLock(env)
        log = []

        def reader():
            claim = lock.acquire_read()
            if not claim.triggered:
                yield claim
            log.append(("r-in", env.now))
            yield env.timeout(2)
            log.append(("r-out", env.now))
            claim.release()

        def writer():
            yield env.timeout(1)  # arrive while the reader holds the lock
            claim = lock.acquire_write()
            yield claim
            log.append(("w-in", env.now))
            claim.release()

        env.process(reader())
        env.process(writer())
        drain(env)
        assert log == [("r-in", 0), ("r-out", 2), ("w-in", 2)]

    def test_readers_wait_for_writer(self, env):
        lock = ReadWriteLock(env)
        log = []

        def writer():
            claim = lock.acquire_write()
            yield claim
            log.append(("w-in", env.now))
            yield env.timeout(3)
            claim.release()
            log.append(("w-out", env.now))

        def reader(name):
            yield env.timeout(1)
            claim = lock.acquire_read()
            if not claim.triggered:
                yield claim
            log.append((name, env.now))
            claim.release()

        env.process(writer())
        env.process(reader("r1"))
        env.process(reader("r2"))
        drain(env)
        assert log == [("w-in", 0), ("w-out", 3), ("r1", 3), ("r2", 3)]

    def test_writer_queued_blocks_later_readers(self, env):
        # FIFO: r1 holds, w queues, r2 arrives later -> r2 waits for w
        # (no writer starvation).
        lock = ReadWriteLock(env)
        log = []

        def r1():
            claim = lock.acquire_read()
            if not claim.triggered:
                yield claim
            yield env.timeout(2)
            claim.release()
            log.append(("r1-out", env.now))

        def w():
            yield env.timeout(1)
            claim = lock.acquire_write()
            yield claim
            log.append(("w-in", env.now))
            yield env.timeout(2)
            claim.release()

        def r2():
            yield env.timeout(1.5)
            claim = lock.acquire_read()
            if not claim.triggered:
                yield claim
            log.append(("r2-in", env.now))
            claim.release()

        env.process(r1())
        env.process(w())
        env.process(r2())
        drain(env)
        assert log == [("r1-out", 2), ("w-in", 2), ("r2-in", 4)]

    def test_readers_behind_writer_granted_together(self, env):
        lock = ReadWriteLock(env)
        entered = []

        def w():
            claim = lock.acquire_write()
            yield claim
            yield env.timeout(1)
            claim.release()

        def r(name):
            yield env.timeout(0.5)
            claim = lock.acquire_read()
            if not claim.triggered:
                yield claim
            entered.append((name, env.now))
            yield env.timeout(1)
            claim.release()

        env.process(w())
        for name in ("a", "b", "c"):
            env.process(r(name))
        drain(env)
        assert entered == [("a", 1), ("b", 1), ("c", 1)]

    def test_back_to_back_writers_serialise(self, env):
        lock = ReadWriteLock(env)
        held = []

        def w(name):
            claim = lock.acquire_write()
            yield claim
            held.append((name, env.now))
            yield env.timeout(1)
            claim.release()

        env.process(w("w1"))
        env.process(w("w2"))
        drain(env)
        assert held == [("w1", 0), ("w2", 1)]
