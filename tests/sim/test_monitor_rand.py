"""Unit tests for monitors and random-stream management."""

import numpy as np
import pytest

from repro.sim import Environment, MonitorHub, RandomStreams


class TestCounters:
    def test_counter_accumulates(self, env):
        hub = MonitorHub(env)
        c = hub.counter("bytes")
        c.add(10)
        c.add(5)
        assert c.value == 15
        assert c.events == 2

    def test_counter_identity_by_name(self, env):
        hub = MonitorHub(env)
        assert hub.counter("x") is hub.counter("x")

    def test_counter_total_prefix_sum(self, env):
        hub = MonitorHub(env)
        hub.counter("net.tx.a").add(3)
        hub.counter("net.tx.b").add(4)
        hub.counter("net.rx.a").add(100)
        assert hub.counter_total("net.tx.") == 7

    def test_snapshot_is_plain_dict(self, env):
        hub = MonitorHub(env)
        hub.counter("k").add(2)
        snap = hub.snapshot()
        assert snap == {"k": 2}
        hub.counter("k").add(1)
        assert snap["k"] == 2  # snapshot is detached


class TestGauge:
    def test_time_average_integrates_level(self, env):
        hub = MonitorHub(env)
        g = hub.gauge("queue")

        def proc():
            g.set(2)
            yield env.timeout(5)
            g.set(0)
            yield env.timeout(5)

        env.run(until=env.process(proc()))
        # level 2 for 5s then 0 for 5s -> average 1.0 over 10s
        assert g.time_average(10.0) == pytest.approx(1.0)

    def test_peak_tracks_max(self, env):
        hub = MonitorHub(env)
        g = hub.gauge("depth")
        g.set(3)
        g.adjust(2)
        g.adjust(-4)
        assert g.peak == 5
        assert g.level == 1


class TestTrace:
    def test_trace_disabled_by_default(self, env):
        hub = MonitorHub(env)
        hub.log("cat", "detail")
        assert hub.trace == []

    def test_trace_records_time_and_data(self, env):
        hub = MonitorHub(env, trace=True)

        def proc():
            yield env.timeout(2)
            hub.log("net", "a->b", size=10)

        env.run(until=env.process(proc()))
        assert len(hub.trace) == 1
        rec = hub.trace[0]
        assert (rec.time, rec.category, rec.detail) == (2, "net", "a->b")
        assert rec.data == {"size": 10}


class TestRandomStreams:
    def test_same_name_same_stream_object(self):
        rs = RandomStreams(7)
        assert rs.stream("a") is rs.stream("a")

    def test_streams_reproducible_across_instances(self):
        a = RandomStreams(7).stream("workload").random(5)
        b = RandomStreams(7).stream("workload").random(5)
        assert np.array_equal(a, b)

    def test_different_names_independent(self):
        rs = RandomStreams(7)
        a = rs.stream("a").random(5)
        b = rs.stream("b").random(5)
        assert not np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = RandomStreams(1).stream("x").random(5)
        b = RandomStreams(2).stream("x").random(5)
        assert not np.array_equal(a, b)

    def test_adding_a_stream_does_not_perturb_existing(self):
        rs1 = RandomStreams(3)
        first = rs1.stream("main").random(3)
        rs2 = RandomStreams(3)
        rs2.stream("other")  # extra consumer created first
        second = rs2.stream("main").random(3)
        assert np.array_equal(first, second)

    def test_reset_recreates_streams(self):
        rs = RandomStreams(5)
        a = rs.stream("s").random(4)
        rs.reset()
        b = rs.stream("s").random(4)
        assert np.array_equal(a, b)
