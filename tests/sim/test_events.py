"""Unit tests for the event primitives."""

import pytest

from repro.errors import SimulationError
from repro.sim import AllOf, AnyOf, Environment, Event, Timeout


def test_fresh_event_is_pending(env):
    ev = env.event()
    assert not ev.triggered
    assert not ev.processed
    with pytest.raises(SimulationError):
        _ = ev.value
    with pytest.raises(SimulationError):
        _ = ev.ok


def test_succeed_sets_value(env):
    ev = env.event()
    ev.succeed(42)
    assert ev.triggered
    assert ev.ok
    assert ev.value == 42


def test_succeed_twice_raises(env):
    ev = env.event()
    ev.succeed()
    with pytest.raises(SimulationError):
        ev.succeed()


def test_fail_then_succeed_raises(env):
    ev = env.event()
    ev.fail(RuntimeError("boom"))
    with pytest.raises(SimulationError):
        ev.succeed()


def test_fail_requires_exception(env):
    ev = env.event()
    with pytest.raises(TypeError):
        ev.fail("not an exception")  # type: ignore[arg-type]


def test_unhandled_failure_surfaces_in_run(env):
    ev = env.event()
    ev.fail(ValueError("nobody caught me"))
    with pytest.raises(ValueError, match="nobody caught me"):
        env.run()


def test_defused_failure_does_not_surface(env):
    ev = env.event()
    ev.fail(ValueError("defused"))
    ev.defuse()
    env.run()  # no raise


def test_timeout_negative_delay_rejected(env):
    with pytest.raises(SimulationError):
        env.timeout(-1)


def test_timeout_fires_at_delay(env):
    t = env.timeout(5.0, value="done")
    env.run()
    assert env.now == 5.0
    assert t.value == "done"


def test_timeouts_fire_in_order(env):
    order = []
    for delay in (3.0, 1.0, 2.0):
        t = env.timeout(delay, value=delay)
        t.callbacks.append(lambda ev: order.append(ev.value))
    env.run()
    assert order == [1.0, 2.0, 3.0]


def test_trigger_mirrors_success(env):
    a, b = env.event(), env.event()
    a.succeed("x")
    b.trigger(a)
    assert b.triggered and b.ok and b.value == "x"


def test_trigger_mirrors_failure(env):
    a, b = env.event(), env.event()
    exc = RuntimeError("mirrored")
    a.fail(exc)
    a.defuse()
    b.trigger(a)
    b.defuse()
    assert b.triggered and not b._ok
    assert b.value is exc


class TestConditions:
    def test_allof_waits_for_all(self, env):
        t1 = env.timeout(1, "a")
        t2 = env.timeout(2, "b")
        cond = AllOf(env, [t1, t2])

        def waiter():
            result = yield cond
            return (env.now, result[t1], result[t2])

        got = env.run(until=env.process(waiter()))
        assert got == (2, "a", "b")

    def test_anyof_fires_on_first(self, env):
        t1 = env.timeout(1, "fast")
        t2 = env.timeout(5, "slow")

        def waiter():
            result = yield AnyOf(env, [t1, t2])
            return (env.now, t1 in result, t2 in result)

        got = env.run(until=env.process(waiter()))
        assert got == (1, True, False)

    def test_empty_allof_succeeds_immediately(self, env):
        def waiter():
            result = yield AllOf(env, [])
            return len(result)

        assert env.run(until=env.process(waiter())) == 0

    def test_and_operator(self, env):
        def waiter():
            yield env.timeout(1) & env.timeout(2)
            return env.now

        assert env.run(until=env.process(waiter())) == 2

    def test_or_operator(self, env):
        def waiter():
            yield env.timeout(1) | env.timeout(9)
            return env.now

        assert env.run(until=env.process(waiter())) == 1

    def test_condition_propagates_failure(self, env):
        def failer():
            yield env.timeout(1)
            raise RuntimeError("inner")

        p = env.process(failer())

        def waiter():
            with pytest.raises(RuntimeError, match="inner"):
                yield p & env.timeout(10)
            return "handled"

        assert env.run(until=env.process(waiter())) == "handled"

    def test_condition_rejects_cross_environment_events(self, env):
        other = Environment()
        with pytest.raises(SimulationError):
            AllOf(env, [env.timeout(1), other.timeout(1)])

    def test_condition_value_mapping_api(self, env):
        t1 = env.timeout(1, "x")

        def waiter():
            result = yield AllOf(env, [t1])
            assert t1 in result
            assert list(iter(result)) == [t1]
            assert result.todict() == {t1: "x"}
            with pytest.raises(KeyError):
                _ = result[env.event()]
            return len(result)

        assert env.run(until=env.process(waiter())) == 1


def test_already_processed_event_can_be_yielded(env):
    t = env.timeout(1, "early")

    def late_waiter():
        yield env.timeout(5)
        value = yield t  # t processed long ago
        return (env.now, value)

    assert env.run(until=env.process(late_waiter())) == (5, "early")
