"""Edge cases of the monitor hub: prefix sums, gauge semantics, reset."""

import pytest

from repro.obs import NULL_TRACER, Tracer
from repro.sim import Environment, MonitorHub


class TestCounterTotal:
    def test_prefix_matches_are_prefixes_not_substrings(self, env):
        hub = MonitorHub(env)
        hub.counter("net.tx.a").add(3)
        hub.counter("subnet.tx.a").add(100)
        assert hub.counter_total("net.tx.") == 3

    def test_a_name_equal_to_the_prefix_counts(self, env):
        hub = MonitorHub(env)
        hub.counter("disk.read_total").add(7)
        hub.counter("disk.read_total_extra").add(2)
        assert hub.counter_total("disk.read_total") == 9

    def test_empty_prefix_sums_everything(self, env):
        hub = MonitorHub(env)
        hub.counter("a").add(1)
        hub.counter("b").add(2)
        assert hub.counter_total("") == 3

    def test_no_match_is_zero_and_books_nothing(self, env):
        hub = MonitorHub(env)
        hub.counter("a").add(1)
        assert hub.counter_total("zzz") == 0
        assert "zzz" not in hub.counters


class TestGauge:
    def test_set_replaces_add_adjusts(self, env):
        hub = MonitorHub(env)
        g = hub.gauge("depth")
        g.set(5)
        assert g.level == 5
        g.adjust(+2)
        assert g.level == 7
        g.adjust(-3)
        assert g.level == 4
        g.set(1)
        assert g.level == 1

    def test_peak_tracks_high_water_mark_not_current(self, env):
        hub = MonitorHub(env)
        g = hub.gauge("depth")
        g.set(9)
        g.set(2)
        assert g.peak == 9
        assert g.level == 2

    def test_time_average_weights_by_duration(self, env):
        hub = MonitorHub(env)
        g = hub.gauge("depth")

        def proc():
            g.set(10)  # level 10 over [0, 2)
            yield env.timeout(2.0)
            g.set(0)  # level 0 over [2, 8)
            yield env.timeout(6.0)

        env.run(until=env.process(proc()))
        assert g.time_average(8.0) == pytest.approx(20.0 / 8.0)

    def test_time_average_at_time_zero_is_the_level(self, env):
        hub = MonitorHub(env)
        g = hub.gauge("depth")
        g.set(3)
        assert g.time_average(0.0) == 3


class TestReset:
    def test_reset_clears_counters_gauges_and_trace(self, env):
        hub = MonitorHub(env, trace=True)
        hub.counter("x").add(5)
        hub.gauge("y").set(2)
        hub.log("cat", "detail")
        hub.reset()
        assert hub.counters == {}
        assert hub.gauges == {}
        assert hub.trace == []

    def test_reset_detaches_a_live_tracer(self, env):
        hub = MonitorHub(env)
        hub.tracer = Tracer(clock=lambda: env.now)
        hub.reset()
        assert hub.tracer is NULL_TRACER
        assert not hub.tracer

    def test_gauges_after_reset_restart_from_the_current_clock(self, env):
        hub = MonitorHub(env)

        def proc():
            hub.gauge("depth").set(100)  # would dominate any average
            yield env.timeout(4.0)
            hub.reset()
            g = hub.gauge("depth")
            g.set(2)  # level 2 over [4, 8)
            yield env.timeout(4.0)

        env.run(until=env.process(proc()))
        g = hub.gauge("depth")
        # The pre-reset area is gone; only the post-reset level remains,
        # averaged over the *whole* clock by time_average's contract.
        assert g.time_average(8.0) == pytest.approx(2 * 4.0 / 8.0)

    def test_log_is_gated_by_trace_enabled(self, env):
        hub = MonitorHub(env, trace=False)
        hub.log("cat", "detail", n=1)
        assert hub.trace == []
        hub.trace_enabled = True
        hub.log("cat", "detail", n=1)
        assert len(hub.trace) == 1
        assert hub.trace[0].data == {"n": 1}
