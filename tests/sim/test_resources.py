"""Unit tests for Resource, PriorityResource, Container, Store."""

import pytest

from repro.errors import SimulationError
from repro.sim import Container, FilterStore, PriorityResource, Resource, Store


class TestResource:
    def test_capacity_must_be_positive(self, env):
        with pytest.raises(SimulationError):
            Resource(env, capacity=0)

    def test_grants_up_to_capacity(self, env):
        res = Resource(env, capacity=2)
        granted = []

        def user(name):
            with res.request() as req:
                yield req
                granted.append((env.now, name))
                yield env.timeout(1)

        for name in "abc":
            env.process(user(name))
        env.run()
        assert granted == [(0, "a"), (0, "b"), (1, "c")]

    def test_fifo_order(self, env):
        res = Resource(env, capacity=1)
        order = []

        def user(name, hold):
            with res.request() as req:
                yield req
                order.append(name)
                yield env.timeout(hold)

        for name in "abcd":
            env.process(user(name, 1))
        env.run()
        assert order == list("abcd")

    def test_count_tracks_users(self, env):
        res = Resource(env, capacity=2)
        counts = []

        def user():
            with res.request() as req:
                yield req
                counts.append(res.count)
                yield env.timeout(1)

        env.process(user())
        env.process(user())
        env.run()
        assert max(counts) == 2
        assert res.count == 0

    def test_cancel_queued_request(self, env):
        res = Resource(env, capacity=1)

        def holder():
            with res.request() as req:
                yield req
                yield env.timeout(10)

        def impatient():
            req = res.request()
            result = yield req | env.timeout(1)
            assert req not in result
            req.cancel()
            return "gave up"

        env.process(holder())
        p = env.process(impatient())
        assert env.run(until=p) == "gave up"
        env.run()
        assert not res.queue

    def test_released_slot_goes_to_next(self, env):
        res = Resource(env, capacity=1)
        log = []

        def first():
            req = res.request()
            yield req
            yield env.timeout(5)
            res.release(req)
            log.append(("first-out", env.now))

        def second():
            with res.request() as req:
                yield req
                log.append(("second-in", env.now))

        env.process(first())
        env.process(second())
        env.run()
        assert ("second-in", 5) in log


class TestPriorityResource:
    def test_lower_priority_value_first(self, env):
        res = PriorityResource(env, capacity=1)
        order = []

        def holder():
            with res.request(priority=0) as req:
                yield req
                yield env.timeout(1)

        def user(name, prio):
            with res.request(priority=prio) as req:
                yield req
                order.append(name)

        env.process(holder())

        def spawn():
            yield env.timeout(0.1)
            env.process(user("low", 5))
            env.process(user("high", 1))
            env.process(user("mid", 3))

        env.process(spawn())
        env.run()
        assert order == ["high", "mid", "low"]

    def test_fifo_among_equal_priorities(self, env):
        res = PriorityResource(env, capacity=1)
        order = []

        def holder():
            with res.request(priority=0) as req:
                yield req
                yield env.timeout(1)

        def user(name):
            with res.request(priority=2) as req:
                yield req
                order.append(name)

        env.process(holder())

        def spawn():
            yield env.timeout(0.1)
            for name in "abc":
                env.process(user(name))

        env.process(spawn())
        env.run()
        assert order == list("abc")

    def test_cancellation_preserves_grant_order(self, env):
        """Lazily-deleted (tombstoned) requests must not disturb the
        priority/FIFO order of the survivors."""
        res = PriorityResource(env, capacity=1)
        order = []

        def holder():
            with res.request(priority=0) as req:
                yield req
                yield env.timeout(1)

        def user(name, prio):
            with res.request(priority=prio) as req:
                yield req
                order.append(name)

        def quitter(prio):
            req = res.request(priority=prio)
            yield env.timeout(0.2)
            req.cancel()

        env.process(holder())

        def spawn():
            yield env.timeout(0.1)
            # Interleave survivors and quitters across priorities.
            env.process(user("low-1", 5))
            env.process(quitter(1))
            env.process(user("high-1", 1))
            env.process(quitter(3))
            env.process(user("mid-1", 3))
            env.process(user("high-2", 1))
            env.process(quitter(5))
            env.process(user("low-2", 5))

        env.process(spawn())
        env.run()
        assert order == ["high-1", "high-2", "mid-1", "low-1", "low-2"]
        assert res._dead == 0  # every tombstone was discarded on pop

    def test_mass_cancellation_compacts_and_keeps_order(self, env):
        """Past the tombstone threshold the heap is compacted in place;
        grant order is still priority-then-FIFO over the survivors."""
        res = PriorityResource(env, capacity=1)
        n = 210  # two thirds doomed: enough to cross the compaction bar
        order = []

        def holder():
            with res.request(priority=0) as req:
                yield req
                yield env.timeout(1)

        def user(name, prio):
            with res.request(priority=prio) as req:
                yield req
                order.append(name)

        doomed = []

        def spawn():
            yield env.timeout(0.1)
            for i in range(n):
                if i % 3:
                    doomed.append(res.request(priority=i % 7))
                else:
                    env.process(user(i, prio=i % 7))

        survivors = [i for i in range(n) if i % 3 == 0]

        def cancel_all():
            yield env.timeout(0.2)
            assert len(res.queue) == n
            for req in doomed:
                req.cancel()
            # The tombstone threshold was crossed mid-way and the heap
            # compacted: the queue shrank, and every entry is now either
            # live or one of the post-compaction tombstones.
            assert len(res.queue) < n
            assert res._dead < len(doomed)
            assert len(res.queue) == len(survivors) + res._dead

        env.process(holder())
        env.process(spawn())
        env.process(cancel_all())
        env.run()
        assert order == sorted(survivors, key=lambda i: (i % 7, i))
        assert res._dead == 0  # the stragglers were discarded on pop

    def test_double_release_of_granted_request_is_inert(self, env):
        """Releasing an already-released token must not tombstone it or
        corrupt the dead counter."""
        res = PriorityResource(env, capacity=1)

        def user():
            req = res.request(priority=1)
            yield req
            res.release(req)
            res.release(req)  # idempotent

        p = env.process(user())
        env.run(until=p)
        assert res._dead == 0
        assert not res.users and not res.queue


class TestContainer:
    def test_initial_level_validated(self, env):
        with pytest.raises(SimulationError):
            Container(env, capacity=10, init=11)

    def test_get_blocks_until_put(self, env):
        tank = Container(env, capacity=100)
        log = []

        def consumer():
            yield tank.get(5)
            log.append(("got", env.now))

        def producer():
            yield env.timeout(3)
            yield tank.put(5)

        env.process(consumer())
        env.process(producer())
        env.run()
        assert log == [("got", 3)]
        assert tank.level == 0

    def test_put_blocks_at_capacity(self, env):
        tank = Container(env, capacity=10, init=8)
        log = []

        def producer():
            yield tank.put(5)
            log.append(("put-done", env.now))

        def consumer():
            yield env.timeout(2)
            yield tank.get(4)

        env.process(producer())
        env.process(consumer())
        env.run()
        assert log == [("put-done", 2)]
        assert tank.level == 9

    def test_nonpositive_amounts_rejected(self, env):
        tank = Container(env, capacity=10, init=5)
        with pytest.raises(SimulationError):
            tank.put(0)
        with pytest.raises(SimulationError):
            tank.get(-1)


class TestStore:
    def test_fifo_item_order(self, env):
        store = Store(env)

        def producer():
            for item in (1, 2, 3):
                yield store.put(item)

        def consumer():
            got = []
            for _ in range(3):
                got.append((yield store.get()))
            return got

        env.process(producer())
        p = env.process(consumer())
        assert env.run(until=p) == [1, 2, 3]

    def test_capacity_blocks_put(self, env):
        store = Store(env, capacity=1)
        log = []

        def producer():
            yield store.put("a")
            yield store.put("b")
            log.append(("b-stored", env.now))

        def consumer():
            yield env.timeout(4)
            yield store.get()

        env.process(producer())
        env.process(consumer())
        env.run()
        assert log == [("b-stored", 4)]

    def test_len_reports_queued_items(self, env):
        store = Store(env)
        store.put("x")
        store.put("y")
        env.run()
        assert len(store) == 2


class TestFilterStore:
    def test_predicate_selects_item(self, env):
        store = FilterStore(env)
        for item in (1, 2, 3, 4):
            store.put(item)

        def consumer():
            odd = yield store.get(lambda i: i % 2 == 1)
            even = yield store.get(lambda i: i % 2 == 0)
            return (odd, even)

        p = env.process(consumer())
        assert env.run(until=p) == (1, 2)

    def test_unmatched_consumer_waits(self, env):
        store = FilterStore(env)
        log = []

        def consumer():
            item = yield store.get(lambda i: i == "wanted")
            log.append((item, env.now))

        def producer():
            yield env.timeout(1)
            yield store.put("other")
            yield env.timeout(1)
            yield store.put("wanted")

        env.process(consumer())
        env.process(producer())
        env.run()
        assert log == [("wanted", 2)]
        assert store.items == ["other"]

    def test_blocked_consumer_does_not_block_others(self, env):
        store = FilterStore(env)
        got = []

        def picky():
            item = yield store.get(lambda i: i == "never")
            got.append(item)

        def easy():
            item = yield store.get()
            got.append(item)

        env.process(picky())
        env.process(easy())

        def producer():
            yield env.timeout(1)
            yield store.put("anything")

        env.process(producer())
        env.run()
        assert got == ["anything"]
