"""Tests for the server-side strip cache."""

import numpy as np
import pytest

from repro.config import PlatformSpec
from repro.errors import PFSError
from repro.hw import Cluster
from repro.pfs import ParallelFileSystem
from repro.pfs.cache import StripCache
from repro.units import KiB, MiB
from repro.workloads import fractal_dem


class TestStripCacheUnit:
    def test_negative_budget_rejected(self):
        with pytest.raises(PFSError):
            StripCache(-1)

    def test_disabled_cache_never_hits(self):
        cache = StripCache(0)
        cache.insert(("f", 0), 100)
        assert not cache.lookup(("f", 0))
        assert cache.hit_rate == 0.0

    def test_hit_after_insert(self):
        cache = StripCache(1000)
        assert not cache.lookup(("f", 0))  # miss
        cache.insert(("f", 0), 100)
        assert cache.lookup(("f", 0))  # hit
        assert cache.hits == 1 and cache.misses == 1

    def test_lru_eviction_respects_budget(self):
        cache = StripCache(250)
        for i in range(3):
            cache.insert(("f", i), 100)
        assert cache.used_bytes <= 250
        assert ("f", 0) not in cache  # evicted first
        assert ("f", 2) in cache
        assert cache.evictions == 1

    def test_monitored_cache_mirrors_counters(self):
        from repro.sim import Environment, MonitorHub

        monitors = MonitorHub(Environment())
        cache = StripCache(250, monitors=monitors, owner="s0")
        cache.lookup(("f", 0))  # miss
        cache.insert(("f", 0), 100)
        cache.lookup(("f", 0))  # hit
        for i in range(1, 3):
            cache.insert(("f", i), 100)  # forces one eviction
        assert monitors.counter("pfs.cache.hits.s0").value == cache.hits == 1
        assert monitors.counter("pfs.cache.misses.s0").value == cache.misses == 1
        assert monitors.counter("pfs.cache.evictions.s0").value == cache.evictions == 1

    def test_monitored_cache_requires_owner(self):
        from repro.sim import Environment, MonitorHub

        with pytest.raises(PFSError):
            StripCache(100, monitors=MonitorHub(Environment()))

    def test_recency_refresh_on_lookup(self):
        cache = StripCache(250)
        cache.insert(("f", 0), 100)
        cache.insert(("f", 1), 100)
        cache.lookup(("f", 0))  # refresh 0
        cache.insert(("f", 2), 100)  # must evict 1, not 0
        assert ("f", 0) in cache
        assert ("f", 1) not in cache

    def test_oversized_strip_not_cached(self):
        cache = StripCache(50)
        cache.insert(("f", 0), 100)
        assert ("f", 0) not in cache
        assert cache.used_bytes == 0

    def test_reinsert_updates_size(self):
        cache = StripCache(300)
        cache.insert(("f", 0), 100)
        cache.insert(("f", 0), 200)
        assert cache.used_bytes == 200

    def test_invalidate_file(self):
        cache = StripCache(1000)
        cache.insert(("a", 0), 10)
        cache.insert(("a", 1), 10)
        cache.insert(("b", 0), 10)
        assert cache.invalidate_file("a") == 2
        assert ("b", 0) in cache
        assert cache.used_bytes == 10


class TestCachedDataServer:
    def build(self, cache_bytes):
        spec = PlatformSpec(server_cache_bytes=cache_bytes)
        cluster = Cluster.build(n_compute=1, n_storage=2, spec=spec)
        pfs = ParallelFileSystem(cluster, strip_size=4 * KiB)
        dem = fractal_dem(64, 64, rng=np.random.default_rng(81))
        pfs.client("c0").ingest("dem", dem, pfs.round_robin())
        return cluster, pfs, dem

    def repeated_read_times(self, cache_bytes):
        cluster, pfs, dem = self.build(cache_bytes)
        client = pfs.client("c0")

        def main():
            t0 = cluster.env.now
            yield client.read("dem", 0, dem.nbytes)
            t1 = cluster.env.now
            yield client.read("dem", 0, dem.nbytes)
            t2 = cluster.env.now
            return t1 - t0, t2 - t1

        return cluster.run(until=cluster.env.process(main())), cluster

    def test_second_read_faster_with_cache(self):
        (cold, warm), cluster = self.repeated_read_times(1 * MiB)
        assert warm < cold
        # The warm read did no disk I/O at all.
        assert cluster.monitors.counter_total("pfs.cache_hit_bytes.") > 0
        # The hit/miss tallies flow through the cluster monitors: the
        # cold pass misses every strip, the warm pass hits them all.
        hits = cluster.monitors.counter_total("pfs.cache.hits.")
        misses = cluster.monitors.counter_total("pfs.cache.misses.")
        assert hits > 0 and misses > 0
        assert hits == misses  # same strips: one cold miss, one warm hit

    def test_no_speedup_without_cache(self):
        (cold, warm), cluster = self.repeated_read_times(0)
        assert warm == pytest.approx(cold, rel=0.05)
        # A disabled cache records nothing in the monitors.
        assert cluster.monitors.counter_total("pfs.cache.hits.") == 0
        assert cluster.monitors.counter_total("pfs.cache.misses.") == 0

    def test_eviction_counters_under_tight_budget(self):
        """A budget far below the file size forces evictions that are
        visible through the cluster monitors (hit ratio ~ 0 on a scan)."""
        cluster, pfs, dem = self.build(8 * KiB)  # 2 strips of budget
        client = pfs.client("c0")

        def main():
            yield client.read("dem", 0, dem.nbytes)
            yield client.read("dem", 0, dem.nbytes)

        cluster.run(until=cluster.env.process(main()))
        assert cluster.monitors.counter_total("pfs.cache.evictions.") > 0
        for name, server in pfs.servers.items():
            assert (
                cluster.monitors.counter(f"pfs.cache.evictions.{name}").value
                == server.cache.evictions
            )

    def test_cached_reads_still_return_correct_bytes(self):
        cluster, pfs, dem = self.build(1 * MiB)
        client = pfs.client("c0")
        raw = dem.view(np.uint8).reshape(-1)

        def main():
            first = yield client.read("dem", 0, dem.nbytes)
            second = yield client.read("dem", 100, 5000)
            return first, second

        first, second = cluster.run(until=cluster.env.process(main()))
        assert np.array_equal(first, raw)
        assert np.array_equal(second, raw[100:5100])

    def test_write_through_populates_cache(self):
        cluster, pfs, dem = self.build(1 * MiB)
        client = pfs.client("c0")

        def main():
            yield client.write_elems("dem", 0, np.zeros(512, dtype=np.float64))
            t0 = cluster.env.now
            yield client.read("dem", 0, 4096)  # the strip just written
            return cluster.env.now - t0

        warm = cluster.run(until=cluster.env.process(main()))
        # No disk read happened for the cached strip.
        ds = pfs.servers["s0"]
        assert ds.cache.hits >= 1

    def test_scheme_correct_with_cache_enabled(self, drive):
        spec = PlatformSpec(server_cache_bytes=4 * MiB)
        cluster = Cluster.build(n_compute=2, n_storage=2, spec=spec)
        pfs = ParallelFileSystem(cluster, strip_size=4 * KiB)
        dem = fractal_dem(96, 128, rng=np.random.default_rng(82))
        from repro.harness.platform import ingest_for_scheme
        from repro.kernels import default_registry
        from repro.schemes import DynamicActiveStorageScheme

        ingest_for_scheme(pfs, "DAS", "in", dem, "gaussian")
        res = drive(
            cluster, DynamicActiveStorageScheme(pfs).run_operation("gaussian", "in", "out")
        )
        ref = default_registry.get("gaussian").reference(dem)
        assert np.array_equal(pfs.client("c0").collect("out"), ref)
