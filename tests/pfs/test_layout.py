"""Unit tests for striping layouts (paper Eqs. 1–2 and Figs. 4–5)."""

import pytest

from repro.errors import LayoutError
from repro.pfs import GroupedLayout, RoundRobinLayout

SERVERS = ["s0", "s1", "s2", "s3"]


@pytest.fixture
def rr():
    return RoundRobinLayout(SERVERS, strip_size=1024)


@pytest.fixture
def grouped():
    return GroupedLayout(SERVERS, strip_size=1024, group=3)


class TestConstruction:
    def test_needs_servers(self):
        with pytest.raises(LayoutError):
            RoundRobinLayout([], 1024)

    def test_rejects_duplicate_servers(self):
        with pytest.raises(LayoutError):
            RoundRobinLayout(["a", "a"], 1024)

    def test_rejects_nonpositive_strip(self):
        with pytest.raises(LayoutError):
            RoundRobinLayout(SERVERS, 0)

    def test_grouped_rejects_nonpositive_group(self):
        with pytest.raises(LayoutError):
            GroupedLayout(SERVERS, 1024, group=0)


class TestRoundRobin:
    def test_strip_of_byte_offsets(self, rr):
        assert rr.strip_of(0) == 0
        assert rr.strip_of(1023) == 0
        assert rr.strip_of(1024) == 1
        assert rr.strip_of(10 * 1024 + 1) == 10

    def test_negative_offset_rejected(self, rr):
        with pytest.raises(LayoutError):
            rr.strip_of(-1)

    def test_placement_cycles_servers(self, rr):
        assert [rr.primary_server(s) for s in range(6)] == [
            "s0", "s1", "s2", "s3", "s0", "s1",
        ]

    def test_replicas_is_primary_only(self, rr):
        assert rr.replicas(5) == ["s1"]

    def test_n_strips_rounds_up(self, rr):
        assert rr.n_strips(0) == 0
        assert rr.n_strips(1) == 1
        assert rr.n_strips(1024) == 1
        assert rr.n_strips(1025) == 2

    def test_primary_runs_are_singletons(self, rr):
        runs = rr.primary_runs("s1", file_size=8 * 1024)
        assert runs == [(1, 1), (5, 5)]

    def test_strip_extent_bytes_last_strip_short(self, rr):
        assert rr.strip_extent_bytes(0, 1500) == 1024
        assert rr.strip_extent_bytes(1, 1500) == 476
        assert rr.strip_extent_bytes(2, 1500) == 0

    def test_storage_bytes_equals_file_size(self, rr):
        assert rr.storage_bytes(10_000) == 10_000


class TestMapExtent:
    def test_single_strip_extent(self, rr):
        [e] = rr.map_extent(100, 200)
        assert (e.strip, e.server, e.offset, e.length, e.in_strip) == (
            0, "s0", 100, 200, 100,
        )

    def test_extent_split_at_strip_boundary(self, rr):
        extents = rr.map_extent(1000, 100)
        assert [(e.strip, e.length, e.in_strip) for e in extents] == [
            (0, 24, 1000),
            (1, 76, 0),
        ]

    def test_extents_cover_range_exactly(self, rr):
        extents = rr.map_extent(500, 5000)
        assert extents[0].offset == 500
        assert extents[-1].end == 5500
        for a, b in zip(extents, extents[1:]):
            assert a.end == b.offset

    def test_zero_length_extent_is_empty(self, rr):
        assert rr.map_extent(100, 0) == []

    def test_invalid_extent_rejected(self, rr):
        with pytest.raises(LayoutError):
            rr.map_extent(-1, 10)
        with pytest.raises(LayoutError):
            rr.map_extent(0, -10)


class TestGrouped:
    def test_group_placement(self, grouped):
        # r=3: strips 0-2 -> s0, 3-5 -> s1, ...
        assert [grouped.primary_server(s) for s in range(8)] == [
            "s0", "s0", "s0", "s1", "s1", "s1", "s2", "s2",
        ]

    def test_wraps_after_all_servers(self, grouped):
        assert grouped.primary_server(12) == "s0"  # group 4 -> s0 again

    def test_primary_runs_are_group_sized(self, grouped):
        runs = grouped.primary_runs("s1", file_size=24 * 1024)
        assert runs == [(3, 5), (15, 17)]

    def test_placement_table_covers_every_strip(self, grouped):
        table = grouped.placement_table(10 * 1024)
        placed = sorted(s for strips in table.values() for s in strips)
        assert placed == list(range(10))
