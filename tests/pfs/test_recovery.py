"""Fault-tolerant read path: timeouts, backoff, failover, hedging.

With ``client.recovery = None`` (the default) none of this code runs;
those paths are pinned by the rest of the suite.  These tests attach a
:class:`RecoveryPolicy` and exercise each recovery mechanism alone.
"""

import numpy as np
import pytest

from repro.errors import NodeDownError
from repro.faults import RecoveryPolicy
from repro.hw import Cluster
from repro.pfs import ParallelFileSystem
from repro.units import KiB
from repro.workloads import fractal_dem

STRIP = 4 * KiB


@pytest.fixture
def world():
    cluster = Cluster.build(n_compute=1, n_storage=4)
    pfs = ParallelFileSystem(cluster, strip_size=STRIP)
    dem = fractal_dem(64, 64, rng=np.random.default_rng(11))  # 8 strips
    return cluster, pfs, dem


def read_all(cluster, client, name, nbytes):
    def main():
        return (yield client.read(name, 0, nbytes))

    proc = cluster.env.process(main())
    cluster.run(until=proc)
    return proc.value


def counter(cluster, name):
    return cluster.monitors.counter(f"faults.{name}").value


def crash_midflight(cluster, node, at):
    """Crash ``node`` at sim time ``at`` — while an RPC is in flight."""

    def proc():
        yield cluster.env.timeout(at)
        cluster.node(node).fail()

    cluster.env.process(proc())


class TestFaultFree:
    def test_ft_read_returns_the_same_bytes(self, world):
        cluster, pfs, dem = world
        client = pfs.client("c0")
        client.ingest("dem", dem, pfs.round_robin())
        client.recovery = RecoveryPolicy()
        got = read_all(cluster, client, "dem", dem.nbytes)
        assert np.array_equal(got, dem.view(np.uint8).reshape(-1))
        assert counter(cluster, "failover_reads") == 0
        assert counter(cluster, "rpc_timeouts") == 0

    def test_set_recovery_reaches_existing_and_future_clients(self, world):
        _, pfs, _ = world
        early = pfs.client("c0")
        policy = RecoveryPolicy()
        pfs.set_recovery(policy)
        late = pfs.client("s0")
        assert early.recovery is policy and late.recovery is policy
        pfs.set_recovery(None)
        assert early.recovery is None


class TestFailover:
    def test_read_fails_over_to_replica_when_primary_is_down(self, world):
        cluster, pfs, dem = world
        client = pfs.client("c0")
        # group=2, halo=2: every strip replicated onto both neighbours.
        client.ingest("dem", dem, pfs.replicated_grouped(group=2, halo_strips=2))
        client.recovery = RecoveryPolicy(backoff=0.0)
        cluster.node("s1").fail()
        got = read_all(cluster, client, "dem", dem.nbytes)
        assert np.array_equal(got, dem.view(np.uint8).reshape(-1))
        assert counter(cluster, "failover_reads") > 0

    def test_crashed_at_rest_unreplicated_fails_at_planning(self, world):
        # A server that is already down when the read is planned is
        # detected for free: no RPC is issued, no retries are burned.
        cluster, pfs, dem = world
        client = pfs.client("c0")
        client.ingest("dem", dem, pfs.round_robin())
        client.recovery = RecoveryPolicy(max_attempts=2, backoff=0.0)
        cluster.node("s1").fail()

        def main():
            yield client.read("dem", 0, dem.nbytes)

        proc = cluster.env.process(main())
        with pytest.raises(NodeDownError):
            cluster.run(until=proc)
        assert counter(cluster, "retries") == 0

    def test_midflight_crash_is_retried_then_raises(self, world):
        # The server dies *after* planning, mid-RPC: the attempt fails
        # in flight, is retried, and only then declared unreachable.
        cluster, pfs, dem = world
        client = pfs.client("c0")
        client.ingest("dem", dem, pfs.round_robin())
        client.recovery = RecoveryPolicy(
            rpc_timeout=0.05, max_attempts=2, backoff=0.0
        )
        cluster.node("s1").disk.degrade(0.001)  # stretch the RPC
        crash_midflight(cluster, "s1", 0.005)

        def main():
            yield client.read("dem", 0, dem.nbytes)

        proc = cluster.env.process(main())
        with pytest.raises(NodeDownError):
            cluster.run(until=proc)
        assert counter(cluster, "retries") >= 1

    def test_backoff_delays_the_retry(self, world):
        cluster, pfs, dem = world
        client = pfs.client("c0")
        client.ingest("dem", dem, pfs.replicated_grouped(group=2, halo_strips=2))
        client.recovery = RecoveryPolicy(
            rpc_timeout=0.05, max_attempts=2, backoff=0.5
        )
        cluster.node("s1").disk.degrade(0.001)  # stretch the RPC
        crash_midflight(cluster, "s1", 0.005)
        got = read_all(cluster, client, "dem", dem.nbytes)
        assert np.array_equal(got, dem.view(np.uint8).reshape(-1))
        # One in-flight failure + one 0.5 s backoff before the second
        # attempt fails fast and the group fails over to replicas.
        assert counter(cluster, "retries") >= 1
        assert cluster.env.now >= 0.5

    def test_double_fault_with_full_replication_still_fails(self, world):
        cluster, pfs, dem = world
        client = pfs.client("c0")
        client.ingest("dem", dem, pfs.replicated_grouped(group=2, halo_strips=2))
        client.recovery = RecoveryPolicy(backoff=0.0)
        # halo=2 replicas live on the two neighbours; kill all three.
        cluster.node("s0").fail()
        cluster.node("s1").fail()
        cluster.node("s2").fail()

        def main():
            yield client.read("dem", 0, dem.nbytes)

        proc = cluster.env.process(main())
        with pytest.raises(NodeDownError):
            cluster.run(until=proc)


class TestTimeoutsAndHedging:
    def test_slow_primary_times_out_then_fails_over(self, world):
        cluster, pfs, dem = world
        client = pfs.client("c0")
        client.ingest("dem", dem, pfs.replicated_grouped(group=2, halo_strips=2))
        client.recovery = RecoveryPolicy(
            rpc_timeout=0.01, max_attempts=1, backoff=0.0
        )
        # One primary far below the timeout threshold; its replicas are
        # healthy, so the timed-out group fails over and completes.
        cluster.node("s1").disk.degrade(0.001)
        got = read_all(cluster, client, "dem", dem.nbytes)
        assert np.array_equal(got, dem.view(np.uint8).reshape(-1))
        assert counter(cluster, "rpc_timeouts") > 0

    def test_hedged_read_wins_against_a_slow_primary(self, world):
        cluster, pfs, dem = world
        client = pfs.client("c0")
        client.ingest("dem", dem, pfs.replicated_grouped(group=2, halo_strips=2))
        client.recovery = RecoveryPolicy(
            rpc_timeout=60.0, max_attempts=1, backoff=0.0, hedge_delay=0.02
        )
        cluster.node("s1").disk.degrade(0.0005)  # only one slow server
        got = read_all(cluster, client, "dem", dem.nbytes)
        assert np.array_equal(got, dem.view(np.uint8).reshape(-1))
        assert counter(cluster, "hedged_reads") > 0
        assert counter(cluster, "hedge_wins") > 0

    def test_no_hedge_without_hedge_delay(self, world):
        cluster, pfs, dem = world
        client = pfs.client("c0")
        client.ingest("dem", dem, pfs.replicated_grouped(group=2, halo_strips=2))
        client.recovery = RecoveryPolicy(rpc_timeout=60.0, hedge_delay=None)
        cluster.node("s1").disk.degrade(0.01)
        got = read_all(cluster, client, "dem", dem.nbytes)
        assert np.array_equal(got, dem.view(np.uint8).reshape(-1))
        assert counter(cluster, "hedged_reads") == 0
