"""Unit tests for the DAS replicated-grouped layout (paper Fig. 9)."""

import pytest

from repro.errors import LayoutError
from repro.pfs import ReplicatedGroupedLayout

SERVERS = ["s0", "s1", "s2", "s3"]


@pytest.fixture
def layout():
    # r=4, one replicated boundary strip each side.
    return ReplicatedGroupedLayout(SERVERS, strip_size=1024, group=4, halo_strips=1)


def test_halo_larger_than_group_rejected():
    with pytest.raises(LayoutError):
        ReplicatedGroupedLayout(SERVERS, 1024, group=2, halo_strips=3)


def test_negative_halo_rejected():
    with pytest.raises(LayoutError):
        ReplicatedGroupedLayout(SERVERS, 1024, group=2, halo_strips=-1)


def test_interior_strip_has_no_replicas(layout):
    # Strips 1 and 2 of group 0 are interior.
    assert layout.replicas(1) == ["s0"]
    assert layout.replicas(2) == ["s0"]


def test_group_head_replicated_on_previous_server(layout):
    # Strip 4 heads group 1 (s1); previous group's server is s0.
    assert layout.replicas(4) == ["s1", "s0"]


def test_group_tail_replicated_on_next_server(layout):
    # Strip 3 tails group 0 (s0); next group's server is s1.
    assert layout.replicas(3) == ["s0", "s1"]


def test_first_group_head_not_replicated(layout):
    # Strip 0 heads group 0 — there is no previous group.
    assert layout.replicas(0) == ["s0"]


def test_holds_covers_replicas(layout):
    assert layout.holds("s0", 4)      # replica of group 1's head
    assert layout.holds("s1", 4)      # primary
    assert not layout.holds("s2", 4)


def test_paper_fig9_no_remote_dependence():
    """Fig. 9: with boundary replication every server can reach one
    strip each side of all its primary strips locally."""
    layout = ReplicatedGroupedLayout(SERVERS, 1024, group=4, halo_strips=1)
    file_size = 32 * 1024  # 32 strips = 8 groups
    for server in SERVERS:
        for first, last in layout.primary_runs(server, file_size):
            if first > 0:
                assert layout.holds(server, first - 1)
            if (last + 1) * 1024 < file_size:
                assert layout.holds(server, last + 1)


def test_capacity_overhead_formula(layout):
    assert layout.capacity_overhead() == pytest.approx(2 * 1 / 4)


def test_storage_bytes_reflects_replicas(layout):
    file_size = 16 * 1024  # 4 full groups
    extra = layout.storage_bytes(file_size) - file_size
    # Groups 0..3: head replicas for groups 1,2,3 + tail replicas for
    # all 4 groups = 7 extra strips.
    assert extra == 7 * 1024


def test_wider_halo_replicates_more(layout):
    wide = ReplicatedGroupedLayout(SERVERS, 1024, group=6, halo_strips=2)
    # Strip 1 is within 2 strips of group 0's head but group 0 has no
    # previous group; strip 7 is the second strip of group 1.
    assert wide.replicas(7) == ["s1", "s0"]
    assert wide.replicas(10) == ["s1", "s2"]  # second-to-last of group 1


def test_map_extent_prefers_local_replica(layout):
    # Strip 4's replica lives on s0; a reader on s0 should use it.
    extents = layout.map_extent(4 * 1024, 100, prefer="s0")
    assert extents[0].server == "s0"
    # Without preference, the primary s1 serves it.
    extents = layout.map_extent(4 * 1024, 100)
    assert extents[0].server == "s1"


def test_zero_halo_behaves_like_grouped():
    layout = ReplicatedGroupedLayout(SERVERS, 1024, group=4, halo_strips=0)
    for strip in range(16):
        assert len(layout.replicas(strip)) == 1
    assert layout.capacity_overhead() == 0.0


class TestReplicasEdgeCases:
    """The failover plane leans on ``replicas()``; pin its corners."""

    def test_group_zero_head_has_no_previous_neighbour(self, layout):
        # Strip 0 is the head of group 0: there is no previous group, so
        # the only extra copy is none at all (tail rule doesn't apply).
        assert layout.replicas(0) == ["s0"]

    def test_last_group_tail_wraps_to_server_zero(self):
        # 16 strips, r=4 on 4 servers: group 3 lives on s3 and its tail
        # strip 15 is replicated on the *next* group's server, which
        # wraps around to s0.
        layout = ReplicatedGroupedLayout(SERVERS, 1024, group=4, halo_strips=1)
        assert layout.replicas(15) == ["s3", "s0"]

    def test_zero_halo_never_replicates(self):
        layout = ReplicatedGroupedLayout(SERVERS, 1024, group=4, halo_strips=0)
        assert layout.replicas(0) == ["s0"]
        assert layout.replicas(15) == ["s3"]

    def test_halo_equal_to_group_replicates_every_strip(self):
        # halo == group: each whole group is mirrored onto both
        # neighbours; every strip has at least one extra copy, so any
        # single-server crash is survivable.
        layout = ReplicatedGroupedLayout(SERVERS, 1024, group=4, halo_strips=4)
        for strip in range(16):
            replicas = layout.replicas(strip)
            assert replicas[0] == layout.primary_server(strip)
            assert len(replicas) >= 2
            assert len(set(replicas)) == len(replicas)
        # Interior group: mirrored both ways.
        assert layout.replicas(5) == ["s1", "s0", "s2"]
        # Group 0 has no previous group; only the next-server mirror.
        assert layout.replicas(1) == ["s0", "s1"]
        assert layout.capacity_overhead() == 2.0

    def test_single_group_halo_equal_group_self_pair(self):
        # Degenerate single-server layout: prev/next collapse onto the
        # primary itself and are deduplicated.
        layout = ReplicatedGroupedLayout(["s0"], 1024, group=4, halo_strips=4)
        assert layout.replicas(2) == ["s0"]
