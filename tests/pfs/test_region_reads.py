"""Tests for scattered and rectangular-region reads (GIS access pattern)."""

import numpy as np
import pytest

from repro.errors import PFSError
from repro.pfs import ParallelFileSystem
from repro.units import KiB
from repro.workloads import fractal_dem


@pytest.fixture
def world(small_cluster):
    pfs = ParallelFileSystem(small_cluster, strip_size=4 * KiB)
    dem = fractal_dem(96, 128, rng=np.random.default_rng(33))
    pfs.client("c0").ingest("dem", dem, pfs.round_robin())
    return small_cluster, pfs, dem


class TestScatteredReads:
    def test_multiple_ranges_concatenated(self, world, drive):
        cl, pfs, dem = world
        client = pfs.client("c0")
        raw = dem.view(np.uint8).reshape(-1)
        ranges = [(0, 100), (5000, 200), (90000, 50)]

        def main():
            return (yield client.read_scattered("dem", ranges))

        got = drive(cl, cl.env.process(main()))
        expected = np.concatenate([raw[o : o + n] for o, n in ranges])
        assert np.array_equal(got, expected)

    def test_empty_ranges_ok(self, world, drive):
        cl, pfs, dem = world
        client = pfs.client("c0")

        def main():
            return (yield client.read_scattered("dem", []))

        assert drive(cl, cl.env.process(main())).size == 0

    def test_out_of_bounds_range_rejected(self, world, drive):
        cl, pfs, dem = world
        client = pfs.client("c0")

        def main():
            yield client.read_scattered("dem", [(dem.nbytes - 4, 8)])

        with pytest.raises(PFSError):
            drive(cl, cl.env.process(main()))

    def test_batches_one_request_per_server(self, world, drive):
        cl, pfs, dem = world
        client = pfs.client("c0")
        # Many small ranges spread over all strips.
        ranges = [(i * 4096, 16) for i in range(8)]

        def main():
            return (yield client.read_scattered("dem", ranges))

        drive(cl, cl.env.process(main()))
        # 4 servers, 2 strips each -> exactly 4 PFS requests.
        rpc_msgs = cl.monitors.counter("net.tag.pfs").events
        assert rpc_msgs == 4


class TestRegionReads:
    def test_region_matches_numpy_slice(self, world, drive):
        cl, pfs, dem = world
        client = pfs.client("c0")

        def main():
            return (yield client.read_region("dem", 10, 20, 30, 40))

        got = drive(cl, cl.env.process(main()))
        assert np.array_equal(got, dem[10:40, 20:60])

    def test_full_raster_region(self, world, drive):
        cl, pfs, dem = world
        client = pfs.client("c0")

        def main():
            return (yield client.read_region("dem", 0, 0, 96, 128))

        got = drive(cl, cl.env.process(main()))
        assert np.array_equal(got, dem)

    def test_single_cell_region(self, world, drive):
        cl, pfs, dem = world
        client = pfs.client("c0")

        def main():
            return (yield client.read_region("dem", 42, 17, 1, 1))

        got = drive(cl, cl.env.process(main()))
        assert got.shape == (1, 1)
        assert got[0, 0] == dem[42, 17]

    @pytest.mark.parametrize(
        "r0,c0,h,w",
        [(-1, 0, 5, 5), (0, -1, 5, 5), (95, 0, 2, 5), (0, 125, 5, 5), (0, 0, 0, 5)],
    )
    def test_invalid_regions_rejected(self, world, drive, r0, c0, h, w):
        cl, pfs, dem = world
        client = pfs.client("c0")

        def main():
            yield client.read_region("dem", r0, c0, h, w)

        with pytest.raises(PFSError):
            drive(cl, cl.env.process(main()))

    def test_region_on_unshaped_file_rejected(self, world, drive):
        cl, pfs, dem = world
        client = pfs.client("c0")
        client.ingest("flat", np.zeros(4096, dtype=np.float64), pfs.round_robin())

        def main():
            yield client.read_region("flat", 0, 0, 2, 2)

        with pytest.raises(PFSError):
            drive(cl, cl.env.process(main()))

    def test_degraded_region_read_uses_replicas(self, small_cluster, drive):
        pfs = ParallelFileSystem(small_cluster, strip_size=4 * KiB)
        dem = fractal_dem(128, 64, rng=np.random.default_rng(34))  # 16 strips
        client = pfs.client("c0")
        client.ingest("dem", dem, pfs.replicated_grouped(group=2, halo_strips=1))
        small_cluster.node("s1").fail()  # r=2, h=1 -> everything replicated

        def main():
            return (yield client.read_region("dem", 0, 0, 128, 64))

        got = drive(small_cluster, small_cluster.env.process(main()))
        assert np.array_equal(got, dem)
