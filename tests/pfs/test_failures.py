"""Failure-injection tests: degraded reads via DAS replicas.

The DAS layout's boundary replication buys limited fault tolerance for
free: a read touching a replicated strip survives the primary holder's
failure by redirecting to the neighbour's copy.  Unreplicated strips
(round-robin striping) have no fallback.
"""

import numpy as np
import pytest

from repro.errors import NodeDownError
from repro.hw import Cluster
from repro.pfs import ParallelFileSystem
from repro.units import KiB
from repro.workloads import fractal_dem


@pytest.fixture
def world():
    cluster = Cluster.build(n_compute=1, n_storage=4)
    pfs = ParallelFileSystem(cluster, strip_size=4 * KiB)
    dem = fractal_dem(64, 64, rng=np.random.default_rng(21))  # 8 strips
    return cluster, pfs, dem


def test_replicated_strip_read_survives_primary_failure(world, drive):
    cluster, pfs, dem = world
    client = pfs.client("c0")
    # group=2, halo=1: strip 2 (primary s1) is replicated on s0.
    client.ingest("dem", dem, pfs.replicated_grouped(group=2, halo_strips=1))
    cluster.node("s1").fail()

    raw = dem.view(np.uint8).reshape(-1)

    def main():
        return (yield client.read("dem", 2 * 4096, 4096))

    got = drive(cluster, cluster.env.process(main()))
    assert np.array_equal(got, raw[2 * 4096 : 3 * 4096])


def test_full_file_read_with_one_dead_server_needs_full_replication(drive):
    # 16 strips, group=4: interior strips of a group have no replica.
    cluster = Cluster.build(n_compute=1, n_storage=4)
    pfs = ParallelFileSystem(cluster, strip_size=4 * KiB)
    dem = fractal_dem(128, 64, rng=np.random.default_rng(22))  # 16 strips
    client = pfs.client("c0")
    client.ingest("dem", dem, pfs.replicated_grouped(group=4, halo_strips=1))
    cluster.node("s1").fail()

    # Strips 5 and 6 (interior of group 1, primary s1) have no replica
    # -> the read of the whole file must fail loudly, not silently
    # corrupt.
    def main():
        yield client.read("dem", 0, dem.nbytes)

    with pytest.raises(NodeDownError):
        drive(cluster, cluster.env.process(main()))


def test_round_robin_has_no_fallback(world, drive):
    cluster, pfs, dem = world
    client = pfs.client("c0")
    client.ingest("dem", dem, pfs.round_robin())
    cluster.node("s2").fail()

    def main():
        yield client.read("dem", 2 * 4096, 100)  # strip 2 lives on s2 only

    with pytest.raises(NodeDownError):
        drive(cluster, cluster.env.process(main()))


def test_reads_not_touching_the_dead_server_still_work(world, drive):
    cluster, pfs, dem = world
    client = pfs.client("c0")
    client.ingest("dem", dem, pfs.round_robin())
    cluster.node("s2").fail()
    raw = dem.view(np.uint8).reshape(-1)

    def main():
        return (yield client.read("dem", 0, 4096))  # strip 0 on s0

    got = drive(cluster, cluster.env.process(main()))
    assert np.array_equal(got, raw[:4096])


def test_recovery_restores_primary_path(world, drive):
    cluster, pfs, dem = world
    client = pfs.client("c0")
    client.ingest("dem", dem, pfs.round_robin())
    cluster.node("s2").fail()
    cluster.node("s2").recover()
    raw = dem.view(np.uint8).reshape(-1)

    def main():
        return (yield client.read("dem", 2 * 4096, 4096))

    got = drive(cluster, cluster.env.process(main()))
    assert np.array_equal(got, raw[2 * 4096 : 3 * 4096])


def test_failover_read_charges_the_replica_server(world, drive):
    cluster, pfs, dem = world
    client = pfs.client("c0")
    client.ingest("dem", dem, pfs.replicated_grouped(group=2, halo_strips=1))
    cluster.node("s1").fail()

    def main():
        yield client.read("dem", 2 * 4096, 4096)

    drive(cluster, cluster.env.process(main()))
    # The bytes flowed from s0 (the replica holder), not s1.
    assert cluster.monitors.counter("net.flow.s0->c0").value >= 4096
    assert cluster.monitors.counter("net.flow.s1->c0").value == 0


def test_write_to_down_server_fails_loudly(world, drive):
    """Writes have no failover: a write touching a dead holder must
    fail rather than leave replicas divergent."""
    cluster, pfs, dem = world
    client = pfs.client("c0")
    client.ingest("dem", dem, pfs.replicated_grouped(group=2, halo_strips=1))
    cluster.node("s1").fail()

    def main():
        yield client.write_elems("dem", 0, np.zeros(dem.size, dtype=np.float64))

    with pytest.raises(NodeDownError):
        drive(cluster, cluster.env.process(main()))


def test_offload_with_dead_server_fails_loudly(world, drive):
    """An exec fan-out that cannot reach a storage node must surface the
    failure, never return partial coverage as success."""
    from repro.core import ActiveRequest, ActiveStorageClient

    cluster, pfs, dem = world
    client = pfs.client("c0")
    client.ingest("dem", dem, pfs.round_robin())
    asc = ActiveStorageClient(pfs, home="c0")
    cluster.node("s3").fail()
    req = ActiveRequest("gaussian", "dem", "out", replicate_output=False)
    with pytest.raises(NodeDownError):
        drive(cluster, asc.execute_offload(req, asc.decide(req)))
