"""Integration tests for the local I/O API and the redistribution engine."""

import numpy as np
import pytest

from repro.errors import PFSError
from repro.pfs import ParallelFileSystem, plan_moves, planned_bytes
from repro.units import KiB


@pytest.fixture
def world(small_cluster, dem_64):
    pfs = ParallelFileSystem(small_cluster, strip_size=4 * KiB)
    client = pfs.client("c0")
    client.ingest("dem", dem_64, pfs.round_robin())
    return small_cluster, pfs, client, dem_64


class TestLocalFile:
    def test_primary_runs_match_layout(self, world):
        cl, pfs, client, dem = world
        lf = pfs.local_file("s2", "dem")
        assert lf.primary_runs() == [(2, 2), (6, 6)]

    def test_run_elem_range(self, world):
        cl, pfs, client, dem = world
        lf = pfs.local_file("s0", "dem")
        first, count = lf.run_elem_range((0, 0))
        assert (first, count) == (0, 512)  # 4096 B / 8

    def test_is_local_detects_presence(self, world):
        cl, pfs, client, dem = world
        lf = pfs.local_file("s0", "dem")
        assert lf.is_local(0, 4096)         # strip 0 on s0
        assert not lf.is_local(4096, 10)    # strip 1 on s1
        assert not lf.is_local(0, 5000)     # spans into strip 1

    def test_is_local_out_of_bounds_false(self, world):
        cl, pfs, client, dem = world
        lf = pfs.local_file("s0", "dem")
        assert not lf.is_local(dem.nbytes - 4, 8)

    def test_read_elems_matches_source(self, world, drive):
        cl, pfs, client, dem = world
        lf = pfs.local_file("s1", "dem")
        first, count = lf.run_elem_range((1, 1))

        def main():
            return (yield lf.read_elems(first, count))

        got = drive(cl, cl.env.process(main()))
        assert np.array_equal(got, dem.reshape(-1)[first : first + count])

    def test_read_nonlocal_raises(self, world, drive):
        cl, pfs, client, dem = world
        lf = pfs.local_file("s0", "dem")

        def main():
            yield lf.read(4096, 100)

        with pytest.raises(PFSError):
            drive(cl, cl.env.process(main()))

    def test_read_replica_strip_locally(self, small_cluster, dem_64, drive):
        pfs = ParallelFileSystem(small_cluster, strip_size=4 * KiB)
        client = pfs.client("c0")
        client.ingest("dem", dem_64, pfs.replicated_grouped(group=2, halo_strips=1))
        # Strip 2 heads group 1 (primary s1, replica s0).
        lf = pfs.local_file("s0", "dem")
        assert lf.is_local(2 * 4096, 100)

        def main():
            return (yield lf.read(2 * 4096, 100))

        got = drive(small_cluster, small_cluster.env.process(main()))
        raw = dem_64.view(np.uint8).reshape(-1)
        assert np.array_equal(got, raw[2 * 4096 : 2 * 4096 + 100])

    def test_write_elems_rejects_foreign_strip(self, world, drive):
        cl, pfs, client, dem = world
        pfs.metadata.create("out", dem.nbytes, pfs.round_robin(), shape=dem.shape)
        lf = pfs.local_file("s0", "out")

        def main():
            yield lf.write_elems(512, np.zeros(10, dtype=np.float64))  # strip 1

        with pytest.raises(PFSError):
            drive(cl, cl.env.process(main()))

    def test_write_elems_dtype_checked(self, world):
        cl, pfs, client, dem = world
        lf = pfs.local_file("s0", "dem")
        with pytest.raises(PFSError):
            lf.write_elems(0, np.zeros(4, dtype=np.int32))


class TestRedistribution:
    def test_plan_moves_round_robin_to_grouped(self, world):
        cl, pfs, client, dem = world
        meta = pfs.metadata.lookup("dem")
        target = pfs.grouped(2)
        moves = plan_moves(meta, target)
        # Strip 1 (rr: s1) belongs to group 0 -> s0 under grouped(2).
        assert 1 in moves[("s1", "s0")]
        # Strip 0 stays on s0: no move recorded.
        assert all(0 not in strips for strips in moves.values())

    def test_planned_bytes_match_moved_bytes(self, world, drive):
        cl, pfs, client, dem = world
        target = pfs.replicated_grouped(group=2, halo_strips=1)
        predicted = planned_bytes(pfs.metadata.lookup("dem"), target)

        def main():
            return (yield pfs.redistributor.redistribute("dem", target))

        moved = drive(cl, cl.env.process(main()))
        assert moved == predicted

    def test_redistribution_preserves_content(self, world, drive):
        cl, pfs, client, dem = world
        target = pfs.replicated_grouped(group=2, halo_strips=1)

        def main():
            yield pfs.redistributor.redistribute("dem", target)

        drive(cl, cl.env.process(main()))
        assert np.array_equal(client.collect("dem"), dem)
        assert client.verify_replicas("dem")
        assert pfs.metadata.lookup("dem").layout is target

    def test_redistribution_drops_stale_copies(self, world, drive):
        cl, pfs, client, dem = world
        target = pfs.grouped(2)

        def main():
            yield pfs.redistributor.redistribute("dem", target)

        drive(cl, cl.env.process(main()))
        # Under grouped(2) with 8 strips, s2/s3 hold strips 4-7 only.
        assert pfs.servers["s0"].held_strips("dem") == [0, 1]
        assert pfs.servers["s2"].held_strips("dem") == [4, 5]

    def test_strip_size_change_rejected(self, world):
        cl, pfs, client, dem = world
        from repro.pfs import RoundRobinLayout

        other = RoundRobinLayout(pfs.server_names, strip_size=8 * KiB)
        with pytest.raises(PFSError):
            plan_moves(pfs.metadata.lookup("dem"), other)

    def test_identity_redistribution_moves_nothing(self, world, drive):
        cl, pfs, client, dem = world
        meta = pfs.metadata.lookup("dem")
        assert planned_bytes(meta, meta.layout) == 0

        def main():
            return (yield pfs.redistributor.redistribute("dem", meta.layout))

        assert drive(cl, cl.env.process(main())) == 0

    def test_counter_records_redistributed_bytes(self, world, drive):
        cl, pfs, client, dem = world
        target = pfs.grouped(4)

        def main():
            return (yield pfs.redistributor.redistribute("dem", target))

        moved = drive(cl, cl.env.process(main()))
        assert cl.monitors.counter("pfs.redistribute_bytes").value == moved
