"""Integration tests: data servers + PFS client over the fabric."""

import numpy as np
import pytest

from repro.errors import PFSError, StripMissingError
from repro.pfs import ParallelFileSystem, ReadPiece, WritePiece
from repro.units import KiB


@pytest.fixture
def pfs(small_cluster):
    return ParallelFileSystem(small_cluster, strip_size=4 * KiB)


@pytest.fixture
def loaded(pfs, small_cluster, dem_64):
    client = pfs.client("c0")
    client.ingest("dem", dem_64, pfs.round_robin())
    return pfs, small_cluster, client, dem_64


class TestIngestCollect:
    def test_roundtrip_identity(self, loaded):
        pfs, cl, client, dem = loaded
        assert np.array_equal(client.collect("dem"), dem)

    def test_strips_placed_round_robin(self, loaded):
        pfs, cl, client, dem = loaded
        assert pfs.servers["s0"].held_strips("dem") == [0, 4]
        assert pfs.servers["s3"].held_strips("dem") == [3, 7]

    def test_ingest_rejects_misaligned_strip_size(self, pfs):
        data = np.zeros(100, dtype=np.float64)
        bad = pfs.round_robin()
        bad.strip_size = 1001  # not a multiple of 8
        with pytest.raises(PFSError):
            pfs.client("c0").ingest("f", data, bad)

    def test_ingest_replicated_layout_places_copies(self, pfs, dem_64):
        layout = pfs.replicated_grouped(group=2, halo_strips=1)
        client = pfs.client("c0")
        client.ingest("dem", dem_64, layout)
        assert client.verify_replicas("dem")
        # s0 holds group 0 (strips 0,1) plus the head of group 1 (strip 2).
        assert 2 in pfs.servers["s0"].held_strips("dem")

    def test_stored_bytes_accounts_replicas(self, pfs, dem_64):
        client = pfs.client("c0")
        client.ingest("plain", dem_64, pfs.round_robin())
        base = pfs.stored_bytes()
        client.ingest("repl", dem_64, pfs.replicated_grouped(group=2, halo_strips=1))
        assert pfs.stored_bytes() - base > dem_64.nbytes


class TestTimedReadWrite:
    def test_read_returns_exact_bytes(self, loaded, drive):
        pfs, cl, client, dem = loaded
        raw = dem.view(np.uint8).reshape(-1)

        def main():
            got = yield client.read("dem", 100, 9000)
            return got

        got = drive(cl, cl.env.process(main()))
        assert np.array_equal(got, raw[100:9100])
        assert cl.env.now > 0  # it took simulated time

    def test_read_past_eof_rejected(self, loaded, drive):
        pfs, cl, client, dem = loaded

        def main():
            yield client.read("dem", dem.nbytes - 10, 20)

        with pytest.raises(PFSError):
            drive(cl, cl.env.process(main()))

    def test_write_then_read_elems(self, loaded, drive):
        pfs, cl, client, dem = loaded
        fresh = np.arange(64, dtype=np.float64)

        def main():
            yield client.write_elems("dem", 640, fresh)
            got = yield client.read_elems("dem", 640, 64)
            return got

        got = drive(cl, cl.env.process(main()))
        assert np.array_equal(got, fresh)

    def test_write_dtype_mismatch_rejected(self, loaded):
        pfs, cl, client, dem = loaded
        with pytest.raises(PFSError):
            client.write_elems("dem", 0, np.zeros(4, dtype=np.float32))

    def test_write_updates_every_replica(self, pfs, small_cluster, dem_64, drive):
        client = pfs.client("c0")
        client.ingest("dem", dem_64, pfs.replicated_grouped(group=2, halo_strips=1))
        patch = np.full(1024, 7.0)  # covers strips 0-1 (and replica ranges)

        def main():
            yield client.write_elems("dem", 0, patch)

        drive(small_cluster, small_cluster.env.process(main()))
        assert client.verify_replicas("dem")
        assert np.array_equal(client.collect("dem").reshape(-1)[:1024], patch)

    def test_read_charges_disk_and_network(self, loaded, drive):
        pfs, cl, client, dem = loaded

        def main():
            yield client.read("dem", 0, dem.nbytes)

        drive(cl, cl.env.process(main()))
        m = cl.monitors
        assert m.counter("disk.read_total").value >= dem.nbytes
        assert m.counter("net.rx.c0").value >= dem.nbytes


class TestDataServerDirect:
    def test_read_pieces_concatenates(self, loaded, drive):
        pfs, cl, client, dem = loaded
        ds = pfs.servers["s0"]
        raw = dem.view(np.uint8).reshape(-1)

        def main():
            data = yield ds.read_pieces(
                "dem", [ReadPiece(0, 0, 100), ReadPiece(4, 50, 25)]
            )
            return data

        got = drive(cl, cl.env.process(main()))
        expected = np.concatenate(
            [raw[0:100], raw[4 * 4096 + 50 : 4 * 4096 + 75]]
        )
        assert np.array_equal(got, expected)

    def test_missing_strip_raises(self, loaded, drive):
        pfs, cl, client, dem = loaded
        ds = pfs.servers["s0"]

        def main():
            yield ds.read_pieces("dem", [ReadPiece(1, 0, 10)])  # strip 1 on s1

        with pytest.raises(StripMissingError):
            drive(cl, cl.env.process(main()))

    def test_read_past_strip_end_raises(self, loaded, drive):
        pfs, cl, client, dem = loaded
        ds = pfs.servers["s0"]

        def main():
            yield ds.read_pieces("dem", [ReadPiece(0, 4090, 100)])

        with pytest.raises(PFSError):
            drive(cl, cl.env.process(main()))

    def test_write_allocates_known_strip(self, loaded, drive):
        pfs, cl, client, dem = loaded
        pfs.metadata.create("out", dem.nbytes, pfs.round_robin())
        ds = pfs.servers["s1"]

        def main():
            yield ds.write_pieces(
                "out", [WritePiece(1, 0, np.full(16, 9, dtype=np.uint8))]
            )

        drive(cl, cl.env.process(main()))
        assert ds.strip_bytes("out", 1)[:16].tolist() == [9] * 16

    def test_write_beyond_eof_strip_rejected(self, loaded, drive):
        pfs, cl, client, dem = loaded
        pfs.metadata.create("tiny", 100, pfs.round_robin())
        ds = pfs.servers["s1"]

        def main():
            yield ds.write_pieces("tiny", [WritePiece(1, 0, np.zeros(4, np.uint8))])

        with pytest.raises(PFSError):
            drive(cl, cl.env.process(main()))

    def test_drop_file_clears_strips(self, loaded):
        pfs, cl, client, dem = loaded
        assert pfs.servers["s0"].drop_file("dem") == 2
        assert pfs.servers["s0"].held_strips("dem") == []


class TestFacade:
    def test_client_cached_per_home(self, pfs):
        assert pfs.client("c0") is pfs.client("c0")
        assert pfs.client("c0") is not pfs.client("c1")

    def test_local_file_requires_server(self, loaded):
        pfs, cl, client, dem = loaded
        with pytest.raises(PFSError):
            pfs.local_file("c0", "dem")

    def test_requires_storage_nodes(self):
        from repro.hw import Cluster
        from repro.pfs import ParallelFileSystem as PFS

        cl = Cluster.build(n_compute=1, n_storage=1)
        assert PFS(cl).server_names == ["s0"]
