"""Unit tests for the metadata service and file-meta arithmetic."""

import numpy as np
import pytest

from repro.errors import FileExistsInPFS, FileNotFoundInPFS, PFSError
from repro.pfs import MetadataService, RoundRobinLayout
from repro.pfs.datafile import FileMeta

LAYOUT = RoundRobinLayout(["s0", "s1"], strip_size=1024)


class TestMetadataService:
    def test_create_and_lookup(self):
        md = MetadataService()
        meta = md.create("f", 2048, LAYOUT)
        assert md.lookup("f") is meta
        assert md.exists("f")
        assert "f" in md
        assert len(md) == 1

    def test_duplicate_create_rejected(self):
        md = MetadataService()
        md.create("f", 10, LAYOUT)
        with pytest.raises(FileExistsInPFS):
            md.create("f", 10, LAYOUT)

    def test_missing_lookup_raises(self):
        with pytest.raises(FileNotFoundInPFS):
            MetadataService().lookup("ghost")

    def test_unlink_removes(self):
        md = MetadataService()
        md.create("f", 10, LAYOUT)
        md.unlink("f")
        assert not md.exists("f")
        with pytest.raises(FileNotFoundInPFS):
            md.unlink("f")

    def test_listing_sorted(self):
        md = MetadataService()
        for name in ("b", "a", "c"):
            md.create(name, 8, LAYOUT)
        assert md.listing() == ["a", "b", "c"]

    def test_set_layout_swaps_record(self):
        md = MetadataService()
        md.create("f", 2048, LAYOUT)
        other = RoundRobinLayout(["s0", "s1", "s2"], strip_size=1024)
        md.set_layout("f", other)
        assert md.lookup("f").layout is other


class TestFileMeta:
    def test_shape_size_consistency_enforced(self):
        with pytest.raises(PFSError):
            FileMeta("f", size=100, layout=LAYOUT, shape=(10, 10))  # needs 800

    def test_negative_size_rejected(self):
        with pytest.raises(PFSError):
            FileMeta("f", size=-1, layout=LAYOUT)

    def test_element_arithmetic(self):
        meta = FileMeta("f", size=800, layout=LAYOUT, shape=(10, 10))
        assert meta.element_size == 8
        assert meta.n_elements == 100
        assert meta.width == 10
        assert meta.elem_to_byte(3) == 24
        assert meta.byte_to_elem(25) == 3
        assert meta.elem_range_bytes(2, 5) == (16, 40)

    def test_width_requires_shape(self):
        meta = FileMeta("f", size=800, layout=LAYOUT)
        with pytest.raises(PFSError):
            _ = meta.width

    def test_strip_elem_range(self):
        meta = FileMeta("f", size=4096, layout=LAYOUT, shape=(16, 32))
        first, count = meta.strip_elem_range(0)
        assert (first, count) == (0, 128)  # 1024 B / 8
        first, count = meta.strip_elem_range(3)
        assert (first, count) == (384, 128)

    def test_strip_elem_range_last_partial(self):
        meta = FileMeta("f", size=1500, layout=LAYOUT, dtype=np.float64)
        first, count = meta.strip_elem_range(1)
        assert first == 128
        assert count == (1500 - 1024) // 8

    def test_clamp_elems(self):
        meta = FileMeta("f", size=800, layout=LAYOUT)
        assert meta.clamp_elems(-5, 1000) == (0, 99)

    def test_dtype_normalised(self):
        meta = FileMeta("f", size=400, layout=LAYOUT, dtype="float32")
        assert meta.dtype == np.dtype(np.float32)
        assert meta.n_elements == 100
