"""Ring-buffer series semantics: eviction, windows, cumulative totals.

The alert engine's arithmetic rides entirely on these windows, so the
boundary conventions are pinned here: ``window_sum(t, w)`` covers the
half-open interval ``(t - w, t]`` — a point exactly ``w`` old falls
out, the point at ``t`` itself counts.
"""

import pytest

from repro.errors import SimulationError
from repro.telemetry import KINDS, Series, SeriesBank


class TestSeriesBasics:
    def test_kinds_are_the_declared_vocabulary(self):
        assert KINDS == ("counter", "gauge", "quantile")

    def test_unknown_kind_rejected(self):
        with pytest.raises(SimulationError, match="unknown series kind"):
            Series("x", "histogram")

    def test_tiny_capacity_rejected(self):
        with pytest.raises(SimulationError, match="capacity"):
            Series("x", "gauge", capacity=1)

    def test_non_monotone_append_rejected(self):
        s = Series("x", "gauge")
        s.append(1.0, 5.0)
        with pytest.raises(SimulationError, match="non-monotone"):
            s.append(1.0, 6.0)
        with pytest.raises(SimulationError, match="non-monotone"):
            s.append(0.5, 6.0)

    def test_points_oldest_to_newest_and_last(self):
        s = Series("x", "gauge")
        for i in range(4):
            s.append(float(i), float(10 * i))
        assert s.points() == [(0.0, 0.0), (1.0, 10.0), (2.0, 20.0), (3.0, 30.0)]
        assert s.last() == (3.0, 30.0)
        assert len(s) == 4

    def test_empty_series_has_no_last(self):
        s = Series("x", "counter")
        assert s.last() is None
        assert s.points() == []


class TestRingEviction:
    def test_oldest_points_evicted_and_counted(self):
        s = Series("x", "gauge", capacity=3)
        for i in range(5):
            s.append(float(i), float(i))
        assert len(s) == 3
        assert s.dropped == 2
        assert s.points() == [(2.0, 2.0), (3.0, 3.0), (4.0, 4.0)]

    def test_cumulative_total_survives_wraparound(self):
        s = Series("x", "counter", capacity=2)
        for i in range(6):
            s.append(float(i), 10.0)
        # Only two points retained, but the running total keeps all six.
        assert len(s) == 2
        assert s.cumulative == 60.0

    def test_last_activity_tracks_positive_increases_only(self):
        s = Series("x", "counter")
        assert s.last_activity is None
        s.append(1.0, 0.0)
        assert s.last_activity is None
        s.append(2.0, 3.0)
        s.append(3.0, 0.0)
        assert s.last_activity == 2.0


class TestWindows:
    def make(self):
        s = Series("x", "counter")
        for i in range(1, 9):  # boundaries 0.25 .. 2.0
            s.append(i * 0.25, 1.0)
        return s

    def test_window_is_half_open_trailing(self):
        s = self.make()
        # (1.0, 2.0]: four boundaries; the point exactly 1.0s old is out.
        assert s.window(2.0, 1.0) == [
            (1.25, 1.0), (1.5, 1.0), (1.75, 1.0), (2.0, 1.0)
        ]
        assert s.window_sum(2.0, 1.0) == 4.0

    def test_window_sum_ignores_points_past_t(self):
        s = self.make()
        assert s.window_sum(1.0, 1.0) == 4.0  # (0, 1]: 0.25 .. 1.0

    def test_window_wider_than_history_takes_everything(self):
        s = self.make()
        assert s.window_sum(2.0, 100.0) == 8.0

    def test_at_or_before(self):
        s = self.make()
        assert s.at_or_before(1.1) == 1.0
        assert s.at_or_before(0.25) == 1.0
        assert s.at_or_before(0.1) is None


class TestSeriesBank:
    def test_series_for_creates_once_and_checks_kind(self):
        bank = SeriesBank(capacity=8)
        a = bank.series_for("serve.x", "counter")
        assert bank.series_for("serve.x", "counter") is a
        assert a.capacity == 8
        with pytest.raises(SimulationError, match="already registered"):
            bank.series_for("serve.x", "gauge")

    def test_get_returns_none_for_unknown(self):
        assert SeriesBank().get("nope") is None

    def test_window_sum_across_series_skips_absent(self):
        bank = SeriesBank()
        s = bank.series_for("serve.failed", "counter")
        s.append(0.25, 2.0)
        s.append(0.5, 3.0)
        # "serve.expired" was never booked: contributes zero, no error —
        # the burn-rate rules rely on this for outcome counters that a
        # healthy run never touches.
        assert bank.window_sum(("serve.failed", "serve.expired"), 0.5, 0.5) == 5.0
        assert len(bank) == 1
