"""The clock-driven sampler against a real simulation environment.

A tiny hand-built workload (processes bumping counters and gauges on
timeouts) exercises the dispatch-loop boundary hook end to end: samples
land exactly on the ``tick * interval`` grid, counters arrive as
per-interval deltas, trailing boundaries flush from the final state,
and two identical runs produce byte-identical artifacts.
"""

import json

import pytest

from repro.errors import SimulationError
from repro.sim.core import Environment
from repro.sim.monitor import MonitorHub
from repro.telemetry import (
    SCRAPE_PREFIXES,
    AlertRule,
    TelemetryConfig,
    TelemetrySampler,
)

INTERVAL = 0.25


def bursty_run(rules=(), horizon=2.0, stop_load_at=None):
    """Drive a little workload: one admission per 0.1s until
    ``stop_load_at`` (default: the horizon), queue depth climbing by 1
    each admission.  Returns the (finalized) sampler and the hub."""
    env = Environment()
    hub = MonitorHub(env)
    config = TelemetryConfig(interval=INTERVAL)
    sampler = TelemetrySampler(env, config)
    sampler.add_scope("cell", hub, rules=rules, active_until=stop_load_at)
    sampler.attach()

    until = horizon if stop_load_at is None else stop_load_at

    def workload():
        while env.now < until - 1e-9:
            yield env.timeout(0.1)
            hub.counter("serve.admitted").add()
            hub.gauge("serve.queue.depth").adjust(1.0)
            hub.counter("node.bytes").add(4096)  # outside the prefixes

    env.process(workload())
    env.run(until=horizon)
    sampler.finalize(horizon)
    return sampler, hub


class TestBoundaryGrid:
    def test_samples_land_exactly_on_the_interval_grid(self):
        sampler, _ = bursty_run()
        assert sampler.samples == 8  # 2.0s / 0.25s
        bank = sampler.scopes[0].bank
        times = [t for t, _ in bank.get("serve.admitted").points()]
        assert times == [round(i * INTERVAL, 10) for i in range(1, 9)]

    def test_counters_arrive_as_per_interval_deltas(self):
        sampler, hub = bursty_run()
        bank = sampler.scopes[0].bank
        s = bank.get("serve.admitted")
        # ~2-3 admissions per 0.25s window; deltas sum to the total.
        assert s.kind == "counter"
        assert sum(v for _, v in s.points()) == hub.counter("serve.admitted").value
        assert all(v >= 0 for _, v in s.points())

    def test_gauges_arrive_as_levels(self):
        sampler, hub = bursty_run()
        s = sampler.scopes[0].bank.get("serve.queue.depth")
        assert s.kind == "gauge"
        assert s.last()[1] == hub.gauge("serve.queue.depth").level

    def test_prefixes_filter_the_scrape(self):
        sampler, _ = bursty_run()
        bank = sampler.scopes[0].bank
        assert bank.get("node.bytes") is None
        assert "serve." in SCRAPE_PREFIXES

    def test_trailing_boundaries_flush_at_finalize(self):
        # Load stops at 1.0 but the horizon is 2.0: the sampler still
        # books every boundary through 2.0, with zero counter deltas.
        sampler, _ = bursty_run(stop_load_at=1.0)
        assert sampler.samples == 8
        s = sampler.scopes[0].bank.get("serve.admitted")
        tail = [v for t, v in s.points() if t > 1.0 + 1e-9]
        assert tail == [0.0, 0.0, 0.0, 0.0]

    def test_meta_metrics_booked_into_the_scraped_hub(self):
        sampler, hub = bursty_run()
        assert hub.counter("telemetry.samples").value == 8.0
        assert hub.gauge("telemetry.series").level == float(
            len(sampler.scopes[0].bank)
        )


class TestWiring:
    def test_config_validation(self):
        with pytest.raises(SimulationError, match="interval"):
            TelemetryConfig(interval=0.0).validate()
        with pytest.raises(SimulationError, match="capacity"):
            TelemetryConfig(capacity=1).validate()

    def test_duplicate_scope_rejected(self):
        env = Environment()
        hub = MonitorHub(env)
        sampler = TelemetrySampler(env)
        sampler.add_scope("cell", hub)
        with pytest.raises(SimulationError, match="duplicate telemetry scope"):
            sampler.add_scope("cell", hub)

    def test_double_attach_rejected(self):
        env = Environment()
        sampler = TelemetrySampler(env)
        sampler.attach()
        with pytest.raises(SimulationError, match="already attached"):
            sampler.attach()

    def test_one_sampler_per_environment(self):
        env = Environment()
        TelemetrySampler(env).attach()
        with pytest.raises(SimulationError, match="already attached"):
            TelemetrySampler(env).attach()

    def test_finalize_is_idempotent(self):
        sampler, _ = bursty_run()
        before = sampler.samples
        sampler.finalize(10.0)  # second call: no-op, horizon unchanged
        assert sampler.samples == before


class TestAlertsEndToEnd:
    STALL = AlertRule(
        name="admission-stall", kind="absence", series="serve.admitted",
        duration=0.5, clear_for=0.0,
    )

    def test_absence_rule_fires_when_load_stops_inside_the_horizon(self):
        sampler, _ = bursty_run(rules=(self.STALL,), stop_load_at=None)
        # Load runs to the horizon: never silent for 0.5s.
        engine = sampler.scopes[0].engine
        assert engine.ledger == []

    def test_active_until_marks_the_drain_as_quiescence(self):
        sampler, _ = bursty_run(rules=(self.STALL,), stop_load_at=1.0)
        assert sampler.scopes[0].engine.ledger == []

    def test_without_active_until_the_drain_pages(self):
        env = Environment()
        hub = MonitorHub(env)
        sampler = TelemetrySampler(env, TelemetryConfig(interval=INTERVAL))
        sampler.add_scope("cell", hub, rules=(self.STALL,))
        sampler.attach()

        def workload():
            while env.now < 1.0 - 1e-9:
                yield env.timeout(0.1)
                hub.counter("serve.admitted").add()

        env.process(workload())
        env.run(until=2.0)
        sampler.finalize(2.0)
        engine = sampler.scopes[0].engine
        assert engine.fired_rules() == ["admission-stall"]


class TestArtifact:
    def test_payload_schema_shape(self):
        sampler, _ = bursty_run(rules=(self.__class__.RULE,))
        doc = sampler.payload("cell_test", meta={"bench": "unit"})
        assert doc["schema"] == "repro.telemetry/1"
        assert doc["label"] == "cell_test"
        assert doc["interval"] == INTERVAL
        assert doc["samples"] == 8
        assert doc["horizon"] == 2.0
        assert doc["meta"] == {"bench": "unit"}
        scope = doc["scopes"]["cell"]
        admitted = scope["series"]["serve.admitted"]
        assert admitted["kind"] == "counter"
        assert len(admitted["points"]) == 8
        rules = scope["alerts"]["rules"]
        assert [r["name"] for r in rules] == ["hot"]

    RULE = AlertRule(
        name="hot", kind="threshold", series="serve.queue.depth",
        op=">", value=3.0, clear_for=0.0,
    )

    def test_summary_block_mirrors_the_ledger(self):
        sampler, _ = bursty_run(rules=(self.RULE,))
        block = sampler.summary_block()
        assert block["interval"] == INTERVAL
        assert block["samples"] == 8
        cell = block["scopes"]["cell"]
        assert cell["series"] == len(sampler.scopes[0].bank)
        assert cell["alerts"]["fired"] == ["hot"]

    def test_two_identical_runs_are_byte_identical(self):
        a, _ = bursty_run(rules=(self.RULE,))
        b, _ = bursty_run(rules=(self.RULE,))
        dump = lambda s: json.dumps(
            s.payload("x", meta={"m": 1}), sort_keys=True
        )
        assert dump(a) == dump(b)
