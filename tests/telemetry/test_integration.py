"""Telemetry across the stack: serving runs, replay helper, artifacts.

The expensive fixtures run one short serving cell sampled and one
unsampled (module scope, shared across tests), proving the
non-perturbation contract on the real serving path; the rest covers
the replay helper's artifact round-trip, the structural validator, the
scenario ``alert_*`` checks, and the committed fixtures under
``benchmarks/telemetry/``.
"""

import importlib.util
import json
from pathlib import Path

import pytest

from repro.harness.serve_bench import serve_cell, serve_cell_system
from repro.harness.telemetry import telemetry_replay
from repro.scenarios.checks import evaluate_check
from repro.scenarios.spec import CheckSpec
from repro.sim.core import events_dispatched_total, untallied
from repro.telemetry import TelemetryConfig

REPO = Path(__file__).resolve().parents[2]
FIXTURES = REPO / "benchmarks" / "telemetry"

_spec = importlib.util.spec_from_file_location(
    "check_telemetry", REPO / "scripts" / "check_telemetry.py"
)
check_telemetry = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(check_telemetry)

DURATION = 1.5


@pytest.fixture(scope="module")
def unsampled():
    return serve_cell("DAS", load=1.0, duration=DURATION)


@pytest.fixture(scope="module")
def sampled():
    summary, system = serve_cell_system(
        "DAS", load=1.0, duration=DURATION, telemetry=TelemetryConfig()
    )
    return summary, system.telemetry


class TestNonPerturbation:
    def test_sampled_summary_is_bit_identical_outside_its_own_block(
        self, unsampled, sampled
    ):
        summary, _ = sampled
        assert "telemetry" in summary
        stripped = {k: v for k, v in summary.items() if k != "telemetry"}
        assert stripped == unsampled

    def test_sampler_covered_the_whole_run(self, sampled):
        _, sampler = sampled
        assert sampler.samples == int(DURATION / sampler.interval)

    def test_summary_block_and_payload_agree(self, sampled):
        summary, sampler = sampled
        block = summary["telemetry"]
        doc = sampler.payload("cell")
        assert doc["samples"] == block["samples"]
        for label, scope_block in block["scopes"].items():
            assert len(doc["scopes"][label]["series"]) == scope_block["series"]


class TestReplayHelper:
    def test_checks_pass_and_artifact_validates(self, unsampled, tmp_path):
        def run_cell(config):
            summary, system = serve_cell_system(
                "DAS", load=1.0, duration=DURATION, telemetry=config
            )
            return summary, system.telemetry

        checks, paths = telemetry_replay(
            "cell", run_cell, unsampled, tmp_path, meta={"bench": "unit"}
        )
        assert len(checks) == 2
        assert all(ok for _, ok in checks), [m for m, ok in checks if not ok]
        (path,) = paths
        assert path == tmp_path / "cell.telemetry.json"
        problems, _, _ = check_telemetry.check_telemetry_file(path)
        assert problems == []
        doc = json.loads(path.read_text())
        assert doc["schema"] == "repro.telemetry/1"
        assert doc["meta"]["bench"] == "unit"

    def test_missing_expected_alert_fails_the_check(self, unsampled, tmp_path):
        def run_cell(config):
            summary, system = serve_cell_system(
                "DAS", load=1.0, duration=DURATION, telemetry=config
            )
            return summary, system.telemetry

        checks, _ = telemetry_replay(
            "cell", run_cell, unsampled, tmp_path, meta={},
            expect_fired=("availability-burn",),
        )
        # A healthy cell burns no budget: the expectation must fail
        # loudly, not silently pass.
        fired_check = [ok for m, ok in checks if "declared alerts fired" in m]
        assert fired_check == [False]

    def test_replay_events_stay_out_of_the_global_tally(self):
        before = events_dispatched_total()
        with untallied():
            serve_cell("DAS", load=1.0, duration=DURATION)
        assert events_dispatched_total() == before


class TestScenarioAlertChecks:
    SUMMARY = {
        "telemetry": {
            "scopes": {
                "cell": {
                    "alerts": {
                        "fired": ["failover-surge", "latency-burn"],
                        "resolved": ["failover-surge"],
                    }
                }
            }
        }
    }

    def test_alert_fired_reads_the_ledger(self):
        label, ok = evaluate_check(
            CheckSpec(check="alert_fired", alert="latency-burn"), self.SUMMARY
        )
        assert ok and "latency-burn" in label

    def test_alert_resolved_requires_the_full_lifecycle(self):
        _, ok = evaluate_check(
            CheckSpec(check="alert_resolved", alert="failover-surge"),
            self.SUMMARY,
        )
        assert ok
        _, ok = evaluate_check(
            CheckSpec(check="alert_resolved", alert="latency-burn"),
            self.SUMMARY,
        )
        assert not ok  # fired but never resolved

    def test_unknown_rule_fails(self):
        _, ok = evaluate_check(
            CheckSpec(check="alert_fired", alert="no-such-rule"), self.SUMMARY
        )
        assert not ok


class TestCommittedFixtures:
    def test_all_four_fixtures_validate_clean(self):
        paths = sorted(FIXTURES.glob("*.telemetry.json"))
        assert len(paths) == 4
        for path in paths:
            problems, _, _ = check_telemetry.check_telemetry_file(path)
            assert problems == [], (path.name, problems)

    def test_chaos_fixture_records_the_burn_lifecycle(self):
        path = FIXTURES / "chaos_crash_NAS.telemetry.json"
        _, fired, resolved = check_telemetry.check_telemetry_file(path)
        assert {"availability-burn", "latency-burn"} <= fired
        assert {"availability-burn", "latency-burn"} <= resolved

    def test_healthy_serve_fixture_stays_silent(self):
        path = FIXTURES / "serve_DAS_x1.telemetry.json"
        _, fired, _ = check_telemetry.check_telemetry_file(path)
        assert fired == set()

    def test_validator_rejects_a_tampered_ledger(self, tmp_path):
        doc = json.loads(
            (FIXTURES / "chaos_crash_NAS.telemetry.json").read_text()
        )
        for scope in doc["scopes"].values():
            if scope.get("alerts", {}).get("ledger"):
                entry = scope["alerts"]["ledger"][0]
                entry["resolved_at"] = entry["fired_at"]  # resolve <= fire
        bad = tmp_path / "bad.telemetry.json"
        bad.write_text(json.dumps(doc))
        problems, _, _ = check_telemetry.check_telemetry_file(bad)
        assert problems


class TestTimelineRendering:
    def test_sparkline_is_deterministic_and_bounded(self):
        from repro.report import sparkline

        values = [0.0, 1.0, 2.0, 4.0, 8.0, 4.0, 2.0, 1.0]
        line = sparkline(values)
        assert line == sparkline(values)
        assert len(line) == len(values)
        assert set(line) <= set("▁▂▃▄▅▆▇█")

    def test_sparkline_downsamples_to_width(self):
        from repro.report import sparkline

        assert len(sparkline(list(range(100)), width=20)) == 20

    def test_flat_series_renders_flat(self):
        from repro.report import sparkline

        assert sparkline([3.0, 3.0, 3.0]) == "▁▁▁"

    def test_health_strip_marks_the_incident_window(self):
        from repro.report.emit import _health_strip

        ledger = [
            {"severity": "page", "fired_at": 0.5, "resolved_at": 1.0},
            {"severity": "ticket", "fired_at": 1.5, "resolved_at": None},
        ]
        strip = _health_strip(ledger, 0.25, 8)
        # Boundaries 0.25..2.0: page active [0.5, 1.0), unresolved
        # ticket from 1.5 to the end of the strip.
        assert strip == "·██··▒▒▒"

    def test_timeline_section_renders_the_committed_fixtures(self):
        from repro.report import load_telemetry
        from repro.report.emit import _timeline_section

        fixtures = load_telemetry(FIXTURES)
        assert [f.label for f in fixtures] == sorted(f.label for f in fixtures)
        lines = _timeline_section(fixtures)
        text = "\n".join(lines)
        assert "## Fleet health timeline" in text
        assert "availability-burn" in text
        # Deterministic: same fixtures, same rendering.
        assert lines == _timeline_section(load_telemetry(FIXTURES))
