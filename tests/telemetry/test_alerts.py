"""The alert engine's state machine, predicate by predicate.

Every test drives an :class:`AlertEngine` by hand over a hand-built
:class:`SeriesBank` at 0.25s boundaries — no simulator — so each
assertion pins one rule semantics: multi-window burn gating, hold-down
hysteresis, horizon-aware absence, slope thresholds.
"""

import pytest

from repro.errors import SimulationError
from repro.telemetry import (
    AlertEngine,
    AlertRule,
    SeriesBank,
    default_fleet_rules,
    default_serve_rules,
)

INTERVAL = 0.25


def engine_for(rules, bank=None, **kwargs):
    # NB: an empty SeriesBank is falsy (it has __len__), so test `is None`.
    if bank is None:
        bank = SeriesBank()
    return AlertEngine("cell", tuple(rules), bank, **kwargs)


class TestRuleValidation:
    def test_unknown_kind(self):
        with pytest.raises(SimulationError, match="unknown kind"):
            AlertRule(name="r", kind="anomaly").validate()

    def test_burn_needs_bad_and_total(self):
        with pytest.raises(SimulationError, match="bad and total"):
            AlertRule(name="r", kind="burn_rate", bad=("x",)).validate()

    def test_burn_objective_bounds(self):
        rule = AlertRule(
            name="r", kind="burn_rate", bad=("b",), total=("t",), objective=1.0
        )
        with pytest.raises(SimulationError, match="objective"):
            rule.validate()

    def test_burn_windows_ordered(self):
        rule = AlertRule(
            name="r", kind="burn_rate", bad=("b",), total=("t",),
            fast=2.0, slow=0.5,
        )
        with pytest.raises(SimulationError, match="fast <= slow"):
            rule.validate()

    def test_threshold_needs_series_and_known_op(self):
        with pytest.raises(SimulationError, match="series"):
            AlertRule(name="r", kind="threshold").validate()
        with pytest.raises(SimulationError, match="unknown op"):
            AlertRule(name="r", kind="threshold", series="g", op=">=").validate()

    def test_rate_of_change_needs_window(self):
        with pytest.raises(SimulationError, match="window"):
            AlertRule(name="r", kind="rate_of_change", series="g").validate()

    def test_absence_needs_duration(self):
        with pytest.raises(SimulationError, match="duration"):
            AlertRule(name="r", kind="absence", series="c", duration=0).validate()

    def test_duplicate_rule_names_rejected(self):
        rule = AlertRule(name="r", kind="threshold", series="g")
        with pytest.raises(SimulationError, match="duplicate"):
            engine_for([rule, rule])

    def test_stock_rule_sets_validate(self):
        engine_for(default_serve_rules())
        engine_for(default_fleet_rules(3))

    def test_to_dict_carries_only_the_kinds_fields(self):
        burn = default_serve_rules()[0].to_dict()
        assert burn["kind"] == "burn_rate"
        assert set(burn["bad"]) == {"serve.expired", "serve.failed"}
        assert "series" not in burn
        windowed = AlertRule(
            name="r", kind="threshold", series="g", window=0.5
        ).to_dict()
        assert windowed["window"] == 0.5
        assert "bad" not in windowed


class TestThresholdHysteresis:
    RULE = AlertRule(
        name="hot", kind="threshold", severity="ticket", series="g",
        op=">", value=5.0, for_duration=0.5, clear_for=0.5,
    )

    def drive(self, levels):
        bank = SeriesBank()
        engine = engine_for([self.RULE], bank)
        g = bank.series_for("g", "gauge")
        for i, level in enumerate(levels, 1):
            t = i * INTERVAL
            g.append(t, level)
            engine.evaluate(t)
        return engine

    def test_fires_only_after_for_duration_holds(self):
        # Hot at 0.25; must hold 0.5s -> fires at 0.75, not before.
        engine = self.drive([10, 10, 10])
        assert [e["fired_at"] for e in engine.ledger] == [0.75]
        assert engine.active == ("hot",)

    def test_blip_shorter_than_for_duration_never_fires(self):
        engine = self.drive([10, 2, 10, 2, 10, 2])
        assert engine.ledger == []

    def test_resolves_only_after_clear_for_holds(self):
        # Fires at 0.75; cool from 1.0; clear must hold 0.5s -> 1.5.
        engine = self.drive([10, 10, 10, 2, 2, 2])
        (entry,) = engine.ledger
        assert entry == {
            "rule": "hot",
            "scope": "cell",
            "severity": "ticket",
            "fired_at": 0.75,
            "resolved_at": 1.5,
        }
        assert engine.active == ()

    def test_flapping_books_one_incident(self):
        # Alternating hot/cool never clears for 0.5s straight: the
        # incident stays open and the ledger holds exactly one entry.
        rule = AlertRule(
            name="hot", kind="threshold", series="g",
            op=">", value=5.0, clear_for=0.5,
        )
        bank = SeriesBank()
        engine = engine_for([rule], bank)
        g = bank.series_for("g", "gauge")
        for i, level in enumerate([10, 2, 10, 2, 10, 2, 10, 2], 1):
            g.append(i * INTERVAL, level)
            engine.evaluate(i * INTERVAL)
        assert len(engine.ledger) == 1
        assert engine.ledger[0]["resolved_at"] is None
        assert engine.fired_rules() == ["hot"]
        assert engine.resolved_rules() == []


class TestBurnRate:
    RULE = AlertRule(
        name="burn", kind="burn_rate", bad=("bad",), total=("bad", "good"),
        objective=0.5, factor=2.0, fast=0.5, slow=1.0,
    )

    def drive(self, ticks):
        """ticks: per-boundary (bad, good) increases."""
        bank = SeriesBank()
        engine = engine_for([self.RULE], bank)
        b = bank.series_for("bad", "counter")
        g = bank.series_for("good", "counter")
        for i, (bad, good) in enumerate(ticks, 1):
            t = i * INTERVAL
            b.append(t, float(bad))
            g.append(t, float(good))
            engine.evaluate(t)
        return engine

    def test_no_traffic_is_zero_burn(self):
        engine = self.drive([(0, 0)] * 8)
        assert engine.ledger == []

    def test_slow_window_keeps_a_blip_from_firing(self):
        # objective 0.5 -> burn = 2 * bad_fraction; factor 2 needs the
        # fraction at 1.0 in BOTH windows.  Four good ticks, then bad:
        # the fast (0.5s) window saturates after two bad ticks but the
        # slow (1.0s) window still remembers good traffic, so nothing
        # fires until the bad run is a full slow-window long.
        engine = self.drive([(0, 1)] * 4 + [(1, 0)] * 4)
        assert [e["fired_at"] for e in engine.ledger] == [2.0]

    def test_both_windows_hot_fires_immediately_without_history(self):
        engine = self.drive([(1, 0), (1, 0)])
        assert [e["fired_at"] for e in engine.ledger] == [0.25]

    def test_burn_value_matches_the_formula(self):
        engine = self.drive([(1, 3)] * 4)
        # (1 bad / 4 total) / (1 - 0.5) = 0.5 over any window.
        assert engine.burn(self.RULE, 1.0, 1.0) == pytest.approx(0.5)


class TestAbsence:
    RULE = AlertRule(
        name="stall", kind="absence", series="beats",
        duration=0.5, clear_for=0.0,
    )

    def test_never_booked_series_is_silent_since_zero(self):
        engine = engine_for([self.RULE])
        engine.evaluate(0.25)
        assert engine.ledger == []
        engine.evaluate(0.5)
        assert [e["fired_at"] for e in engine.ledger] == [0.5]

    def test_activity_resolves_and_silence_refires(self):
        bank = SeriesBank()
        engine = engine_for([self.RULE], bank)
        c = bank.series_for("beats", "counter")
        for i in range(1, 3):  # silent 0.25, 0.5 -> fires at 0.5
            c.append(i * INTERVAL, 0.0)
            engine.evaluate(i * INTERVAL)
        c.append(0.75, 2.0)  # heartbeat
        engine.evaluate(0.75)
        (first,) = engine.ledger
        assert (first["fired_at"], first["resolved_at"]) == (0.5, 0.75)
        for i in range(4, 6):  # silent again: 1.0, 1.25 -> refires
            c.append(i * INTERVAL, 0.0)
            engine.evaluate(i * INTERVAL)
        assert [e["fired_at"] for e in engine.ledger] == [0.5, 1.25]

    def test_active_until_silences_the_drain(self):
        # Offered load deliberately ends at 0.5: the silence after it
        # never reaches the duration while the rule is live, and past
        # the horizon the predicate is off entirely.
        bank = SeriesBank()
        engine = engine_for([self.RULE], bank, active_until=0.5)
        c = bank.series_for("beats", "counter")
        c.append(0.25, 2.0)
        for t in (0.25, 0.5, 0.75, 1.0, 1.25, 1.5):
            engine.evaluate(t)
        assert engine.ledger == []


class TestRateOfChange:
    def test_steep_slope_fires_and_plateau_resolves(self):
        rule = AlertRule(
            name="growth", kind="rate_of_change", series="g",
            op=">", value=8.0, window=0.5, clear_for=0.0,
        )
        bank = SeriesBank()
        engine = engine_for([rule], bank)
        g = bank.series_for("g", "gauge")
        for i, level in enumerate([0, 0, 6, 12, 12, 12], 1):
            t = i * INTERVAL
            g.append(t, float(level))
            engine.evaluate(t)
        # Slope over the trailing 0.5s: 12/s from 0.75 through 1.25
        # (the window still sees the climb), flat at 1.5.
        (entry,) = engine.ledger
        assert (entry["fired_at"], entry["resolved_at"]) == (0.75, 1.5)

    def test_too_little_history_is_inert(self):
        rule = AlertRule(
            name="growth", kind="rate_of_change", series="g",
            op=">", value=1.0, window=1.0,
        )
        bank = SeriesBank()
        engine = engine_for([rule], bank)
        g = bank.series_for("g", "gauge")
        g.append(0.25, 100.0)
        engine.evaluate(0.25)  # nothing at t - window yet
        assert engine.ledger == []


class TestMetaMetrics:
    def test_transitions_book_into_the_hub(self):
        from repro.sim.core import Environment
        from repro.sim.monitor import MonitorHub

        hub = MonitorHub(Environment())
        rule = AlertRule(
            name="hot", kind="threshold", series="g",
            op=">", value=5.0, clear_for=0.0,
        )
        bank = SeriesBank()
        engine = engine_for([rule], bank, monitors=hub)
        g = bank.series_for("g", "gauge")
        g.append(0.25, 10.0)
        engine.evaluate(0.25)
        assert hub.counter("alert.fired").value == 1.0
        assert hub.gauge("alert.active").level == 1.0
        g.append(0.5, 0.0)
        engine.evaluate(0.5)
        assert hub.counter("alert.resolved").value == 1.0
        assert hub.gauge("alert.active").level == 0.0
