"""Tests for timeline reconstruction and utilisation reporting."""

import numpy as np
import pytest

from repro.config import SimConfig
from repro.hw import Cluster
from repro.metrics import Timeline, render_gantt, utilization_table
from repro.pfs import ParallelFileSystem
from repro.schemes import NormalActiveStorageScheme
from repro.units import KiB
from repro.workloads import fractal_dem


@pytest.fixture
def traced_run():
    cluster = Cluster.build(
        n_compute=2, n_storage=2, sim_config=SimConfig(trace=True)
    )
    pfs = ParallelFileSystem(cluster, strip_size=4 * KiB)
    dem = fractal_dem(64, 64, rng=np.random.default_rng(44))
    pfs.client("c0").ingest("dem", dem, pfs.round_robin())
    scheme = NormalActiveStorageScheme(pfs)
    cluster.run(until=scheme.run_operation("gaussian", "dem", "out"))
    return cluster


def test_timeline_collects_cpu_and_disk_intervals(traced_run):
    tl = Timeline.from_monitors(traced_run.monitors)
    assert tl.horizon > 0
    # Both storage nodes computed and did disk I/O.
    for node in ("s0", "s1"):
        assert tl.busy_seconds(node, "cpu") > 0
        assert tl.busy_seconds(node, "disk") > 0


def test_intervals_are_well_formed(traced_run):
    tl = Timeline.from_monitors(traced_run.monitors)
    for (node, kind), intervals in tl.busy.items():
        for a, b in intervals:
            assert 0 <= a < b <= tl.horizon + 1e-12


def test_busy_seconds_merges_overlaps(env):
    from repro.sim import MonitorHub
    from repro.sim.monitor import TraceRecord

    hub = MonitorHub(env, trace=True)
    hub.trace.extend(
        [
            TraceRecord(2.0, "cpu", "n:kernel", {"seconds": 2.0}),  # [0, 2)
            TraceRecord(3.0, "cpu", "n:kernel", {"seconds": 2.0}),  # [1, 3)
            TraceRecord(10.0, "cpu", "n:kernel", {"seconds": 1.0}),  # [9, 10)
        ]
    )
    tl = Timeline.from_monitors(hub)
    assert tl.busy_seconds("n", "cpu") == pytest.approx(4.0)  # [0,3) + [9,10)
    assert tl.utilization("n", "cpu") == pytest.approx(0.4)


def test_utilization_bounded(traced_run):
    tl = Timeline.from_monitors(traced_run.monitors)
    for node in tl.nodes():
        for kind in ("cpu", "disk"):
            assert 0.0 <= tl.utilization(node, kind) <= 1.0


def test_gantt_renders_rows(traced_run):
    tl = Timeline.from_monitors(traced_run.monitors)
    art = render_gantt(tl, width=40)
    assert "s0" in art and "#" in art
    for line in art.splitlines():
        assert line.endswith("|")


def test_gantt_empty_timeline():
    from repro.sim import Environment, MonitorHub

    hub = MonitorHub(Environment(), trace=True)
    assert "empty" in render_gantt(Timeline.from_monitors(hub))


def test_utilization_table_rows(traced_run):
    tl = Timeline.from_monitors(traced_run.monitors)
    rows = utilization_table(tl)
    assert {row["node"] for row in rows} >= {"s0", "s1"}
    for row in rows:
        assert row["cpu_util"] <= 1.0


def test_untraced_run_yields_empty_timeline():
    cluster = Cluster.build(n_compute=1, n_storage=1)  # trace off
    tl = Timeline.from_monitors(cluster.monitors)
    assert tl.busy == {}
