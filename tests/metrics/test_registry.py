"""Tests for the declared metric catalog and the registry's linting."""

import pytest

from repro.errors import ServeError
from repro.metrics.registry import (
    CATALOG,
    DEFAULT_BUCKETS,
    Histogram,
    MetricRegistry,
    MetricSpec,
    catalog_lookup,
)
from repro.sim import Environment, MonitorHub


@pytest.fixture
def hub(env):
    return MonitorHub(env)


@pytest.fixture
def registry(hub):
    return MetricRegistry(hub)


class TestCatalog:
    def test_exact_match_beats_family(self):
        assert catalog_lookup("serve.latency").family is False
        assert catalog_lookup("serve.latency.alpha").name == "serve.latency."
        assert catalog_lookup("serve.latency.alpha").family is True

    def test_family_covers_instances_exact_covers_itself(self):
        flow = catalog_lookup("net.flow.c0->s1")
        assert flow is not None and flow.name == "net.flow."
        assert catalog_lookup("net.bytes_total").name == "net.bytes_total"
        assert catalog_lookup("never.booked.anywhere") is None

    def test_spec_covers(self):
        fam = MetricSpec("a.", "counter", "bytes", "h", family=True)
        exact = MetricSpec("a.b", "counter", "bytes", "h")
        assert fam.covers("a.b") and fam.covers("a.")
        assert exact.covers("a.b") and not exact.covers("a.b.c")

    def test_catalog_names_are_unique(self):
        names = [s.name for s in CATALOG]
        assert len(names) == len(set(names))

    def test_duplicate_declarations_are_rejected(self, hub):
        spec = MetricSpec("x", "counter", "bytes", "h")
        with pytest.raises(ServeError, match="twice"):
            MetricRegistry(hub, catalog=(spec, spec))


class TestLint:
    def test_undeclared_flags_rogue_names(self, registry, hub):
        hub.counter("serve.admitted").add()
        hub.counter("rogue.counter").add()
        hub.gauge("rogue.gauge").set(1)
        assert registry.undeclared() == ["rogue.counter", "rogue.gauge"]

    def test_family_instances_are_declared(self, registry, hub):
        hub.counter("net.flow.c0->s1").add(10)
        hub.counter("cpu.busy.s0").add(0.5)
        assert registry.undeclared() == []

    def test_mistyped_flags_kind_disagreements(self, registry, hub):
        hub.counter("serve.queue.depth").add()  # declared gauge
        hub.gauge("serve.admitted").set(1)  # declared counter
        assert registry.mistyped() == [
            "serve.admitted: booked as gauge, declared counter",
            "serve.queue.depth: booked as counter, declared gauge",
        ]

    def test_clean_hub_lints_clean(self, registry, hub):
        hub.counter("serve.admitted").add()
        hub.gauge("serve.queue.depth").set(1)
        assert registry.undeclared() == []
        assert registry.mistyped() == []


class TestTypedAccess:
    def test_counter_and_gauge_go_through_the_hub(self, registry, hub):
        registry.counter("serve.admitted").add(2)
        assert hub.counter("serve.admitted").value == 2
        registry.gauge("serve.queue.depth").set(3)
        assert hub.gauge("serve.queue.depth").level == 3

    def test_undeclared_access_raises(self, registry):
        with pytest.raises(ServeError, match="not declared"):
            registry.counter("rogue.counter")

    def test_kind_mismatch_raises(self, registry):
        with pytest.raises(ServeError, match="declared as a gauge"):
            registry.counter("serve.queue.depth")
        with pytest.raises(ServeError, match="declared as a histogram"):
            registry.counter("serve.latency")

    def test_histograms_are_cached_per_name(self, registry):
        h = registry.histogram("serve.latency")
        assert registry.histogram("serve.latency") is h
        assert registry.histogram("serve.latency.alpha") is not h


class TestHistogram:
    def test_buckets_must_be_sorted_and_nonempty(self):
        with pytest.raises(ServeError, match="sorted"):
            Histogram("x", buckets=(2.0, 1.0))
        with pytest.raises(ServeError, match="sorted"):
            Histogram("x", buckets=())

    def test_default_grid_spans_1ms_to_100s(self):
        assert DEFAULT_BUCKETS[0] == 0.001
        assert DEFAULT_BUCKETS[-1] == 100.0
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)

    def test_observe_buckets_by_upper_bound(self):
        h = Histogram("x", buckets=(1.0, 10.0))
        for value in (0.5, 1.0, 5.0, 10.0, 11.0):
            h.observe(value)
        # counts[i] tallies samples <= buckets[i]; the last slot is +Inf.
        assert h.counts == [2, 2, 1]
        assert h.count == 5
        assert h.total == pytest.approx(27.5)

    def test_summary_uses_the_canonical_quantiles(self):
        h = Histogram("x")
        for ms in range(1, 101):
            h.observe(ms / 1000.0)
        summary = h.summary()
        assert summary.count == 100
        assert summary.p50 == pytest.approx(0.050)
        assert summary.p99 == pytest.approx(0.099)

    def test_as_dict_keeps_only_hit_buckets(self):
        h = Histogram("x", buckets=(1.0, 10.0))
        h.observe(0.5)
        h.observe(20.0)
        assert h.as_dict() == {
            "count": 2,
            "sum": 20.5,
            "buckets": {"1": 1, "+Inf": 1},
        }


class TestSnapshot:
    def test_snapshot_unifies_counters_gauges_histograms(self, registry, hub):
        hub.counter("serve.admitted").add(4)
        hub.gauge("serve.queue.depth").set(2)
        registry.histogram("serve.latency").observe(0.05)
        snap = registry.snapshot()
        assert snap["serve.admitted"] == 4
        assert snap["serve.queue.depth"] == 2
        assert snap["serve.latency"]["count"] == 1

    def test_describe_marks_families(self, registry):
        rows = {row["name"]: row for row in registry.describe()}
        assert rows["net.flow.*"]["kind"] == "counter"
        assert rows["serve.admitted"]["unit"] == "requests"
