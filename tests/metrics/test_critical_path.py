"""Critical-path attribution on hand-built span trees."""

import pytest

from repro.metrics.critical_path import (
    STAGES,
    critical_path,
    request_attribution,
)
from repro.obs import Tracer


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t


class Req:
    def __init__(self, req_id, arrival=0.0, tenant="alpha"):
        self.req_id = req_id
        self.arrival = arrival
        self.tenant = tenant
        self.file = "dem_a"
        self.operator = "gaussian"
        self.deadline = 1.0


def make_tracer():
    clock = FakeClock()
    return Tracer(clock=clock), clock


def span_at(tracer, clock, name, cat, start, end, parent=None, **attrs):
    clock.t = start
    span = tracer.begin(name, cat=cat, parent=parent, **attrs)
    clock.t = end
    span.finish()
    return span


def finish_request(tracer, clock, req_id, end, outcome="completed"):
    clock.t = end
    tracer.request_end(req_id, outcome)


class TestSingleRequest:
    def test_stages_partition_the_latency_exactly(self):
        tracer, clock = make_tracer()
        root = tracer.request_begin(Req(1))
        span_at(tracer, clock, "queued", "queue", 0.0, 2.0, parent=root)
        attempt = span_at(tracer, clock, "attempt", "attempt", 2.0, 10.0, parent=root)
        span_at(tracer, clock, "rpc", "rpc", 3.0, 7.0, parent=attempt)
        finish_request(tracer, clock, 1, 10.0)

        attribution = request_attribution(tracer, 1)
        assert attribution.latency == 10.0
        assert attribution.stages == {"queue": 2.0, "attempt": 4.0, "rpc": 4.0}
        assert attribution.total == pytest.approx(attribution.latency)
        assert attribution.coverage == 1.0

    def test_uncovered_segments_are_unattributed(self):
        tracer, clock = make_tracer()
        root = tracer.request_begin(Req(1))
        span_at(tracer, clock, "queued", "queue", 0.0, 2.0, parent=root)
        span_at(tracer, clock, "attempt", "attempt", 4.0, 10.0, parent=root)
        finish_request(tracer, clock, 1, 10.0)

        attribution = request_attribution(tracer, 1)
        assert attribution.stages["unattributed"] == pytest.approx(2.0)
        assert attribution.coverage == pytest.approx(0.8)
        # Even so, the stages still sum to the latency.
        assert attribution.total == pytest.approx(10.0)

    def test_deepest_span_wins_each_segment(self):
        tracer, clock = make_tracer()
        root = tracer.request_begin(Req(1))
        attempt = span_at(tracer, clock, "attempt", "attempt", 0.0, 10.0, parent=root)
        offload = span_at(tracer, clock, "offload", "offload", 0.0, 10.0, parent=attempt)
        span_at(tracer, clock, "rpc", "rpc", 0.0, 10.0, parent=offload)
        finish_request(tracer, clock, 1, 10.0)

        attribution = request_attribution(tracer, 1)
        # Self-time semantics: fully covered parents contribute nothing.
        assert attribution.stages == {"rpc": 10.0}

    def test_children_are_clipped_to_the_root_interval(self):
        tracer, clock = make_tracer()
        root = tracer.request_begin(Req(1))
        # A detached RPC outliving the request must not inflate it.
        span_at(tracer, clock, "rpc", "rpc", 5.0, 20.0, parent=root)
        finish_request(tracer, clock, 1, 10.0)

        attribution = request_attribution(tracer, 1)
        assert attribution.stages == {
            "unattributed": pytest.approx(5.0),
            "rpc": pytest.approx(5.0),
        }
        assert attribution.total == pytest.approx(10.0)

    def test_unsettled_request_yields_none(self):
        tracer, clock = make_tracer()
        tracer.request_begin(Req(1))  # never ended
        assert request_attribution(tracer, 1) is None
        assert request_attribution(tracer, 404) is None


class TestBatchRiders:
    def test_rider_follows_the_shared_leader_fanout(self):
        tracer, clock = make_tracer()
        lead_root = tracer.request_begin(Req(1))
        rider_root = tracer.request_begin(Req(2))
        lead = span_at(
            tracer, clock, "attempt", "attempt", 1.0, 9.0, parent=lead_root
        )
        span_at(tracer, clock, "rpc", "rpc", 2.0, 8.0, parent=lead)
        # The rider's attempt has no children of its own; it names the
        # leader's attempt via ``shared``.
        span_at(
            tracer, clock, "attempt", "attempt", 1.0, 9.0,
            parent=rider_root, shared=lead.sid,
        )
        finish_request(tracer, clock, 1, 9.0)
        finish_request(tracer, clock, 2, 9.0)

        lead_attr = request_attribution(tracer, 1)
        rider_attr = request_attribution(tracer, 2)
        assert rider_attr.stages["rpc"] == pytest.approx(6.0)
        assert rider_attr.stages == lead_attr.stages


class TestReport:
    def _run(self):
        tracer, clock = make_tracer()
        for req_id, outcome in ((1, "completed"), (2, "late"), (3, "failed")):
            root = tracer.request_begin(Req(req_id, tenant=f"t{req_id}"))
            span_at(tracer, clock, "queued", "queue", 0.0, 1.0, parent=root)
            span_at(tracer, clock, "rpc", "rpc", 1.0, 4.0, parent=root)
            finish_request(tracer, clock, req_id, 4.0, outcome=outcome)
        return tracer

    def test_only_finished_outcomes_enter_the_report(self):
        report = critical_path(self._run())
        assert report.count == 2  # failed request excluded
        assert {r.outcome for r in report.requests} == {"completed", "late"}

    def test_bounds_and_table(self):
        report = critical_path(self._run())
        assert report.min_coverage() == 1.0
        assert report.max_attribution_error() == pytest.approx(0.0)
        table = {row["stage"]: row for row in report.table()}
        assert table["queue"]["seconds"] == pytest.approx(2.0)
        assert table["rpc"]["seconds"] == pytest.approx(6.0)
        assert table["rpc"]["share"] == pytest.approx(0.75)

    def test_req_ids_filter_restricts_the_sample(self):
        report = critical_path(self._run(), req_ids=[2])
        assert [r.req_id for r in report.requests] == [2]

    def test_as_dict_carries_the_acceptance_fields(self):
        doc = critical_path(self._run()).as_dict()
        assert doc["requests"] == 2
        assert doc["min_coverage"] == 1.0
        assert doc["max_attribution_error"] == pytest.approx(0.0)
        assert {row["req_id"] for row in doc["per_request"]} == {1, 2}

    def test_stage_order_is_stable(self):
        report = critical_path(self._run())
        stages = [row["stage"] for row in report.table()]
        assert stages == [s for s in STAGES if s in stages]

    def test_empty_report_is_benign(self):
        tracer, _ = make_tracer()
        report = critical_path(tracer)
        assert report.count == 0
        assert report.min_coverage() == 1.0
        assert report.max_attribution_error() == 0.0
        assert report.table() == []
