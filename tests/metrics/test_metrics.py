"""Unit tests for traffic accounting and report rendering."""

import pytest

from repro.hw import Cluster
from repro.metrics import TrafficMeter, sustained_bandwidth
from repro.metrics.report import format_checks, format_series, format_table


@pytest.fixture
def cl():
    return Cluster.build(n_compute=2, n_storage=2)


class TestTrafficMeter:
    def test_classifies_client_vs_server_flows(self, cl, drive):
        meter = TrafficMeter(cl)

        def main():
            yield cl.transport.send("c0", "s0", 1000)
            yield cl.transport.send("s0", "s1", 500)
            yield cl.transport.send("c0", "c1", 200)
            for node, n in (("s0", 1), ("s1", 1), ("c1", 1)):
                for _ in range(n):
                    yield cl.transport.recv(node)

        drive(cl, cl.env.process(main()))
        delta = meter.delta()
        assert delta.client_bytes == 1200  # c0->s0 + c0->c1
        assert delta.server_bytes == 500
        assert delta.wire_bytes == 1700

    def test_reset_clears_baseline(self, cl, drive):
        meter = TrafficMeter(cl)

        def first():
            yield cl.transport.send("c0", "s0", 1000)
            yield cl.transport.recv("s0")

        drive(cl, cl.env.process(first()))
        meter.reset()
        assert meter.delta().wire_bytes == 0

    def test_by_tag_split(self, cl, drive):
        meter = TrafficMeter(cl)

        def main():
            yield cl.transport.send("c0", "s0", 300, tag="halo")
            yield cl.transport.send("c0", "s0", 700, tag="pfs")
            yield cl.transport.recv("s0")
            yield cl.transport.recv("s0")

        drive(cl, cl.env.process(main()))
        delta = meter.delta()
        assert delta.tag_bytes("halo") == 300
        assert delta.tag_bytes("pfs") == 700
        assert delta.tag_bytes("missing") == 0

    def test_loopback_not_counted_as_wire(self, cl, drive):
        meter = TrafficMeter(cl)

        def main():
            yield cl.transport.send("s0", "s0", 999)
            yield cl.transport.recv("s0")

        drive(cl, cl.env.process(main()))
        delta = meter.delta()
        assert delta.wire_bytes == 0
        assert delta.loopback_bytes == 999


class TestSustainedBandwidth:
    def test_simple_division(self):
        assert sustained_bandwidth(100.0, 4.0) == 25.0

    def test_zero_elapsed_is_infinite(self):
        assert sustained_bandwidth(100.0, 0.0) == float("inf")


class TestReportRendering:
    def test_format_table_alignment(self):
        rows = [
            {"scheme": "DAS", "time_s": 1.23456},
            {"scheme": "TS", "time_s": 2.0},
        ]
        text = format_table(rows)
        lines = text.splitlines()
        assert lines[0].startswith("scheme")
        assert "DAS" in lines[2]
        assert "1.235" in text  # 4 significant digits

    def test_format_table_empty(self):
        assert format_table([]) == "(no rows)"

    def test_format_table_column_selection(self):
        rows = [{"a": 1, "b": 2}]
        text = format_table(rows, columns=["b"])
        assert "a" not in text.splitlines()[0]

    def test_format_series(self):
        text = format_series("title", {"DAS": [(24, 1.0), (36, 2.0)]}, unit="s")
        assert "title" in text
        assert "24: 1s" in text

    def test_format_checks_verdicts(self):
        text = format_checks([("claim one", True), ("claim two", False)])
        assert "[PASS] claim one" in text
        assert "[FAIL] claim two" in text
