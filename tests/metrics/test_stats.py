"""Tests for the canonical latency-summary helper."""

import pytest

from repro.metrics import LatencySummary, format_latency_table, latency_summary, percentile


class TestPercentile:
    def test_nearest_rank_small(self):
        xs = list(range(1, 11))  # 1..10
        assert percentile(xs, 50) == 5
        assert percentile(xs, 95) == 10
        assert percentile(xs, 99) == 10
        assert percentile(xs, 100) == 10
        assert percentile(xs, 10) == 1

    def test_nearest_rank_hundred(self):
        xs = list(range(1, 101))  # 1..100
        assert percentile(xs, 50) == 50
        assert percentile(xs, 95) == 95
        assert percentile(xs, 99) == 99

    def test_result_is_always_an_element(self):
        xs = [0.1, 0.2, 0.7]
        for q in (1, 33, 50, 66, 90, 99, 100):
            assert percentile(xs, q) in xs

    def test_empty_returns_zero(self):
        assert percentile([], 99) == 0.0

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            percentile([1.0], 0)
        with pytest.raises(ValueError):
            percentile([1.0], 101)

    def test_singleton(self):
        assert percentile([3.5], 50) == 3.5
        assert percentile([3.5], 99) == 3.5


class TestLatencySummary:
    def test_summary_fields(self):
        s = latency_summary([0.3, 0.1, 0.2, 0.4])
        assert s.count == 4
        assert s.mean == pytest.approx(0.25)
        assert s.p50 == 0.2
        assert s.max == 0.4

    def test_unsorted_input_is_sorted(self):
        assert latency_summary([5, 1, 3]).p50 == 3

    def test_empty_summary_is_zero(self):
        s = latency_summary([])
        assert s == LatencySummary(count=0, mean=0.0, p50=0.0, p95=0.0, p99=0.0, max=0.0)

    def test_row_shape(self):
        row = latency_summary([1.0]).row
        assert set(row) == {"count", "mean", "p50", "p95", "p99", "max"}

    def test_deterministic(self):
        xs = [0.017 * (i % 13) for i in range(200)]
        assert latency_summary(xs) == latency_summary(list(xs))


class TestFormatLatencyTable:
    def test_renders_one_row_per_name(self):
        text = format_latency_table(
            {"alpha": latency_summary([0.1, 0.2]), "beta": latency_summary([])}
        )
        assert "alpha" in text and "beta" in text
        assert "p99_s" in text

    def test_scale_and_unit(self):
        text = format_latency_table(
            {"t": latency_summary([0.25])}, unit="ms", scale=1e3
        )
        assert "p50_ms" in text
        assert "250" in text
