"""Unit tests for the small foundation modules: units, errors, config."""

import pytest

from repro import errors
from repro.config import (
    FAT_NETWORK,
    HROTHGAR,
    NARROW_NETWORK,
    SLOW_CPU,
    PlatformSpec,
    SimConfig,
)
from repro.units import (
    GiB,
    KiB,
    MiB,
    fmt_bandwidth,
    fmt_bytes,
    fmt_time,
    ms,
    us,
)


class TestUnits:
    def test_binary_sizes(self):
        assert KiB == 1024
        assert MiB == 1024 * KiB
        assert GiB == 1024 * MiB

    @pytest.mark.parametrize(
        "n,text",
        [
            (0, "0 B"),
            (512, "512 B"),
            (64 * KiB, "64.0 KiB"),
            (1.5 * MiB, "1.5 MiB"),
            (3 * GiB, "3.0 GiB"),
        ],
    )
    def test_fmt_bytes(self, n, text):
        assert fmt_bytes(n) == text

    @pytest.mark.parametrize(
        "t,text",
        [
            (2.0, "2.000 s"),
            (0.002, "2.000 ms"),
            (3e-6, "3.000 us"),
            (5e-9, "5.0 ns"),
            (90.0, "1.50 min"),
            (7200.0, "2.00 h"),
        ],
    )
    def test_fmt_time(self, t, text):
        assert fmt_time(t) == text

    def test_fmt_bandwidth(self):
        assert fmt_bandwidth(256 * MiB) == "256.0 MiB/s"

    def test_unit_constants_consistent(self):
        assert ms == 1000 * us


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            errors.SimulationError,
            errors.NetworkError,
            errors.PFSError,
            errors.KernelError,
            errors.ActiveStorageError,
            errors.HarnessError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, errors.ReproError)

    def test_specific_errors_derive_from_subsystem(self):
        assert issubclass(errors.StripMissingError, errors.PFSError)
        assert issubclass(errors.NodeDownError, errors.NetworkError)
        assert issubclass(errors.PatternParseError, errors.KernelError)
        assert issubclass(errors.OffloadRejectedError, errors.ActiveStorageError)
        assert issubclass(errors.UnknownExperimentError, errors.HarnessError)

    def test_interrupt_carries_cause(self):
        exc = errors.InterruptError(cause="why")
        assert exc.cause == "why"

    def test_offload_rejected_carries_decision(self):
        exc = errors.OffloadRejectedError(decision="the-decision")
        assert exc.decision == "the-decision"


class TestPlatformSpec:
    def test_defaults_network_scarcer_than_disk(self):
        spec = PlatformSpec()
        assert spec.nic_bandwidth < spec.disk_bandwidth

    def test_kernel_cost_fallback(self):
        spec = PlatformSpec()
        assert spec.kernel_sec_per_element("unknown-op") == spec.kernel_cost["default"]
        assert (
            spec.kernel_sec_per_element("median") > spec.kernel_sec_per_element(
                "flow-routing"
            )
        )

    def test_with_overrides_is_a_copy(self):
        base = PlatformSpec()
        fast = base.with_overrides(nic_bandwidth=10 * GiB)
        assert fast.nic_bandwidth == 10 * GiB
        assert base.nic_bandwidth != fast.nic_bandwidth
        assert fast.disk_bandwidth == base.disk_bandwidth

    def test_presets_make_sense(self):
        assert NARROW_NETWORK.nic_bandwidth < HROTHGAR.nic_bandwidth
        assert FAT_NETWORK.nic_bandwidth > HROTHGAR.nic_bandwidth
        assert (
            SLOW_CPU.kernel_cost["default"] > HROTHGAR.kernel_cost["default"]
        )

    def test_spec_is_frozen(self):
        with pytest.raises(Exception):
            PlatformSpec().cores = 99  # type: ignore[misc]


class TestSimConfig:
    def test_defaults(self):
        cfg = SimConfig()
        assert cfg.strip_size == 64 * KiB  # PVFS2 default per the paper
        assert cfg.element_size == 8
        assert not cfg.trace
