"""Shared fixtures: small clusters, file systems and rasters."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import PlatformSpec, SimConfig
from repro.hw import Cluster
from repro.pfs import ParallelFileSystem
from repro.units import KiB
from repro.workloads import fractal_dem


@pytest.fixture
def env():
    from repro.sim import Environment

    return Environment()


@pytest.fixture
def small_cluster():
    """4 compute + 4 storage nodes with default platform."""
    return Cluster.build(n_compute=4, n_storage=4)


@pytest.fixture
def small_pfs(small_cluster):
    """A PFS with small (4 KiB) strips for cheap layout tests."""
    return ParallelFileSystem(small_cluster, strip_size=4 * KiB)


@pytest.fixture
def dem_64():
    """64x64 float64 raster = 32 KiB = 8 strips of 4 KiB."""
    return fractal_dem(64, 64, rng=np.random.default_rng(1))


@pytest.fixture
def dem_wide():
    """96x128 raster: wider than tall, strips cross row boundaries."""
    return fractal_dem(96, 128, rng=np.random.default_rng(2))


def run_to(cluster, proc):
    """Run the cluster until a process completes; return its value."""
    return cluster.run(until=proc)


@pytest.fixture
def drive():
    return run_to
