"""Integration tests: the three evaluation schemes end to end.

The load-bearing invariant: for every kernel and every scheme, the
produced output is *bit-identical* to the sequential reference — the
schemes differ only in time and traffic, never in results.
"""

import numpy as np
import pytest

from repro.hw import Cluster
from repro.kernels import default_registry
from repro.pfs import ParallelFileSystem
from repro.schemes import (
    SCHEMES,
    DynamicActiveStorageScheme,
    NormalActiveStorageScheme,
    TraditionalScheme,
)
from repro.units import KiB
from repro.workloads import fractal_dem
from repro.harness.platform import ingest_for_scheme


def build_world(rows=96, cols=128, n=4, strip=4 * KiB, scheme="TS", kernel="gaussian"):
    cluster = Cluster.build(n_compute=n, n_storage=n)
    pfs = ParallelFileSystem(cluster, strip_size=strip)
    dem = fractal_dem(rows, cols, rng=np.random.default_rng(8))
    ingest_for_scheme(pfs, scheme, "in", dem, kernel)
    return cluster, pfs, dem


@pytest.mark.parametrize("label", ["TS", "NAS", "DAS"])
@pytest.mark.parametrize(
    "kernel", ["flow-routing", "gaussian", "median", "slope", "laplace", "relief"]
)
def test_every_scheme_matches_reference(label, kernel, drive):
    cluster, pfs, dem = build_world(scheme=label, kernel=kernel)
    scheme = SCHEMES[label](pfs)
    res = drive(cluster, scheme.run_operation(kernel, "in", "out"))
    ref = default_registry.get(kernel).reference(dem)
    if res.offloaded:
        got = pfs.client("c0").collect("out")
    else:
        src = scheme if label == "TS" else scheme._fallback
        got = src.client_output(dem.shape)
    assert np.array_equal(got, ref)
    assert res.elapsed > 0
    assert res.data_bytes == dem.nbytes


class TestTraditional:
    def test_no_server_to_server_traffic(self, drive):
        cluster, pfs, dem = build_world()
        res = drive(cluster, TraditionalScheme(pfs).run_operation("gaussian", "in", "out"))
        assert res.traffic.server_bytes == 0
        assert res.traffic.client_bytes >= dem.nbytes

    def test_write_back_persists_output(self, drive):
        cluster, pfs, dem = build_world()
        scheme = TraditionalScheme(pfs, write_back=True)
        drive(cluster, scheme.run_operation("gaussian", "in", "out"))
        ref = default_registry.get("gaussian").reference(dem)
        assert np.array_equal(pfs.client("c0").collect("out"), ref)

    def test_write_back_doubles_client_traffic(self, drive):
        cluster, pfs, dem = build_world()
        ro = drive(cluster, TraditionalScheme(pfs).run_operation("gaussian", "in", "o1"))
        cluster2, pfs2, _ = build_world()
        wb = drive(
            cluster2,
            TraditionalScheme(pfs2, write_back=True).run_operation("gaussian", "in", "o2"),
        )
        assert wb.traffic.client_bytes > 1.8 * ro.traffic.client_bytes

    def test_partition_is_balanced_and_complete(self):
        shares = TraditionalScheme._partition(103, 4)
        assert sum(c for _, c in shares) == 103
        assert max(c for _, c in shares) - min(c for _, c in shares) <= 1
        firsts = [f for f, _ in shares]
        assert firsts == sorted(firsts)

    def test_requires_compute_nodes(self, drive):
        from repro.errors import ActiveStorageError

        cluster = Cluster.build(n_compute=0, n_storage=2)
        pfs = ParallelFileSystem(cluster, strip_size=4 * KiB)
        pfs.client("s0").ingest(
            "in", fractal_dem(32, 32, rng=np.random.default_rng(0)), pfs.round_robin()
        )
        with pytest.raises(ActiveStorageError):
            drive(cluster, TraditionalScheme(pfs).run_operation("gaussian", "in", "out"))


class TestNAS:
    def test_offloads_unconditionally(self, drive):
        cluster, pfs, dem = build_world(scheme="NAS")
        res = drive(
            cluster, NormalActiveStorageScheme(pfs).run_operation("gaussian", "in", "out")
        )
        assert res.offloaded
        assert res.decision.reason.startswith("NAS offloads unconditionally")

    def test_pays_dependent_data_traffic(self, drive):
        cluster, pfs, dem = build_world(scheme="NAS")
        res = drive(
            cluster, NormalActiveStorageScheme(pfs).run_operation("gaussian", "in", "out")
        )
        assert res.extra["remote_halo_bytes"] > 0
        assert res.traffic.server_bytes > dem.nbytes  # strips move repeatedly

    def test_negligible_client_traffic(self, drive):
        cluster, pfs, dem = build_world(scheme="NAS")
        res = drive(
            cluster, NormalActiveStorageScheme(pfs).run_operation("gaussian", "in", "out")
        )
        assert res.traffic.client_bytes < 0.05 * dem.nbytes  # control only


class TestDAS:
    def test_pre_distributed_input_runs_without_halo(self, drive):
        cluster, pfs, dem = build_world(scheme="DAS", kernel="gaussian")
        res = drive(
            cluster,
            DynamicActiveStorageScheme(pfs).run_operation(
                "gaussian", "in", "out", pipeline_length=2
            ),
        )
        assert res.offloaded
        assert res.extra["remote_halo_bytes"] == 0

    def test_cold_one_shot_falls_back_to_normal_io(self, drive):
        cluster, pfs, dem = build_world(scheme="TS", kernel="gaussian")  # round robin
        scheme = DynamicActiveStorageScheme(pfs)
        res = drive(cluster, scheme.run_operation("gaussian", "in", "out"))
        assert not res.offloaded
        assert res.scheme == "DAS"
        assert res.extra["fallback"] == "normal-io"
        assert res.decision.outcome == "serve-normal"
        ref = default_registry.get("gaussian").reference(dem)
        assert np.array_equal(scheme._fallback.client_output(dem.shape), ref)

    def test_cold_pipeline_redistributes(self, drive):
        cluster, pfs, dem = build_world(scheme="TS", kernel="gaussian")
        res = drive(
            cluster,
            DynamicActiveStorageScheme(pfs).run_operation(
                "gaussian", "in", "out", pipeline_length=4
            ),
        )
        assert res.offloaded
        assert res.extra["redistribution_bytes"] > 0

    def test_das_beats_both_on_predistributed_data(self, drive):
        times = {}
        for label in ("TS", "NAS", "DAS"):
            cluster, pfs, dem = build_world(
                rows=256, cols=256, scheme=label, kernel="gaussian"
            )
            res = drive(
                cluster, SCHEMES[label](pfs).run_operation("gaussian", "in", "out")
            )
            times[label] = res.elapsed
        assert times["DAS"] < times["TS"] < times["NAS"]
