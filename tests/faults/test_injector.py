"""Unit tests for the fault injector against a live cluster."""

import numpy as np
import pytest

from repro.config import PlatformSpec
from repro.errors import FaultError
from repro.faults import FaultInjector, FaultPlan
from repro.hw import Cluster
from repro.pfs import ParallelFileSystem
from repro.units import KiB
from repro.workloads import fractal_dem


@pytest.fixture
def world():
    cluster = Cluster.build(n_compute=2, n_storage=4)
    pfs = ParallelFileSystem(cluster, strip_size=4 * KiB)
    return cluster, pfs


def run_plan(cluster, plan, pfs=None, until=None, listeners=()):
    injector = FaultInjector(cluster, plan, pfs=pfs)
    for listener in listeners:
        injector.on_event(listener)
    injector.start()
    cluster.run(until=until)
    return injector


class TestCrashRecover:
    def test_crash_brings_node_down_then_recovery_restores_it(self, world):
        cluster, _ = world
        plan = FaultPlan.single_crash("s1", at=1.0, recover_at=3.0)
        injector = FaultInjector(cluster, plan)
        injector.start()
        cluster.run(until=cluster.env.timeout(2.0))
        assert not cluster.node("s1").is_up
        assert injector.still_down == ["s1"]
        cluster.run(until=cluster.env.timeout(2.0))
        assert cluster.node("s1").is_up
        assert injector.still_down == []

    def test_mttr_measures_the_outage(self, world):
        cluster, _ = world
        plan = FaultPlan.single_crash("s1", at=1.0, recover_at=3.5)
        injector = run_plan(cluster, plan)
        assert injector.mttr() == pytest.approx(2.5)
        assert injector.repairs == 1
        assert cluster.monitors.counter("faults.downtime_seconds").value == (
            pytest.approx(2.5)
        )

    def test_counters_booked(self, world):
        cluster, _ = world
        injector = run_plan(cluster, FaultPlan.single_crash("s2", 0.5, 1.0))
        assert cluster.monitors.counter("faults.crashes").value == 1
        assert cluster.monitors.counter("faults.recoveries").value == 1
        assert len(injector.applied) == 2

    def test_crash_clears_the_strip_cache(self):
        # Caching is off by default; give the servers a real budget so
        # the crash has something to wipe.
        spec = PlatformSpec(server_cache_bytes=1024 * KiB)
        cluster = Cluster.build(n_compute=2, n_storage=4, spec=spec)
        pfs = ParallelFileSystem(cluster, strip_size=4 * KiB)
        dem = fractal_dem(64, 64, rng=np.random.default_rng(5))
        pfs.client("c0").ingest("dem", dem, pfs.round_robin())

        def warm():
            yield pfs.client("c0").read("dem", 0, 4096)

        cluster.run(until=cluster.env.process(warm()))
        assert len(pfs.servers["s0"].cache) > 0
        run_plan(cluster, FaultPlan.single_crash("s0", at=0.1), pfs=pfs)
        assert len(pfs.servers["s0"].cache) == 0

    def test_double_crash_of_same_node_counts_once(self, world):
        cluster, _ = world
        plan = FaultPlan.from_events(
            [
                e
                for at in (1.0, 2.0)
                for e in FaultPlan.single_crash("s1", at=at).events
            ]
        )
        run_plan(cluster, plan)
        assert cluster.monitors.counter("faults.crashes").value == 1


class TestOtherKinds:
    def test_slow_and_restore_scale_the_disk(self, world):
        cluster, _ = world
        disk = cluster.node("s2").disk
        injector = FaultInjector(cluster, FaultPlan.parse("slow:s2@1x0.25"))
        injector.start()
        cluster.run(until=cluster.env.timeout(2.0))
        assert disk.health == pytest.approx(0.25)
        run_plan(cluster, FaultPlan.parse("restore:s2@0.1"))
        assert disk.health == pytest.approx(1.0)

    def test_cut_and_heal_toggle_the_link(self, world):
        cluster, _ = world
        run_plan(cluster, FaultPlan.parse("cut:c0-s3@0.5"))
        assert not cluster.fabric.link_up("c0", "s3")
        assert not cluster.fabric.link_up("s3", "c0")
        run_plan(cluster, FaultPlan.parse("heal:c0-s3@0.1"))
        assert cluster.fabric.link_up("c0", "s3")


class TestWiring:
    def test_listener_sees_each_applied_event(self, world):
        cluster, _ = world
        seen = []
        run_plan(
            cluster,
            FaultPlan.single_crash("s1", 1.0, 2.0),
            listeners=[lambda e: seen.append((e.kind, e.target))],
        )
        assert seen == [("crash", "s1"), ("recover", "s1")]

    def test_empty_plan_is_a_no_op(self, world):
        cluster, _ = world
        injector = FaultInjector(cluster, FaultPlan())
        assert injector.start() is None
        cluster.run()
        assert injector.applied == []

    def test_injector_runs_once(self, world):
        cluster, _ = world
        injector = FaultInjector(cluster, FaultPlan.single_crash("s1", 1.0))
        injector.start()
        with pytest.raises(FaultError):
            injector.start()

    def test_mttr_zero_without_repairs(self, world):
        cluster, _ = world
        injector = run_plan(cluster, FaultPlan.single_crash("s1", 1.0))
        assert injector.mttr() == 0.0
        assert injector.still_down == ["s1"]
