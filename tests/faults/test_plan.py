"""Unit tests for fault plans, chaos-spec parsing and recovery policy."""

import numpy as np
import pytest

from repro.errors import FaultSpecError
from repro.faults import KINDS, FaultEvent, FaultPlan, RecoveryPolicy


class TestFaultEvent:
    def test_negative_time_rejected(self):
        with pytest.raises(FaultSpecError):
            FaultEvent(at=-1.0, kind="crash", target="s0")

    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultSpecError):
            FaultEvent(at=0.0, kind="meteor", target="s0")

    def test_pairwise_kinds_need_a_peer(self):
        with pytest.raises(FaultSpecError):
            FaultEvent(at=0.0, kind="cut", target="c0")
        with pytest.raises(FaultSpecError):
            FaultEvent(at=0.0, kind="heal", target="c0")

    def test_single_target_kinds_reject_a_peer(self):
        with pytest.raises(FaultSpecError):
            FaultEvent(at=0.0, kind="crash", target="s0", peer="s1")

    def test_slow_factor_bounds(self):
        with pytest.raises(FaultSpecError):
            FaultEvent(at=0.0, kind="slow", target="s0", factor=0.0)
        with pytest.raises(FaultSpecError):
            FaultEvent(at=0.0, kind="slow", target="s0", factor=1.5)
        FaultEvent(at=0.0, kind="slow", target="s0", factor=1.0)  # boundary ok

    def test_spec_formats_each_shape(self):
        assert FaultEvent(at=2.0, kind="crash", target="s1").spec() == "crash:s1@2"
        assert (
            FaultEvent(at=1.0, kind="slow", target="s2", factor=0.25).spec()
            == "slow:s2@1x0.25"
        )
        assert (
            FaultEvent(at=1.5, kind="cut", target="c0", peer="s3").spec()
            == "cut:c0-s3@1.5"
        )


class TestParse:
    def test_round_trip(self):
        spec = "crash:s1@2;recover:s1@4;slow:s2@1x0.25;cut:c0-s3@1"
        plan = FaultPlan.parse(spec)
        assert FaultPlan.parse(plan.spec()) == plan

    def test_events_sorted_by_time_then_kind(self):
        plan = FaultPlan.parse("recover:s1@4;crash:s1@2;heal:a-b@2;crash:s0@2")
        assert [e.at for e in plan] == [2.0, 2.0, 2.0, 4.0]
        # Same-time ties break on KINDS order (crash before heal).
        assert [e.kind for e in plan] == ["crash", "crash", "heal", "recover"]
        assert [e.target for e in plan][:2] == ["s0", "s1"]

    def test_empty_spec_rejected(self):
        with pytest.raises(FaultSpecError):
            FaultPlan.parse("  ;  ; ")

    def test_malformed_clause_rejected(self):
        with pytest.raises(FaultSpecError):
            FaultPlan.parse("crash-s1-2.0")
        with pytest.raises(FaultSpecError):
            FaultPlan.parse("crash:s1@soon")
        with pytest.raises(FaultSpecError):
            FaultPlan.parse("slow:s1@1xfast")
        with pytest.raises(FaultSpecError):
            FaultPlan.parse("cut:c0@1")  # pairwise without a-b target

    def test_kind_is_case_insensitive(self):
        assert FaultPlan.parse("CRASH:s1@2").events[0].kind == "crash"

    def test_targets_collects_both_link_ends(self):
        plan = FaultPlan.parse("cut:c0-s3@1;crash:s1@2")
        assert plan.targets() == ("c0", "s1", "s3")


class TestBuilders:
    def test_single_crash_without_recovery(self):
        plan = FaultPlan.single_crash("s1", at=2.0)
        assert len(plan) == 1 and plan.events[0].kind == "crash"

    def test_single_crash_with_recovery(self):
        plan = FaultPlan.single_crash("s1", at=2.0, recover_at=4.0)
        assert [e.kind for e in plan] == ["crash", "recover"]

    def test_single_crash_recover_must_follow_crash(self):
        with pytest.raises(FaultSpecError):
            FaultPlan.single_crash("s1", at=2.0, recover_at=2.0)

    def test_random_is_deterministic_per_seed(self):
        servers = ["s0", "s1", "s2"]
        a = FaultPlan.random(np.random.default_rng(7), servers, 10.0, crashes=3)
        b = FaultPlan.random(np.random.default_rng(7), servers, 10.0, crashes=3)
        assert a == b
        c = FaultPlan.random(np.random.default_rng(8), servers, 10.0, crashes=3)
        assert a != c

    def test_random_crash_recover_pairs_inside_duration(self):
        plan = FaultPlan.random(np.random.default_rng(3), ["s0"], 10.0, crashes=2)
        assert len(plan) == 4
        for event in plan:
            assert 0.0 <= event.at <= 9.5  # recoveries clamp to 0.95 * duration

    def test_random_needs_servers_and_duration(self):
        rng = np.random.default_rng(0)
        with pytest.raises(FaultSpecError):
            FaultPlan.random(rng, [], 10.0)
        with pytest.raises(FaultSpecError):
            FaultPlan.random(rng, ["s0"], 0.0)

    def test_truthiness_and_len(self):
        assert not FaultPlan()
        assert len(FaultPlan()) == 0
        assert FaultPlan.single_crash("s0", at=1.0)

    def test_kinds_exported(self):
        assert set(KINDS) == {"crash", "recover", "slow", "restore", "cut", "heal"}


class TestRecoveryPolicy:
    def test_defaults_valid(self):
        policy = RecoveryPolicy()
        assert policy.rpc_timeout > 0 and policy.hedge_delay is None

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(rpc_timeout=0.0),
            dict(max_attempts=0),
            dict(backoff=-0.1),
            dict(backoff_factor=0.5),
            dict(hedge_delay=-1.0),
        ],
    )
    def test_invalid_fields_rejected(self, kwargs):
        with pytest.raises(FaultSpecError):
            RecoveryPolicy(**kwargs)

    def test_backoff_grows_exponentially(self):
        policy = RecoveryPolicy(backoff=0.1, backoff_factor=2.0)
        assert policy.delay(1) == pytest.approx(0.1)
        assert policy.delay(2) == pytest.approx(0.2)
        assert policy.delay(3) == pytest.approx(0.4)
