"""Setup shim.

The execution environment has no network access and no ``wheel``
package, so PEP 517/660 builds (which require fetching/using wheel)
fail.  Keeping a ``setup.py`` and omitting ``[build-system]`` from
pyproject.toml lets ``pip install -e .`` take the legacy
``setup.py develop`` path, which works fully offline.  All project
metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
