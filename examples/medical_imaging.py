#!/usr/bin/env python
"""Medical-imaging workflow: denoise a phantom with median + Gaussian.

The paper's Table I motivates the 2-D Gaussian filter with medical
image processing; Section I adds the median filter as another
8-neighbour operation.  This example runs the classic denoising chain —
median (impulse noise removal) then Gaussian (smoothing) — over a
salt-and-pepper-corrupted phantom, letting the DAS scheme decide stage
by stage, and reports how much of the noise the chain removed.

Run:  python examples/medical_imaging.py
"""

import numpy as np

from repro.hw import Cluster
from repro.kernels import default_registry
from repro.pfs import ParallelFileSystem
from repro.schemes import DynamicActiveStorageScheme
from repro.units import fmt_time
from repro.workloads import add_salt_pepper, phantom_image
from repro.harness.platform import ingest_for_scheme


def main() -> None:
    rng = np.random.default_rng(3)
    clean = phantom_image(768, 1024, noise_sigma=0.0, rng=rng)
    noisy = add_salt_pepper(clean, fraction=0.02, rng=rng)

    cluster = Cluster.build(n_compute=12, n_storage=12)
    pfs = ParallelFileSystem(cluster)
    # Data written through the DAS-aware stack is arranged for the
    # expected 8-neighbour operations at ingest.
    ingest_for_scheme(pfs, "DAS", "scan.raw", noisy, "median")

    scheme = DynamicActiveStorageScheme(pfs)

    def chain():
        first = yield scheme.run_operation(
            "median", "scan.raw", "scan.median", pipeline_length=2
        )
        second = yield scheme.run_operation(
            "gaussian", "scan.median", "scan.smooth", pipeline_length=1
        )
        return first, second

    first, second = cluster.run(until=cluster.env.process(chain()))
    for res in (first, second):
        verdict = res.decision.outcome if res.decision else "n/a"
        print(
            f"{res.operator:10s} {fmt_time(res.elapsed)}"
            f"  offloaded={res.offloaded}  decision={verdict}"
        )

    client = pfs.client("c0")
    denoised = client.collect("scan.smooth")

    # Functional verification against the sequential chain.
    med = default_registry.get("median")
    gau = default_registry.get("gaussian")
    assert np.array_equal(denoised, gau.reference(med.reference(noisy)))

    def rms(a, b) -> float:
        return float(np.sqrt(np.mean((a - b) ** 2)))

    before = rms(noisy, clean)
    after = rms(denoised, gau.reference(med.reference(clean)))
    print(f"impulse-noise RMS vs clean pipeline: {before:.4f} -> {after:.4f}")
    assert after < before, "denoising should reduce the error"
    print("verified: distributed chain == sequential chain; noise reduced")


if __name__ == "__main__":
    main()
