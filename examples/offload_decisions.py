#!/usr/bin/env python
"""Watching the DAS decision engine work (paper Fig. 3 / Fig. 6).

Four situations are presented to the engine:

1. an independent (no-dependence) scan — the ideal active-storage case;
2. the 8-neighbour flow-routing pattern on a fresh round-robin file
   with a long pipeline behind it — redistribution amortises and wins;
3. the same operation as a one-shot on a cold file — redistribution
   does not pay off and the request is *rejected* (served as normal
   I/O), the dynamic behaviour that gives DAS its name;
4. the paper Fig. 6 ±stride pattern where the stride satisfies the
   Eq. (17) divisibility criterion — dependent data is already local,
   so the engine offloads in place without touching the layout.

Run:  python examples/offload_decisions.py
"""

import numpy as np

from repro.core import (
    DecisionEngine,
    KernelFeatures,
    dependence_is_local,
)
from repro.hw import Cluster
from repro.kernels import DependencePattern
from repro.pfs import ParallelFileSystem
from repro.units import KiB
from repro.workloads import fractal_dem


def show(tag: str, decision) -> None:
    print(f"{tag}:")
    print(f"  outcome: {decision.outcome}")
    print(f"  {decision.reason}\n")


def main() -> None:
    cluster = Cluster.build(n_compute=4, n_storage=4)
    pfs = ParallelFileSystem(cluster, strip_size=64 * KiB)
    dem = fractal_dem(512, 1024, rng=np.random.default_rng(5))
    pfs.client("c0").ingest("dem", dem, pfs.round_robin())
    meta = pfs.metadata.lookup("dem")

    features = KernelFeatures.from_registry()
    features.add(DependencePattern.independent("scan"))
    # Fig. 6's two-element dependence, stride chosen so that
    # stride * E is a whole multiple of strip_size * D -> always local.
    spe = pfs.strip_size // meta.element_size
    aligned = spe * len(pfs.server_names)
    features.add(DependencePattern.stride("aligned-stride", aligned))
    engine = DecisionEngine(features=features)

    show("1. independent scan", engine.decide(meta, "scan"))
    show(
        "2. flow-routing, 4-stage pipeline",
        engine.decide(meta, "flow-routing", pipeline_length=4),
    )
    show(
        "3. flow-routing, one-shot on a cold file",
        engine.decide(meta, "flow-routing", pipeline_length=1),
    )
    show("4. Eq. (17)-aligned stride", engine.decide(meta, "aligned-stride"))

    print(
        "Eq. (17) check: stride",
        aligned,
        "is local under round-robin:",
        dependence_is_local(
            aligned, meta.element_size, pfs.strip_size, len(pfs.server_names)
        ),
    )

    # The locality table behind verdict 4: which strides are free, and
    # how conservative Eq. (17) is for sub-strip strides.
    from repro.core import locality_table
    from repro.metrics import format_table

    spe = pfs.strip_size // meta.element_size
    print("\nEq. (17) locality map (D=4 servers, 64 KiB strips):")
    rows = locality_table(
        strides=sorted({1, spe // 2, spe, 2 * spe, aligned}),
        element_size=meta.element_size,
        strip_size=pfs.strip_size,
        n_servers=len(pfs.server_names),
        n_elements=min(meta.n_elements, 64 * spe),
    )
    print(format_table(rows))


if __name__ == "__main__":
    main()
