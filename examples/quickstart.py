#!/usr/bin/env python
"""Quickstart: run one operation under Dynamic Active Storage.

Builds a 24-node simulated cluster (12 compute + 12 storage), ingests a
synthetic terrain raster into the parallel file system, and serves a
flow-routing request through the full DAS workflow: dependence lookup,
bandwidth prediction, offload decision, improved data distribution,
offloaded execution, and verification against the sequential reference.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import ActiveRequest, ActiveStorageClient
from repro.hw import Cluster
from repro.kernels import default_registry
from repro.pfs import ParallelFileSystem
from repro.units import fmt_bytes, fmt_time
from repro.workloads import fractal_dem


def main() -> None:
    # 1. A cluster with separate compute and storage partitions
    #    (the paper's deployment model) and a PVFS2-like file system.
    cluster = Cluster.build(n_compute=12, n_storage=12)
    pfs = ParallelFileSystem(cluster)  # 64 KiB strips, PVFS2's default

    # 2. A synthetic DEM, striped round-robin across the 12 servers.
    dem = fractal_dem(1024, 1536, rng=np.random.default_rng(42))
    client = pfs.client("c0")
    client.ingest("terrain.dem", dem, pfs.round_robin())
    print(f"ingested terrain.dem: {fmt_bytes(dem.nbytes)} on 12 servers")

    # 3. The Active Storage Client: ask it to run flow-routing.
    asc = ActiveStorageClient(pfs, home="c0")
    request = ActiveRequest(
        operator="flow-routing",
        file="terrain.dem",
        output="terrain.dirs",
        pipeline_length=2,  # flow-accumulation will follow
    )
    decision = asc.decide(request)
    print(f"decision: {decision.outcome}")
    print(f"  {decision.reason}")

    # 4. Submit and run the simulation to completion.
    done = asc.submit(request)
    result = cluster.run(until=done)
    print(f"offloaded in {fmt_time(result.elapsed)} simulated")
    print(f"  redistribution moved {fmt_bytes(result.redistribution_bytes)}")
    print(f"  remote halo traffic  {fmt_bytes(result.total_remote_halo_bytes)}")

    # 5. Verify: the distributed result equals the sequential reference.
    reference = default_registry.get("flow-routing").reference(dem)
    produced = client.collect("terrain.dirs")
    assert np.array_equal(produced, reference), "outputs diverged!"
    print("verified: distributed output == sequential reference")


if __name__ == "__main__":
    main()
