#!/usr/bin/env python
"""Author a scenario in Python, validate it, run it, evaluate its gates.

A scenario is one plain-dict document (see docs/SCENARIOS.md for the
schema): topology, tenant mix, load shape, optional chaos/autoscale
sections, and a `checks` list of declared pass/fail gates.  This
example builds one from scratch — a closed-loop dashboard tenant
sharing the cluster with an open-loop web tenant while a storage
server crashes and recovers — loads it through the validating loader
(so every mistake would be rejected with the offending spec path in
the message), runs it twice to demonstrate bit-identical replay, and
evaluates the declared checks.

To keep a scenario you like, dump it to JSON and run it through the
bench like the shipped library members:

    python -m repro.harness.scenario_bench --scenario my_scenario.json

Run:  python examples/custom_scenario.py
"""

import json

from repro.metrics import format_table
from repro.scenarios import evaluate_checks, load_scenario, run_scenario

DOCUMENT = {
    "name": "dashboard-vs-web",
    "description": (
        "A closed-loop dashboard population rides out a storage-server "
        "crash while an open-loop web tenant keeps offering load."
    ),
    "seed": 20120910,
    "topology": {
        "scheme": "DAS",
        # Neighbour-replicated placement: any single crash is survivable.
        "ingest": "replicated",
        "files": ["dem_a", "dem_b"],
    },
    "workload": {
        "duration": 4.0,
        "deadline": 1.5,
        "tenants": [
            {"name": "web", "rate": 4.0, "files": ["dem_a", "dem_b"]},
            {
                "name": "dash",
                "mode": "closed",
                "population": 2,
                "think_time": 0.2,
                "affinity": 0.8,
                "files": ["dem_b"],
            },
        ],
    },
    "chaos": {
        "spec": "crash:s1@1.0;recover:s1@2.5",
        "recovery": {"rpc_timeout": 0.25, "max_attempts": 2},
    },
    "checks": [
        {"check": "conservation"},
        {"check": "availability_min", "value": 0.95},
        {"check": "failover_reads_min", "value": 1},
        {"check": "p99_max", "value": 1.5, "tenant": "dash"},
    ],
}


def main() -> None:
    # The loader accepts dicts, file paths, or library names; a bad
    # document raises ScenarioError naming the offending path.
    spec = load_scenario(DOCUMENT)
    print(f"loaded '{spec.name}': {spec.description}\n")

    summary, digests = run_scenario(spec)
    replay_summary, replay_digests = run_scenario(spec)
    assert summary == replay_summary and digests == replay_digests, (
        "the document pins the seed, so two runs must be bit-identical"
    )

    rows = []
    for name, t in summary["tenants"].items():
        rows.append(
            {
                "tenant": name,
                "admitted": t["admitted"],
                "completed": t["completed"],
                "rejected": t["rejected"],
                "failed": t["failed"],
                "availability": round(t["availability"], 4),
                "p99_s": round(t["lat_p99"], 4) if t["lat_p99"] else None,
            }
        )
    print(format_table(rows))
    print(
        f"\nfailover reads: {summary['faults']['failover_reads']}"
        f" (the crash was real; replicas carried the reads)\n"
    )

    failed = 0
    for label, ok in evaluate_checks(spec.checks, summary, digests=digests):
        print(f"  [{'PASS' if ok else 'FAIL'}] {label}")
        failed += 0 if ok else 1
    assert failed == 0, "every declared gate should hold"

    print("\nthe same document, as JSON (scenario_bench runs it verbatim):")
    print(json.dumps(spec.to_dict(), indent=2)[:400] + " ...")


if __name__ == "__main__":
    main()
