#!/usr/bin/env python
"""The classic active-storage win: dataset scans with tiny results.

Dependence-free reductions (summary statistics, histograms, selective
counts) are the "desired applications' access pattern for active
storage" (paper Section I): every server folds its local strips and
ships back a few bytes.  This example contrasts the offloaded scan
against shipping the dataset to a client, and shows the decision
engine's verdict for a dependence-free operator.

Run:  python examples/statistics_offload.py
"""

import numpy as np

from repro.core import ActiveStorageClient, DecisionEngine, KernelFeatures
from repro.hw import Cluster
from repro.kernels import DependencePattern, default_reductions
from repro.metrics import TrafficMeter
from repro.pfs import ParallelFileSystem
from repro.units import fmt_bytes, fmt_time
from repro.workloads import fractal_dem


def main() -> None:
    cluster = Cluster.build(n_compute=12, n_storage=12)
    pfs = ParallelFileSystem(cluster)
    dem = fractal_dem(1024, 1536, rng=np.random.default_rng(77))
    pfs.client("c0").ingest("dem", dem, pfs.round_robin())

    # The engine's view of a dependence-free operator.
    features = KernelFeatures.from_registry()
    features.add(DependencePattern.independent("stats"))
    engine = DecisionEngine(features=features)
    verdict = engine.decide(pfs.metadata.lookup("dem"), "stats")
    print(f"decision for a dependence-free scan: {verdict.outcome}")
    print(f"  {verdict.reason}\n")

    # Offloaded scan.
    asc = ActiveStorageClient(pfs, home="c0")
    meter = TrafficMeter(cluster)
    res = cluster.run(until=asc.submit_reduction("stats", "dem"))
    offload_traffic = meter.delta()
    stats = res["value"]
    print("offloaded stats:")
    print(
        f"  min={stats['min']:.2f} max={stats['max']:.2f}"
        f" mean={stats['mean']:.2f} var={stats['var']:.2f} n={stats['n']}"
    )
    print(
        f"  time {fmt_time(res['elapsed'])};"
        f" wire traffic {fmt_bytes(offload_traffic.wire_bytes)}"
        f" for a {fmt_bytes(dem.nbytes)} dataset\n"
    )

    # Client-side scan of the same data for comparison.
    meter = TrafficMeter(cluster)

    def client_side():
        start = cluster.env.now
        raw = yield pfs.client("c0").read("dem", 0, dem.nbytes)
        yield cluster.node("c0").cpu.run_kernel("stats", dem.size)
        value = default_reductions.get("stats").finalize(
            default_reductions.get("stats").partial(raw.view(np.float64))
        )
        return cluster.env.now - start, value

    elapsed, value = cluster.run(until=cluster.env.process(client_side()))
    ship_traffic = meter.delta()
    print("client-side scan (single reader):")
    print(
        f"  time {fmt_time(elapsed)};"
        f" wire traffic {fmt_bytes(ship_traffic.wire_bytes)}"
    )
    print(f"\nspeedup from offloading: {elapsed / res['elapsed']:.1f}x")

    ref = default_reductions.get("stats").reference(dem)

    def close(a, b):
        return abs(a - b) <= 1e-9 * max(1.0, abs(b))

    assert all(close(stats[k], ref[k]) for k in ref)
    assert all(close(value[k], ref[k]) for k in ref)
    print("verified: offloaded == client-side == sequential reference")


if __name__ == "__main__":
    main()
