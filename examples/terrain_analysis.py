#!/usr/bin/env python
"""Terrain-analysis pipeline: flow-routing followed by flow-accumulation.

This is the paper's motivating scenario (Section I): "the
flow-accumulation operation always follows the flow-routing operation"
and both share the 8-neighbour dependence pattern.  The DAS pipeline
support amortises one layout change across both stages and keeps the
intermediate direction raster in the replicated distribution, so the
second stage finds all of its dependent data server-local.

The script contrasts the pipeline under DAS against serving the same
two operations with plain (NAS-style) active storage, and prints the
byte movement each one causes.

Run:  python examples/terrain_analysis.py
"""

import numpy as np

from repro.core import ActiveStorageClient, Pipeline, PipelineStage
from repro.hw import Cluster
from repro.kernels import accumulate_full, default_registry
from repro.metrics import TrafficMeter
from repro.pfs import ParallelFileSystem
from repro.schemes import NormalActiveStorageScheme
from repro.units import fmt_bytes, fmt_time
from repro.workloads import fractal_dem


def fresh_world(seed: int = 11):
    cluster = Cluster.build(n_compute=12, n_storage=12)
    pfs = ParallelFileSystem(cluster)
    dem = fractal_dem(1024, 1024, rng=np.random.default_rng(seed))
    pfs.client("c0").ingest("dem", dem, pfs.round_robin())
    return cluster, pfs, dem


def das_pipeline():
    cluster, pfs, dem = fresh_world()
    asc = ActiveStorageClient(pfs, home="c0")
    pipeline = Pipeline(
        [
            PipelineStage("flow-routing", output="dirs"),
            PipelineStage("flow-accumulation", output="acc"),
            PipelineStage("gaussian", output="acc.smooth"),
        ]
    )
    meter = TrafficMeter(cluster)
    results = cluster.run(until=pipeline.submit(asc, "dem"))
    traffic = meter.delta()
    total = sum(r.elapsed for r in results)
    print("DAS pipeline (one redistribution amortised over 3 stages):")
    for r in results:
        print(
            f"  {r.request.operator:18s} {fmt_time(r.elapsed)}"
            f"  (decision: {r.decision.outcome})"
        )
    print(f"  total {fmt_time(total)};"
          f" server<->server {fmt_bytes(traffic.server_bytes)}")
    print(f"  steady-state per-op time: {fmt_time(results[-1].elapsed)}")
    return cluster, pfs, dem, total, traffic


def nas_pipeline():
    cluster, pfs, dem = fresh_world()
    scheme = NormalActiveStorageScheme(pfs)
    meter = TrafficMeter(cluster)

    def both():
        first = yield scheme.run_operation("flow-routing", "dem", "dirs")
        second = yield scheme.run_operation("flow-accumulation", "dirs", "acc")
        return first.elapsed + second.elapsed

    total = cluster.run(until=cluster.env.process(both()))
    traffic = meter.delta()
    print("NAS pipeline:")
    print(f"  total {fmt_time(total)};"
          f" server<->server {fmt_bytes(traffic.server_bytes)}")
    return total, traffic


def main() -> None:
    cluster, pfs, dem, das_total, das_traffic = das_pipeline()
    nas_total, nas_traffic = nas_pipeline()
    print(f"\nDAS speedup over NAS: {nas_total / das_total:.2f}x")
    print(
        "dependent-data traffic avoided:"
        f" {fmt_bytes(nas_traffic.server_bytes - das_traffic.server_bytes)}"
    )

    # Functional check on the DAS world: stage outputs match the
    # sequential references, and the one-pass accumulation's inflow
    # counts are consistent with a full basin accumulation's structure.
    client = pfs.client("c0")
    dirs = client.collect("dirs")
    acc = client.collect("acc")
    fr = default_registry.get("flow-routing")
    fa = default_registry.get("flow-accumulation")
    assert np.array_equal(dirs, fr.reference(dem))
    assert np.array_equal(acc, fa.reference(dirs))
    basin = accumulate_full(dirs)
    # Everywhere the local pass says "no inflow", the basin total is 1.
    assert np.all(basin[acc == 1.0] == 1.0)
    print("verified: pipeline outputs match sequential references")


if __name__ == "__main__":
    main()
