#!/usr/bin/env python
"""Serving SLOs: three tenants, an offered-load ramp, and the deadline.

The paper evaluates one operation at a time; this example runs the
serving layer on top of the same stack: three tenants offer open-loop
Poisson request streams against shared files, an admission controller
sheds what its bounded queues cannot hold, a deficit-weighted-round-
robin scheduler keeps the tenants' byte shares proportional to their
weights, and every request is dispatched offload-vs-normal by the
decision engine (memoised by the decision cache) with the current
queue state folded in.

The run ramps offered load over the DAS scheme and prints, per load,
the per-tenant latency tails against the SLO deadline — then shows the
same top load under NAS (offload-always), where the halo traffic of
round-robin data drives the tail toward the deadline roughly twice as
fast (run `python -m repro.harness serve-bench` for the full ramp, up
to the load where NAS breaks the SLO and DAS still holds it).

Run:  python examples/serving_slo.py
"""

from repro.harness.serve_bench import DEADLINE, serve_cell
from repro.metrics import format_table

LOADS = (0.5, 1.0, 2.0)
DURATION = 4.0


def tenant_rows(summary):
    rows = []
    for name, t in summary["tenants"].items():
        if name == "_all":
            continue
        rows.append(
            {
                "tenant": name,
                "admitted": t["admitted"],
                "completed": t["completed"],
                "late": t["late"],
                "expired": t["expired"],
                "rejected": t["rejected"],
                "p50_s": round(t["lat_p50"], 4),
                "p99_s": round(t["lat_p99"], 4),
                "SLO": "ok" if t["lat_p99"] <= DEADLINE and t["expired"] == 0 else "VIOLATED",
            }
        )
    return rows


def main() -> None:
    print(f"SLO: p99 arrival-to-finish latency <= {DEADLINE:g}s, nothing expired\n")

    for load in LOADS:
        summary = serve_cell("DAS", load, duration=DURATION)
        cache = summary["decision_cache"]
        print(
            f"== DAS, offered load x{load:g} "
            f"({summary['generated']} requests in {DURATION:g}s; "
            f"decision cache {cache['hits']} hits / {cache['misses']} misses,"
            f" {int(summary['paths']['offload'])} offloaded,"
            f" {int(summary['paths']['normal'])} served normal) =="
        )
        print(format_table(tenant_rows(summary)))
        print()

    top = LOADS[-1]
    summary = serve_cell("NAS", top, duration=DURATION)
    print(
        f"== NAS (offload-always), offered load x{top:g} — same load,"
        f" no dynamic decision =="
    )
    print(format_table(tenant_rows(summary)))

    das = serve_cell("DAS", top, duration=DURATION)["tenants"]["_all"]
    nas = summary["tenants"]["_all"]
    assert das["lat_p99"] < nas["lat_p99"], "DAS should hold a tighter tail"
    print(
        f"\nDAS p99 {das['lat_p99']:.4f}s vs NAS p99 {nas['lat_p99']:.4f}s"
        f" at the same offered load — the dynamic decision is what keeps"
        f" the tail inside the SLO."
    )


if __name__ == "__main__":
    main()
