#!/usr/bin/env python
"""Head-to-head scheme comparison with per-node utilisation Gantt.

Runs the same 2-D Gaussian filter under TS, NAS and DAS on identical
clusters, prints the paper-style comparison rows, and renders a text
Gantt chart of one NAS storage server vs one DAS storage server — the
visual version of the paper's explanation for NAS's slowness (servers
interleaving their own disk I/O, peers' halo requests and compute).

Run:  python examples/scheme_comparison.py
"""

import numpy as np

from repro.config import SimConfig
from repro.harness.platform import ingest_for_scheme
from repro.hw import Cluster
from repro.metrics import Timeline, format_table, render_gantt
from repro.pfs import ParallelFileSystem
from repro.schemes import SCHEMES
from repro.units import KiB, fmt_time
from repro.workloads import fractal_dem


def run(label: str):
    cluster = Cluster.build(
        n_compute=8, n_storage=8, sim_config=SimConfig(trace=True)
    )
    pfs = ParallelFileSystem(cluster, strip_size=64 * KiB)
    dem = fractal_dem(1024, 1024, rng=np.random.default_rng(99))
    ingest_for_scheme(pfs, label, "img", dem, "gaussian")
    scheme = SCHEMES[label](pfs)
    result = cluster.run(until=scheme.run_operation("gaussian", "img", "out"))
    return cluster, result


def main() -> None:
    rows = []
    timelines = {}
    for label in ("TS", "NAS", "DAS"):
        cluster, result = run(label)
        timelines[label] = Timeline.from_monitors(cluster.monitors)
        rows.append(
            {
                "scheme": label,
                "time": fmt_time(result.elapsed),
                "client_MB": result.traffic.client_bytes / 1e6,
                "server_MB": result.traffic.server_bytes / 1e6,
                "offloaded": result.offloaded,
            }
        )
    print(format_table(rows))
    print()

    for label in ("NAS", "DAS"):
        tl = timelines[label]
        print(f"{label} storage node s0 (disk row shows halo service + own I/O):")
        art = render_gantt(tl, width=64)
        for line in art.splitlines():
            if line.strip().startswith("s0"):
                print(line)
        print(
            f"  s0 disk busy {fmt_time(tl.busy_seconds('s0', 'disk'))},"
            f" cpu busy {fmt_time(tl.busy_seconds('s0', 'cpu'))}"
        )
        print()


if __name__ == "__main__":
    main()
