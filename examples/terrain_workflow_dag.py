#!/usr/bin/env python
"""A branching terrain-analysis workflow as an operation graph.

One survey DEM feeds four derivative products::

    dem ──> dirs ──> acc ──> acc.smooth
       └──> slope

Independent branches overlap on the storage servers, the decision
engine amortises one redistribution over everything downstream, and
every product is verified against the sequential reference.  Results
are also exported as JSON for downstream plotting.

Run:  python examples/terrain_workflow_dag.py
"""

import json
import tempfile
from pathlib import Path

import numpy as np

from repro.core import ActiveStorageClient, OperationGraph
from repro.harness.platform import ingest_for_scheme
from repro.hw import Cluster
from repro.kernels import default_registry
from repro.pfs import ParallelFileSystem
from repro.units import fmt_time
from repro.workloads import fractal_dem


def main() -> None:
    cluster = Cluster.build(n_compute=12, n_storage=12)
    pfs = ParallelFileSystem(cluster)
    dem = fractal_dem(1024, 1024, rng=np.random.default_rng(123))
    ingest_for_scheme(pfs, "DAS", "dem", dem, "flow-routing")

    graph = (
        OperationGraph()
        .add("dirs", "flow-routing", "dem")
        .add("acc", "flow-accumulation", "dirs")
        .add("acc.smooth", "gaussian", "acc")
        .add("slope", "slope", "dem")
    )
    asc = ActiveStorageClient(pfs, home="c0")
    results = cluster.run(until=graph.submit(asc))

    print("workflow results (branches overlapped):")
    for name, res in sorted(results.items()):
        print(
            f"  {name:10s} {fmt_time(res.elapsed):>10s}"
            f"  decision={res.decision.outcome}"
        )
    serial = sum(r.elapsed for r in results.values())
    print(f"  makespan {fmt_time(cluster.env.now)} vs serial {fmt_time(serial)}")

    # Verify every product against the sequential pipeline.
    client = pfs.client("c0")
    fr = default_registry.get("flow-routing")
    fa = default_registry.get("flow-accumulation")
    ga = default_registry.get("gaussian")
    sl = default_registry.get("slope")
    dirs = client.collect("dirs")
    assert np.array_equal(dirs, fr.reference(dem))
    acc = client.collect("acc")
    assert np.array_equal(acc, fa.reference(dirs))
    assert np.array_equal(client.collect("acc.smooth"), ga.reference(acc))
    assert np.array_equal(client.collect("slope"), sl.reference(dem))
    print("verified: all four products match the sequential references")

    # Export a small provenance record.
    record = {
        name: {
            "operator": res.request.operator,
            "elapsed_s": res.elapsed,
            "decision": res.decision.outcome,
        }
        for name, res in results.items()
    }
    out = Path(tempfile.gettempdir()) / "terrain_workflow.json"
    out.write_text(json.dumps(record, indent=2))
    print(f"provenance written to {out}")


if __name__ == "__main__":
    main()
