#!/usr/bin/env python
"""Degraded reads through DAS replicas (failure injection).

The DAS improved distribution replicates each group's boundary strips
onto the neighbouring servers to localise dependence — and those copies
double as limited fault tolerance.  This example ingests a raster with
full boundary replication (r=2, so *every* strip is a group boundary),
kills a storage server, and shows that reads transparently fail over to
the replicas, while the same failure under round-robin striping loses
data.

Run:  python examples/failure_recovery.py
"""

import numpy as np

from repro.errors import NodeDownError
from repro.hw import Cluster
from repro.pfs import ParallelFileSystem
from repro.units import KiB, fmt_time
from repro.workloads import fractal_dem


def main() -> None:
    cluster = Cluster.build(n_compute=2, n_storage=6)
    pfs = ParallelFileSystem(cluster, strip_size=16 * KiB)
    dem = fractal_dem(512, 512, rng=np.random.default_rng(55))
    client = pfs.client("c0")

    # r=2 with one halo strip: head and tail of every group are
    # replicated, i.e. every strip has a second copy on a neighbour.
    client.ingest("safe", dem, pfs.replicated_grouped(group=2, halo_strips=1))
    client.ingest("fragile", dem, pfs.round_robin())

    victim = "s2"
    print(f"failing storage node {victim} ...")
    cluster.node(victim).fail()

    def read_whole(name):
        return (yield client.read(name, 0, dem.nbytes))

    # Replicated file: the read redirects to replicas and still matches.
    got = cluster.run(until=cluster.env.process(read_whole("safe")))
    ok = np.array_equal(got.view(np.float64).reshape(dem.shape), dem)
    print(f"replicated file read under failure: intact={ok},"
          f" t={fmt_time(cluster.env.now)}")

    # Round-robin file: the strips on the dead node are simply gone.
    def read_fragile():
        try:
            yield client.read("fragile", 0, dem.nbytes)
            return "read succeeded (unexpected)"
        except NodeDownError as exc:
            return f"read failed as expected: {exc}"

    print(cluster.run(until=cluster.env.process(read_fragile())))

    # Recovery restores the primary path.
    cluster.node(victim).recover()
    got = cluster.run(until=cluster.env.process(read_whole("fragile")))
    ok = np.array_equal(got.view(np.float64).reshape(dem.shape), dem)
    print(f"after recovery, round-robin file readable again: intact={ok}")

    overhead = pfs.metadata.lookup("safe").layout.capacity_overhead()
    print(f"replication capacity overhead paid for this protection: {overhead:.0%}")


if __name__ == "__main__":
    main()
