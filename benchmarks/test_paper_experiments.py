"""Benchmarks regenerating every table and figure of the paper.

Each test reruns the corresponding experiment grid in the simulator and
asserts the paper's qualitative claims (the experiment's shape checks).
Run ``python -m repro.harness <id>`` for the full-scale version with
printed rows.
"""

from repro.harness.experiments import fig10, fig11, fig12, fig13, fig14, table1


def test_table1_kernel_descriptions(bench_experiment):
    """Table I: the three data-analysis kernels and their records."""
    report = bench_experiment(table1)
    assert {row["name"] for row in report.rows} == {
        "flow-routing",
        "flow-accumulation",
        "gaussian",
    }


def test_fig10_dependence_impact(bench_experiment):
    """Fig. 10: NAS vs TS across data sizes — dependence hurts NAS."""
    report = bench_experiment(fig10)
    nas_rows = [r for r in report.rows if r["scheme"] == "NAS"]
    ts_rows = [r for r in report.rows if r["scheme"] == "TS"]
    assert len(nas_rows) == len(ts_rows) == 12  # 3 kernels x 4 sizes


def test_fig11_scheme_comparison(bench_experiment):
    """Fig. 11: NAS / DAS / TS at 24 GB — DAS wins by the paper margins."""
    report = bench_experiment(fig11)
    by_scheme = {}
    for row in report.rows:
        by_scheme.setdefault(row["scheme"], []).append(row["time_s"])
    das = sum(by_scheme["DAS"]) / len(by_scheme["DAS"])
    ts = sum(by_scheme["TS"]) / len(by_scheme["TS"])
    nas = sum(by_scheme["NAS"]) / len(by_scheme["NAS"])
    assert das < 0.75 * ts < ts < nas


def test_fig12_data_scaling(bench_experiment):
    """Fig. 12: time vs data size for all three schemes."""
    report = bench_experiment(fig12)
    das60 = [
        r["time_s"]
        for r in report.rows
        if r["scheme"] == "DAS" and r["data_gb"] == 60
    ]
    nas60 = [
        r["time_s"]
        for r in report.rows
        if r["scheme"] == "NAS" and r["data_gb"] == 60
    ]
    assert max(das60) < min(nas60)


def test_fig13_node_scaling(bench_experiment):
    """Fig. 13: time vs node count for DAS and TS at 60 GB."""
    report = bench_experiment(fig13)
    for scheme in ("DAS", "TS"):
        for kernel in ("flow-routing", "gaussian"):
            times = [
                (r["nodes"], r["time_s"])
                for r in report.rows
                if r["scheme"] == scheme and r["operator"] == kernel
            ]
            times.sort()
            assert times[-1][1] <= times[0][1]  # more nodes, not slower


def test_fig14_normalized_bandwidth(bench_experiment):
    """Fig. 14: DAS sustains ~2x the TS bandwidth; NAS falls below TS."""
    report = bench_experiment(fig14)
    for row in report.rows:
        if row["scheme"] == "TS":
            assert row["normalized_vs_TS"] == 1.0
        elif row["scheme"] == "DAS":
            assert row["normalized_vs_TS"] > 1.3
        else:
            assert row["normalized_vs_TS"] < 1.0


def test_ext_oversubscribed_fabric(bench_experiment):
    """Extension: bisection oversubscription sweep — TS tracks the
    throttled pipe, pre-distributed DAS does not."""
    from repro.harness.experiments import ext_oversub

    report = bench_experiment(ext_oversub)
    das_rows = [r for r in report.rows if r["scheme"] == "DAS"]
    spread = max(r["time_s"] for r in das_rows) / min(r["time_s"] for r in das_rows)
    assert spread <= 1.1
