"""Ablation benchmarks for the design choices DESIGN.md calls out.

These go beyond the paper's figures: each one isolates one DAS design
decision and measures what it buys.
"""

import numpy as np
import pytest

from repro.core import (
    ActiveRequest,
    ActiveStorageClient,
    BandwidthPredictor,
    KernelFeatures,
)
from repro.hw import Cluster
from repro.kernels import default_registry
from repro.metrics import TrafficMeter
from repro.pfs import ParallelFileSystem
from repro.schemes import DynamicActiveStorageScheme, NormalActiveStorageScheme
from repro.units import KiB
from repro.workloads import fractal_dem

ROWS, COLS = 512, 768  # 3 MiB raster
N_NODES = 8


def build_world(strip=16 * KiB, layout_fn=None):
    cluster = Cluster.build(n_compute=N_NODES, n_storage=N_NODES)
    pfs = ParallelFileSystem(cluster, strip_size=strip)
    dem = fractal_dem(ROWS, COLS, rng=np.random.default_rng(17))
    layout = layout_fn(pfs) if layout_fn else pfs.round_robin()
    pfs.client("c0").ingest("dem", dem, layout)
    return cluster, pfs, dem


def run_offload(cluster, pfs, granularity="strip", replicate_output=True):
    asc = ActiveStorageClient(pfs, home="c0", halo_granularity=granularity)
    req = ActiveRequest(
        "gaussian", "dem", "out", replicate_output=replicate_output
    )
    meter = TrafficMeter(cluster)
    result = cluster.run(until=asc.execute_offload(req, asc.decide(req)))
    return result, meter.delta()


def test_ablation_group_factor(benchmark):
    """Replication factor r: capacity overhead vs locality (Sec. III-D).

    Every r >= 2 fully localises the one-strip halo; larger r trades
    capacity overhead (2/r) against nothing else — exactly the paper's
    claim that overhead 'is reduced to 2/r'.
    """

    def sweep():
        rows = []
        for r in (2, 4, 8, 16):
            cluster, pfs, dem = build_world(
                layout_fn=lambda p, r=r: p.replicated_grouped(r, halo_strips=1)
            )
            result, traffic = run_offload(cluster, pfs)
            rows.append(
                {
                    "r": r,
                    "time": result.elapsed,
                    "halo_remote": result.total_remote_halo_bytes,
                    "overhead": 2.0 / r,
                    "stored": pfs.stored_bytes(),
                }
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    assert all(row["halo_remote"] == 0 for row in rows)
    stored = [row["stored"] for row in rows]
    assert stored == sorted(stored, reverse=True)  # larger r -> less storage


def test_ablation_strip_size_flips_decisions(benchmark):
    """Strip size vs dependence reach: small strips make the halo span
    whole strips (worse for NAS, more replication for DAS); the
    decision engine must keep accepting pre-distributed offloads at
    every strip size."""

    def sweep():
        rows = []
        for strip_kib in (8, 16, 32, 64):
            cluster, pfs, dem = build_world(strip=strip_kib * KiB)
            engine_features = KernelFeatures.from_registry()
            meta = pfs.metadata.lookup("dem")
            predictor = BandwidthPredictor("strip")
            halo = predictor.halo_bytes(
                meta.layout, meta, engine_features.get("gaussian")
            )
            rows.append({"strip_kib": strip_kib, "halo_bytes": halo})
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    # Round-robin halo traffic is ~2 strips per strip-run regardless of
    # strip size => roughly constant total ~2N; sanity-band it.
    n_bytes = ROWS * COLS * 8
    for row in rows:
        assert 1.2 * n_bytes < row["halo_bytes"] <= 2.2 * n_bytes


def test_ablation_halo_granularity(benchmark):
    """NAS transfer granularity: whole strips (the paper's prototype)
    vs exact dependence reach (idealised)."""

    def compare():
        out = {}
        for granularity in ("strip", "exact"):
            cluster, pfs, dem = build_world()
            result, traffic = run_offload(
                cluster, pfs, granularity=granularity, replicate_output=False
            )
            out[granularity] = {
                "time": result.elapsed,
                "halo": result.total_remote_halo_bytes,
            }
        return out

    out = benchmark.pedantic(compare, rounds=1, iterations=1)
    assert out["exact"]["halo"] < out["strip"]["halo"]
    assert out["exact"]["time"] <= out["strip"]["time"] * 1.05


def test_ablation_predictor_accuracy(benchmark):
    """Predicted halo bytes (strip model) vs bytes actually moved."""

    def measure():
        cluster, pfs, dem = build_world()
        meta = pfs.metadata.lookup("dem")
        features = KernelFeatures.from_registry()
        predicted = BandwidthPredictor("strip").halo_bytes(
            meta.layout, meta, features.get("gaussian")
        )
        result, traffic = run_offload(cluster, pfs, replicate_output=False)
        return predicted, result.total_remote_halo_bytes

    predicted, actual = benchmark.pedantic(measure, rounds=1, iterations=1)
    assert actual == predicted  # the model matches the execution exactly


def test_ablation_dynamic_decision_protects(benchmark):
    """DAS's dynamic rejection vs NAS's unconditional offload on a cold
    round-robin one-shot: falling back to normal I/O must beat
    offloading into the dependence storm."""

    def compare():
        cluster, pfs, dem = build_world()
        das = cluster.run(
            until=DynamicActiveStorageScheme(pfs).run_operation(
                "gaussian", "dem", "das_out"
            )
        )
        cluster2, pfs2, _ = build_world()
        nas = cluster2.run(
            until=NormalActiveStorageScheme(pfs2).run_operation(
                "gaussian", "dem", "nas_out"
            )
        )
        return das, nas

    das, nas = benchmark.pedantic(compare, rounds=1, iterations=1)
    assert not das.offloaded  # rejected: served as normal I/O
    assert nas.offloaded
    assert das.elapsed < nas.elapsed


def test_ablation_pipeline_amortisation(benchmark):
    """Redistribution amortised over successive operations: total time
    for k stages under DAS crosses below NAS as k grows."""

    def run_pipeline(scheme_cls, k):
        cluster, pfs, dem = build_world()
        scheme = scheme_cls(pfs)

        def stages():
            total = 0.0
            current = "dem"
            for i in range(k):
                kwargs = (
                    {"pipeline_length": k - i}
                    if scheme_cls is DynamicActiveStorageScheme
                    else {}
                )
                res = yield scheme.run_operation(
                    "gaussian", current, f"stage{i}", **kwargs
                )
                total += res.elapsed
                current = f"stage{i}"
            return total

        return cluster.run(until=cluster.env.process(stages()))

    def compare():
        return {
            k: (
                run_pipeline(DynamicActiveStorageScheme, k),
                run_pipeline(NormalActiveStorageScheme, k),
            )
            for k in (1, 3, 5)
        }

    results = benchmark.pedantic(compare, rounds=1, iterations=1)
    das1, nas1 = results[1]
    das5, nas5 = results[5]
    # One-shot: DAS (fallback) at worst comparable to NAS.
    assert das1 <= nas1 * 1.05
    # Long pipeline: DAS clearly ahead.
    assert das5 < 0.75 * nas5


def test_ablation_server_cache(benchmark):
    """Server page cache (extension): a pipeline's later stages read
    strips the earlier stages just wrote — with a cache they skip the
    disk, without one they pay it again."""
    from repro.config import PlatformSpec
    from repro.core import ActiveStorageClient, Pipeline, PipelineStage
    from repro.units import MiB

    def run_pipeline(cache_bytes):
        spec = PlatformSpec(server_cache_bytes=cache_bytes)
        cluster = Cluster.build(n_compute=N_NODES, n_storage=N_NODES, spec=spec)
        pfs = ParallelFileSystem(cluster, strip_size=16 * KiB)
        dem = fractal_dem(ROWS, COLS, rng=np.random.default_rng(18))
        # DAS-arranged ingest so every stage is local.
        layout = pfs.replicated_grouped(8, halo_strips=1)
        pfs.client("c0").ingest("dem", dem, layout)
        asc = ActiveStorageClient(pfs, home="c0")
        pipe = Pipeline(
            [
                PipelineStage("gaussian", output="g1"),
                PipelineStage("gaussian", output="g2"),
                PipelineStage("gaussian", output="g3"),
            ]
        )
        results = cluster.run(until=pipe.submit(asc, "dem"))
        hits = cluster.monitors.counter_total("pfs.cache_hit_bytes.")
        return sum(r.elapsed for r in results), hits

    def compare():
        cold_time, cold_hits = run_pipeline(0)
        warm_time, warm_hits = run_pipeline(8 * MiB)
        return {"cold": (cold_time, cold_hits), "warm": (warm_time, warm_hits)}

    out = benchmark.pedantic(compare, rounds=1, iterations=1)
    cold_time, cold_hits = out["cold"]
    warm_time, warm_hits = out["warm"]
    assert cold_hits == 0
    assert warm_hits > 0
    assert warm_time < cold_time
