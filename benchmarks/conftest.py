"""Benchmark configuration.

Every benchmark regenerates one of the paper's tables/figures (or an
ablation) inside the simulator and asserts the paper's qualitative
shape claims on the measured rows.  Simulations are deterministic, so
each benchmark runs one round (``pedantic``): the reported wall time is
the cost of regenerating that experiment.

Scale: benchmarks map one paper GB to :data:`BENCH_SCALE` simulated
bytes.  Scheme *ratios* are scale-invariant (all simulated costs are
linear in bytes); see workloads.datasets for the argument.
"""

import pytest

from repro.units import KiB

#: Simulated bytes standing in for one paper GB in benchmark runs.
BENCH_SCALE = 256 * KiB


@pytest.fixture
def bench_experiment(benchmark):
    """Run an experiment once under pytest-benchmark and return its report."""

    def run(fn, **kwargs):
        kwargs.setdefault("scale", BENCH_SCALE)
        report = benchmark.pedantic(lambda: fn(**kwargs), rounds=1, iterations=1)
        assert report.all_checks_pass, "\n" + report.to_text()
        return report

    return run
