"""The declarative scenario schema.

A :class:`ScenarioSpec` is the validated, immutable form of one
scenario document — a plain JSON-able dict (stdlib only, no YAML)
composing everything one serving experiment needs:

* **topology** — cluster size, scheme, ingest placement, files;
* **workload** — duration/deadline/load, an optional piecewise load
  ramp, and the tenant mix (open-loop Poisson and/or closed-loop
  think-time clients, per tenant);
* **service** — scheduler and executor knobs (queues, concurrency,
  batching, decision-cache TTL, retry);
* **chaos** — a fault schedule in the chaos-spec grammar plus the
  recovery policy to arm;
* **autoscale** — the SLO-driven partition controller's policy;
* **checks** — declared pass/fail assertions evaluated against the
  run's summary (see :mod:`repro.scenarios.checks`).

The schema's vocabulary lives here as ``*_KEYS`` constants; the loader
uses them for unknown-key errors and ``scripts/check_docs.py`` uses
them to hold docs/SCENARIOS.md to account.  :meth:`ScenarioSpec.to_dict`
emits the canonical dict form: loading it back yields an equal spec
(round-trip identity, pinned by tests).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from ..faults import RecoveryPolicy
from ..serve import AutoscalePolicy, RetryPolicy, TenantSpec
from ..units import KiB

#: Allowed keys per schema section (the loader rejects anything else).
TOP_KEYS = (
    "name",
    "description",
    "seed",
    "topology",
    "workload",
    "service",
    "chaos",
    "autoscale",
    "checks",
)
TOPOLOGY_KEYS = (
    "nodes",
    "scheme",
    "ingest",
    "partition_servers",
    "files",
    "raster",
    "operator",
)
WORKLOAD_KEYS = ("duration", "deadline", "load", "ramp", "tenants")
TENANT_KEYS = (
    "name",
    "rate",
    "weight",
    "kernels",
    "files",
    "pipeline_length",
    "mode",
    "population",
    "think_time",
    "affinity",
)
SERVICE_KEYS = (
    "queue_capacity",
    "concurrency",
    "quantum",
    "batch_max",
    "load_bias",
    "decision_ttl",
    "retry",
)
RETRY_KEYS = ("max_attempts", "backoff", "backoff_factor")
CHAOS_KEYS = ("spec", "recovery")
RECOVERY_KEYS = (
    "rpc_timeout",
    "max_attempts",
    "backoff",
    "backoff_factor",
    "hedge_delay",
)
AUTOSCALE_KEYS = (
    "min_servers",
    "max_servers",
    "interval",
    "p99_high",
    "p99_low",
    "queue_high",
    "breach_ticks",
    "calm_ticks",
    "cooldown",
    "step",
    "min_samples",
)
CHECK_KEYS = ("check", "value", "tenant", "alert")

#: Section name -> its key vocabulary (what check_docs introspects).
SCHEMA_SECTIONS = {
    "top": TOP_KEYS,
    "topology": TOPOLOGY_KEYS,
    "workload": WORKLOAD_KEYS,
    "tenant": TENANT_KEYS,
    "service": SERVICE_KEYS,
    "retry": RETRY_KEYS,
    "chaos": CHAOS_KEYS,
    "recovery": RECOVERY_KEYS,
    "autoscale": AUTOSCALE_KEYS,
    "check": CHECK_KEYS,
}


@dataclass(frozen=True)
class TopologySpec:
    """Cluster shape and data placement of one scenario."""

    nodes: int = 8
    scheme: str = "DAS"
    #: Ingest placement policy: "scheme" | "replicated" | "partition".
    ingest: str = "scheme"
    #: Storage-server count of the initial partition ("partition" only).
    partition_servers: Optional[int] = None
    files: Tuple[str, ...] = ("dem_a", "dem_b")
    #: Raster shape generated per file.
    raster: Tuple[int, int] = (128, 192)
    #: Operator the DAS layout optimizer plans placement for.
    operator: str = "gaussian"


@dataclass(frozen=True)
class CheckSpec:
    """One declared pass/fail assertion on the run's summary."""

    check: str
    value: Optional[float] = None
    #: Tenant row the check reads; None means the aggregate "_all" row.
    tenant: Optional[str] = None
    #: Alert-rule name the check gates on (``alert_*`` checks only).
    #: Declaring one auto-enables the telemetry sampler for the run.
    alert: Optional[str] = None


@dataclass(frozen=True)
class ScenarioSpec:
    """One fully validated scenario (construct via the loader)."""

    name: str
    description: str
    topology: TopologySpec
    tenants: Tuple[TenantSpec, ...]
    duration: float
    deadline: float
    load: float = 1.0
    ramp: Optional[Tuple[Tuple[float, float], ...]] = None
    seed: int = 20120910
    queue_capacity: int = 12
    concurrency: int = 8
    quantum: int = 256 * KiB
    batch_max: int = 1
    load_bias: float = 0.75
    decision_ttl: Optional[float] = None
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    #: Fault schedule in chaos-spec grammar ("crash:s1@1.0;...").
    chaos: Optional[str] = None
    recovery: Optional[RecoveryPolicy] = None
    autoscale: Optional[AutoscalePolicy] = None
    checks: Tuple[CheckSpec, ...] = ()

    def to_dict(self) -> dict:
        """The canonical (JSON-able) dict form; loads back to an equal
        spec.  Optional sections appear only when configured."""
        out: dict = {
            "name": self.name,
            "description": self.description,
            "seed": self.seed,
            "topology": {
                "nodes": self.topology.nodes,
                "scheme": self.topology.scheme,
                "ingest": self.topology.ingest,
                "files": list(self.topology.files),
                "raster": list(self.topology.raster),
                "operator": self.topology.operator,
            },
            "workload": {
                "duration": self.duration,
                "deadline": self.deadline,
                "load": self.load,
                "tenants": [self._tenant_dict(t) for t in self.tenants],
            },
            "service": {
                "queue_capacity": self.queue_capacity,
                "concurrency": self.concurrency,
                "quantum": self.quantum,
                "batch_max": self.batch_max,
                "load_bias": self.load_bias,
                "retry": {
                    "max_attempts": self.retry.max_attempts,
                    "backoff": self.retry.backoff,
                    "backoff_factor": self.retry.backoff_factor,
                },
            },
        }
        if self.topology.partition_servers is not None:
            out["topology"]["partition_servers"] = self.topology.partition_servers
        if self.ramp is not None:
            out["workload"]["ramp"] = [list(phase) for phase in self.ramp]
        if self.decision_ttl is not None:
            out["service"]["decision_ttl"] = self.decision_ttl
        if self.chaos is not None or self.recovery is not None:
            chaos: dict = {}
            if self.chaos is not None:
                chaos["spec"] = self.chaos
            if self.recovery is not None:
                chaos["recovery"] = {
                    "rpc_timeout": self.recovery.rpc_timeout,
                    "max_attempts": self.recovery.max_attempts,
                    "backoff": self.recovery.backoff,
                    "backoff_factor": self.recovery.backoff_factor,
                    "hedge_delay": self.recovery.hedge_delay,
                }
            out["chaos"] = chaos
        if self.autoscale is not None:
            out["autoscale"] = {
                key: getattr(self.autoscale, key) for key in AUTOSCALE_KEYS
            }
        if self.checks:
            out["checks"] = []
            for check in self.checks:
                entry: dict = {"check": check.check}
                if check.value is not None:
                    entry["value"] = check.value
                if check.tenant is not None:
                    entry["tenant"] = check.tenant
                if check.alert is not None:
                    entry["alert"] = check.alert
                out["checks"].append(entry)
        return out

    @staticmethod
    def _tenant_dict(tenant: TenantSpec) -> dict:
        entry: dict = {
            "name": tenant.name,
            "weight": tenant.weight,
            "kernels": list(tenant.kernels),
            "files": list(tenant.files),
            "pipeline_length": tenant.pipeline_length,
            "mode": tenant.mode,
        }
        if tenant.mode == "open":
            entry["rate"] = tenant.rate
        else:
            entry["population"] = tenant.population
            entry["think_time"] = tenant.think_time
            entry["affinity"] = tenant.affinity
        return entry
