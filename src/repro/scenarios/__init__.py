"""Declarative scenarios: whole serving experiments as documents.

A scenario is one plain JSON document (stdlib only — no YAML) that
composes everything the serving stack can do — topology, tenant mix
(open- and closed-loop), load ramps, chaos schedules, autoscaling —
plus a ``checks`` section of declared pass/fail gates.  The package
provides:

* the schema (:mod:`~repro.scenarios.spec`),
* a validating loader with precise, path-annotated error messages
  (:mod:`~repro.scenarios.loader`),
* deterministic spec -> cell materialization
  (:mod:`~repro.scenarios.materialize`),
* the check catalog (:mod:`~repro.scenarios.checks`), and
* a library of named scenarios under ``library/`` — run them all with
  ``python -m repro.harness.scenario_bench --library``.
"""

from .checks import CHECKS, CheckDef, evaluate_check, evaluate_checks, validate_check
from .loader import (
    LIBRARY_DIR,
    library_names,
    library_path,
    load_library,
    load_scenario,
)
from .materialize import (
    build_scenario,
    reference_spec,
    run_scenario,
    scenario_platform,
)
from .spec import SCHEMA_SECTIONS, CheckSpec, ScenarioSpec, TopologySpec

__all__ = [
    "CHECKS",
    "CheckDef",
    "CheckSpec",
    "LIBRARY_DIR",
    "SCHEMA_SECTIONS",
    "ScenarioSpec",
    "TopologySpec",
    "build_scenario",
    "evaluate_check",
    "evaluate_checks",
    "library_names",
    "library_path",
    "load_library",
    "load_scenario",
    "reference_spec",
    "run_scenario",
    "scenario_platform",
    "validate_check",
]
