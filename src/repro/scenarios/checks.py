"""The declared pass/fail assertion catalog for scenarios.

Each scenario carries a ``checks`` list; every entry names one check
from :data:`CHECKS` and the harness evaluates it against the run's
summary dict.  A check is a *gate*: the scenario bench fails loudly if
any declared check does not hold, so the library doubles as a
regression suite over the serving stack.

Two kinds of checks exist:

* **summary checks** read one number out of the run summary (a tenant
  row, the fault/autoscale block, the decision cache) and compare it
  against the declared threshold;
* **identity checks** (``conservation``, ``crc_identity``) assert
  structural invariants — every admitted request settled exactly once,
  and per-request result CRCs match a fault-free reference run of the
  same scenario;
* **alert checks** (``alert_fired``, ``alert_resolved``) gate on the
  telemetry alert ledger: declaring one auto-enables the clock-driven
  sampler for the run (non-perturbing, so every other check reads the
  identical numbers) and asserts the named rule fired — or fired *and*
  resolved — somewhere in the ledger.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .spec import CheckSpec

#: What a check needs from the scenario before it can be evaluated.
REQUIRES = ("chaos", "autoscale", "chaos_or_autoscale", "cache")


@dataclass(frozen=True)
class CheckDef:
    """Catalog entry: argument shape + scenario prerequisites."""

    #: Human-readable comparison, used in the rendered check label.
    describe: str
    #: Whether the check takes a numeric ``value`` threshold.
    needs_value: bool = True
    #: Whether a ``tenant`` qualifier is meaningful (summary-row checks).
    allows_tenant: bool = False
    #: Scenario section the check depends on (see :data:`REQUIRES`).
    requires: Optional[str] = None
    #: Whether the check names an ``alert`` rule (alert-ledger checks).
    needs_alert: bool = False


#: Every check a scenario may declare.
CHECKS: Dict[str, CheckDef] = {
    "availability_min": CheckDef(
        "availability >=", allows_tenant=True
    ),
    "p99_max": CheckDef("p99 latency <=", allows_tenant=True),
    "throughput_min": CheckDef("throughput >=", allows_tenant=True),
    "completed_min": CheckDef("completed >=", allows_tenant=True),
    "rejected_max": CheckDef("rejected <=", allows_tenant=True),
    "rejected_min": CheckDef("rejected >=", allows_tenant=True),
    "expired_max": CheckDef("expired <=", allows_tenant=True),
    "failed_max": CheckDef("failed <=", allows_tenant=True),
    "conservation": CheckDef("admitted == settled", needs_value=False),
    "crc_identity": CheckDef(
        "result CRCs == reference run",
        needs_value=False,
        requires="chaos_or_autoscale",
    ),
    "scale_ups_min": CheckDef("scale-ups >=", requires="autoscale"),
    "scale_downs_min": CheckDef("scale-downs >=", requires="autoscale"),
    "final_partition": CheckDef("final partition ==", requires="autoscale"),
    "failover_reads_min": CheckDef("failover reads >=", requires="chaos"),
    "cache_hit_ratio_min": CheckDef("cache hit ratio >=", requires="cache"),
    "alert_fired": CheckDef(
        "alert rule fired", needs_value=False, needs_alert=True
    ),
    "alert_resolved": CheckDef(
        "alert rule fired and resolved", needs_value=False, needs_alert=True
    ),
}


def validate_check(
    check: CheckSpec,
    *,
    has_chaos: bool,
    has_autoscale: bool,
    has_cache: bool,
) -> Optional[str]:
    """Structural validation at load time; returns the problem or None."""
    definition = CHECKS[check.check]
    if definition.needs_value and check.value is None:
        return f"check {check.check!r} needs a numeric 'value'"
    if not definition.needs_value and check.value is not None:
        return f"check {check.check!r} takes no 'value'"
    if check.tenant is not None and not definition.allows_tenant:
        return f"check {check.check!r} takes no 'tenant' qualifier"
    if definition.needs_alert and check.alert is None:
        return f"check {check.check!r} needs an 'alert' rule name"
    if check.alert is not None and not definition.needs_alert:
        return f"check {check.check!r} takes no 'alert' qualifier"
    missing = {
        "chaos": "a chaos section" if not has_chaos else None,
        "autoscale": "an autoscale section" if not has_autoscale else None,
        "chaos_or_autoscale": (
            "a chaos or autoscale section"
            if not (has_chaos or has_autoscale)
            else None
        ),
        "cache": (
            "scheme 'DAS' (the decision cache)" if not has_cache else None
        ),
    }.get(definition.requires or "")
    if missing:
        return f"check {check.check!r} requires {missing}"
    return None


def _row(summary: dict, tenant: Optional[str]) -> dict:
    return summary["tenants"][tenant or "_all"]


def evaluate_check(
    check: CheckSpec,
    summary: dict,
    digests: Optional[Dict[int, int]] = None,
    reference: Optional[Tuple[dict, Dict[int, int]]] = None,
) -> Tuple[str, bool]:
    """Evaluate one declared check -> ``(label, passed)``.

    ``digests`` are the run's per-request result CRCs; ``reference`` is
    the fault-free reference run's ``(summary, digests)`` pair, present
    only when the scenario declares ``crc_identity``.
    """
    kind = check.check
    where = f"[{check.tenant}] " if check.tenant else ""

    if kind in ("alert_fired", "alert_resolved"):
        key = "fired" if kind == "alert_fired" else "resolved"
        names = set()
        for scope in summary.get("telemetry", {}).get("scopes", {}).values():
            alerts = scope.get("alerts")
            if alerts:
                names.update(alerts[key])
        ok = check.alert in names
        return (
            f"{kind}: rule {check.alert!r}"
            f" ({key}: {', '.join(sorted(names)) or 'none'})",
            ok,
        )
    if kind == "conservation":
        admitted, settled = summary["admitted"], summary["settled"]
        return (
            f"conservation: admitted {admitted} == settled {settled}",
            admitted == settled,
        )
    if kind == "crc_identity":
        assert digests is not None and reference is not None
        _, ref_digests = reference
        shared = sorted(set(digests) & set(ref_digests))
        ok = bool(shared) and all(
            digests[r] == ref_digests[r] for r in shared
        )
        return (
            f"crc_identity: {len(shared)} shared results match reference",
            ok,
        )

    value = check.value
    if kind in ("scale_ups_min", "scale_downs_min", "final_partition"):
        block = summary["autoscale"]
        actual = {
            "scale_ups_min": block["scale_ups"],
            "scale_downs_min": block["scale_downs"],
            "final_partition": block["active"],
        }[kind]
        ok = actual == value if kind == "final_partition" else actual >= value
        return f"{kind}: {actual} vs {value:g}", ok
    if kind == "failover_reads_min":
        actual = summary["faults"]["failover_reads"]
        return f"failover_reads_min: {actual} vs {value:g}", actual >= value
    if kind == "cache_hit_ratio_min":
        cache = summary["decision_cache"]
        lookups = cache["hits"] + cache["misses"]
        ratio = cache["hits"] / lookups if lookups else 0.0
        return (
            f"cache_hit_ratio_min: {ratio:.3f} vs {value:g}",
            ratio >= value,
        )

    row = _row(summary, check.tenant)
    if kind == "p99_max":
        p99 = row["lat_p99"]
        ok = p99 is not None and p99 <= value
        shown = "n/a" if p99 is None else f"{p99:.4f}"
        return f"{where}p99_max: {shown} vs {value:g}", ok
    field = {
        "availability_min": "availability",
        "throughput_min": "throughput",
        "completed_min": "completed",
        "rejected_max": "rejected",
        "rejected_min": "rejected",
        "expired_max": "expired",
        "failed_max": "failed",
    }[kind]
    actual = row[field]
    ok = actual >= value if kind.endswith("_min") else actual <= value
    return f"{where}{kind}: {actual:g} vs {value:g}", ok


def evaluate_checks(
    checks: Tuple[CheckSpec, ...],
    summary: dict,
    digests: Optional[Dict[int, int]] = None,
    reference: Optional[Tuple[dict, Dict[int, int]]] = None,
) -> List[Tuple[str, bool]]:
    """Evaluate every declared check in declaration order."""
    return [
        evaluate_check(check, summary, digests=digests, reference=reference)
        for check in checks
    ]
