"""Validating scenario loader: dict / JSON file -> :class:`ScenarioSpec`.

Every validation failure raises :class:`~repro.errors.ScenarioError`
whose message names the scenario, the exact spec path that is wrong
(``tenants[1].files``), what was found, and what would have been
accepted — a bad spec must be fixable from the error alone.

Materialization determinism: the loader resolves every default
eagerly, so two documents that load to equal specs materialize
bit-identical cells (the spec carries the seed; nothing is drawn at
load time).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..errors import ReproError, ScenarioError
from ..faults import FaultPlan, RecoveryPolicy
from ..kernels import default_registry
from ..serve import SCHEMES, AutoscalePolicy, RetryPolicy, TenantSpec
from .checks import CHECKS, validate_check
from .spec import (
    AUTOSCALE_KEYS,
    CHAOS_KEYS,
    CHECK_KEYS,
    RECOVERY_KEYS,
    RETRY_KEYS,
    SERVICE_KEYS,
    TENANT_KEYS,
    TOP_KEYS,
    TOPOLOGY_KEYS,
    WORKLOAD_KEYS,
    CheckSpec,
    ScenarioSpec,
    TopologySpec,
)

#: Ingest policies the topology section accepts (mirrors harness.common).
INGEST_POLICIES = ("scheme", "replicated", "partition")

#: Directory of the named scenario library.
LIBRARY_DIR = Path(__file__).parent / "library"


def library_names() -> Tuple[str, ...]:
    """Names of the shipped scenarios, sorted."""
    return tuple(sorted(p.stem for p in LIBRARY_DIR.glob("*.json")))


def library_path(name: str) -> Path:
    """Path of a named library scenario; raises with the known names."""
    path = LIBRARY_DIR / f"{name}.json"
    if not path.is_file():
        raise ScenarioError(
            f"unknown library scenario {name!r}"
            f" (available: {', '.join(library_names())})"
        )
    return path


def load_library() -> Tuple[ScenarioSpec, ...]:
    """Every shipped scenario, loaded and validated, in name order."""
    return tuple(load_scenario(LIBRARY_DIR / f"{n}.json") for n in library_names())


def load_scenario(source: Union[dict, str, Path]) -> ScenarioSpec:
    """Load and validate one scenario.

    ``source`` may be the scenario dict itself, a path to a JSON file,
    or the name of a shipped library scenario.
    """
    if isinstance(source, dict):
        return _load(source, origin="<dict>")
    path = Path(source)
    if not path.suffix and not path.exists():
        path = library_path(str(source))
    if not path.is_file():
        raise ScenarioError(f"scenario file {str(path)!r} does not exist")
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise ScenarioError(
            f"{path.name}: not valid JSON (line {exc.lineno}: {exc.msg})"
        ) from None
    if not isinstance(data, dict):
        raise ScenarioError(
            f"{path.name}: a scenario document must be a JSON object,"
            f" got {type(data).__name__}"
        )
    return _load(data, origin=path.name)


# -- internals ----------------------------------------------------------------
class _Loader:
    """One load: tracks the scenario label for error paths."""

    def __init__(self, data: dict, origin: str):
        self.data = data
        self.label = data.get("name", origin) if isinstance(data, dict) else origin

    def fail(self, path: str, message: str) -> "ScenarioError":
        where = f"{self.label}: {path}" if path else f"{self.label}"
        return ScenarioError(f"{where}: {message}")

    def check_keys(self, mapping: dict, allowed: Sequence[str], path: str) -> None:
        unknown = sorted(set(mapping) - set(allowed))
        if unknown:
            raise self.fail(
                path or "top level",
                f"unknown key {unknown[0]!r}"
                f" (expected one of: {', '.join(allowed)})",
            )

    def section(self, mapping, key: str, path: str, required: bool = False):
        value = mapping.get(key)
        if value is None:
            if required:
                raise self.fail(path, "required section is missing")
            return None
        if not isinstance(value, dict):
            raise self.fail(
                path, f"must be an object, got {type(value).__name__}"
            )
        return value

    def number(
        self,
        mapping: dict,
        key: str,
        path: str,
        default=None,
        required: bool = False,
        integer: bool = False,
        minimum=None,
    ):
        if key not in mapping:
            if required:
                raise self.fail(f"{path}.{key}", "required value is missing")
            return default
        value = mapping[key]
        ok = isinstance(value, int) if integer else isinstance(value, (int, float))
        if ok and isinstance(value, bool):
            ok = False
        if not ok:
            kind = "an integer" if integer else "a number"
            raise self.fail(
                f"{path}.{key}", f"must be {kind}, got {value!r}"
            )
        if minimum is not None and value < minimum:
            raise self.fail(
                f"{path}.{key}", f"must be >= {minimum}, got {value!r}"
            )
        return value

    def text(self, mapping: dict, key: str, path: str, default=None,
             required: bool = False, choices: Optional[Sequence[str]] = None):
        if key not in mapping:
            if required:
                raise self.fail(f"{path}.{key}", "required value is missing")
            return default
        value = mapping[key]
        if not isinstance(value, str):
            raise self.fail(f"{path}.{key}", f"must be a string, got {value!r}")
        if choices is not None and value not in choices:
            raise self.fail(
                f"{path}.{key}",
                f"must be one of {', '.join(map(repr, choices))}, got {value!r}",
            )
        return value

    def name_list(self, mapping: dict, key: str, path: str, default=None):
        if key not in mapping:
            return default
        value = mapping[key]
        if (
            not isinstance(value, (list, tuple))
            or not value
            or not all(isinstance(v, str) for v in value)
        ):
            raise self.fail(
                f"{path}.{key}", f"must be a non-empty list of strings, got {value!r}"
            )
        return tuple(value)


def _load(data: dict, origin: str) -> ScenarioSpec:
    ld = _Loader(data, origin)
    ld.check_keys(data, TOP_KEYS, "")

    name = ld.text(data, "name", "", required=True)
    description = ld.text(data, "description", "", default="")
    seed = ld.number(data, "seed", "", default=20120910, integer=True, minimum=0)

    topology = _load_topology(ld, ld.section(data, "topology", "topology") or {})
    duration, deadline, load, ramp, tenants = _load_workload(
        ld, ld.section(data, "workload", "workload", required=True), topology
    )
    service = ld.section(data, "service", "service") or {}
    ld.check_keys(service, SERVICE_KEYS, "service")
    retry = _load_retry(ld, ld.section(service, "retry", "service.retry"))
    chaos_text, recovery = _load_chaos(
        ld, ld.section(data, "chaos", "chaos"), topology, duration
    )
    autoscale = _load_autoscale(ld, ld.section(data, "autoscale", "autoscale"),
                                topology)

    spec = ScenarioSpec(
        name=name,
        description=description,
        topology=topology,
        tenants=tenants,
        duration=duration,
        deadline=deadline,
        load=load,
        ramp=ramp,
        seed=seed,
        queue_capacity=ld.number(
            service, "queue_capacity", "service", default=12, integer=True, minimum=1
        ),
        concurrency=ld.number(
            service, "concurrency", "service", default=8, integer=True, minimum=1
        ),
        quantum=ld.number(
            service, "quantum", "service", default=256 * 1024, integer=True, minimum=1
        ),
        batch_max=ld.number(
            service, "batch_max", "service", default=1, integer=True, minimum=1
        ),
        load_bias=ld.number(service, "load_bias", "service", default=0.75, minimum=0),
        decision_ttl=ld.number(service, "decision_ttl", "service", minimum=0),
        retry=retry,
        chaos=chaos_text,
        recovery=recovery,
        autoscale=autoscale,
        checks=_load_checks(
            ld, data.get("checks"), tenants, topology, chaos_text, autoscale
        ),
    )
    return spec


def _load_topology(ld: _Loader, section: dict) -> TopologySpec:
    ld.check_keys(section, TOPOLOGY_KEYS, "topology")
    nodes = ld.number(section, "nodes", "topology", default=8, integer=True, minimum=2)
    scheme = ld.text(
        section, "scheme", "topology", default="DAS", choices=tuple(SCHEMES)
    )
    ingest = ld.text(
        section, "ingest", "topology", default="scheme", choices=INGEST_POLICIES
    )
    files = ld.name_list(section, "files", "topology", default=("dem_a", "dem_b"))
    operator = ld.text(section, "operator", "topology", default="gaussian")
    if operator not in default_registry:
        raise ld.fail(
            "topology.operator",
            f"unknown kernel {operator!r}"
            f" (registered: {', '.join(sorted(default_registry.names()))})",
        )
    raster = section.get("raster", (128, 192))
    if (
        not isinstance(raster, (list, tuple))
        or len(raster) != 2
        or not all(isinstance(v, int) and v > 0 for v in raster)
    ):
        raise ld.fail(
            "topology.raster",
            f"must be a [rows, cols] pair of positive integers, got {raster!r}",
        )
    n_storage = max(1, round(nodes * 0.5))
    partition = ld.number(
        section, "partition_servers", "topology", integer=True, minimum=1
    )
    if ingest == "partition":
        if partition is None:
            raise ld.fail(
                "topology.partition_servers",
                "required when ingest is 'partition'",
            )
        if partition > n_storage:
            raise ld.fail(
                "topology.partition_servers",
                f"{partition} exceeds the {n_storage} storage servers"
                f" of a {nodes}-node cluster",
            )
    elif partition is not None:
        raise ld.fail(
            "topology.partition_servers",
            f"only meaningful with ingest 'partition', not {ingest!r}",
        )
    return TopologySpec(
        nodes=nodes,
        scheme=scheme,
        ingest=ingest,
        partition_servers=partition,
        files=files,
        raster=(raster[0], raster[1]),
        operator=operator,
    )


def _load_workload(ld: _Loader, section: dict, topology: TopologySpec):
    ld.check_keys(section, WORKLOAD_KEYS, "workload")
    duration = ld.number(section, "duration", "workload", required=True)
    deadline = ld.number(section, "deadline", "workload", required=True)
    if duration <= 0:
        raise ld.fail("workload.duration", f"must be positive, got {duration!r}")
    if deadline <= 0:
        raise ld.fail("workload.deadline", f"must be positive, got {deadline!r}")
    load = ld.number(section, "load", "workload", default=1.0)
    if load <= 0:
        raise ld.fail("workload.load", f"must be positive, got {load!r}")
    ramp = _load_ramp(ld, section.get("ramp"), duration)
    raw_tenants = section.get("tenants")
    if not isinstance(raw_tenants, list) or not raw_tenants:
        raise ld.fail(
            "workload.tenants",
            f"must be a non-empty list of tenant objects, got {raw_tenants!r}",
        )
    tenants = tuple(
        _load_tenant(ld, entry, i, topology) for i, entry in enumerate(raw_tenants)
    )
    names = [t.name for t in tenants]
    if len(set(names)) != len(names):
        dup = next(n for n in names if names.count(n) > 1)
        raise ld.fail("workload.tenants", f"duplicate tenant name {dup!r}")
    return duration, deadline, load, ramp, tenants


def _load_ramp(ld: _Loader, raw, duration: float):
    if raw is None:
        return None
    if not isinstance(raw, list) or not raw:
        raise ld.fail(
            "workload.ramp",
            f"must be a non-empty list of [time, multiplier] pairs, got {raw!r}",
        )
    phases: List[Tuple[float, float]] = []
    for i, pair in enumerate(raw):
        if (
            not isinstance(pair, (list, tuple))
            or len(pair) != 2
            or not all(isinstance(v, (int, float)) for v in pair)
        ):
            raise ld.fail(
                f"workload.ramp[{i}]",
                f"must be a [time, multiplier] pair, got {pair!r}",
            )
        t, m = float(pair[0]), float(pair[1])
        if t < 0 or t >= duration:
            raise ld.fail(
                f"workload.ramp[{i}]",
                f"phase time {t:g} outside [0, duration {duration:g})",
            )
        if m <= 0:
            raise ld.fail(
                f"workload.ramp[{i}]", f"multiplier must be positive, got {m:g}"
            )
        phases.append((t, m))
    times = [t for t, _ in phases]
    if times != sorted(times):
        raise ld.fail(
            "workload.ramp", "phase times must be in ascending order"
        )
    return tuple(phases)


def _load_tenant(
    ld: _Loader, entry, index: int, topology: TopologySpec
) -> TenantSpec:
    path = f"workload.tenants[{index}]"
    if not isinstance(entry, dict):
        raise ld.fail(path, f"must be a tenant object, got {entry!r}")
    ld.check_keys(entry, TENANT_KEYS, path)
    tname = ld.text(entry, "name", path, required=True)
    path = f"workload.tenants[{index}] ({tname!r})"
    mode = ld.text(entry, "mode", path, default="open", choices=("open", "closed"))
    kernels = ld.name_list(entry, "kernels", path, default=("gaussian",))
    for kernel in kernels:
        if kernel not in default_registry:
            raise ld.fail(
                f"{path}.kernels",
                f"unknown kernel {kernel!r}"
                f" (registered: {', '.join(sorted(default_registry.names()))})",
            )
    files = ld.name_list(entry, "files", path)
    if files is None:
        raise ld.fail(f"{path}.files", "required value is missing")
    for file in files:
        if file not in topology.files:
            raise ld.fail(
                f"{path}.files",
                f"unknown file {file!r}"
                f" (topology declares: {', '.join(topology.files)})",
            )
    kwargs = dict(
        name=tname,
        weight=ld.number(entry, "weight", path, default=1.0),
        kernels=kernels,
        files=files,
        pipeline_length=ld.number(
            entry, "pipeline_length", path, default=1, integer=True, minimum=1
        ),
        mode=mode,
    )
    if mode == "open":
        for key in ("population", "think_time", "affinity"):
            if key in entry:
                raise ld.fail(
                    f"{path}.{key}", "only meaningful for mode 'closed'"
                )
        kwargs["rate"] = ld.number(entry, "rate", path, required=True)
    else:
        if "rate" in entry:
            raise ld.fail(
                f"{path}.rate",
                "not meaningful for mode 'closed' (throughput is an"
                " outcome of a closed loop, not an input); use"
                " population/think_time",
            )
        kwargs["population"] = ld.number(
            entry, "population", path, required=True, integer=True, minimum=1
        )
        kwargs["think_time"] = ld.number(entry, "think_time", path, required=True)
        kwargs["affinity"] = ld.number(entry, "affinity", path, default=0.0)
    try:
        return TenantSpec(**kwargs)
    except ReproError as exc:
        raise ld.fail(path, str(exc)) from None


def _node_names(topology: TopologySpec) -> Tuple[str, ...]:
    """The deterministic node names of the scenario's cluster."""
    n_storage = max(1, round(topology.nodes * 0.5))
    n_compute = topology.nodes - n_storage
    return tuple(f"c{i}" for i in range(n_compute)) + tuple(
        f"s{i}" for i in range(n_storage)
    )


def _load_chaos(ld: _Loader, section, topology: TopologySpec, duration: float):
    if section is None:
        return None, None
    ld.check_keys(section, CHAOS_KEYS, "chaos")
    text = ld.text(section, "spec", "chaos", required=True)
    try:
        plan = FaultPlan.parse(text)
    except ReproError as exc:
        raise ld.fail("chaos.spec", str(exc)) from None
    nodes = _node_names(topology)
    for event in plan:
        for target in filter(None, (event.target, event.peer)):
            if target not in nodes:
                raise ld.fail(
                    "chaos.spec",
                    f"clause {event.spec()!r} targets unknown node"
                    f" {target!r} (a {topology.nodes}-node cluster has:"
                    f" {', '.join(nodes)})",
                )
        if event.at >= duration:
            raise ld.fail(
                "chaos.spec",
                f"clause {event.spec()!r} fires at {event.at:g}s, past the"
                f" workload duration {duration:g}s",
            )
    recovery_section = ld.section(section, "recovery", "chaos.recovery")
    recovery = None
    if recovery_section is not None:
        ld.check_keys(recovery_section, RECOVERY_KEYS, "chaos.recovery")
        try:
            recovery = RecoveryPolicy(
                rpc_timeout=ld.number(
                    recovery_section, "rpc_timeout", "chaos.recovery", default=0.25
                ),
                max_attempts=ld.number(
                    recovery_section, "max_attempts", "chaos.recovery",
                    default=2, integer=True,
                ),
                backoff=ld.number(
                    recovery_section, "backoff", "chaos.recovery", default=0.02
                ),
                backoff_factor=ld.number(
                    recovery_section, "backoff_factor", "chaos.recovery", default=2.0
                ),
                hedge_delay=ld.number(
                    recovery_section, "hedge_delay", "chaos.recovery"
                ),
            )
        except ReproError as exc:
            raise ld.fail("chaos.recovery", str(exc)) from None
    return text, recovery


def _load_autoscale(ld: _Loader, section, topology: TopologySpec):
    if section is None:
        return None
    ld.check_keys(section, AUTOSCALE_KEYS, "autoscale")
    defaults = AutoscalePolicy()
    kwargs: Dict[str, object] = {}
    for key in AUTOSCALE_KEYS:
        integer = key in (
            "min_servers", "max_servers", "queue_high", "breach_ticks",
            "calm_ticks", "step", "min_samples",
        )
        kwargs[key] = ld.number(
            section, key, "autoscale", default=getattr(defaults, key),
            integer=integer,
        )
    try:
        policy = AutoscalePolicy(**kwargs)  # type: ignore[arg-type]
    except ReproError as exc:
        raise ld.fail("autoscale", str(exc)) from None
    n_storage = max(1, round(topology.nodes * 0.5))
    if policy.max_servers > n_storage:
        raise ld.fail(
            "autoscale.max_servers",
            f"{policy.max_servers} exceeds the {n_storage} storage servers"
            f" of a {topology.nodes}-node cluster",
        )
    return policy


def _load_retry(ld: _Loader, section) -> RetryPolicy:
    if section is None:
        return RetryPolicy()
    ld.check_keys(section, RETRY_KEYS, "service.retry")
    try:
        return RetryPolicy(
            max_attempts=ld.number(
                section, "max_attempts", "service.retry", default=2, integer=True
            ),
            backoff=ld.number(section, "backoff", "service.retry", default=0.05),
            backoff_factor=ld.number(
                section, "backoff_factor", "service.retry", default=2.0
            ),
        )
    except ReproError as exc:
        raise ld.fail("service.retry", str(exc)) from None


def _load_checks(
    ld: _Loader,
    raw,
    tenants: Tuple[TenantSpec, ...],
    topology: TopologySpec,
    chaos: Optional[str],
    autoscale,
) -> Tuple[CheckSpec, ...]:
    if raw is None:
        return ()
    if not isinstance(raw, list) or not raw:
        raise ld.fail(
            "checks", f"must be a non-empty list of check objects, got {raw!r}"
        )
    out: List[CheckSpec] = []
    tenant_names = {t.name for t in tenants}
    for i, entry in enumerate(raw):
        path = f"checks[{i}]"
        if not isinstance(entry, dict):
            raise ld.fail(path, f"must be a check object, got {entry!r}")
        ld.check_keys(entry, CHECK_KEYS, path)
        kind = ld.text(entry, "check", path, required=True)
        if kind not in CHECKS:
            raise ld.fail(
                f"{path}.check",
                f"unknown check {kind!r}"
                f" (available: {', '.join(sorted(CHECKS))})",
            )
        value = ld.number(entry, "value", path)
        tenant = ld.text(entry, "tenant", path)
        if tenant is not None and tenant not in tenant_names:
            raise ld.fail(
                f"{path}.tenant",
                f"unknown tenant {tenant!r}"
                f" (declared: {', '.join(sorted(tenant_names))})",
            )
        alert = ld.text(entry, "alert", path)
        check = CheckSpec(check=kind, value=value, tenant=tenant, alert=alert)
        problem = validate_check(
            check,
            has_chaos=chaos is not None,
            has_autoscale=autoscale is not None,
            has_cache=topology.scheme == "DAS",
        )
        if problem:
            raise ld.fail(path, problem)
        out.append(check)
    return tuple(out)
