"""Deterministic spec -> cell materialization and execution.

:func:`build_scenario` turns a validated :class:`ScenarioSpec` into a
ready-to-run ``(pfs, ServeConfig)`` pair; :func:`run_scenario` runs it
and returns the summary plus the per-request result digests the
``crc_identity`` check compares.  Everything is derived from the spec
(the spec carries the seed), so two loads of the same document
materialize event-for-event identical runs.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Tuple

import numpy as np

from ..faults import FaultPlan
from ..harness.common import SERVE_SPEC, SERVE_STRIP, ingest_files
from ..harness.platform import ExperimentPlatform, build_platform
from ..pfs.filesystem import ParallelFileSystem
from ..serve import ServeConfig, ServeSystem
from .spec import ScenarioSpec


def scenario_platform(
    spec: ScenarioSpec, platform: Optional[ExperimentPlatform] = None
) -> ExperimentPlatform:
    """The platform preset for one scenario: the serving benches'
    throttled spec unless the caller overrides it, always re-seeded
    from the spec so replay is a property of the document alone."""
    if platform is None:
        platform = ExperimentPlatform(spec=SERVE_SPEC, strip_size=SERVE_STRIP)
    return dataclasses.replace(platform, seed=spec.seed)


def build_scenario(
    spec: ScenarioSpec, platform: Optional[ExperimentPlatform] = None
) -> Tuple[ParallelFileSystem, ServeConfig]:
    """Materialize the spec: cluster, ingested files, serve config."""
    cluster, pfs = build_platform(
        spec.topology.nodes, scenario_platform(spec, platform)
    )
    servers = None
    if spec.topology.partition_servers is not None:
        servers = pfs.server_names[: spec.topology.partition_servers]
    rng = np.random.default_rng(spec.seed)
    ingest_files(
        pfs,
        spec.topology.scheme,
        rng,
        policy=spec.topology.ingest,
        names=spec.topology.files,
        raster=spec.topology.raster,
        operator=spec.topology.operator,
        servers=servers,
    )
    config = ServeConfig(
        tenants=spec.tenants,
        scheme=spec.topology.scheme,
        duration=spec.duration,
        deadline=spec.deadline,
        load=spec.load,
        queue_capacity=spec.queue_capacity,
        concurrency=spec.concurrency,
        quantum=spec.quantum,
        retry=spec.retry,
        load_bias=spec.load_bias,
        batch_max=spec.batch_max,
        faults=FaultPlan.parse(spec.chaos) if spec.chaos else None,
        recovery=spec.recovery,
        decision_ttl=spec.decision_ttl,
        ramp=spec.ramp,
        autoscale=spec.autoscale,
    )
    if any(c.check in ("alert_fired", "alert_resolved") for c in spec.checks):
        # Alert gates read the telemetry ledger, so the sampler rides
        # along.  Sampling is non-perturbing (pinned by the telemetry
        # replays), so every other declared check still reads numbers
        # identical to an unsampled run.
        from ..telemetry import TelemetryConfig

        config = dataclasses.replace(config, telemetry=TelemetryConfig())
    return pfs, config


def run_scenario(
    spec: ScenarioSpec,
    platform: Optional[ExperimentPlatform] = None,
    tracer: Optional[object] = None,
) -> Tuple[dict, Dict[int, int]]:
    """Run one scenario -> ``(summary, per-request result digests)``."""
    pfs, config = build_scenario(spec, platform)
    if tracer is not None:
        config = dataclasses.replace(config, tracer=tracer)
    system = ServeSystem(pfs, config)
    summary = system.run()
    return summary, dict(system.executor.digests)


def reference_spec(spec: ScenarioSpec) -> ScenarioSpec:
    """The fault-free twin the ``crc_identity`` check runs against:
    same topology, workload and service knobs, but no chaos, no
    recovery and no autoscaling — what every surviving request's result
    bytes must match."""
    return dataclasses.replace(
        spec,
        chaos=None,
        recovery=None,
        autoscale=None,
        checks=(),
    )
