"""Platform and simulation configuration.

A :class:`PlatformSpec` captures the hardware parameters of the
simulated cluster.  The defaults approximate the paper's testbed (the
Hrothgar cluster at Texas Tech: 12-core Xeon nodes, Lustre storage,
gigabit-class interconnect between the partition used as "storage
nodes" and the partition used as "compute nodes").

Absolute fidelity is not the goal — the reproduction band for this
paper is "simulation of the scheduler, low fidelity" — but the ratios
that drive the paper's results are respected:

* moving a byte across the interconnect is far more expensive than
  reading it from a local disk's cache-friendly streaming path;
* kernels are cheap per element relative to transferring that element,
  which is exactly why data movement dominates run time (Section I of
  the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict

from .units import GiB, KiB, MiB, us


@dataclass(frozen=True)
class PlatformSpec:
    """Hardware parameters of one simulated cluster node + fabric."""

    #: NIC bandwidth in bytes/second (per direction, full duplex).
    #: Deliberately below the storage path: the paper's premise is that
    #: "the bandwidth between the compute nodes and the storage nodes
    #: has not improved at the same rate as the storage capacity".
    nic_bandwidth: float = 256 * MiB
    #: One-way message latency in seconds.
    nic_latency: float = 10 * us
    #: Per-message software overhead (request handling, RPC dispatch).
    rpc_overhead: float = 5 * us
    #: Disk streaming bandwidth in bytes/second (server-class array with
    #: cache-friendly sequential strips — faster than the interconnect).
    disk_bandwidth: float = 0.75 * GiB
    #: Average positioning time charged once per I/O request.
    disk_seek: float = 10 * us
    #: CPU cores available to processing kernels on each node.
    cores: int = 12
    #: Seconds of CPU time to process one data element, per kernel name.
    #: Fallback ``"default"`` applies to unknown kernels.
    kernel_cost: Dict[str, float] = field(
        default_factory=lambda: {
            "default": 4e-9,
            "flow-routing": 6e-9,
            "flow-accumulation": 8e-9,
            "gaussian": 10e-9,
            "median": 14e-9,
            "slope": 6e-9,
        }
    )
    #: Maximum concurrent flows the switch fabric admits (0 = unlimited).
    fabric_flow_limit: int = 0
    #: Aggregate bandwidth of the compute<->storage bisection in
    #: bytes/second (0 = non-blocking switch).  When set, every
    #: cross-partition flow also traverses this shared link — the
    #: oversubscribed-fabric model.
    bisection_bandwidth: float = 0.0
    #: Per-server read-cache budget in bytes (0 = no cache).  Strips
    #: read from or written to disk stay cached LRU; cache hits skip
    #: the disk entirely, as on Lustre/PVFS servers with page cache.
    server_cache_bytes: int = 0

    def kernel_sec_per_element(self, kernel: str) -> float:
        return self.kernel_cost.get(kernel, self.kernel_cost["default"])

    def with_overrides(self, **kwargs) -> "PlatformSpec":
        """A copy of this spec with some fields replaced."""
        return replace(self, **kwargs)


@dataclass(frozen=True)
class SimConfig:
    """Per-run simulation knobs (independent of the hardware)."""

    #: Root seed for all random substreams.
    seed: int = 20120910  # ICPP 2012 conference date
    #: Record a full event trace (slow; for debugging only).
    trace: bool = False
    #: PFS strip size in bytes (PVFS2 default per the paper: 64 KB).
    strip_size: int = 64 * KiB
    #: Element size E in bytes (float64 raster cells).
    element_size: int = 8
    #: Granularity (bytes) at which servers batch halo/data requests.
    request_batch: int = 1 * MiB


#: Paper-like platform: used by the harness presets.
HROTHGAR = PlatformSpec()

#: A deliberately I/O-starved platform (narrow interconnect) used in
#: ablations to accentuate the data-movement effects.
NARROW_NETWORK = PlatformSpec(nic_bandwidth=64 * MiB)

#: A platform whose interconnect outruns the disks (data movement is
#: cheap); offload decisions flip toward normal I/O here.
FAT_NETWORK = PlatformSpec(nic_bandwidth=2 * GiB)

#: A compute-starved platform (slow cores) where offload decisions flip.
SLOW_CPU = PlatformSpec(
    kernel_cost={
        "default": 40e-9,
        "flow-routing": 60e-9,
        "flow-accumulation": 80e-9,
        "gaussian": 100e-9,
        "median": 140e-9,
        "slope": 60e-9,
    }
)
