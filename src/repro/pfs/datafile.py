"""Logical file descriptions and element/byte address arithmetic.

Files in the PFS are flat byte arrays; data-intensive applications view
them as rasters (2-D arrays of fixed-size elements, row-major).  The
paper's bandwidth model works in *element* indices (Eqs. 1–4); this
module centralises the element <-> byte conversions so every component
agrees on them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from ..errors import PFSError
from .layout import Layout


@dataclass
class FileMeta:
    """Metadata record for one PFS file."""

    name: str
    size: int  # bytes
    layout: Layout
    dtype: np.dtype = field(default_factory=lambda: np.dtype(np.float64))
    #: Raster geometry (rows, cols) when the file is a 2-D dataset.
    shape: Optional[Tuple[int, int]] = None
    attrs: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.dtype = np.dtype(self.dtype)
        if self.size < 0:
            raise PFSError(f"negative file size {self.size!r}")
        if self.shape is not None:
            rows, cols = self.shape
            expected = rows * cols * self.dtype.itemsize
            if expected != self.size:
                raise PFSError(
                    f"shape {self.shape} x {self.dtype} = {expected} bytes"
                    f" but file size is {self.size}"
                )

    @property
    def element_size(self) -> int:
        """E in the paper's equations."""
        return self.dtype.itemsize

    @property
    def n_elements(self) -> int:
        return self.size // self.element_size

    @property
    def width(self) -> int:
        """Raster width in elements (imgWidth in the paper)."""
        if self.shape is None:
            raise PFSError(f"file {self.name!r} has no raster shape")
        return self.shape[1]

    # -- address arithmetic ---------------------------------------------------
    def elem_to_byte(self, index: int) -> int:
        return index * self.element_size

    def byte_to_elem(self, offset: int) -> int:
        return offset // self.element_size

    def elem_range_bytes(self, first: int, count: int) -> Tuple[int, int]:
        """(byte offset, byte length) of ``count`` elements from ``first``."""
        return first * self.element_size, count * self.element_size

    def strip_elem_range(self, strip: int) -> Tuple[int, int]:
        """(first element, element count) covered by ``strip``.

        Strip boundaries need not align with element boundaries in
        general; for the paper's rasters ``strip_size % E == 0`` always
        holds, which :class:`~repro.pfs.client.PFSClient` enforces at
        file creation.
        """
        start = strip * self.layout.strip_size
        end = min(start + self.layout.strip_size, self.size)
        return start // self.element_size, (end - start) // self.element_size

    def clamp_elems(self, first: int, last: int) -> Tuple[int, int]:
        """Clamp an inclusive element range to the file bounds."""
        return max(0, first), min(self.n_elements - 1, last)
