"""PFS client: striped reads and writes from a (compute) node.

Mirrors the split in the paper's Fig. 2: normal I/O goes through this
client, which scatters/gathers byte ranges across the data servers
according to the file's layout.  All data-path traffic is simulated
(request + reply messages, disk I/O on the servers); the *setup* path
(:meth:`ingest`) and the *verification* path (:meth:`collect`) place
and read bytes instantly, because experiments measure the operation
under test, not the initial population of the file system.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..errors import LayoutError, NodeDownError, PFSError
from ..hw.cluster import Cluster
from ..obs.span import NULL_SPAN, rpc_reply_bytes, rpc_status
from ..sim import contain_failures
from .dataserver import (
    TAG_PFS,
    DataServer,
    ReadPiece,
    WritePiece,
    accounted_wire_size,
)
from .datafile import FileMeta
from .layout import Layout, StripExtent
from .metadata import MetadataService


class PFSClient:
    """A client endpoint bound to one node (usually a compute node)."""

    def __init__(
        self,
        cluster: Cluster,
        metadata: MetadataService,
        servers: Dict[str, DataServer],
        home: str,
    ):
        if home not in cluster.fabric:
            raise PFSError(f"client home node {home!r} is not in the cluster")
        self.cluster = cluster
        self.env = cluster.env
        self.transport = cluster.transport
        self.metadata = metadata
        self.servers = servers
        self.home = home
        #: Optional :class:`~repro.faults.RecoveryPolicy`.  ``None`` (the
        #: default) keeps the original read path — event-for-event
        #: identical to a build without fault tolerance.
        self.recovery = None

    # -- instant (untimed) setup & verification paths --------------------------
    def ingest(
        self,
        name: str,
        array: np.ndarray,
        layout: Layout,
        shape: Optional[Tuple[int, int]] = None,
        **attrs,
    ) -> FileMeta:
        """Create a file and place its strips (and replicas) instantly."""
        data = np.ascontiguousarray(array)
        raw = data.view(np.uint8).reshape(-1)
        if layout.strip_size % data.dtype.itemsize != 0:
            raise LayoutError(
                f"strip size {layout.strip_size} is not a multiple of the"
                f" element size {data.dtype.itemsize}"
            )
        if shape is None and data.ndim == 2:
            shape = data.shape  # type: ignore[assignment]
        meta = self.metadata.create(
            name, raw.nbytes, layout, dtype=data.dtype, shape=shape, **attrs
        )
        for strip in range(layout.n_strips(raw.nbytes)):
            lo = strip * layout.strip_size
            hi = min(lo + layout.strip_size, raw.nbytes)
            piece = raw[lo:hi]
            for server in layout.replicas(strip):
                self._server(server).preload(name, strip, piece)
        return meta

    def collect(self, name: str) -> np.ndarray:
        """Assemble the full file contents instantly (verification aid).

        Returns an array of the file's dtype, reshaped to its raster
        shape when one is recorded.
        """
        meta = self.metadata.lookup(name)
        raw = np.empty(meta.size, dtype=np.uint8)
        for strip in range(meta.layout.n_strips(meta.size)):
            lo = strip * meta.layout.strip_size
            piece = self._server(meta.layout.primary_server(strip)).strip_bytes(
                name, strip
            )
            raw[lo : lo + piece.nbytes] = piece
        out = raw.view(meta.dtype)
        if meta.shape is not None:
            out = out.reshape(meta.shape)
        return out

    def verify_replicas(self, name: str) -> bool:
        """True iff every replica strip is byte-identical to its primary."""
        meta = self.metadata.lookup(name)
        for strip in range(meta.layout.n_strips(meta.size)):
            replicas = meta.layout.replicas(strip)
            primary = self._server(replicas[0]).strip_bytes(name, strip)
            for server in replicas[1:]:
                if not np.array_equal(
                    primary, self._server(server).strip_bytes(name, strip)
                ):
                    return False
        return True

    # -- timed data path -----------------------------------------------------------
    def read(self, name: str, offset: int, length: int, span=NULL_SPAN):
        """Process: read ``length`` bytes at ``offset``; value is uint8[length]."""
        return self.env.process(
            self._read(name, offset, length, span=span), name=f"pfs-read:{self.home}"
        )

    def _read(self, name: str, offset: int, length: int, span=NULL_SPAN):
        out = yield from self._read_scattered(name, [(offset, length)], span=span)
        return out

    def read_scattered(self, name: str, ranges, span=NULL_SPAN):
        """Process: read several (offset, length) byte ranges in one
        batched exchange (one request per touched server); value is the
        concatenation of the ranges, uint8."""
        return self.env.process(
            self._read_scattered(name, list(ranges), span=span),
            name=f"pfs-read-scattered:{self.home}",
        )

    def _read_scattered(self, name: str, ranges, span=NULL_SPAN):
        meta = self.metadata.lookup(name)
        total = 0
        positioned = []  # (output position, StripExtent)
        for offset, length in ranges:
            if offset < 0 or offset + length > meta.size:
                raise PFSError(
                    f"read past EOF of {name!r}: ({offset}, {length})"
                    f" vs size {meta.size}"
                )
            for e in meta.layout.map_extent(offset, length):
                if not self.cluster.node(e.server).is_up:
                    e = self._failover(meta.layout, e)
                positioned.append((total + (e.offset - offset), e))
            total += length

        out = np.empty(total, dtype=np.uint8)
        if self.recovery is not None:
            yield from self._fill_positioned_ft(
                meta, name, positioned, out, self.recovery, frozenset(), span=span
            )
            return out

        by_server: Dict[str, list] = {}
        for pos, e in positioned:
            by_server.setdefault(e.server, []).append((pos, e))

        if len(by_server) == 1 and not span:
            # Single touched server (the common small read): run the RPC
            # inside this process instead of spawning a child per call —
            # there is nothing to overlap.
            ((server, group),) = by_server.items()
            pieces = [ReadPiece(e.strip, e.in_strip, e.length) for _, e in group]
            reply = yield from self.transport.call_gen(
                self.home,
                server,
                {"op": "read", "file": name, "pieces": pieces},
                accounted_wire_size(self.cluster.monitors, len(pieces)),
                tag=TAG_PFS,
            )
            self._scatter_reply(reply.payload, group, out)
            return out

        tracer = self.cluster.monitors.tracer
        calls = {}
        for server, group in by_server.items():
            pieces = [ReadPiece(e.strip, e.in_strip, e.length) for _, e in group]
            rpc = NULL_SPAN
            if span:
                rpc = tracer.begin(
                    f"pfs-read:{server}",
                    cat="rpc",
                    parent=span,
                    server=server,
                    pieces=len(pieces),
                )
            call = self.transport.call(
                self.home,
                server,
                {"op": "read", "file": name, "pieces": pieces},
                accounted_wire_size(self.cluster.monitors, len(pieces)),
                tag=TAG_PFS,
            )
            if rpc:
                tracer.end_on(rpc, call, status=rpc_status, bytes=rpc_reply_bytes)
            calls[server] = (group, call)

        contain_failures([call for _, call in calls.values()])
        for server, (group, call) in calls.items():
            reply = yield call
            self._scatter_reply(reply.payload, group, out)
        return out

    def read_region(
        self,
        name: str,
        row0: int,
        col0: int,
        n_rows: int,
        n_cols: int,
        span=NULL_SPAN,
    ):
        """Process: read a rectangular sub-raster; value is a 2-D array
        of the file's dtype with shape ``(n_rows, n_cols)``.

        The GIS access pattern: a map window touches a slice of every
        covered row.  All row segments go out as one batched scattered
        read, not ``n_rows`` separate requests."""
        return self.env.process(
            self._read_region(name, row0, col0, n_rows, n_cols, span=span),
            name=f"pfs-read-region:{self.home}",
        )

    def _read_region(
        self,
        name: str,
        row0: int,
        col0: int,
        n_rows: int,
        n_cols: int,
        span=NULL_SPAN,
    ):
        meta = self.metadata.lookup(name)
        width = meta.width  # raises if the file has no raster shape
        height = meta.shape[0]  # type: ignore[index]
        if not (
            0 <= row0 and row0 + n_rows <= height and 0 <= col0
            and col0 + n_cols <= width and n_rows > 0 and n_cols > 0
        ):
            raise PFSError(
                f"region ({row0},{col0})+({n_rows}x{n_cols}) outside raster"
                f" {meta.shape} of {name!r}"
            )
        e_size = meta.element_size
        ranges = [
            (((row0 + r) * width + col0) * e_size, n_cols * e_size)
            for r in range(n_rows)
        ]
        raw = yield from self._read_scattered(name, ranges, span=span)
        return raw.view(meta.dtype).reshape(n_rows, n_cols)

    def read_elems(self, name: str, first: int, count: int):
        """Process: read ``count`` elements from element index ``first``;
        value is an array of the file's dtype."""
        return self.env.process(
            self._read_elems(name, first, count), name=f"pfs-read-elems:{self.home}"
        )

    def _read_elems(self, name: str, first: int, count: int):
        meta = self.metadata.lookup(name)
        offset, length = meta.elem_range_bytes(first, count)
        raw = yield from self._read(name, offset, length)
        return raw.view(meta.dtype)

    def write(self, name: str, offset: int, data: np.ndarray):
        """Process: write ``data`` (any dtype) at byte ``offset``.

        Replicated strips are written on every holding server, keeping
        replicas consistent (the paper's DAS layout maintains copies on
        the neighbouring servers)."""
        return self.env.process(
            self._write(name, offset, data), name=f"pfs-write:{self.home}"
        )

    def _write(self, name: str, offset: int, data: np.ndarray):
        meta = self.metadata.lookup(name)
        raw = np.ascontiguousarray(data).view(np.uint8).reshape(-1)
        if offset + raw.nbytes > meta.size:
            raise PFSError(
                f"write past EOF of {name!r}: {offset}+{raw.nbytes} > {meta.size}"
            )
        extents = meta.layout.map_extent(offset, raw.nbytes)

        # Fan each extent out to every replica of its strip.
        by_server: Dict[str, List[StripExtent]] = {}
        for e in extents:
            for server in meta.layout.replicas(e.strip):
                by_server.setdefault(server, []).append(e)

        single = len(by_server) == 1
        calls = []
        for server, group in by_server.items():
            pieces = [
                WritePiece(
                    e.strip,
                    e.in_strip,
                    raw[e.offset - offset : e.offset - offset + e.length],
                )
                for e in group
            ]
            payload_bytes = sum(p.data.nbytes for p in pieces)
            size = (
                accounted_wire_size(self.cluster.monitors, len(pieces))
                + payload_bytes
            )
            request = {"op": "write", "file": name, "pieces": pieces}
            if single:
                # One holder: nothing to overlap, run the RPC inline.
                yield from self.transport.call_gen(
                    self.home, server, request, size, tag=TAG_PFS
                )
                return raw.nbytes
            calls.append(
                self.transport.call(self.home, server, request, size, tag=TAG_PFS)
            )
        for call in contain_failures(calls):
            yield call
        return raw.nbytes

    def write_elems(self, name: str, first: int, data: np.ndarray):
        """Process: write elements starting at element index ``first``."""
        meta = self.metadata.lookup(name)
        if np.dtype(data.dtype) != meta.dtype:
            raise PFSError(
                f"dtype mismatch writing {name!r}: {data.dtype} != {meta.dtype}"
            )
        return self.write(name, first * meta.element_size, data)

    # -- fault-tolerant read path -------------------------------------------------
    def _guard(self, event):
        """Subprocess translating an event's outcome into a value.

        Racing raw events inside ``any_of`` is ambiguous when one can
        *fail* (the whole condition fails without saying which leg).
        A guard never fails: it finishes with ``("ok", value)`` or
        ``("err", exc)``, and an abandoned guard completing after the
        race was decided is harmless.
        """
        try:
            value = yield event
        except Exception as exc:  # noqa: BLE001 - outcome becomes data
            return ("err", exc)
        return ("ok", value)

    def _fill_positioned_ft(
        self, meta, name, positioned, out, policy, excluded, span=NULL_SPAN
    ):
        """Fill ``out`` from ``(position, extent)`` pairs with recovery.

        One fault-tolerant sub-read per touched server, joined so that a
        sibling's terminal failure is contained until this process
        reaches it at its ``yield``.
        """
        by_server: Dict[str, list] = {}
        for pos, e in positioned:
            by_server.setdefault(e.server, []).append((pos, e))
        jobs = [
            self.env.process(
                self._server_read_ft(
                    meta, name, server, group, out, policy, excluded, span=span
                ),
                name=f"pfs-ft:{self.home}->{server}",
            )
            for server, group in by_server.items()
        ]
        for job in contain_failures(jobs):
            yield job

    def _server_read_ft(
        self, meta, name, server, group, out, policy, excluded, span=NULL_SPAN
    ):
        """Read one server's pieces with timeout, backoff, hedging and
        replica failover, scattering the bytes into ``out``."""
        monitors = self.cluster.monitors
        tracer = monitors.tracer
        pieces = [ReadPiece(e.strip, e.in_strip, e.length) for _, e in group]
        attempt = 1
        hedge_guard = None
        while True:
            rpc = NULL_SPAN
            if span:
                rpc = tracer.begin(
                    f"pfs-read:{server}",
                    cat="rpc",
                    parent=span,
                    server=server,
                    pieces=len(pieces),
                    attempt=attempt,
                )
            call = self.transport.call(
                self.home,
                server,
                {"op": "read", "file": name, "pieces": pieces},
                accounted_wire_size(monitors, len(pieces)),
                tag=TAG_PFS,
            )
            guard = self.env.process(
                self._guard(call), name=f"pfs-ft-guard:{self.home}->{server}"
            )
            deadline = self.env.timeout(policy.rpc_timeout)
            hedge_timer = (
                self.env.timeout(policy.hedge_delay)
                if policy.hedge_delay is not None and hedge_guard is None
                else None
            )
            while True:
                race = [guard, deadline]
                if hedge_guard is not None:
                    race.append(hedge_guard)
                elif hedge_timer is not None:
                    race.append(hedge_timer)
                yield self.env.any_of(race)
                if guard.processed:
                    # The race is decided: lazily cancel the losing
                    # timers so their eventual dispatch is a no-op pop
                    # (the heap entries still pace the clock, so replay
                    # is bit-identical — see Event.cancel).
                    status, value = guard.value
                    if status == "ok":
                        deadline.cancel()
                        if hedge_timer is not None:
                            hedge_timer.cancel()
                        rpc.finish(status="ok", bytes=getattr(value, "size", None))
                        self._scatter_reply(value.payload, group, out)
                        return
                    deadline.cancel()
                    if hedge_timer is not None:
                        hedge_timer.cancel()
                    rpc.finish(status="error", error=type(value).__name__)
                    break  # attempt failed fast (node/link down en route)
                if hedge_guard is not None and hedge_guard.processed:
                    status, value = hedge_guard.value
                    if status == "ok":
                        monitors.counter("faults.hedge_wins").add()
                        span.event("hedge.win", server=server)
                        rpc.finish(status="abandoned")
                        deadline.cancel()
                        if hedge_timer is not None:
                            hedge_timer.cancel()
                        return
                    hedge_guard = None  # hedge died; keep the primary attempt
                    continue
                if hedge_timer is not None and hedge_timer.processed:
                    hedge_timer = None
                    remapped = self._remap_group(
                        meta.layout, group, excluded | {server}
                    )
                    if remapped is not None:
                        monitors.counter("faults.hedged_reads").add()
                        span.event("hedge", server=server)
                        hedge_guard = self.env.process(
                            self._guard(
                                self.env.process(
                                    self._fill_positioned_ft(
                                        meta,
                                        name,
                                        remapped,
                                        out,
                                        policy,
                                        excluded | {server},
                                        span=span,
                                    ),
                                    name=f"pfs-hedge:{self.home}",
                                )
                            ),
                            name=f"pfs-hedge-guard:{self.home}",
                        )
                    continue
                if deadline.processed:
                    monitors.counter("faults.rpc_timeouts").add()
                    span.event("rpc.timeout", server=server, attempt=attempt)
                    rpc.finish(status="timeout")
                    if hedge_timer is not None:
                        hedge_timer.cancel()
                        hedge_timer = None
                    break
            if attempt >= policy.max_attempts:
                break
            monitors.counter("faults.retries").add()
            span.event("retry", server=server, attempt=attempt)
            backoff = policy.delay(attempt)
            if backoff:
                yield self.env.timeout(backoff)
            attempt += 1
        # Primary attempts exhausted.  A hedge already in flight is the
        # cheapest rescue; otherwise remap every piece to a live replica.
        if hedge_guard is not None:
            status, value = yield hedge_guard
            if status == "ok":
                monitors.counter("faults.hedge_wins").add()
                span.event("hedge.win", server=server)
                return
        remapped = self._remap_group(meta.layout, group, excluded | {server})
        if remapped is None:
            raise NodeDownError(
                f"server {server!r} unresponsive and no live replica"
                f" covers its strips of {name!r}"
            )
        monitors.counter("faults.failover_reads").add(len(group))
        span.event("failover", server=server, pieces=len(group))
        yield from self._fill_positioned_ft(
            meta, name, remapped, out, policy, excluded | {server}, span=span
        )

    def _remap_group(self, layout: Layout, group, excluded):
        """Re-home ``(position, extent)`` pairs onto live replicas not in
        ``excluded``; ``None`` when any strip has nowhere to go."""
        remapped = []
        for pos, e in group:
            candidate = None
            for srv in layout.replicas(e.strip):
                if srv not in excluded and self.cluster.node(srv).is_up:
                    candidate = srv
                    break
            if candidate is None:
                return None
            remapped.append((pos, e.rehomed(candidate)))
        return remapped

    @staticmethod
    def _scatter_reply(data, group, out) -> None:
        cursor = 0
        for pos, e in group:
            out[pos : pos + e.length] = data[cursor : cursor + e.length]
            cursor += e.length

    # -- degraded-mode read path -------------------------------------------------
    def _failover(self, layout: Layout, extent: StripExtent) -> StripExtent:
        """Redirect an extent whose holder is down to a live replica.

        The DAS layout's boundary replication doubles as limited fault
        tolerance: reads of replicated strips survive the primary's
        failure.  Unreplicated strips have nowhere to go.
        """
        for candidate in layout.replicas(extent.strip):
            if candidate != extent.server and self.cluster.node(candidate).is_up:
                self.cluster.monitors.counter("faults.failover_reads").add()
                return extent.rehomed(candidate)
        raise NodeDownError(
            f"strip {extent.strip} unreachable: holder {extent.server!r} is down"
            " and no live replica exists"
        )

    # -- helpers ------------------------------------------------------------------------
    def _server(self, name: str) -> DataServer:
        try:
            return self.servers[name]
        except KeyError:
            raise PFSError(f"no data server on node {name!r}") from None

    @staticmethod
    def _group_extents(extents: List[StripExtent]) -> Dict[str, List[StripExtent]]:
        grouped: Dict[str, List[StripExtent]] = {}
        for e in extents:
            grouped.setdefault(e.server, []).append(e)
        return grouped
