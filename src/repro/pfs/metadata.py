"""Metadata service: the PFS namespace.

Tracks every file's size, striping layout and raster geometry.  As in
the paper, metadata operations are not on the critical path of the
evaluated operations (data transfers dwarf them), so lookups are
functional calls without simulated cost; the *data* path is fully
simulated.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..errors import FileExistsInPFS, FileNotFoundInPFS
from .datafile import FileMeta
from .layout import Layout


class MetadataService:
    """The namespace: file name -> :class:`FileMeta`."""

    def __init__(self) -> None:
        self._files: Dict[str, FileMeta] = {}

    def create(
        self,
        name: str,
        size: int,
        layout: Layout,
        dtype=np.float64,
        shape: Optional[Tuple[int, int]] = None,
        **attrs,
    ) -> FileMeta:
        if name in self._files:
            raise FileExistsInPFS(f"file {name!r} already exists")
        meta = FileMeta(
            name=name, size=size, layout=layout, dtype=np.dtype(dtype), shape=shape,
            attrs=dict(attrs),
        )
        self._files[name] = meta
        return meta

    def lookup(self, name: str) -> FileMeta:
        try:
            return self._files[name]
        except KeyError:
            raise FileNotFoundInPFS(f"no such file {name!r}") from None

    def exists(self, name: str) -> bool:
        return name in self._files

    def unlink(self, name: str) -> FileMeta:
        try:
            return self._files.pop(name)
        except KeyError:
            raise FileNotFoundInPFS(f"no such file {name!r}") from None

    def set_layout(self, name: str, layout: Layout) -> None:
        """Swap a file's layout record (used after redistribution)."""
        self.lookup(name).layout = layout

    def listing(self) -> List[str]:
        return sorted(self._files)

    def __len__(self) -> int:
        return len(self._files)

    def __contains__(self, name: str) -> bool:
        return name in self._files
