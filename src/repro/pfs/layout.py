"""Striping layouts: how a logical file maps onto storage servers.

A file in the parallel file system is a one-dimensional byte array cut
into fixed-size *strips* (the paper follows PVFS2's 64 KB default).  A
:class:`Layout` answers, for any byte range, which strips it spans and
which server holds each strip — the paper's Eqs. (1)–(4) for the
round-robin default and Eqs. (14)–(16) for the DAS grouped layout.

Three concrete layouts:

* :class:`RoundRobinLayout` — strip ``i`` on server ``i mod D``
  (the default of most parallel file systems, Fig. 5 of the paper).
* :class:`GroupedLayout` — ``r`` successive strips per server,
  group ``g = i // r`` on server ``g mod D`` (Fig. 7).
* :class:`ReplicatedGroupedLayout` (in :mod:`repro.pfs.replicated`) —
  grouped plus boundary-strip replication (Fig. 9).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, Iterator, List, Sequence, Tuple

from ..errors import LayoutError


class StripExtent:
    """One contiguous piece of a byte range, confined to a single strip.

    ``offset`` is the absolute file offset of the piece; ``in_strip``
    is the piece's offset within the strip on the holding server.

    Plain ``__slots__`` record (one per strip crossing per mapped byte
    range — hot on the data path); use :meth:`rehomed` where
    ``dataclasses.replace`` would have been used.
    """

    __slots__ = ("strip", "server", "offset", "length", "in_strip")

    def __init__(self, strip: int, server: str, offset: int, length: int, in_strip: int):
        self.strip = strip
        self.server = server
        self.offset = offset
        self.length = length
        self.in_strip = in_strip

    @property
    def end(self) -> int:
        return self.offset + self.length

    def rehomed(self, server: str) -> "StripExtent":
        """A copy of this extent held by a different server."""
        return StripExtent(self.strip, server, self.offset, self.length, self.in_strip)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"StripExtent(strip={self.strip}, server={self.server!r},"
            f" offset={self.offset}, length={self.length}, in_strip={self.in_strip})"
        )


class Layout(ABC):
    """Maps byte offsets to strips and strips to servers."""

    def __init__(self, servers: Sequence[str], strip_size: int):
        if not servers:
            raise LayoutError("layout needs at least one server")
        if len(set(servers)) != len(servers):
            raise LayoutError("duplicate server names in layout")
        if strip_size <= 0:
            raise LayoutError(f"strip size must be positive, got {strip_size!r}")
        self.servers: List[str] = list(servers)
        self.strip_size = int(strip_size)

    # -- core mapping (subclasses implement placement) ----------------------
    @property
    def n_servers(self) -> int:
        return len(self.servers)

    def strip_of(self, offset: int) -> int:
        """Strip index containing byte ``offset`` — Eq. (1) with E folded in."""
        if offset < 0:
            raise LayoutError(f"negative file offset {offset!r}")
        return offset // self.strip_size

    def n_strips(self, file_size: int) -> int:
        return -(-file_size // self.strip_size) if file_size > 0 else 0

    @abstractmethod
    def server_index(self, strip: int) -> int:
        """Index (0..D-1) of the *primary* server for ``strip``."""

    def primary_server(self, strip: int) -> str:
        return self.servers[self.server_index(strip)]

    def replicas(self, strip: int) -> List[str]:
        """All servers holding ``strip`` (primary first)."""
        return [self.primary_server(strip)]

    def holds(self, server: str, strip: int) -> bool:
        return server in self.replicas(strip)

    # -- byte-range mapping ------------------------------------------------------
    def map_extent(self, offset: int, length: int, prefer: str | None = None) -> List[StripExtent]:
        """Split ``[offset, offset+length)`` into per-strip extents.

        When ``prefer`` names a server, a replica on that server is
        chosen where one exists (used by local reads of replicated
        boundary strips); otherwise the primary is used.
        """
        if offset < 0 or length < 0:
            raise LayoutError(f"invalid extent ({offset!r}, {length!r})")
        extents: List[StripExtent] = []
        pos = offset
        end = offset + length
        while pos < end:
            strip = pos // self.strip_size
            strip_end = (strip + 1) * self.strip_size
            piece = min(end, strip_end) - pos
            server = self.primary_server(strip)
            if prefer is not None and prefer != server and self.holds(prefer, strip):
                server = prefer
            extents.append(
                StripExtent(
                    strip=strip,
                    server=server,
                    offset=pos,
                    length=piece,
                    in_strip=pos - strip * self.strip_size,
                )
            )
            pos += piece
        return extents

    # -- per-server inventories ------------------------------------------------------
    def primary_strips(self, server: str, file_size: int) -> List[int]:
        """Strips whose primary copy lives on ``server``."""
        return [
            s
            for s in range(self.n_strips(file_size))
            if self.primary_server(s) == server
        ]

    def local_strips(self, server: str, file_size: int) -> List[int]:
        """All strips present on ``server`` (primary or replica)."""
        return [s for s in range(self.n_strips(file_size)) if self.holds(server, s)]

    def primary_runs(self, server: str, file_size: int) -> List[Tuple[int, int]]:
        """Maximal runs ``(first, last)`` of consecutive primary strips on
        ``server`` — the natural processing unit for offloaded kernels."""
        strips = self.primary_strips(server, file_size)
        runs: List[Tuple[int, int]] = []
        for s in strips:
            if runs and runs[-1][1] == s - 1:
                runs[-1] = (runs[-1][0], s)
            else:
                runs.append((s, s))
        return runs

    def strip_extent_bytes(self, strip: int, file_size: int) -> int:
        """Actual byte length of ``strip`` (the last strip may be short)."""
        start = strip * self.strip_size
        if start >= file_size:
            return 0
        return min(self.strip_size, file_size - start)

    def placement_table(self, file_size: int) -> Dict[str, List[int]]:
        """``{server: [strips]}`` for every strip of a file (replicas included)."""
        table: Dict[str, List[int]] = {s: [] for s in self.servers}
        for strip in range(self.n_strips(file_size)):
            for server in self.replicas(strip):
                table[server].append(strip)
        return table

    def storage_bytes(self, file_size: int) -> int:
        """Total bytes stored across all servers, replication included."""
        return sum(
            self.strip_extent_bytes(strip, file_size) * len(self.replicas(strip))
            for strip in range(self.n_strips(file_size))
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<{type(self).__name__} D={self.n_servers}"
            f" strip_size={self.strip_size}>"
        )


class RoundRobinLayout(Layout):
    """Strip ``i`` lives on server ``i mod D`` — Eq. (2) of the paper."""

    def server_index(self, strip: int) -> int:
        if strip < 0:
            raise LayoutError(f"negative strip index {strip!r}")
        return strip % self.n_servers


class GroupedLayout(Layout):
    """``r`` successive strips per server: strip ``i`` lives on server
    ``(i // r) mod D`` — the placement of Eqs. (14)–(16) without
    replication."""

    def __init__(self, servers: Sequence[str], strip_size: int, group: int):
        super().__init__(servers, strip_size)
        if group <= 0:
            raise LayoutError(f"group factor r must be positive, got {group!r}")
        self.group = int(group)

    def server_index(self, strip: int) -> int:
        if strip < 0:
            raise LayoutError(f"negative strip index {strip!r}")
        return (strip // self.group) % self.n_servers

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<GroupedLayout D={self.n_servers} r={self.group}"
            f" strip_size={self.strip_size}>"
        )
