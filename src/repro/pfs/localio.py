"""Local I/O API (paper Fig. 2, "Local I/O API").

"It provides a function that abstracts local strips as a file and
reads local data for Processing Kernels."  A :class:`LocalFile` is
bound to one data server and one file; it lets an offloaded kernel read
element ranges that are present on that server (primary strips *or*
DAS replicas) with disk timing but no network traffic, and tells the
active-storage machinery exactly which ranges are local.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..errors import PFSError
from .dataserver import DataServer, ReadPiece, WritePiece
from .datafile import FileMeta


class LocalFile:
    """A server-local view of one PFS file."""

    def __init__(self, server: DataServer, meta: FileMeta):
        self.server = server
        self.meta = meta
        self.env = server.env

    @property
    def name(self) -> str:
        return self.meta.name

    # -- inventory -------------------------------------------------------------
    def primary_runs(self) -> List[Tuple[int, int]]:
        """Maximal runs of consecutive primary strips on this server."""
        return self.meta.layout.primary_runs(self.server.name, self.meta.size)

    def run_elem_range(self, run: Tuple[int, int]) -> Tuple[int, int]:
        """(first element, count) covered by a strip run (clamped to EOF)."""
        first_strip, last_strip = run
        lo = first_strip * self.meta.layout.strip_size
        hi = min((last_strip + 1) * self.meta.layout.strip_size, self.meta.size)
        e = self.meta.element_size
        return lo // e, (hi - lo) // e

    def is_local(self, offset: int, length: int) -> bool:
        """True iff every byte of the range is held on this server."""
        if offset < 0 or offset + length > self.meta.size:
            return False
        layout = self.meta.layout
        first = offset // layout.strip_size
        last = (offset + length - 1) // layout.strip_size if length > 0 else first
        return all(
            self.server.has_strip(self.name, s) for s in range(first, last + 1)
        )

    def is_local_elems(self, first: int, count: int) -> bool:
        offset, length = self.meta.elem_range_bytes(first, count)
        return self.is_local(offset, length)

    # -- timed reads/writes --------------------------------------------------------
    def read(self, offset: int, length: int):
        """Process: disk-read local bytes; value is uint8[length]."""
        pieces = self._pieces(offset, length)
        return self.server.read_pieces(self.name, pieces)

    def read_elems(self, first: int, count: int):
        """Process: disk-read ``count`` local elements from ``first``;
        value is an array of the file's dtype."""
        return self.env.process(self._read_elems(first, count), name="localio-read")

    def _read_elems(self, first: int, count: int):
        offset, length = self.meta.elem_range_bytes(first, count)
        raw = yield self.read(offset, length)
        return raw.view(self.meta.dtype)

    def write_elems(self, first: int, data: np.ndarray):
        """Process: disk-write elements into local strips.

        Every touched strip must be held locally (primary or replica);
        remote strips are the caller's responsibility."""
        if np.dtype(data.dtype) != self.meta.dtype:
            raise PFSError(
                f"dtype mismatch writing {self.name!r}: {data.dtype} != {self.meta.dtype}"
            )
        raw = np.ascontiguousarray(data).view(np.uint8).reshape(-1)
        offset = first * self.meta.element_size
        pieces = []
        for e in self.meta.layout.map_extent(offset, raw.nbytes):
            if not self.server.has_strip(self.name, e.strip) and not self._creatable(
                e.strip
            ):
                raise PFSError(
                    f"strip {e.strip} of {self.name!r} is not local to"
                    f" {self.server.name!r}"
                )
            pieces.append(
                WritePiece(
                    e.strip,
                    e.in_strip,
                    raw[e.offset - offset : e.offset - offset + e.length],
                )
            )
        return self.server.write_pieces(self.name, pieces)

    def _creatable(self, strip: int) -> bool:
        """A strip may be created locally iff the layout places it here."""
        return self.meta.layout.holds(self.server.name, strip)

    def _pieces(self, offset: int, length: int) -> List[ReadPiece]:
        if not self.is_local(offset, length):
            raise PFSError(
                f"range ({offset}, {length}) of {self.name!r} is not fully local"
                f" to {self.server.name!r}"
            )
        pieces = []
        for e in self.meta.layout.map_extent(offset, length, prefer=self.server.name):
            pieces.append(ReadPiece(e.strip, e.in_strip, e.length))
        return pieces
