"""Facade tying the PFS pieces together for one cluster.

Construct one :class:`ParallelFileSystem` per cluster; it spins up a
:class:`~repro.pfs.dataserver.DataServer` on every storage node, owns
the shared :class:`~repro.pfs.metadata.MetadataService`, and hands out
clients, server-local file views and the redistribution engine.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..errors import PFSError
from ..hw.cluster import Cluster
from .client import PFSClient
from .dataserver import DataServer
from .distribution import Redistributor
from .layout import GroupedLayout, Layout, RoundRobinLayout
from .localio import LocalFile
from .metadata import MetadataService
from .replicated import ReplicatedGroupedLayout


class ParallelFileSystem:
    """One PFS instance over a cluster's storage nodes."""

    def __init__(self, cluster: Cluster, strip_size: Optional[int] = None):
        if not cluster.storage_nodes:
            raise PFSError("cluster has no storage nodes")
        self.cluster = cluster
        self.strip_size = int(strip_size or cluster.sim_config.strip_size)
        self.metadata = MetadataService()
        self.servers: Dict[str, DataServer] = {
            node.name: DataServer(node, cluster.transport, self.metadata)
            for node in cluster.storage_nodes
        }
        self.redistributor = Redistributor(cluster, self.metadata, self.servers)
        self._clients: Dict[str, PFSClient] = {}
        self._recovery = None

    def set_recovery(self, policy) -> None:
        """Attach a :class:`~repro.faults.RecoveryPolicy` to every client
        (existing and future).  ``None`` turns fault tolerance back off."""
        self._recovery = policy
        for client in self._clients.values():
            client.recovery = policy

    @property
    def server_names(self):
        return list(self.servers)

    def client(self, home: str) -> PFSClient:
        """The PFS client endpoint on node ``home`` (cached)."""
        client = self._clients.get(home)
        if client is None:
            client = PFSClient(self.cluster, self.metadata, self.servers, home)
            client.recovery = self._recovery
            self._clients[home] = client
        return client

    def local_file(self, server: str, name: str) -> LocalFile:
        """Server-local view of ``name`` on storage node ``server``."""
        try:
            ds = self.servers[server]
        except KeyError:
            raise PFSError(f"no data server on node {server!r}") from None
        return LocalFile(ds, self.metadata.lookup(name))

    # -- layout factories bound to this PFS's servers & strip size -----------
    def round_robin(self) -> RoundRobinLayout:
        return RoundRobinLayout(self.server_names, self.strip_size)

    def grouped(self, group: int) -> GroupedLayout:
        return GroupedLayout(self.server_names, self.strip_size, group)

    def replicated_grouped(self, group: int, halo_strips: int = 1) -> ReplicatedGroupedLayout:
        return ReplicatedGroupedLayout(
            self.server_names, self.strip_size, group, halo_strips
        )

    def stored_bytes(self) -> int:
        """Total bytes resident across all data servers (replicas included)."""
        return sum(s.stored_bytes() for s in self.servers.values())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<ParallelFileSystem servers={len(self.servers)}"
            f" strip_size={self.strip_size} files={len(self.metadata)}>"
        )
