"""Data server: the per-storage-node strip store and its request loop.

Each storage node runs one :class:`DataServer`.  It owns the *real
bytes* of every strip placed on the node (primary copies and DAS
replicas alike), serves read/write RPCs arriving over the fabric, and
exposes a direct local-access path with disk timing for co-located
components (the active-storage helper reads its strips through
:class:`~repro.pfs.localio.LocalFile`, never through the network).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from ..errors import LinkDownError, NodeDownError, PFSError, StripMissingError
from ..hw.node import Node
from ..net.message import Message
from ..net.transport import Transport
from .cache import StripCache
from .metadata import MetadataService

#: Transport tag carrying PFS data-path traffic.
TAG_PFS = "pfs"

#: Fixed per-request wire overhead (headers), plus per-extent descriptor.
REQUEST_HEADER_BYTES = 128
EXTENT_DESC_BYTES = 32
ACK_BYTES = 64


class ReadPiece:
    """A read of ``length`` bytes at ``in_strip`` within ``strip``.

    Plain ``__slots__`` record: one is built per extent per read on the
    data path, so construction cost matters.
    """

    __slots__ = ("strip", "in_strip", "length")

    def __init__(self, strip: int, in_strip: int, length: int):
        self.strip = strip
        self.in_strip = in_strip
        self.length = length

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ReadPiece(strip={self.strip}, in_strip={self.in_strip}, length={self.length})"


class WritePiece:
    """A write of ``data`` at ``in_strip`` within ``strip``."""

    __slots__ = ("strip", "in_strip", "data")

    def __init__(self, strip: int, in_strip: int, data: np.ndarray):
        self.strip = strip
        self.in_strip = in_strip
        self.data = data

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"WritePiece(strip={self.strip}, in_strip={self.in_strip}, nbytes={self.data.nbytes})"


def request_wire_size(n_extents: int) -> int:
    """On-wire size of a read/write request header."""
    return REQUEST_HEADER_BYTES + EXTENT_DESC_BYTES * n_extents


def accounted_wire_size(monitors, n_extents: int) -> int:
    """Like :func:`request_wire_size`, but books the fixed header and
    the per-extent descriptors into separate counters
    (``pfs.rpc.header_bytes`` / ``pfs.rpc.extent_desc_bytes``).

    The split is what makes batching measurable: a vector-of-extents
    request pays ``REQUEST_HEADER_BYTES`` once per *message* however
    many extents it carries, so amortisation shows up as header bytes
    falling while extent-descriptor (and payload) bytes stay identical.
    """
    monitors.counter("pfs.rpc.header_bytes").add(REQUEST_HEADER_BYTES)
    if n_extents:
        monitors.counter("pfs.rpc.extent_desc_bytes").add(
            EXTENT_DESC_BYTES * n_extents
        )
    return request_wire_size(n_extents)


class DataServer:
    """Strip store + request service for one storage node."""

    def __init__(
        self,
        node: Node,
        transport: Transport,
        metadata: MetadataService,
    ):
        if not node.is_storage or node.disk is None:
            raise PFSError(f"data server requires a storage node, got {node.name!r}")
        self.node = node
        self.env = node.env
        self.transport = transport
        self.metadata = metadata
        self.monitors = node.monitors
        self._strips: Dict[Tuple[str, int], np.ndarray] = {}
        self.cache = StripCache(
            node.spec.server_cache_bytes, monitors=node.monitors, owner=node.name
        )
        self._service_proc = self.env.process(self._serve(), name=f"pfs-server:{node.name}")

    @property
    def name(self) -> str:
        return self.node.name

    # -- strip store -------------------------------------------------------------
    def preload(self, file: str, strip: int, data: np.ndarray) -> None:
        """Place strip bytes instantly (experiment setup, not timed)."""
        self._strips[(file, strip)] = np.asarray(data, dtype=np.uint8).copy()

    def has_strip(self, file: str, strip: int) -> bool:
        return (file, strip) in self._strips

    def strip_bytes(self, file: str, strip: int) -> np.ndarray:
        try:
            return self._strips[(file, strip)]
        except KeyError:
            raise StripMissingError(
                f"server {self.name!r} does not hold strip {strip} of {file!r}"
            ) from None

    def drop_strip(self, file: str, strip: int) -> np.ndarray:
        """Remove (and return) a strip — used during redistribution."""
        data = self.strip_bytes(file, strip)
        del self._strips[(file, strip)]
        self.cache.invalidate((file, strip))
        return data

    def drop_file(self, file: str) -> int:
        """Remove all strips of ``file``; returns the count removed."""
        keys = [k for k in self._strips if k[0] == file]
        for k in keys:
            del self._strips[k]
        self.cache.invalidate_file(file)
        return len(keys)

    def held_strips(self, file: str) -> List[int]:
        return sorted(s for (f, s) in self._strips if f == file)

    def stored_bytes(self) -> int:
        return sum(a.nbytes for a in self._strips.values())

    def _strip_array(self, file: str, strip: int) -> np.ndarray:
        """The strip's byte array, allocating zeros on first write."""
        key = (file, strip)
        arr = self._strips.get(key)
        if arr is None:
            meta = self.metadata.lookup(file)
            length = meta.layout.strip_extent_bytes(strip, meta.size)
            if length <= 0:
                raise PFSError(f"strip {strip} is beyond EOF of {file!r}")
            arr = np.zeros(length, dtype=np.uint8)
            self._strips[key] = arr
        return arr

    # -- timed local I/O (direct path for co-located components) ----------------
    def read_pieces(self, file: str, pieces: List[ReadPiece]):
        """Process: disk-read the pieces; value is the concatenated bytes."""
        return self.env.process(self._read_pieces(file, pieces), name=f"dsr:{self.name}")

    def read_pieces_gen(self, file: str, pieces: List[ReadPiece]):
        """Generator form of :meth:`read_pieces` for ``yield from``."""
        return self._read_pieces(file, pieces)

    def _read_pieces(self, file: str, pieces: List[ReadPiece]):
        total = sum(p.length for p in pieces)
        assert self.node.disk is not None
        # Page-cache model: bytes in cached strips skip the disk.
        cold = total
        if self.cache.enabled:
            cold = 0
            for p in pieces:
                if self.cache.lookup((file, p.strip)):
                    continue
                cold += p.length
                self.cache.insert(
                    (file, p.strip), self.strip_bytes(file, p.strip).nbytes
                )
            self.monitors.counter(f"pfs.cache_hit_bytes.{self.name}").add(total - cold)
        if cold:
            yield self.node.disk.read(cold)
        out = np.empty(total, dtype=np.uint8)
        pos = 0
        for p in pieces:
            strip = self.strip_bytes(file, p.strip)
            if p.in_strip + p.length > strip.nbytes:
                raise PFSError(
                    f"read past strip end: strip {p.strip} of {file!r}"
                    f" ({p.in_strip}+{p.length} > {strip.nbytes})"
                )
            out[pos : pos + p.length] = strip[p.in_strip : p.in_strip + p.length]
            pos += p.length
        return out

    def write_pieces(self, file: str, pieces: List[WritePiece]):
        """Process: disk-write the pieces into the strip store."""
        return self.env.process(self._write_pieces(file, pieces), name=f"dsw:{self.name}")

    def write_pieces_gen(self, file: str, pieces: List[WritePiece]):
        """Generator form of :meth:`write_pieces` for ``yield from``."""
        return self._write_pieces(file, pieces)

    def _write_pieces(self, file: str, pieces: List[WritePiece]):
        total = sum(p.data.nbytes for p in pieces)
        assert self.node.disk is not None
        yield self.node.disk.write(total)
        if self.cache.enabled:
            # Write-through: freshly written strips are memory-resident.
            for p in pieces:
                arr = self._strip_array(file, p.strip)
                self.cache.insert((file, p.strip), arr.nbytes)
        for p in pieces:
            arr = self._strip_array(file, p.strip)
            data = np.asarray(p.data, dtype=np.uint8)
            if p.in_strip + data.nbytes > arr.nbytes:
                raise PFSError(
                    f"write past strip end: strip {p.strip} of {file!r}"
                    f" ({p.in_strip}+{data.nbytes} > {arr.nbytes})"
                )
            arr[p.in_strip : p.in_strip + data.nbytes] = data
        return total

    # -- network request service ----------------------------------------------------
    def _serve(self):
        while True:
            msg = yield self.transport.recv(self.name, tag=TAG_PFS)
            self.env.process(self._handle(msg), name=f"pfs-handle:{self.name}")

    def _handle(self, msg: Message):
        if not self.node.is_up:
            # A crashed server cannot answer; the request that was
            # already in its mailbox vanishes with the process state.
            self.monitors.counter("faults.dropped_requests").add()
            return
        request = msg.payload
        op = request.get("op")
        # Per-request control-plane work on the node's engine: this is
        # the load the paper attributes to "serving the requests from
        # other storage nodes".
        yield self.node.cpu.service(self.node.spec.rpc_overhead, f"pfs-{op}")
        if op == "read":
            data = yield from self._read_pieces(request["file"], request["pieces"])
            reply = self.transport.reply_gen(msg, data, data.nbytes)
        elif op == "write":
            total = yield from self._write_pieces(request["file"], request["pieces"])
            reply = self.transport.reply_gen(msg, {"written": total}, ACK_BYTES)
        else:
            raise PFSError(f"unknown PFS op {op!r} from {msg.src!r}")
        try:
            yield from reply
        except (NodeDownError, LinkDownError):
            # The requester (or the path back to it) died while we were
            # serving; nothing left to tell anyone.
            self.monitors.counter("faults.dropped_replies").add()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<DataServer {self.name} strips={len(self._strips)}>"
