"""Server-side strip cache (page-cache model).

Real parallel-file-system servers serve hot strips from memory; only
cold reads touch the disk.  :class:`StripCache` is a byte-budgeted LRU
over strip identifiers — it tracks *which strips are memory-resident*,
not their contents (the data servers already hold the real bytes; the
cache only decides whether an access costs disk time).

When given a :class:`~repro.sim.monitor.MonitorHub`, every hit, miss
and eviction is mirrored into the cluster-wide counters
``pfs.cache.hits.<node>`` / ``.misses.<node>`` / ``.evictions.<node>``
so the cache ablation can report hit ratios from the monitors alone.

Disabled by default (budget 0) so the calibrated experiment timings are
unaffected; the cache ablation enables it explicitly.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Hashable, Optional, Tuple

from ..errors import PFSError
from ..sim.monitor import MonitorHub

Key = Tuple[str, int]  # (file name, strip index)


class StripCache:
    """Byte-budgeted LRU of memory-resident strips."""

    def __init__(
        self,
        budget_bytes: int,
        monitors: Optional[MonitorHub] = None,
        owner: str = "",
    ):
        if budget_bytes < 0:
            raise PFSError(f"cache budget must be >= 0, got {budget_bytes!r}")
        self.budget = int(budget_bytes)
        self._resident: "OrderedDict[Key, int]" = OrderedDict()
        self._used = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        if monitors is not None and not owner:
            raise PFSError("a monitored StripCache needs an owner name")
        self._hit_counter = monitors.counter(f"pfs.cache.hits.{owner}") if monitors else None
        self._miss_counter = monitors.counter(f"pfs.cache.misses.{owner}") if monitors else None
        self._evict_counter = (
            monitors.counter(f"pfs.cache.evictions.{owner}") if monitors else None
        )

    @property
    def enabled(self) -> bool:
        return self.budget > 0

    @property
    def used_bytes(self) -> int:
        return self._used

    def lookup(self, key: Key) -> bool:
        """True (and refresh recency) iff the strip is resident.

        Counts a hit/miss either way; callers charge disk time on miss.
        """
        if not self.enabled:
            return False
        if key in self._resident:
            self._resident.move_to_end(key)
            self.hits += 1
            if self._hit_counter is not None:
                self._hit_counter.add()
            return True
        self.misses += 1
        if self._miss_counter is not None:
            self._miss_counter.add()
        return False

    def insert(self, key: Key, size: int) -> None:
        """Make a strip resident, evicting LRU strips to fit.

        A strip larger than the whole budget is not cached.
        """
        if not self.enabled or size > self.budget:
            return
        if key in self._resident:
            self._used -= self._resident.pop(key)
        while self._used + size > self.budget and self._resident:
            _, evicted = self._resident.popitem(last=False)
            self._used -= evicted
            self.evictions += 1
            if self._evict_counter is not None:
                self._evict_counter.add()
        self._resident[key] = size
        self._used += size

    def invalidate(self, key: Key) -> None:
        if key in self._resident:
            self._used -= self._resident.pop(key)

    def invalidate_file(self, file: str) -> int:
        victims = [k for k in self._resident if k[0] == file]
        for k in victims:
            self.invalidate(k)
        return len(victims)

    def clear(self) -> int:
        """Drop every resident strip (a crashed server loses its page
        cache); returns the number of strips dropped."""
        dropped = len(self._resident)
        self._resident.clear()
        self._used = 0
        return dropped

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __len__(self) -> int:
        return len(self._resident)

    def __contains__(self, key: Key) -> bool:
        return key in self._resident

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<StripCache {self._used}/{self.budget} B"
            f" strips={len(self._resident)} hit_rate={self.hit_rate:.0%}>"
        )
