"""The DAS improved data distribution (paper Section III-D, Fig. 9).

``r`` successive strips are grouped on one server; additionally the
first ``halo_strips`` strips of each group are replicated onto the
server holding the *previous* group, and the last ``halo_strips``
strips onto the server holding the *next* group.  With a dependence
reach of at most ``halo_strips`` strips, every server can then process
all of its primary strips from purely local data — no inter-server
transfer during the offloaded computation.

Storage overhead is ``2 * halo_strips / r`` of the file size (the
paper's "reduced to 2/r" with the implicit one-strip halo).
"""

from __future__ import annotations

from typing import List, Sequence

from ..errors import LayoutError
from .layout import GroupedLayout


class ReplicatedGroupedLayout(GroupedLayout):
    """Grouped layout plus boundary-strip replication onto neighbours."""

    def __init__(
        self,
        servers: Sequence[str],
        strip_size: int,
        group: int,
        halo_strips: int = 1,
    ):
        super().__init__(servers, strip_size, group)
        if halo_strips < 0:
            raise LayoutError(f"halo_strips must be >= 0, got {halo_strips!r}")
        if halo_strips > group:
            raise LayoutError(
                f"halo_strips ({halo_strips}) cannot exceed the group factor"
                f" ({group}); dependent data would span whole groups"
            )
        self.halo_strips = int(halo_strips)

    def replicas(self, strip: int) -> List[str]:
        """Primary server first, then the neighbour(s) replicating it."""
        primary = self.primary_server(strip)
        out = [primary]
        if self.halo_strips == 0:
            return out
        pos_in_group = strip % self.group
        group = strip // self.group
        # Head of a group -> replicated on the previous group's server.
        if pos_in_group < self.halo_strips and group > 0:
            prev_server = self.servers[(group - 1) % self.n_servers]
            if prev_server not in out:
                out.append(prev_server)
        # Tail of a group -> replicated on the next group's server.
        if pos_in_group >= self.group - self.halo_strips:
            next_server = self.servers[(group + 1) % self.n_servers]
            if next_server not in out:
                out.append(next_server)
        return out

    def capacity_overhead(self) -> float:
        """Fractional extra storage vs. an unreplicated layout (≈ 2h/r)."""
        return 2.0 * self.halo_strips / self.group

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<ReplicatedGroupedLayout D={self.n_servers} r={self.group}"
            f" halo={self.halo_strips} strip_size={self.strip_size}>"
        )
