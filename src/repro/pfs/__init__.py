"""Simulated parallel file system (PVFS2-like, per the paper)."""

from .client import PFSClient
from .datafile import FileMeta
from .dataserver import TAG_PFS, DataServer, ReadPiece, WritePiece
from .distribution import TAG_REDIST, Redistributor, plan_moves, planned_bytes
from .filesystem import ParallelFileSystem
from .layout import GroupedLayout, Layout, RoundRobinLayout, StripExtent
from .localio import LocalFile
from .metadata import MetadataService
from .replicated import ReplicatedGroupedLayout

__all__ = [
    "DataServer",
    "FileMeta",
    "GroupedLayout",
    "Layout",
    "LocalFile",
    "MetadataService",
    "PFSClient",
    "ParallelFileSystem",
    "ReadPiece",
    "Redistributor",
    "ReplicatedGroupedLayout",
    "RoundRobinLayout",
    "StripExtent",
    "TAG_PFS",
    "TAG_REDIST",
    "plan_moves",
    "planned_bytes",
    "WritePiece",
]
