"""Redistribution engine: move a file between striping layouts.

DAS "calculates an appropriate data distribution method ... and
arranges the data to minimize data movement among storage servers"
(paper Section III-A, workflow step 4 "Reconfig Parallel File System").
This component executes that reconfiguration: given a file and a target
layout, it ships every strip that needs a new holder from a current
holder to the new one (disk read, wire transfer, disk write), drops
copies that are no longer wanted, and updates the metadata record.

Transfers are batched per (source, destination) server pair so the cost
is dominated by bytes, not message count, and all pair-flows run
concurrently — the fabric and NIC models serialise them where they
genuinely contend.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from ..errors import PFSError
from ..hw.cluster import Cluster
from .dataserver import DataServer, ReadPiece, WritePiece, request_wire_size
from .layout import Layout
from .metadata import MetadataService

#: Transport tag for redistribution traffic (accounted separately).
TAG_REDIST = "redist"


def plan_moves(meta, new_layout: Layout) -> Dict[Tuple[str, str], List[int]]:
    """``{(src, dst): [strips]}`` transfers required to move ``meta``'s
    file from its current layout to ``new_layout``.

    A strip is shipped to each new holder that lacks it, from its
    current primary; strips whose holder set is unchanged move nothing.
    Pure function of the two layouts — usable by the decision engine
    before any redistribution is committed.
    """
    old = meta.layout
    if new_layout.strip_size != old.strip_size:
        raise PFSError(
            "redistribution cannot change the strip size"
            f" ({old.strip_size} -> {new_layout.strip_size})"
        )
    moves: Dict[Tuple[str, str], List[int]] = {}
    for strip in range(old.n_strips(meta.size)):
        src = old.primary_server(strip)
        current = set(old.replicas(strip))
        for dst in new_layout.replicas(strip):
            if dst not in current:
                moves.setdefault((src, dst), []).append(strip)
    return moves


def planned_bytes(meta, new_layout: Layout) -> int:
    """Total bytes :func:`plan_moves` would put on the wire."""
    return sum(
        meta.layout.strip_extent_bytes(strip, meta.size)
        for strips in plan_moves(meta, new_layout).values()
        for strip in strips
    )


class Redistributor:
    """Executes layout changes for files already resident in the PFS."""

    def __init__(
        self,
        cluster: Cluster,
        metadata: MetadataService,
        servers: Dict[str, DataServer],
    ):
        self.cluster = cluster
        self.env = cluster.env
        self.transport = cluster.transport
        self.metadata = metadata
        self.servers = servers
        self.monitors = cluster.monitors

    def plan(self, name: str, new_layout: Layout) -> Dict[Tuple[str, str], List[int]]:
        """Transfers required to reach ``new_layout`` (see :func:`plan_moves`)."""
        return plan_moves(self.metadata.lookup(name), new_layout)

    def predicted_bytes(self, name: str, new_layout: Layout) -> int:
        """Total bytes the redistribution will put on the wire."""
        return planned_bytes(self.metadata.lookup(name), new_layout)

    def redistribute(self, name: str, new_layout: Layout):
        """Process: perform the layout change; value is bytes moved."""
        return self.env.process(
            self._redistribute(name, new_layout), name=f"redistribute:{name}"
        )

    def _redistribute(self, name: str, new_layout: Layout):
        meta = self.metadata.lookup(name)
        old_layout = meta.layout
        moves = self.plan(name, new_layout)

        flows = [
            self.env.process(
                self._flow(name, src, dst, strips), name=f"redist:{src}->{dst}"
            )
            for (src, dst), strips in moves.items()
        ]
        moved = 0
        for flow in flows:
            moved += yield flow

        # Drop copies the new layout no longer wants.
        for strip in range(old_layout.n_strips(meta.size)):
            wanted = set(new_layout.replicas(strip))
            for server in old_layout.replicas(strip):
                if server not in wanted and self.servers[server].has_strip(name, strip):
                    self.servers[server].drop_strip(name, strip)

        self.metadata.set_layout(name, new_layout)
        self.monitors.counter("pfs.redistribute_bytes").add(moved)
        return moved

    def _flow(self, name: str, src: str, dst: str, strips: List[int]):
        meta = self.metadata.lookup(name)
        src_server = self.servers[src]
        dst_server = self.servers[dst]

        read_pieces = [
            ReadPiece(s, 0, meta.layout.strip_extent_bytes(s, meta.size))
            for s in strips
        ]
        data = yield src_server.read_pieces(name, read_pieces)
        total = int(data.nbytes)
        if src != dst:
            yield self.transport.send(
                src, dst, total + request_wire_size(len(strips)), None, tag=TAG_REDIST
            )
        write_pieces = []
        pos = 0
        for piece in read_pieces:
            write_pieces.append(
                WritePiece(piece.strip, 0, data[pos : pos + piece.length])
            )
            pos += piece.length
        yield dst_server.write_pieces(name, write_pieces)
        return total
