"""Load-aware execution of admitted requests against a scheme backend.

One :class:`LoadAwareExecutor` serves every dispatched request of a
run.  Under TS it fans the kernel out to the compute nodes; under NAS
it offloads unconditionally on the current layout (the paper's normal
active storage); under DAS it consults the decision engine *through a*
:class:`~repro.core.decision_cache.DecisionCache` — under serving load
the Fig. 3 workflow repeats for thousands of requests over a handful of
(kernel, layout, geometry) combinations, so verdicts are memoised — and
then applies a load-aware twist the one-shot schemes don't have:

* the predicted offload and normal-I/O byte costs are each inflated by
  the *current* in-flight depth of their target partition (requests
  already executing on the storage servers vs. the compute nodes), and
* the request is diverted to whichever path is effectively cheaper
  *right now*, so a pile-up on the storage partition spills work back
  to the idle compute partition instead of deepening the pile.

Redistribution under concurrency is fenced per file: one request takes
the file's lock, re-consults the engine on fresh metadata (another
request may have redistributed first), moves the data, and invalidates
the decision cache for the stale geometry.

Batched dispatch (scheduler ``batch_max > 1``) lands here as
:meth:`LoadAwareExecutor.execute_batch`: one backend pass — one
DecisionCache verdict per batch key, one offload fan-out or one
client-side compute — serves every member, while the in-flight load
signal still counts each *underlying request* so the diversion bias
sees true depth, not fan-out count.

Output files are unique per request (``<file>.out.<req_id>``) and are
dropped — metadata and strips — as soon as the request settles, so a
long serving run's footprint stays bounded by the in-flight window.
Every produced output is CRC'd into :attr:`LoadAwareExecutor.digests`
before the drop, so runs can prove batched and unbatched execution
yield bit-identical results.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..core.das_client import ActiveStorageClient
from ..core.decision import DecisionEngine, OffloadDecision
from ..core.decision_cache import DecisionCache
from ..core.request import ActiveRequest
from ..errors import ServeError
from ..kernels.base import KernelRegistry, default_registry
from ..obs.span import NULL_SPAN
from ..pfs.filesystem import ParallelFileSystem
from ..schemes.nas import NormalActiveStorageScheme
from ..schemes.traditional import TraditionalScheme
from ..sim.resources import ReadWriteLock
from .batch import batch_key, combine_digests, digest_bytes
from .workload import ServeRequest

#: Backends the serving layer can drive.
SCHEMES = ("TS", "NAS", "DAS")


class LoadAwareExecutor:
    """Execute dispatched requests under one scheme, load-aware for DAS."""

    def __init__(
        self,
        pfs: ParallelFileSystem,
        scheme: str = "DAS",
        registry: Optional[KernelRegistry] = None,
        decision_cache: Optional[DecisionCache] = None,
        load_bias: float = 0.75,
        recovery=None,
        decision_ttl: Optional[float] = None,
    ):
        if scheme not in SCHEMES:
            raise ServeError(f"unknown scheme {scheme!r}; expected one of {SCHEMES}")
        if load_bias < 0:
            raise ServeError(f"load_bias must be >= 0, got {load_bias!r}")
        self.pfs = pfs
        self.cluster = pfs.cluster
        self.env = pfs.cluster.env
        self.scheme = scheme
        self.registry = registry or default_registry
        self.load_bias = float(load_bias)
        self.monitors = self.cluster.monitors

        self.cache: Optional[DecisionCache] = None
        self.client: Optional[ActiveStorageClient] = None
        self._nas: Optional[NormalActiveStorageScheme] = None
        self._ts = TraditionalScheme(pfs, registry=self.registry)
        if scheme == "NAS":
            # Brings up the per-node AS helpers (exactly one client may
            # start them per cluster).
            self._nas = NormalActiveStorageScheme(pfs, registry=self.registry)
            self._nas.client.recovery = recovery
        elif scheme == "DAS":
            engine = DecisionEngine()
            self.cache = decision_cache or DecisionCache(
                engine,
                ttl=decision_ttl,
                clock=(lambda: self.env.now) if decision_ttl is not None else None,
            )
            self.client = ActiveStorageClient(
                pfs, home=self._home(), engine=engine, registry=self.registry
            )
            self.client.recovery = recovery

        #: In-flight request count per partition; the load signal.
        #: Batched fan-outs count every underlying request, not one.
        self._inflight: Dict[str, int] = {"offload": 0, "normal": 0}
        self._gauges = {
            path: self.monitors.gauge(f"serve.inflight.{path}")
            for path in self._inflight
        }
        #: Per-file reader-writer fence: normal-path and offload reads
        #: hold the read side; redistribution holds the write side, so a
        #: move never races an in-flight read over the same strips.
        self._file_locks: Dict[str, ReadWriteLock] = {}
        #: req_id -> CRC-32 of the request's produced output bytes.
        self.digests: Dict[int, int] = {}

    def _home(self) -> str:
        names = self.cluster.compute_names
        return names[0] if names else self.cluster.storage_names[0]

    # -- scheduler interface --------------------------------------------------
    def request_cost(self, req: ServeRequest) -> int:
        """DWRR cost of a request: the bytes of input it will consume."""
        return int(self.pfs.metadata.lookup(req.file).size)

    def execute(self, req: ServeRequest, span=NULL_SPAN):
        """Process: run ``req`` end to end; value is a result dict.

        ``span`` is the dispatcher's attempt span (tracing only): the
        executor parents its fence/decision/backend spans under it.
        """
        return self.env.process(
            self._execute([req], span=span), name=f"serve-exec:{req.req_id}"
        )

    def execute_batch(self, batch: List[ServeRequest], span=NULL_SPAN):
        """Process: serve every request of ``batch`` — all sharing one
        ``(file, kernel, params)`` key — with a single backend pass."""
        leader = batch[0]
        key = batch_key(leader)
        for member in batch[1:]:
            if batch_key(member) != key:
                raise ServeError(
                    f"batch mixes keys: {batch_key(member)} != {key}"
                )
        return self.env.process(
            self._execute(list(batch), span=span),
            name=f"serve-exec:{leader.req_id}x{len(batch)}",
        )

    # -- execution ------------------------------------------------------------
    def _execute(self, batch: List[ServeRequest], span=NULL_SPAN):
        if span is None:
            span = NULL_SPAN
        if self.scheme == "TS":
            result = yield from self._run_normal(batch, span)
        elif self.scheme == "NAS":
            result = yield from self._run_nas(batch, span)
        else:
            result = yield from self._run_das(batch, span)
        return result

    def _enter(self, path: str, n: int = 1) -> None:
        self._inflight[path] += n
        self._gauges[path].adjust(+n)

    def _exit(self, path: str, n: int = 1) -> None:
        self._inflight[path] -= n
        self._gauges[path].adjust(-n)

    def _file_lock(self, file: str) -> ReadWriteLock:
        lock = self._file_locks.get(file)
        if lock is None:
            lock = self._file_locks[file] = ReadWriteLock(self.env)
        return lock

    def _read_fence(self, file: str):
        """Claim the read side of ``file``'s fence.  Uncontended grants
        are synchronous (no event), so fault-free runs where nothing
        redistributes are event-for-event unchanged; callers must only
        ``yield`` the claim when it is not already triggered."""
        return self._file_lock(file).acquire_read()

    def write_fence(self, file: str):
        """Claim the write side of ``file``'s fence — the same lock the
        serving reads hold.  Redistribution (load-driven here, or
        partition resizes from the autoscale controller) must run under
        this claim so a move never races an in-flight read."""
        return self._file_lock(file).acquire_write()

    def _fence_span(self, span, name: str, file: str):
        """Span a *contended* fence wait (uncontended grants are
        synchronous and span-free, like they are event-free)."""
        if not span:
            return NULL_SPAN
        return self.monitors.tracer.begin(
            name, cat="fence", parent=span, file=file
        )

    def _run_normal(self, batch: List[ServeRequest], span=NULL_SPAN):
        """Client-side compute (the TS path; also the DAS fallback)."""
        leader = batch[0]
        n = len(batch)
        claim = self._read_fence(leader.file)
        if not claim.triggered:
            fence = self._fence_span(span, "fence.read", leader.file)
            yield claim
            fence.finish()
        self._enter("normal", n)
        self.monitors.counter("serve.path.normal").add(n)
        sink: Dict[str, tuple] = {}
        options: Dict[str, object] = {"results_sink": sink}
        work = NULL_SPAN
        if span:
            work = self.monitors.tracer.begin(
                "normal-io",
                cat="normal",
                parent=span,
                file=leader.file,
                kernel=leader.operator,
            )
            options["trace_span"] = work
        try:
            yield from self._ts._serve(
                leader.operator, leader.file, leader.output, options,
            )
            self._record_client_digest(batch, sink)
            span.event("gather", members=n)
        finally:
            work.finish()
            self._exit("normal", n)
            claim.release()
        return {"path": "normal", "batched": n}

    def _run_nas(self, batch: List[ServeRequest], span=NULL_SPAN):
        """Unconditional offload on the current (round-robin) layout."""
        assert self._nas is not None
        leader = batch[0]
        n = len(batch)
        claim = self._read_fence(leader.file)
        if not claim.triggered:
            fence = self._fence_span(span, "fence.read", leader.file)
            yield claim
            fence.finish()
        self._enter("offload", n)
        self.monitors.counter("serve.path.offload").add(n)
        options: Dict[str, object] = {}
        work = NULL_SPAN
        if span:
            work = self.monitors.tracer.begin(
                "offload",
                cat="offload",
                parent=span,
                file=leader.file,
                kernel=leader.operator,
            )
            options["trace_span"] = work
        try:
            yield from self._nas._serve(
                leader.operator, leader.file, leader.output, options
            )
            self._record_output_digest(batch, leader.output)
            span.event("gather", members=n)
        finally:
            work.finish()
            self._exit("offload", n)
            self._drop_output(leader.output)
            claim.release()
        return {"path": "offload", "batched": n}

    # -- the DAS serving path ------------------------------------------------
    def _run_das(self, batch: List[ServeRequest], span=NULL_SPAN):
        assert self.client is not None and self.cache is not None
        leader = batch[0]
        n = len(batch)
        meta = self.pfs.metadata.lookup(leader.file)
        # One Fig. 3 consult per batch key, not per member.
        hits_before = self.cache.stats.hits
        decision = self.cache.decide(
            meta, leader.operator, pipeline_length=leader.pipeline_length
        )
        offload = decision.accept and self._prefer_offload(decision)
        if decision.accept and not offload:
            self.monitors.counter("serve.diverted").add(n)
        degraded = offload and self._file_degraded(meta)
        if degraded:
            # Offload must run where the primary strips live; with any
            # holder down the file is not offloadable — serve it as
            # normal I/O (whose reads can fail over to replicas).
            self.monitors.counter("faults.degraded_decisions").add(n)
            offload = False
        span.event(
            "decision",
            outcome=decision.outcome,
            cache="hit" if self.cache.stats.hits > hits_before else "miss",
            offload=offload,
            diverted=bool(decision.accept and not offload and not degraded),
            degraded=bool(degraded),
        )
        if offload and decision.redistribute_to is not None:
            decision = yield from self._ensure_layout(leader, span)
            offload = decision.accept
        if not offload:
            result = yield from self._run_normal(batch, span)
            result["decision"] = decision.outcome
            return result

        claim = self._read_fence(leader.file)
        if not claim.triggered:
            fence = self._fence_span(span, "fence.read", leader.file)
            yield claim
            fence.finish()
        self._enter("offload", n)
        self.monitors.counter("serve.path.offload").add(n)
        work = NULL_SPAN
        if span:
            work = self.monitors.tracer.begin(
                "offload",
                cat="offload",
                parent=span,
                file=leader.file,
                kernel=leader.operator,
                members=n,
            )
        try:
            requests = [
                ActiveRequest(
                    operator=member.operator,
                    file=member.file,
                    output=member.output,
                    pipeline_length=member.pipeline_length,
                )
                for member in batch
            ]
            yield self.client.execute_offload_batch(
                requests, decision, span=work
            )
            self._record_output_digest(batch, leader.output)
            span.event("gather", members=n)
        finally:
            work.finish()
            self._exit("offload", n)
            self._drop_output(leader.output)
            claim.release()
        return {"path": "offload", "decision": decision.outcome, "batched": n}

    def _file_degraded(self, meta) -> bool:
        """True when any server holding the file's strips is down."""
        return any(
            not self.cluster.node(server).is_up for server in meta.layout.servers
        )

    # -- result digests -------------------------------------------------------
    def _record_output_digest(self, batch: List[ServeRequest], output: str) -> None:
        """CRC the produced output (instant verification read) and credit
        it to every member — one execution, N identical results."""
        data = self.pfs.client(self._home()).collect(output)
        digest = digest_bytes(np.ascontiguousarray(data))
        for member in batch:
            self.digests[member.req_id] = digest

    def _record_client_digest(self, batch: List[ServeRequest], sink) -> None:
        """CRC the client-resident results of a normal-path run (results
        never hit the PFS; concatenate the workers' shares in file order)."""
        shares = sorted(sink.values(), key=lambda item: item[0])
        buf = b"".join(
            np.ascontiguousarray(arr).tobytes() for _, arr in shares
        )
        digest = digest_bytes(buf)
        for member in batch:
            self.digests[member.req_id] = digest

    def result_digest(self) -> Dict[str, int]:
        """Order-independent roll-up of every request's output CRC."""
        return {
            "count": len(self.digests),
            "crc": combine_digests(self.digests.items()),
        }

    def _prefer_offload(self, decision: OffloadDecision) -> bool:
        """Compare predicted costs inflated by current partition depth."""
        n_storage = max(1, len(self.cluster.storage_names))
        n_compute = max(1, len(self.cluster.compute_names))
        bias = self.load_bias
        effective_offload = decision.offload_cost() * (
            1.0 + bias * self._inflight["offload"] / n_storage
        )
        effective_normal = float(decision.prediction_current.normal_bytes) * (
            1.0 + bias * self._inflight["normal"] / n_compute
        )
        return effective_offload <= effective_normal

    def _ensure_layout(self, req: ServeRequest, span=NULL_SPAN):
        """Serialise redistribution of one file across concurrent requests.

        Returns the decision that holds *after* the file is (found to
        be) in its improved layout; the decision cache is invalidated
        for the pre-move geometry.
        """
        assert self.client is not None and self.cache is not None
        claim = self.write_fence(req.file)
        fence = NULL_SPAN
        if not claim.triggered:
            fence = self._fence_span(span, "fence.write", req.file)
        yield claim
        fence.finish()
        try:
            # Re-consult on fresh metadata: the lock's previous holder
            # may have already moved the file.
            meta = self.pfs.metadata.lookup(req.file)
            decision = self.cache.decide(
                meta, req.operator, pipeline_length=req.pipeline_length
            )
            if decision.accept and decision.redistribute_to is not None:
                old_layout = meta.layout  # the move swaps meta.layout in place
                move = NULL_SPAN
                if span:
                    move = self.monitors.tracer.begin(
                        "redistribute", cat="redistribute", parent=span,
                        file=req.file,
                    )
                moved = yield self.pfs.redistributor.redistribute(
                    req.file, decision.redistribute_to
                )
                move.finish(bytes=int(moved))
                self.cache.invalidate_meta(meta, layout=old_layout)
                self.monitors.counter("serve.redistributions").add()
                decision = self.cache.decide(
                    self.pfs.metadata.lookup(req.file),
                    req.operator,
                    pipeline_length=req.pipeline_length,
                )
        finally:
            claim.release()
        return decision

    # -- output lifecycle ----------------------------------------------------
    def _drop_output(self, output: str) -> None:
        """Free an offload's output file so long runs stay bounded."""
        if self.pfs.metadata.exists(output):
            self.pfs.metadata.unlink(output)
        for server in self.pfs.servers.values():
            server.drop_file(output)
