"""Batched offload fan-out: amortise work across same-key requests.

The paper's central lever is amortisation — an expensive preparation
step (redistribution, boundary replicas) only pays off when its cost is
shared across successive operations (PAPER §V).  The serving analogue
at request granularity: N admitted requests asking for the same
``(file, kernel, params)`` read the same bytes through the same kernel,
so they can share ONE offload fan-out — per storage server one RPC
header, one halo assembly, one strip-cache pass, one kernel pass — with
the single result scattered back to every member's completion.

This module holds the mechanism-free pieces — batch keying, window
merging (draining matching requests out of the tenant queues) and
result scatter — so the DWRR dispatcher in
:mod:`repro.serve.scheduler` stays the single owner of fairness
decisions and :mod:`repro.serve.dispatch` the single owner of backend
choice.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Deque, Dict, Hashable, Iterable, List, Tuple

from .workload import ServeRequest

BatchKey = Tuple[Hashable, ...]


def batch_key(req: ServeRequest) -> BatchKey:
    """The dependence-footprint identity of a request.

    Requests agreeing on this key consume the same input bytes through
    the same kernel with the same pipeline amortisation, so one fan-out
    serves them all.  The output name is deliberately excluded — it is
    unique per request and exists only so outcomes can be scattered.
    """
    return (req.file, req.operator, max(1, int(req.pipeline_length)))


def merge_window(
    queues: Dict[str, Deque[ServeRequest]],
    leader: ServeRequest,
    batch_max: int,
) -> List[ServeRequest]:
    """Drain up to ``batch_max - 1`` queued requests sharing ``leader``'s
    key, across every tenant queue (window merging).

    Matching requests are *removed* from their queues and returned in
    drain order; the caller charges each rider's cost to its own
    tenant's deficit (fairness is per tenant, not per dispatch) and
    settles riders whose deadline already passed.  Deterministic:
    tenants are scanned in queue-dict insertion order, each queue front
    to back.
    """
    key = batch_key(leader)
    room = int(batch_max) - 1
    riders: List[ServeRequest] = []
    if room <= 0:
        return riders
    for queue in queues.values():
        if room <= 0:
            break
        matched = [r for r in queue if batch_key(r) == key][:room]
        for r in matched:
            queue.remove(r)
        riders.extend(matched)
        room -= len(matched)
    return riders


def scatter_result(batch: List[ServeRequest], result, finished: float) -> None:
    """Write one shared fan-out result back onto every member: one
    execution, N completion events."""
    for req in batch:
        req.finished = finished
        req.extra["result"] = result


@dataclass
class BatchStats:
    """Dispatch-side amortisation counters (per scheduler)."""

    #: Fan-outs issued (each holds one concurrency slot).
    dispatches: int = 0
    #: Requests served by those fan-outs.
    requests: int = 0
    #: Requests that rode an existing fan-out instead of paying their own.
    merged: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of dispatched requests that shared a fan-out."""
        return self.merged / self.requests if self.requests else 0.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "dispatches": self.dispatches,
            "requests": self.requests,
            "merged": self.merged,
            "hit_rate": round(self.hit_rate, 6),
        }


def digest_bytes(raw) -> int:
    """CRC-32 of a bytes-like buffer (numpy arrays included)."""
    return zlib.crc32(bytes(memoryview(raw).cast("B")))


def combine_digests(parts: Iterable[Tuple[int, int]]) -> int:
    """Order-independent roll-up of ``(req_id, digest)`` pairs into one
    CRC, so whole-run outputs can be compared batch-on vs batch-off."""
    acc = 0
    for req_id, digest in sorted(parts):
        acc = zlib.crc32(f"{req_id}:{digest};".encode("ascii"), acc)
    return acc
