"""The serving system: workload -> admission -> fair dispatch -> SLOs.

:class:`ServeSystem` wires the pieces together over an existing
cluster + PFS (files already ingested) and runs one serving interval to
quiescence::

    config = ServeConfig(tenants=(TenantSpec("a", rate=4.0, files=("dem",)),))
    summary = ServeSystem(pfs, config).run()

``run()`` drives the simulation until every admitted request has
settled — the open-loop generators stop offering load at
``config.duration``, the scheduler drains its queues, and the event
queue empties.  The returned summary is a plain, deterministic dict:
two runs from the same seed are bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..errors import ServeError
from ..faults import FaultInjector, FaultPlan, RecoveryPolicy
from ..kernels.base import KernelRegistry
from ..metrics.autoscale import autoscale_summary
from ..metrics.faults import fault_summary
from ..metrics.registry import MetricRegistry
from ..pfs.filesystem import ParallelFileSystem
from ..units import KiB
from .autoscale import AutoscaleController, AutoscalePolicy
from .dispatch import SCHEMES, LoadAwareExecutor
from .scheduler import FairScheduler, RetryPolicy
from .slo import SLOBoard
from .workload import ClosedLoopWorkload, OpenLoopWorkload, TenantSpec


@dataclass(frozen=True)
class ServeConfig:
    """Everything one serving run needs beyond the platform itself."""

    tenants: Tuple[TenantSpec, ...]
    scheme: str = "DAS"
    #: Simulated seconds during which load is offered.
    duration: float = 30.0
    #: Per-request latency budget (arrival to finish), seconds.
    deadline: float = 5.0
    #: Offered-load multiplier applied to every tenant's rate.
    load: float = 1.0
    queue_capacity: int = 16
    concurrency: int = 4
    #: DWRR quantum in cost units (input bytes) per round and weight.
    quantum: int = 256 * KiB
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    #: Load sensitivity of the DAS offload-vs-normal diversion.
    load_bias: float = 0.75
    #: Max requests sharing one (file, kernel, params) key merged into a
    #: single backend fan-out per dispatch; 1 disables batching.
    batch_max: int = 1
    #: Optional fault schedule injected during the run.  ``None`` (the
    #: default) leaves the run event-for-event identical to a build
    #: without the fault subsystem.
    faults: Optional[FaultPlan] = None
    #: Optional recovery policy for the PFS and AS clients (timeouts,
    #: backoff, hedged reads, replica failover).
    recovery: Optional[RecoveryPolicy] = None
    #: Optional TTL (simulated seconds) on cached offload decisions.
    decision_ttl: Optional[float] = None
    #: Optional piecewise-constant offered-load ramp ((t, multiplier), ...)
    #: applied on top of ``load`` (see OpenLoopWorkload).
    ramp: Optional[Tuple[Tuple[float, float], ...]] = None
    #: Optional SLO-driven partition autoscaling.  ``None`` (the
    #: default) leaves the run event-for-event identical to a build
    #: without the autoscale subsystem.
    autoscale: Optional[AutoscalePolicy] = None
    #: Optional :class:`~repro.obs.Tracer` recording per-request spans.
    #: ``None`` (the default) installs the falsy NULL_TRACER, making
    #: every instrumentation site a single attribute read — the event
    #: stream is bit-identical either way.
    tracer: Optional[object] = None
    #: Optional :class:`~repro.telemetry.TelemetryConfig` attaching a
    #: clock-driven sampler + alert engine to the run.  ``None`` (the
    #: default) leaves the dispatch loop's boundary check inert; with a
    #: config the sampler only reads metrics at boundaries, so the
    #: event stream is bit-identical either way.
    telemetry: Optional[object] = None


class ServeSystem:
    """One multi-tenant serving run over an existing platform."""

    def __init__(
        self,
        pfs: ParallelFileSystem,
        config: ServeConfig,
        registry: Optional[KernelRegistry] = None,
    ):
        if config.scheme not in SCHEMES:
            raise ServeError(f"unknown scheme {config.scheme!r}")
        self.pfs = pfs
        self.cluster = pfs.cluster
        self.config = config
        if config.tracer is not None:
            env = self.cluster.env
            config.tracer.bind(lambda: env.now)
            self.cluster.monitors.tracer = config.tracer
        #: Declared catalog over the hub's counters/gauges plus the
        #: serving-latency histograms observed by the SLO board.
        self.metrics = MetricRegistry(self.cluster.monitors)
        self.board = SLOBoard(self.cluster.monitors, registry=self.metrics)
        if config.recovery is not None:
            pfs.set_recovery(config.recovery)
        self.executor = LoadAwareExecutor(
            pfs,
            scheme=config.scheme,
            registry=registry,
            load_bias=config.load_bias,
            recovery=config.recovery,
            decision_ttl=config.decision_ttl,
        )
        self.injector: Optional[FaultInjector] = None
        if config.faults is not None and len(config.faults):
            self.injector = FaultInjector(self.cluster, config.faults, pfs=pfs)
            if self.executor.cache is not None:
                cache = self.executor.cache

                def _membership_changed(event) -> None:
                    # A crash or recovery changes which servers can host
                    # offloads; cached verdicts predate that knowledge.
                    if event.kind in ("crash", "recover"):
                        cache.clear()

                self.injector.on_event(_membership_changed)
        self.scheduler = FairScheduler(
            self.cluster,
            config.tenants,
            self.executor,
            self.board,
            queue_capacity=config.queue_capacity,
            concurrency=config.concurrency,
            quantum=config.quantum,
            retry=config.retry,
            batch_max=config.batch_max,
        )
        # Tenants choose their arrival model individually; a run may mix
        # open-loop (rate-driven) and closed-loop (population-driven)
        # tenants, each workload driving the same admission controller.
        if not config.tenants:
            raise ServeError("serving run needs at least one tenant")
        open_tenants = tuple(t for t in config.tenants if t.mode == "open")
        closed_tenants = tuple(t for t in config.tenants if t.mode == "closed")
        workloads = []
        if open_tenants:
            workloads.append(
                OpenLoopWorkload(
                    self.cluster,
                    open_tenants,
                    duration=config.duration,
                    deadline=config.deadline,
                    load=config.load,
                    ramp=config.ramp,
                )
            )
        if closed_tenants:
            workloads.append(
                ClosedLoopWorkload(
                    self.cluster,
                    closed_tenants,
                    duration=config.duration,
                    deadline=config.deadline,
                )
            )
        self.workloads = tuple(workloads)
        #: The primary (open-loop when present) workload, kept as an
        #: attribute for callers that predate mixed-mode runs.
        self.workload = self.workloads[0]
        self.autoscaler: Optional[AutoscaleController] = None
        if config.autoscale is not None:
            files = sorted({f for t in config.tenants for f in t.files})
            self.autoscaler = AutoscaleController(
                pfs,
                self.executor,
                self.scheduler,
                self.board,
                config.autoscale,
                files=files,
                duration=config.duration,
            )
        self.telemetry = None
        if config.telemetry is not None:
            from ..telemetry import TelemetrySampler, default_serve_rules

            self.telemetry = TelemetrySampler(self.cluster.env, config.telemetry)
            rules = config.telemetry.rules
            if rules is None:
                rules = default_serve_rules()
            self.telemetry.add_scope(
                "serve", self.cluster.monitors, registry=self.metrics,
                rules=rules, active_until=config.duration,
            )
            self.telemetry.attach()
        self._ran = False

    def run(self) -> Dict[str, object]:
        """Offer load, drain, and return the deterministic summary."""
        if self._ran:
            raise ServeError("a ServeSystem runs exactly once")
        self._ran = True
        env = self.cluster.env
        started = env.now
        if self.injector is not None:
            self.injector.start()
        if self.autoscaler is not None:
            self.autoscaler.start()
        for workload in self.workloads:
            workload.start(self.scheduler)
        self.cluster.run()  # to quiescence: all arrivals offered + settled
        elapsed = env.now - started
        if self.telemetry is not None:
            # Flush the boundaries between the last event and the end of
            # the run from the final (now constant) state, then detach.
            self.telemetry.finalize(env.now)
        if not self.board.conservation_ok():
            raise ServeError(
                f"conservation violated: requests {self.board.unsettled()}"
                " admitted but never settled"
            )
        return self.summary(elapsed)

    def summary(self, elapsed: float) -> Dict[str, object]:
        monitors = self.cluster.monitors
        out: Dict[str, object] = {
            "scheme": self.config.scheme,
            "load": self.config.load,
            "duration": self.config.duration,
            "elapsed": elapsed,
            "generated": sum(w.generated for w in self.workloads),
            "admitted": self.board.total_admitted,
            "settled": self.board.total_settled,
            "paths": {
                "offload": monitors.counter("serve.path.offload").value,
                "normal": monitors.counter("serve.path.normal").value,
                "diverted": monitors.counter("serve.diverted").value,
                "redistributions": monitors.counter("serve.redistributions").value,
            },
            "tenants": self.board.summary(elapsed),
            "batch": {
                "max": self.config.batch_max,
                **self.scheduler.batch_stats.as_dict(),
            },
            # Wire accounting split by role: fixed per-message headers
            # (what batching amortises) vs per-extent descriptors and
            # halo payload (what it must NOT change per request).
            "bytes": {
                "request_header": int(
                    monitors.counter("pfs.rpc.header_bytes").value
                    + monitors.counter("as.rpc.header_bytes").value
                ),
                "extent_desc": int(
                    monitors.counter("pfs.rpc.extent_desc_bytes").value
                    + monitors.counter("as.rpc.item_bytes").value
                ),
                "halo_local": int(monitors.counter("as.halo_bytes_local").value),
                "halo_remote": int(monitors.counter("as.halo_bytes_remote").value),
            },
            "result_digest": self.executor.result_digest(),
        }
        if self.executor.cache is not None:
            stats = self.executor.cache.stats
            out["decision_cache"] = {
                "hits": stats.hits,
                "misses": stats.misses,
                "evictions": stats.evictions,
                "invalidations": stats.invalidations,
            }
            if self.executor.cache.ttl is not None:
                out["decision_cache"]["expirations"] = stats.expirations
        if self.config.faults is not None or self.config.recovery is not None:
            # Only fault-configured runs carry the block; fault-free
            # summaries are unchanged by the fault subsystem.
            out["faults"] = fault_summary(monitors, self.injector)
        if self.config.autoscale is not None:
            # As with faults: only autoscale-configured runs carry the
            # block, so static summaries stay bit-identical.
            out["autoscale"] = autoscale_summary(monitors, self.autoscaler)
        if self.telemetry is not None:
            # Same pattern again: only telemetry-configured runs carry
            # the block, so sampled-off summaries stay bit-identical.
            out["telemetry"] = self.telemetry.summary_block()
        return out
