"""SLO accounting for the serving layer.

Every request admitted by the controller must end in *exactly one* of
four terminal outcomes — the conservation law the property tests pin:

* ``completed`` — finished within its deadline,
* ``late``      — finished, but after the deadline (SLO violation),
* ``expired``   — dropped at dequeue because its deadline had already
  passed while it sat in the tenant queue,
* ``failed``    — the executor raised on every retry attempt.

Requests the admission controller turns away (``rejected``) were never
admitted and sit outside the conservation set.  The board enforces the
exactly-once rule itself: double-finishing a request or finishing an
unadmitted request raises, so a scheduler bug cannot silently cook the
statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..errors import ServeError
from ..metrics.stats import LatencySummary, latency_summary
from ..sim.monitor import MonitorHub
from .workload import ServeRequest

#: Terminal outcomes of an admitted request.
COMPLETED = "completed"
LATE = "late"
EXPIRED = "expired"
FAILED = "failed"
OUTCOMES = (COMPLETED, LATE, EXPIRED, FAILED)


@dataclass
class TenantStats:
    """Mutable per-tenant tallies accumulated during a run."""

    tenant: str
    admitted: int = 0
    rejected: int = 0
    outcomes: Dict[str, int] = field(
        default_factory=lambda: {o: 0 for o in OUTCOMES}
    )
    #: Arrival-to-finish latencies of completed + late requests.
    latencies: List[float] = field(default_factory=list)
    retries: int = 0

    @property
    def finished(self) -> int:
        return self.outcomes[COMPLETED] + self.outcomes[LATE]

    @property
    def settled(self) -> int:
        return sum(self.outcomes.values())

    @property
    def availability(self) -> float:
        """Fraction of settled requests that finished (possibly late).

        The serving-side availability metric: expired and failed
        requests are the ones the tenant experienced as unavailability.
        1.0 when nothing has settled yet.
        """
        settled = self.settled
        return self.finished / settled if settled else 1.0

    def latency(self) -> LatencySummary:
        return latency_summary(self.latencies)


class SLOBoard:
    """Exactly-once outcome ledger + per-tenant latency accounting."""

    def __init__(self, monitors: Optional[MonitorHub] = None):
        self.monitors = monitors
        self.tenants: Dict[str, TenantStats] = {}
        #: req_id -> terminal outcome; the conservation ledger.
        self._settled: Dict[int, str] = {}
        self._admitted: Dict[int, str] = {}  # req_id -> tenant

    def _stats(self, tenant: str) -> TenantStats:
        stats = self.tenants.get(tenant)
        if stats is None:
            stats = self.tenants[tenant] = TenantStats(tenant)
        return stats

    def _count(self, name: str) -> None:
        if self.monitors is not None:
            self.monitors.counter(f"serve.{name}").add()

    # -- admission ------------------------------------------------------------
    def admitted(self, req: ServeRequest) -> None:
        if req.req_id in self._admitted:
            raise ServeError(f"request {req.req_id} admitted twice")
        self._admitted[req.req_id] = req.tenant
        self._stats(req.tenant).admitted += 1
        self._count("admitted")

    def rejected(self, req: ServeRequest) -> None:
        if req.req_id in self._admitted:
            raise ServeError(f"request {req.req_id} was already admitted")
        self._stats(req.tenant).rejected += 1
        self._count("rejected")

    def retried(self, req: ServeRequest) -> None:
        self._stats(req.tenant).retries += 1
        self._count("retries")

    # -- settlement ------------------------------------------------------------
    def settle(self, req: ServeRequest, outcome: str) -> None:
        """Record the terminal outcome of an admitted request (once)."""
        if outcome not in OUTCOMES:
            raise ServeError(f"unknown outcome {outcome!r}")
        if req.req_id not in self._admitted:
            raise ServeError(f"request {req.req_id} settled without admission")
        if req.req_id in self._settled:
            raise ServeError(
                f"request {req.req_id} settled twice:"
                f" {self._settled[req.req_id]!r} then {outcome!r}"
            )
        self._settled[req.req_id] = outcome
        stats = self._stats(req.tenant)
        stats.outcomes[outcome] += 1
        if outcome in (COMPLETED, LATE):
            stats.latencies.append(req.latency())
        self._count(outcome)

    # -- invariants ------------------------------------------------------------
    @property
    def total_admitted(self) -> int:
        return len(self._admitted)

    @property
    def total_settled(self) -> int:
        return len(self._settled)

    def conservation_ok(self) -> bool:
        """True iff every admitted request has exactly one outcome."""
        return set(self._settled) == set(self._admitted)

    def unsettled(self) -> List[int]:
        return sorted(set(self._admitted) - set(self._settled))

    # -- reporting ------------------------------------------------------------
    def summary(self, elapsed: float) -> Dict[str, dict]:
        """Deterministic per-tenant summary rows (plus an ``_all`` row)."""
        out: Dict[str, dict] = {}
        all_latencies: List[float] = []
        for name in sorted(self.tenants):
            stats = self.tenants[name]
            lat = stats.latency()
            all_latencies.extend(stats.latencies)
            out[name] = {
                "admitted": stats.admitted,
                "rejected": stats.rejected,
                "retries": stats.retries,
                "throughput": stats.outcomes[COMPLETED] / elapsed if elapsed else 0.0,
                "availability": stats.availability,
                **dict(stats.outcomes),
                **{f"lat_{k}": v for k, v in lat.row.items()},
            }
        total = latency_summary(all_latencies)
        all_settled = sum(s.settled for s in self.tenants.values())
        all_finished = sum(s.finished for s in self.tenants.values())
        out["_all"] = {
            "admitted": self.total_admitted,
            "availability": all_finished / all_settled if all_settled else 1.0,
            "rejected": sum(s.rejected for s in self.tenants.values()),
            "retries": sum(s.retries for s in self.tenants.values()),
            "throughput": (
                sum(s.outcomes[COMPLETED] for s in self.tenants.values()) / elapsed
                if elapsed
                else 0.0
            ),
            **{
                o: sum(s.outcomes[o] for s in self.tenants.values())
                for o in OUTCOMES
            },
            **{f"lat_{k}": v for k, v in total.row.items()},
        }
        return out
