"""SLO accounting for the serving layer.

Every request admitted by the controller must end in *exactly one* of
four terminal outcomes — the conservation law the property tests pin:

* ``completed`` — finished within its deadline,
* ``late``      — finished, but after the deadline (SLO violation),
* ``expired``   — dropped at dequeue because its deadline had already
  passed while it sat in the tenant queue,
* ``failed``    — the executor raised on every retry attempt.

Requests the admission controller turns away (``rejected``) were never
admitted and sit outside the conservation set.  The board enforces the
exactly-once rule itself: double-finishing a request or finishing an
unadmitted request raises, so a scheduler bug cannot silently cook the
statistics.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

from ..errors import ServeError
from ..metrics.stats import LatencySummary, latency_summary, percentile
from ..sim.monitor import MonitorHub
from .workload import ServeRequest

#: Terminal outcomes of an admitted request.
COMPLETED = "completed"
LATE = "late"
EXPIRED = "expired"
FAILED = "failed"
OUTCOMES = (COMPLETED, LATE, EXPIRED, FAILED)


@dataclass
class TenantStats:
    """Mutable per-tenant tallies accumulated during a run."""

    tenant: str
    admitted: int = 0
    rejected: int = 0
    outcomes: Dict[str, int] = field(
        default_factory=lambda: {o: 0 for o in OUTCOMES}
    )
    #: Arrival-to-finish latencies of completed + late requests.
    latencies: List[float] = field(default_factory=list)
    retries: int = 0

    @property
    def finished(self) -> int:
        return self.outcomes[COMPLETED] + self.outcomes[LATE]

    @property
    def settled(self) -> int:
        return sum(self.outcomes.values())

    @property
    def availability(self) -> float:
        """Fraction of settled requests that finished (possibly late).

        The serving-side availability metric: expired and failed
        requests are the ones the tenant experienced as unavailability.
        1.0 when nothing has settled yet.
        """
        settled = self.settled
        return self.finished / settled if settled else 1.0

    def latency(self) -> LatencySummary:
        return latency_summary(self.latencies)


class SLOWindow:
    """Sliding window of finish-time-stamped latencies.

    The autoscale controller acts on *recent* tail latency, not the
    run-cumulative percentiles the summary reports: a breach ten
    simulated minutes ago must not trigger a scale-up now.  Samples are
    ``(finish_time, latency)`` pairs; finish times arrive monotonically
    non-decreasing (settlement happens at the simulated now), so pruning
    is a popleft scan.

    Window math the controller triggers on, pinned by unit tests:

    * an empty window reports ``count == 0`` and ``p99 == 0.0`` — the
      caller must treat that as *no signal*, never as a healthy 0 ms;
    * a single sample IS the p99 (nearest-rank percentiles);
    * only samples with ``finish > now - horizon`` are visible, so a
      burst of slow finishes ages out ``horizon`` seconds later.
    """

    def __init__(self, horizon: float):
        if horizon <= 0:
            raise ServeError(f"window horizon must be positive, got {horizon!r}")
        self.horizon = float(horizon)
        self._samples: Deque[Tuple[float, float]] = deque()

    def record(self, finish: float, latency: float) -> None:
        if self._samples and finish < self._samples[-1][0]:
            raise ServeError(
                f"window samples must arrive in time order"
                f" ({finish!r} after {self._samples[-1][0]!r})"
            )
        self._samples.append((finish, latency))

    def _prune(self, now: float) -> None:
        cutoff = now - self.horizon
        while self._samples and self._samples[0][0] <= cutoff:
            self._samples.popleft()

    def latencies(self, now: float) -> List[float]:
        """Latencies of requests that finished within the horizon."""
        self._prune(now)
        return [lat for _, lat in self._samples]

    def count(self, now: float) -> int:
        self._prune(now)
        return len(self._samples)

    def p99(self, now: float) -> float:
        """Nearest-rank p99 over the window; 0.0 when it is empty."""
        return percentile(sorted(self.latencies(now)), 99)

    def summary(self, now: float) -> LatencySummary:
        return latency_summary(self.latencies(now))

    def __len__(self) -> int:
        return len(self._samples)


class SLOBoard:
    """Exactly-once outcome ledger + per-tenant latency accounting."""

    #: Default sliding-window horizon (simulated seconds) for the
    #: controller-facing signal.
    WINDOW_HORIZON = 2.0

    def __init__(
        self,
        monitors: Optional[MonitorHub] = None,
        window_horizon: float = WINDOW_HORIZON,
        registry=None,
    ):
        self.monitors = monitors
        #: Optional :class:`~repro.metrics.registry.MetricRegistry`;
        #: finished-request latencies are mirrored into its
        #: ``serve.latency`` histograms (overall + per tenant).
        self.registry = registry
        self.tenants: Dict[str, TenantStats] = {}
        #: Sliding window over finished-request latencies (completed and
        #: late alike): the signal the autoscale controller watches.
        self.window = SLOWindow(window_horizon)
        #: req_id -> terminal outcome; the conservation ledger.
        self._settled: Dict[int, str] = {}
        self._admitted: Dict[int, str] = {}  # req_id -> tenant

    def _stats(self, tenant: str) -> TenantStats:
        stats = self.tenants.get(tenant)
        if stats is None:
            stats = self.tenants[tenant] = TenantStats(tenant)
        return stats

    def _count(self, name: str) -> None:
        if self.monitors is not None:
            self.monitors.counter(f"serve.{name}").add()

    # -- admission ------------------------------------------------------------
    def admitted(self, req: ServeRequest) -> None:
        if req.req_id in self._admitted:
            raise ServeError(f"request {req.req_id} admitted twice")
        self._admitted[req.req_id] = req.tenant
        self._stats(req.tenant).admitted += 1
        self._count("admitted")

    def rejected(self, req: ServeRequest) -> None:
        if req.req_id in self._admitted:
            raise ServeError(f"request {req.req_id} was already admitted")
        self._stats(req.tenant).rejected += 1
        self._count("rejected")
        if self.monitors is not None and self.monitors.tracer:
            self.monitors.tracer.instant(
                "admission.reject", track="serve", tenant=req.tenant, file=req.file
            )

    def retried(self, req: ServeRequest) -> None:
        self._stats(req.tenant).retries += 1
        self._count("retries")

    # -- settlement ------------------------------------------------------------
    def settle(self, req: ServeRequest, outcome: str) -> None:
        """Record the terminal outcome of an admitted request (once)."""
        if outcome not in OUTCOMES:
            raise ServeError(f"unknown outcome {outcome!r}")
        if req.req_id not in self._admitted:
            raise ServeError(f"request {req.req_id} settled without admission")
        if req.req_id in self._settled:
            raise ServeError(
                f"request {req.req_id} settled twice:"
                f" {self._settled[req.req_id]!r} then {outcome!r}"
            )
        self._settled[req.req_id] = outcome
        stats = self._stats(req.tenant)
        stats.outcomes[outcome] += 1
        if outcome in (COMPLETED, LATE):
            stats.latencies.append(req.latency())
            self.window.record(req.finished, req.latency())
            if self.registry is not None:
                self.registry.histogram("serve.latency").observe(req.latency())
                self.registry.histogram(
                    f"serve.latency.{req.tenant}"
                ).observe(req.latency())
        self._count(outcome)
        if self.monitors is not None and self.monitors.tracer:
            self.monitors.tracer.request_end(req.req_id, outcome)
        # Closed-loop clients park on a per-request event until their
        # request reaches a terminal outcome; requests without the key
        # (all open-loop traffic) pay nothing here.
        done = req.extra.get("settled")
        if done is not None and not done.triggered:
            done.succeed(outcome)

    # -- invariants ------------------------------------------------------------
    @property
    def total_admitted(self) -> int:
        return len(self._admitted)

    @property
    def total_settled(self) -> int:
        return len(self._settled)

    def conservation_ok(self) -> bool:
        """True iff every admitted request has exactly one outcome."""
        return set(self._settled) == set(self._admitted)

    def unsettled(self) -> List[int]:
        return sorted(set(self._admitted) - set(self._settled))

    # -- reporting ------------------------------------------------------------
    def summary(self, elapsed: float) -> Dict[str, dict]:
        """Deterministic per-tenant summary rows (plus an ``_all`` row)."""
        out: Dict[str, dict] = {}
        all_latencies: List[float] = []
        for name in sorted(self.tenants):
            stats = self.tenants[name]
            lat = stats.latency()
            all_latencies.extend(stats.latencies)
            out[name] = {
                "admitted": stats.admitted,
                "rejected": stats.rejected,
                "retries": stats.retries,
                "throughput": stats.outcomes[COMPLETED] / elapsed if elapsed else 0.0,
                "availability": stats.availability,
                **dict(stats.outcomes),
                **{f"lat_{k}": v for k, v in lat.row.items()},
            }
        total = latency_summary(all_latencies)
        all_settled = sum(s.settled for s in self.tenants.values())
        all_finished = sum(s.finished for s in self.tenants.values())
        out["_all"] = {
            "admitted": self.total_admitted,
            "availability": all_finished / all_settled if all_settled else 1.0,
            "rejected": sum(s.rejected for s in self.tenants.values()),
            "retries": sum(s.retries for s in self.tenants.values()),
            "throughput": (
                sum(s.outcomes[COMPLETED] for s in self.tenants.values()) / elapsed
                if elapsed
                else 0.0
            ),
            **{
                o: sum(s.outcomes[o] for s in self.tenants.values())
                for o in OUTCOMES
            },
            **{f"lat_{k}": v for k, v in total.row.items()},
        }
        return out
