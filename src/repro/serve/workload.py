"""Open- and closed-loop multi-tenant workload generation.

A serving system is evaluated under *offered* load: arrivals keep
coming at their configured rate whether or not earlier requests have
finished (open loop), which is what exposes queueing collapse — a
closed loop would politely slow down with the system and hide it.
Both loops exist here because both behaviours are worth measuring:
:class:`OpenLoopWorkload` models the internet (demand does not care
that you are slow), :class:`ClosedLoopWorkload` models a bounded
population of interactive clients (each waits for its response, thinks,
and asks again), which is what batch pipelines and dashboards look
like.  A scenario can mix the two tenant by tenant.

Each tenant draws Poisson arrivals and per-request (kernel, file)
choices from its own named substream of the cluster's
:class:`~repro.sim.rand.RandomStreams` — closed-loop clients each own a
*per-client* substream — so adding a tenant (or a client) never
perturbs another's draws and any run is exactly reproducible from the
root seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from ..errors import ServeError
from ..hw.cluster import Cluster

#: Substream prefix for all serving-layer randomness.
STREAM_PREFIX = "serve.arrivals."
#: Substream prefix for closed-loop client randomness (per client).
CLOSED_STREAM_PREFIX = "serve.closed."
#: Closed-loop request ids start here so they can never collide with
#: the open-loop generator's counter within one run.
CLOSED_ID_BASE = 10_000_000


@dataclass(frozen=True)
class TenantSpec:
    """One tenant of the serving system.

    ``rate`` is the offered arrival rate in requests per simulated
    second at load multiplier 1.0; ``weight`` is the fair-share weight
    the scheduler grants the tenant's queue.

    ``mode`` selects the arrival model.  ``"open"`` (the default) is
    the Poisson open loop driven by ``rate``.  ``"closed"`` instead
    runs ``population`` concurrent clients, each cycling think ->
    submit -> wait-for-settlement: ``think_time`` is the mean of the
    exponential think gap (must be positive — a zero think time would
    spin without advancing the clock on rejection) and ``affinity`` is
    the probability a client re-reads its current session file instead
    of drawing a fresh one (session/file affinity; 0 = uniform every
    request, 1 = one file per client for the whole run).  ``rate`` is
    ignored in closed mode — throughput is an *outcome* of a closed
    loop, not an input.
    """

    name: str
    #: Open mode only; closed tenants may omit it (throughput is an
    #: outcome of a closed loop, not an input).
    rate: float = 0.0
    weight: float = 1.0
    #: Operators this tenant issues, chosen uniformly per request.
    kernels: Tuple[str, ...] = ("gaussian",)
    #: Input files this tenant reads, chosen uniformly per request.
    files: Tuple[str, ...] = ()
    #: Pipeline length declared on each request (amortisation hint).
    pipeline_length: int = 1
    #: Arrival model: "open" (Poisson, rate-driven) or "closed"
    #: (bounded population with think time).
    mode: str = "open"
    #: Closed mode: number of concurrent clients.
    population: int = 0
    #: Closed mode: mean exponential think time between a settlement
    #: (or rejection) and the client's next request, seconds.
    think_time: float = 0.0
    #: Closed mode: probability of staying on the session file.
    affinity: float = 0.0

    def __post_init__(self):
        if self.mode not in ("open", "closed"):
            raise ServeError(
                f"tenant {self.name!r} mode must be 'open' or 'closed',"
                f" got {self.mode!r}"
            )
        if self.mode == "open" and self.rate <= 0:
            raise ServeError(f"tenant {self.name!r} needs a positive rate")
        if self.mode == "closed":
            if self.population < 1:
                raise ServeError(
                    f"closed tenant {self.name!r} needs population >= 1"
                )
            if self.think_time <= 0:
                raise ServeError(
                    f"closed tenant {self.name!r} needs a positive think_time"
                )
            if not 0.0 <= self.affinity <= 1.0:
                raise ServeError(
                    f"closed tenant {self.name!r} needs affinity in [0, 1],"
                    f" got {self.affinity!r}"
                )
        if self.weight <= 0:
            raise ServeError(f"tenant {self.name!r} needs a positive weight")
        if not self.kernels:
            raise ServeError(f"tenant {self.name!r} declares no kernels")


@dataclass
class ServeRequest:
    """One in-flight request as tracked by the serving layer."""

    req_id: int
    tenant: str
    operator: str
    file: str
    #: Simulated time the request arrived at the admission controller.
    arrival: float
    #: Absolute simulated deadline; queue time counts against it.
    deadline: float
    #: Scheduler cost (bytes of input): the DWRR deficit currency.
    cost: int
    pipeline_length: int = 1
    attempts: int = 0
    #: Filled in as the request moves through the system.
    started: Optional[float] = None
    finished: Optional[float] = None
    extra: dict = field(default_factory=dict)

    @property
    def output(self) -> str:
        """Unique output file name (no collisions across requests)."""
        return f"{self.file}.out.{self.req_id}"

    def latency(self) -> float:
        if self.finished is None:
            raise ServeError(f"request {self.req_id} has not finished")
        return self.finished - self.arrival


class OpenLoopWorkload:
    """Poisson arrival processes, one per tenant, feeding a sink.

    ``sink`` is anything with a ``submit(request) -> bool`` method (the
    admission controller); the generator does not wait for completions.

    ``ramp`` optionally shapes the offered load over time as a
    piecewise-constant multiplier: ``((t0, m0), (t1, m1), ...)`` applies
    multiplier ``m_i`` from simulated time ``t_i`` until the next phase
    starts (1.0 before ``t0``).  The multiplier in force when a gap is
    drawn governs that gap — a phase change takes effect from the next
    arrival.  With ``ramp=None`` the arrival draws are identical to a
    build without the ramp feature.
    """

    def __init__(
        self,
        cluster: Cluster,
        tenants: Tuple[TenantSpec, ...],
        duration: float,
        deadline: float,
        load: float = 1.0,
        ramp: Optional[Tuple[Tuple[float, float], ...]] = None,
    ):
        if not tenants:
            raise ServeError("workload needs at least one tenant")
        if len({t.name for t in tenants}) != len(tenants):
            raise ServeError("tenant names must be unique")
        closed = [t.name for t in tenants if t.mode != "open"]
        if closed:
            raise ServeError(
                f"OpenLoopWorkload got closed-mode tenant(s) {closed};"
                " use ClosedLoopWorkload for them"
            )
        if duration <= 0 or deadline <= 0 or load <= 0:
            raise ServeError("duration, deadline and load must be positive")
        if ramp is not None:
            times = [t for t, _ in ramp]
            if times != sorted(times):
                raise ServeError("ramp phases must be in ascending time order")
            if any(m <= 0 for _, m in ramp):
                raise ServeError("ramp multipliers must be positive")
        self.cluster = cluster
        self.tenants = tuple(tenants)
        self.duration = float(duration)
        self.deadline = float(deadline)
        self.load = float(load)
        self.ramp = tuple((float(t), float(m)) for t, m in ramp) if ramp else None
        self._next_id = 0
        #: Requests handed to the sink, in submission order.
        self.generated = 0

    def multiplier(self, now: float) -> float:
        """The ramp multiplier in force at simulated time ``now``."""
        if self.ramp is None:
            return 1.0
        current = 1.0
        for start, m in self.ramp:
            if now >= start:
                current = m
            else:
                break
        return current

    def start(self, sink) -> list:
        """Spawn one arrival process per tenant; returns the processes."""
        env = self.cluster.env
        return [
            env.process(self._arrivals(t, sink), name=f"serve-arrivals:{t.name}")
            for t in self.tenants
        ]

    def _schedule(self, tenant: TenantSpec, start_at: float) -> list:
        """Pre-draw the tenant's whole arrival schedule in one tight pass.

        Returns ``[(gap, arrival_time, operator, file), ...]``.  The rng
        calls are made in *exactly* the order the old in-loop form made
        them — gap, kernel index, file index, per arrival, with the
        final over-duration gap drawn but unused — so the substream
        consumption (and therefore every downstream draw) is
        bit-identical.  True array vectorisation is off the table here:
        the gap/kernel/file draws interleave on one substream, and
        batching any of them would reorder the underlying bit stream.
        Hoisting the draws out of the event loop still pays — the
        per-arrival process body shrinks to a timeout and a submit.

        Arrival times are accumulated ``t = t + gap`` left-to-right,
        the same fold the clock performs when each timeout is
        scheduled, so ``arrival_time`` equals ``env.now`` at submit to
        the last bit.
        """
        rng = self.cluster.rand.stream(f"{STREAM_PREFIX}{tenant.name}")
        rate = tenant.rate * self.load
        duration = self.duration
        kernels = tenant.kernels
        files = tenant.files
        n_kernels = len(kernels)
        n_files = len(files)
        exponential = rng.exponential
        integers = rng.integers
        multiplier = self.multiplier
        flat = self.ramp is None
        scale = 1.0 / rate
        out: list = []
        append = out.append
        t = start_at
        while True:
            gap = exponential(scale if flat else 1.0 / (rate * multiplier(t)))
            if t + gap >= duration:
                return out
            t = t + gap
            operator = kernels[int(integers(n_kernels))]
            if not files:
                raise ServeError(f"tenant {tenant.name!r} has no files to read")
            file = files[int(integers(n_files))]
            append((gap, t, operator, file))

    def _arrivals(self, tenant: TenantSpec, sink):
        env = self.cluster.env
        timeout = env.timeout
        submit = sink.submit
        name = tenant.name
        deadline = self.deadline
        pipeline_length = tenant.pipeline_length
        for gap, arrival, operator, file in self._schedule(tenant, env.now):
            yield timeout(gap)
            self._next_id += 1
            self.generated += 1
            submit(
                ServeRequest(
                    req_id=self._next_id,
                    tenant=name,
                    operator=operator,
                    file=file,
                    arrival=arrival,
                    deadline=arrival + deadline,
                    cost=0,  # admission fills in the file size
                    pipeline_length=pipeline_length,
                )
            )


class ClosedLoopWorkload:
    """A bounded population of think-submit-wait clients per tenant.

    Each client is one simulation process cycling::

        think (exponential, mean tenant.think_time)
        -> pick a file (stay on the session file with prob. affinity)
        -> submit; if admitted, wait until the request settles

    The wait is the defining closed-loop property: an overloaded system
    slows its own offered load down, so queue depth is bounded by the
    population.  Settlement is signalled through a per-request
    ``extra["settled"]`` event the :class:`~repro.serve.slo.SLOBoard`
    triggers with the terminal outcome — only requests that carry the
    event pay for it, so open-loop runs are event-for-event unchanged
    by this class existing.  A rejected submission costs the client a
    fresh think gap (bounded retry pressure, no zero-time spin).

    Each client draws from its own substream
    (``serve.closed.<tenant>.<k>``), making the draw sequence
    independent of how client processes interleave; request ids come
    from a counter starting at :data:`CLOSED_ID_BASE` so they never
    collide with open-loop ids in a mixed run.  ``sink`` is anything
    with ``submit(request) -> bool``, as for the open loop.
    """

    def __init__(
        self,
        cluster: Cluster,
        tenants: Tuple[TenantSpec, ...],
        duration: float,
        deadline: float,
    ):
        if not tenants:
            raise ServeError("workload needs at least one tenant")
        if len({t.name for t in tenants}) != len(tenants):
            raise ServeError("tenant names must be unique")
        opened = [t.name for t in tenants if t.mode != "closed"]
        if opened:
            raise ServeError(
                f"ClosedLoopWorkload got open-mode tenant(s) {opened};"
                " use OpenLoopWorkload for them"
            )
        if duration <= 0 or deadline <= 0:
            raise ServeError("duration and deadline must be positive")
        for t in tenants:
            if not t.files:
                raise ServeError(f"tenant {t.name!r} has no files to read")
        self.cluster = cluster
        self.tenants = tuple(tenants)
        self.duration = float(duration)
        self.deadline = float(deadline)
        self._next_id = CLOSED_ID_BASE
        #: Requests handed to the sink, in submission order.
        self.generated = 0

    @property
    def population(self) -> int:
        return sum(t.population for t in self.tenants)

    def start(self, sink) -> list:
        """Spawn one process per client; returns the processes."""
        env = self.cluster.env
        procs = []
        for tenant in self.tenants:
            for k in range(tenant.population):
                rng = self.cluster.rand.stream(
                    f"{CLOSED_STREAM_PREFIX}{tenant.name}.{k}"
                )
                procs.append(
                    env.process(
                        self._client(tenant, rng, sink),
                        name=f"serve-client:{tenant.name}.{k}",
                    )
                )
        return procs

    def _client(self, tenant: TenantSpec, rng, sink):
        env = self.cluster.env
        session = tenant.files[int(rng.integers(len(tenant.files)))]
        while True:
            think = rng.exponential(tenant.think_time)
            if env.now + think >= self.duration:
                return
            yield env.timeout(think)
            if rng.random() >= tenant.affinity:
                session = tenant.files[int(rng.integers(len(tenant.files)))]
            operator = tenant.kernels[int(rng.integers(len(tenant.kernels)))]
            self._next_id += 1
            self.generated += 1
            settled = env.event()
            req = ServeRequest(
                req_id=self._next_id,
                tenant=tenant.name,
                operator=operator,
                file=session,
                arrival=env.now,
                deadline=env.now + self.deadline,
                cost=0,  # admission fills in the file size
                pipeline_length=tenant.pipeline_length,
                extra={"settled": settled},
            )
            if sink.submit(req):
                yield settled
