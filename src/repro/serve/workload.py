"""Open-loop multi-tenant workload generation.

A serving system is evaluated under *offered* load: arrivals keep
coming at their configured rate whether or not earlier requests have
finished (open loop), which is what exposes queueing collapse — a
closed loop would politely slow down with the system and hide it.

Each tenant draws Poisson arrivals and per-request (kernel, file)
choices from its own named substream of the cluster's
:class:`~repro.sim.rand.RandomStreams`, so adding a tenant never
perturbs another tenant's draws and any run is exactly reproducible
from the root seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from ..errors import ServeError
from ..hw.cluster import Cluster

#: Substream prefix for all serving-layer randomness.
STREAM_PREFIX = "serve.arrivals."


@dataclass(frozen=True)
class TenantSpec:
    """One tenant of the serving system.

    ``rate`` is the offered arrival rate in requests per simulated
    second at load multiplier 1.0; ``weight`` is the fair-share weight
    the scheduler grants the tenant's queue.
    """

    name: str
    rate: float
    weight: float = 1.0
    #: Operators this tenant issues, chosen uniformly per request.
    kernels: Tuple[str, ...] = ("gaussian",)
    #: Input files this tenant reads, chosen uniformly per request.
    files: Tuple[str, ...] = ()
    #: Pipeline length declared on each request (amortisation hint).
    pipeline_length: int = 1

    def __post_init__(self):
        if self.rate <= 0:
            raise ServeError(f"tenant {self.name!r} needs a positive rate")
        if self.weight <= 0:
            raise ServeError(f"tenant {self.name!r} needs a positive weight")
        if not self.kernels:
            raise ServeError(f"tenant {self.name!r} declares no kernels")


@dataclass
class ServeRequest:
    """One in-flight request as tracked by the serving layer."""

    req_id: int
    tenant: str
    operator: str
    file: str
    #: Simulated time the request arrived at the admission controller.
    arrival: float
    #: Absolute simulated deadline; queue time counts against it.
    deadline: float
    #: Scheduler cost (bytes of input): the DWRR deficit currency.
    cost: int
    pipeline_length: int = 1
    attempts: int = 0
    #: Filled in as the request moves through the system.
    started: Optional[float] = None
    finished: Optional[float] = None
    extra: dict = field(default_factory=dict)

    @property
    def output(self) -> str:
        """Unique output file name (no collisions across requests)."""
        return f"{self.file}.out.{self.req_id}"

    def latency(self) -> float:
        if self.finished is None:
            raise ServeError(f"request {self.req_id} has not finished")
        return self.finished - self.arrival


class OpenLoopWorkload:
    """Poisson arrival processes, one per tenant, feeding a sink.

    ``sink`` is anything with a ``submit(request) -> bool`` method (the
    admission controller); the generator does not wait for completions.

    ``ramp`` optionally shapes the offered load over time as a
    piecewise-constant multiplier: ``((t0, m0), (t1, m1), ...)`` applies
    multiplier ``m_i`` from simulated time ``t_i`` until the next phase
    starts (1.0 before ``t0``).  The multiplier in force when a gap is
    drawn governs that gap — a phase change takes effect from the next
    arrival.  With ``ramp=None`` the arrival draws are identical to a
    build without the ramp feature.
    """

    def __init__(
        self,
        cluster: Cluster,
        tenants: Tuple[TenantSpec, ...],
        duration: float,
        deadline: float,
        load: float = 1.0,
        ramp: Optional[Tuple[Tuple[float, float], ...]] = None,
    ):
        if not tenants:
            raise ServeError("workload needs at least one tenant")
        if len({t.name for t in tenants}) != len(tenants):
            raise ServeError("tenant names must be unique")
        if duration <= 0 or deadline <= 0 or load <= 0:
            raise ServeError("duration, deadline and load must be positive")
        if ramp is not None:
            times = [t for t, _ in ramp]
            if times != sorted(times):
                raise ServeError("ramp phases must be in ascending time order")
            if any(m <= 0 for _, m in ramp):
                raise ServeError("ramp multipliers must be positive")
        self.cluster = cluster
        self.tenants = tuple(tenants)
        self.duration = float(duration)
        self.deadline = float(deadline)
        self.load = float(load)
        self.ramp = tuple((float(t), float(m)) for t, m in ramp) if ramp else None
        self._next_id = 0
        #: Requests handed to the sink, in submission order.
        self.generated = 0

    def multiplier(self, now: float) -> float:
        """The ramp multiplier in force at simulated time ``now``."""
        if self.ramp is None:
            return 1.0
        current = 1.0
        for start, m in self.ramp:
            if now >= start:
                current = m
            else:
                break
        return current

    def start(self, sink) -> list:
        """Spawn one arrival process per tenant; returns the processes."""
        env = self.cluster.env
        return [
            env.process(self._arrivals(t, sink), name=f"serve-arrivals:{t.name}")
            for t in self.tenants
        ]

    def _arrivals(self, tenant: TenantSpec, sink):
        env = self.cluster.env
        rng = self.cluster.rand.stream(f"{STREAM_PREFIX}{tenant.name}")
        rate = tenant.rate * self.load
        while True:
            gap = rng.exponential(1.0 / (rate * self.multiplier(env.now)))
            if env.now + gap >= self.duration:
                return
            yield env.timeout(gap)
            sink.submit(self._make_request(tenant, rng))

    def _make_request(self, tenant: TenantSpec, rng) -> ServeRequest:
        env = self.cluster.env
        operator = tenant.kernels[int(rng.integers(len(tenant.kernels)))]
        if tenant.files:
            file = tenant.files[int(rng.integers(len(tenant.files)))]
        else:
            raise ServeError(f"tenant {tenant.name!r} has no files to read")
        self._next_id += 1
        self.generated += 1
        return ServeRequest(
            req_id=self._next_id,
            tenant=tenant.name,
            operator=operator,
            file=file,
            arrival=env.now,
            deadline=env.now + self.deadline,
            cost=0,  # admission fills in the file size
            pipeline_length=tenant.pipeline_length,
        )
