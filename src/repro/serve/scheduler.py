"""Admission control + deficit-weighted-round-robin fair scheduling.

The serving layer sits between the open-loop workload and the storage
backend:

* **Admission**: each tenant owns a bounded FIFO; a full queue rejects
  the arrival outright (queue-full shedding) so an abusive tenant's
  backlog is bounded and visible, never silently unbounded.
* **Fair scheduling**: a single dispatcher drains the tenant queues
  with deficit weighted round robin (DWRR).  Each round a tenant's
  deficit grows by ``quantum * weight``; it may dispatch requests while
  the head-of-line *cost* (input bytes) fits the deficit.  Weighted
  byte-fairness thus holds even when tenants mix small and large
  requests, and no backlogged tenant can be starved.
* **Deadlines**: a request whose deadline passes while queued is
  dropped at dequeue (``expired``); one that finishes past its
  deadline is counted as ``late``.
* **Retries**: executor failures are retried with exponential backoff
  up to a bounded attempt budget, then settled as ``failed``.
* **Batching** (``batch_max > 1``): when a slot opens for a leader
  request, the dispatcher drains up to ``batch_max - 1`` further queued
  requests sharing the leader's ``(file, kernel, params)`` key — across
  tenants — and issues ONE executor fan-out for the whole batch.  Every
  member's cost is charged to its *own* tenant's deficit, which may go
  negative: a rider prepays byte-debt that later quantum grants repay,
  so DWRR byte-fairness holds across batched dispatches.

The dispatcher applies backpressure by holding one concurrency slot per
in-flight fan-out: queue depth builds (and admission sheds) exactly
when the backend saturates.

* **Sharded admission slots** (``slot_groups`` set): instead of one
  global concurrency pool, each *group* (typically the primary storage
  node or layout group of the request's file, chosen by the callable)
  owns its own pool of ``concurrency`` slots.  A hot file saturating
  its own node's slots no longer starves dispatches bound for other
  nodes: a tenant whose head-of-line request is gated on a full pool
  is skipped for the round instead of blocking the dispatcher.  The
  default (``slot_groups=None``) keeps the original single-pool
  dispatcher byte-for-byte, so existing event streams are unchanged.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional, Tuple

from ..errors import AdmissionError, ServeError
from ..hw.cluster import Cluster
from ..obs.span import NULL_SPAN
from ..sim.resources import Resource
from .batch import BatchStats, merge_window, scatter_result
from .slo import COMPLETED, EXPIRED, FAILED, LATE, SLOBoard
from .workload import ServeRequest, TenantSpec


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with exponential backoff."""

    max_attempts: int = 2
    backoff: float = 0.05
    backoff_factor: float = 2.0

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ServeError("retry policy needs max_attempts >= 1")
        if self.backoff < 0 or self.backoff_factor < 1.0:
            raise ServeError("retry policy needs backoff >= 0, factor >= 1")

    def delay(self, attempt: int) -> float:
        """Backoff before retry number ``attempt`` (1-based)."""
        return self.backoff * self.backoff_factor ** (attempt - 1)


class FairScheduler:
    """Bounded per-tenant queues drained by a DWRR dispatcher."""

    def __init__(
        self,
        cluster: Cluster,
        tenants: Tuple[TenantSpec, ...],
        executor,
        board: SLOBoard,
        queue_capacity: int = 16,
        concurrency: int = 4,
        quantum: int = 256 * 1024,
        retry: Optional[RetryPolicy] = None,
        batch_max: int = 1,
        slot_groups: Optional[Callable[[ServeRequest], str]] = None,
    ):
        if queue_capacity < 1 or concurrency < 1 or quantum < 1:
            raise ServeError("queue_capacity, concurrency and quantum must be >= 1")
        if batch_max < 1:
            raise ServeError(f"batch_max must be >= 1, got {batch_max!r}")
        if batch_max > 1 and not callable(getattr(executor, "execute_batch", None)):
            raise ServeError(
                "batch_max > 1 needs an executor with execute_batch(batch)"
            )
        self.cluster = cluster
        self.env = cluster.env
        self.executor = executor
        self.board = board
        self.queue_capacity = int(queue_capacity)
        self.quantum = int(quantum)
        self.batch_max = int(batch_max)
        self.batch_stats = BatchStats()
        self.retry = retry or RetryPolicy()
        self.weights: Dict[str, float] = {t.name: t.weight for t in tenants}
        self.queues: Dict[str, Deque[ServeRequest]] = {
            t.name: deque() for t in tenants
        }
        self._deficit: Dict[str, float] = {t.name: 0.0 for t in tenants}
        self._concurrency = int(concurrency)
        self._slot_groups = slot_groups
        self._slots = Resource(self.env, capacity=self._concurrency)
        self._group_slots: Dict[str, Resource] = {}
        self._kick = self.env.event()
        self._monitors = cluster.monitors
        self._depth_gauge = cluster.monitors.gauge("serve.queue.depth")
        self._dispatcher = self.env.process(self._dispatch_loop(), name="serve-dispatch")
        #: Dispatch order, for fairness assertions in tests.
        self.dispatch_log: list = []
        #: req_id -> open "queued" span (tracing only; empty otherwise).
        self._queue_spans: Dict[int, object] = {}

    # -- admission ------------------------------------------------------------
    def submit(self, req: ServeRequest) -> bool:
        """Admit ``req`` into its tenant queue, or shed it.

        Returns True iff admitted.  Never blocks the caller (open loop).
        """
        queue = self.queues.get(req.tenant)
        if queue is None:
            raise AdmissionError(f"unknown tenant {req.tenant!r}")
        if len(queue) >= self.queue_capacity:
            self.board.rejected(req)
            return False
        if req.cost <= 0:
            req.cost = self.executor.request_cost(req)
        queue.append(req)
        self.board.admitted(req)
        tracer = self._monitors.tracer
        if tracer:
            root = tracer.request_begin(req)
            self._queue_spans[req.req_id] = tracer.begin(
                "queued", cat="queue", parent=root, cost=req.cost
            )
        self._depth_gauge.adjust(+1)
        if not self._kick.triggered:
            self._kick.succeed()
        return True

    def backlog(self, tenant: str) -> int:
        return len(self.queues[tenant])

    def queued_total(self) -> int:
        """Admission backlog across every tenant queue."""
        return sum(len(q) for q in self.queues.values())

    def slots_in_use(self) -> int:
        """In-flight fan-outs (load signal for cross-cell routing)."""
        if self._slot_groups is None:
            return len(self._slots.users)
        return sum(len(p.users) for p in self._group_slots.values())

    # -- DWRR dispatcher --------------------------------------------------------
    def _backlogged(self):
        return [t for t, q in self.queues.items() if q]

    def _slot_pool(self, req: ServeRequest) -> Resource:
        """The admission-slot pool ``req`` dispatches through: the one
        global pool by default, or the request's group pool (created on
        first use, same per-group capacity) when sharding is on."""
        if self._slot_groups is None:
            return self._slots
        key = self._slot_groups(req)
        pool = self._group_slots.get(key)
        if pool is None:
            pool = Resource(self.env, capacity=self._concurrency)
            self._group_slots[key] = pool
        return pool

    def _dispatch_loop(self):
        if self._slot_groups is not None:
            yield from self._dispatch_loop_sharded()
            return
        while True:
            if not any(self.queues.values()):
                # Sleep until the next admission kicks us.
                self._kick = self.env.event()
                yield self._kick
            # One DWRR round over the currently backlogged tenants.
            for tenant in self._backlogged():
                queue = self.queues[tenant]
                self._deficit[tenant] += self.quantum * self.weights[tenant]
                while queue and queue[0].cost <= self._deficit[tenant]:
                    slot = self._slots.request()
                    yield slot  # backpressure: wait for a free slot
                    if not queue:
                        slot.cancel()
                        break
                    req = queue.popleft()
                    self._depth_gauge.adjust(-1)
                    self._deficit[tenant] -= req.cost
                    self._dequeued(req)
                    if self.env.now > req.deadline:
                        # Died waiting in the queue.
                        slot.cancel()
                        self.board.settle(req, EXPIRED)
                        continue
                    batch = [req]
                    if self.batch_max > 1:
                        batch += self._drain_riders(req)
                    self.batch_stats.dispatches += 1
                    self.batch_stats.requests += len(batch)
                    self.batch_stats.merged += len(batch) - 1
                    for member in batch:
                        self.dispatch_log.append((member.tenant, member.req_id))
                    self.env.process(
                        self._attempt(batch, slot), name=f"serve-req:{req.req_id}"
                    )
                if not queue:
                    # Classic DWRR: an emptied queue forfeits its deficit —
                    # but batch-rider debt (negative deficit) survives, or a
                    # tenant could launder prepaid bytes by draining dry.
                    self._deficit[tenant] = min(0.0, self._deficit[tenant])

    def _dispatch_loop_sharded(self):
        """DWRR over per-group slot pools.  A tenant whose head-of-line
        request is gated on a full pool is skipped for the round (its
        deficit survives — the queue is non-empty) instead of blocking
        the dispatcher, so a hot group cannot starve dispatches bound
        for idle groups.  When every backlogged head is gated, sleep
        until a slot frees or a new admission kicks."""
        while True:
            if not any(self.queues.values()):
                self._kick = self.env.event()
                yield self._kick
            progressed = False
            blocked = False
            for tenant in self._backlogged():
                queue = self.queues[tenant]
                self._deficit[tenant] += self.quantum * self.weights[tenant]
                while queue and queue[0].cost <= self._deficit[tenant]:
                    pool = self._slot_pool(queue[0])
                    if len(pool.users) >= pool.capacity:
                        blocked = True
                        break  # head-of-line within this tenant only
                    slot = pool.request()
                    yield slot  # granted synchronously: pool had room
                    if not queue:
                        slot.cancel()
                        break
                    req = queue.popleft()
                    self._depth_gauge.adjust(-1)
                    self._deficit[tenant] -= req.cost
                    self._dequeued(req)
                    if self.env.now > req.deadline:
                        slot.cancel()
                        self.board.settle(req, EXPIRED)
                        continue
                    batch = [req]
                    if self.batch_max > 1:
                        batch += self._drain_riders(req)
                    self.batch_stats.dispatches += 1
                    self.batch_stats.requests += len(batch)
                    self.batch_stats.merged += len(batch) - 1
                    for member in batch:
                        self.dispatch_log.append((member.tenant, member.req_id))
                    self.env.process(
                        self._attempt(batch, slot), name=f"serve-req:{req.req_id}"
                    )
                    progressed = True
                if not queue:
                    self._deficit[tenant] = min(0.0, self._deficit[tenant])
            if blocked and not progressed:
                self._kick = self.env.event()
                yield self._kick

    def _drain_riders(self, leader: ServeRequest) -> List[ServeRequest]:
        """Merge queued same-key requests into the leader's fan-out.

        Each rider's cost is charged to its own tenant's deficit (which
        may go negative — debt repaid by later quantum grants), so the
        byte ledger reads as if every member paid for its own dispatch.
        """
        riders = []
        for rider in merge_window(self.queues, leader, self.batch_max):
            self._depth_gauge.adjust(-1)
            self._deficit[rider.tenant] -= rider.cost
            self._dequeued(rider)
            if self.env.now > rider.deadline:
                self.board.settle(rider, EXPIRED)
                continue
            riders.append(rider)
        return riders

    def _dequeued(self, req: ServeRequest) -> None:
        """Close the request's "queued" span, if tracing opened one."""
        span = self._queue_spans.pop(req.req_id, None)
        if span is not None:
            span.finish()

    def _attempt_spans(self, batch: List[ServeRequest]) -> List[object]:
        """One "attempt" span per member; non-anchor members reference
        the anchor's span id (``shared``) so the critical-path analyzer
        attributes the single shared fan-out to every member of the
        batch.  The anchor is the first *sampled* member — normally the
        leader, but under trace sampling the leader's tree may be
        dropped while a rider's is kept, and the fan-out must then hang
        off the rider so its trace stays complete."""
        tracer = self._monitors.tracer
        spans: List[object] = []
        anchor = None
        for member in batch:
            span = tracer.begin(
                "attempt",
                cat="attempt",
                parent=tracer.request_span(member.req_id),
                attempt=member.attempts,
                members=len(batch),
            )
            if span:
                if anchor is None:
                    anchor = span
                else:
                    span.annotate(shared=anchor.sid)
            spans.append(span)
        return spans

    # -- per-batch execution with retry ---------------------------------------
    def _attempt(self, batch: List[ServeRequest], slot):
        tracer = self._monitors.tracer
        try:
            for req in batch:
                req.started = self.env.now
            while True:
                for req in batch:
                    req.attempts += 1
                spans = self._attempt_spans(batch) if tracer else ()
                lead_span = next((s for s in spans if s), NULL_SPAN)
                try:
                    # The span kwarg only goes out when tracing opened
                    # spans, so untraced runs keep the original executor
                    # contract (stub executors need not accept it).
                    if len(batch) == 1:
                        result = yield (
                            self.executor.execute(batch[0], span=lead_span)
                            if spans
                            else self.executor.execute(batch[0])
                        )
                    else:
                        result = yield (
                            self.executor.execute_batch(list(batch), span=lead_span)
                            if spans
                            else self.executor.execute_batch(list(batch))
                        )
                except ServeError:
                    raise  # accounting bugs must not be retried into silence
                except Exception as exc:  # noqa: BLE001 - backend fault domain
                    for span in spans:
                        span.finish(status="error", error=type(exc).__name__)
                    if batch[0].attempts >= self.retry.max_attempts:
                        for req in batch:
                            req.finished = self.env.now
                            req.extra["error"] = repr(exc)
                            self.board.settle(req, FAILED)
                        return
                    for req in batch:
                        self.board.retried(req)
                    backoffs = [
                        tracer.begin(
                            "backoff",
                            cat="backoff",
                            parent=tracer.request_span(req.req_id),
                            attempt=req.attempts,
                        )
                        for req in batch
                    ] if tracer else ()
                    yield self.env.timeout(self.retry.delay(batch[0].attempts))
                    for span in backoffs:
                        span.finish()
                    continue
                scatter_result(batch, result, self.env.now)
                if spans:
                    lead_span.event("scatter", members=len(batch))
                    for span in spans:
                        span.finish(status="ok")
                for req in batch:
                    outcome = COMPLETED if req.finished <= req.deadline else LATE
                    self.board.settle(req, outcome)
                return
        finally:
            slot.cancel()
            if self._slot_groups is not None and not self._kick.triggered:
                # Sharded dispatch may be asleep waiting for this slot.
                self._kick.succeed()
