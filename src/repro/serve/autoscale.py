"""SLO-driven autoscaling of the storage partition.

The paper's thesis is that active storage should adapt *per request* —
offload only when the predicted bytes win.  This module closes the loop
one level up: the deployment itself adapts.  An
:class:`AutoscaleController` runs on the simulation clock, watches the
windowed SLO signal (:class:`~repro.serve.slo.SLOWindow` p99 plus
admission-queue depth), and grows or shrinks the *active storage
partition* — the prefix of the cluster's storage servers that holds the
served files — by driving the PR 3 redistribution engine under the same
per-file :class:`~repro.sim.resources.ReadWriteLock` fencing the
serving data path uses.  In-flight reads and resizes therefore never
race: a resize takes each file's write side, moves the strips, and
releases; reads queued behind it observe the new layout.

Flap control is structural, not tuned-by-hope:

* **hysteresis** — a scale-up needs ``breach_ticks`` *consecutive*
  breaching observations, a scale-down ``calm_ticks`` consecutive calm
  ones; a single noisy window moves nothing;
* **cooldown** — after any resize the controller holds for ``cooldown``
  simulated seconds, so it observes the effect of its last action
  before taking another;
* **clamp** — the partition never leaves ``[min_servers, max_servers]``.

Membership changes invalidate caches exactly as fault-driven changes
do (see :class:`~repro.faults.injector.FaultInjector`): the offload
:class:`~repro.core.decision_cache.DecisionCache` is cleared — cached
verdicts predate the new membership — and servers leaving the partition
drop their strip caches (a drained server's page cache is gone for
serving purposes).  Everything the controller does is booked under
``autoscale.*`` counters and a per-tick :attr:`AutoscaleController.trace`
so benches and tests can replay its reasoning deterministically.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..errors import ServeError
from ..obs.span import NULL_SPAN
from ..pfs.layout import GroupedLayout, Layout, RoundRobinLayout
from ..pfs.replicated import ReplicatedGroupedLayout


@dataclass(frozen=True)
class AutoscalePolicy:
    """The knobs of the control loop (see docs/OPERATIONS.md).

    ``p99_high`` / ``p99_low`` are the scale-up and scale-down
    thresholds on the windowed p99; keeping ``p99_low`` well below
    ``p99_high`` is the hysteresis *band* that prevents flapping around
    a single set-point.  ``queue_high`` breaches on admission backlog
    even before latencies surface (queues build faster than p99 moves).
    """

    #: Partition clamp: the controller never drains below / grows above.
    min_servers: int = 1
    max_servers: int = 4
    #: Control tick, simulated seconds.
    interval: float = 0.5
    #: Windowed-p99 thresholds, simulated seconds.
    p99_high: float = 0.5
    p99_low: float = 0.2
    #: Total admission-queue depth that counts as a breach on its own.
    queue_high: int = 24
    #: Consecutive breaching ticks required before a scale-up.
    breach_ticks: int = 2
    #: Consecutive calm ticks required before a scale-down.
    calm_ticks: int = 6
    #: Hold time after any resize, simulated seconds.
    cooldown: float = 2.0
    #: Servers added / removed per action.
    step: int = 1
    #: Warm-up: windowed p99 is actionable only with this many samples.
    min_samples: int = 5

    def __post_init__(self):
        if self.min_servers < 1 or self.max_servers < self.min_servers:
            raise ServeError(
                "autoscale clamp needs 1 <= min_servers <= max_servers,"
                f" got [{self.min_servers}, {self.max_servers}]"
            )
        if self.interval <= 0 or self.cooldown < 0:
            raise ServeError("interval must be positive and cooldown >= 0")
        if not 0 < self.p99_low <= self.p99_high:
            raise ServeError(
                "thresholds need 0 < p99_low <= p99_high,"
                f" got ({self.p99_low}, {self.p99_high})"
            )
        if self.queue_high < 1:
            raise ServeError("queue_high must be >= 1")
        if self.breach_ticks < 1 or self.calm_ticks < 1:
            raise ServeError("breach_ticks and calm_ticks must be >= 1")
        if self.step < 1:
            raise ServeError("step must be >= 1")
        if self.min_samples < 1:
            raise ServeError("min_samples must be >= 1")


@dataclass(frozen=True)
class AutoscaleAction:
    """One committed resize, for traces and summaries."""

    at: float
    direction: str  # "up" | "down"
    from_servers: int
    to_servers: int
    moved_bytes: int
    reason: str


def scaled_layout(layout: Layout, servers: Sequence[str], file_size: int) -> Layout:
    """``layout``'s placement family re-spanned over ``servers``.

    Preserves what makes the layout correct for its operators — the
    replicated halo reach — while recomputing the group factor so the
    strips of a ``file_size``-byte file spread across the new partition:
    more servers means smaller groups (more parallelism), fewer servers
    means larger groups.  The decision engine's ``already_optimal`` test
    keys on the halo reach, so a file that was offloadable stays
    offloadable after a resize.
    """
    servers = list(servers)
    if not servers:
        raise ServeError("scaled_layout needs at least one server")
    n_strips = max(1, layout.n_strips(file_size))
    if isinstance(layout, ReplicatedGroupedLayout):
        group = max(layout.halo_strips, 1, math.ceil(n_strips / len(servers)))
        return ReplicatedGroupedLayout(
            servers, layout.strip_size, group, layout.halo_strips
        )
    if isinstance(layout, GroupedLayout):
        group = max(1, math.ceil(n_strips / len(servers)))
        return GroupedLayout(servers, layout.strip_size, group)
    return RoundRobinLayout(servers, layout.strip_size)


class AutoscaleController:
    """Grow/shrink the active storage partition when the SLO drifts.

    The controller is a plain simulation process; :meth:`start` spawns
    it and it exits on its own once the run has drained (offered load
    ended, queues empty, every admitted request settled), so a serving
    run with autoscaling still quiesces.
    """

    def __init__(
        self,
        pfs,
        executor,
        scheduler,
        board,
        policy: AutoscalePolicy,
        files: Sequence[str],
        duration: float,
    ):
        names = pfs.server_names
        if policy.max_servers > len(names):
            raise ServeError(
                f"max_servers {policy.max_servers} exceeds the cluster's"
                f" {len(names)} storage servers"
            )
        if not files:
            raise ServeError("autoscale controller needs at least one file")
        self.pfs = pfs
        self.executor = executor
        self.scheduler = scheduler
        self.board = board
        self.policy = policy
        self.files = sorted(set(files))
        self.duration = float(duration)
        self.env = pfs.cluster.env
        self.monitors = pfs.cluster.monitors
        #: Current partition size: how many of server_names[:n] serve data.
        self.active = self._initial_active()
        if not policy.min_servers <= self.active <= policy.max_servers:
            raise ServeError(
                f"initial partition ({self.active} servers) lies outside the"
                f" clamp [{policy.min_servers}, {policy.max_servers}]"
            )
        self.actions: List[AutoscaleAction] = []
        #: One dict per control tick: the controller's full observation.
        self.trace: List[Dict[str, float]] = []
        #: Optional fleet-level veto: ``callable(controller, direction,
        #: target) -> bool`` consulted before a resize commits (see
        #: ``repro.fleet.FleetController``).  ``None`` approves all.
        self.arbiter = None
        self._breach_streak = 0
        self._calm_streak = 0
        self._last_action_at = -float("inf")
        self._gauge = self.monitors.gauge("autoscale.active")
        self._gauge.adjust(self.active)
        self._started = False

    def _initial_active(self) -> int:
        """Partition size implied by the tracked files' layouts."""
        return max(
            len(self.pfs.metadata.lookup(f).layout.servers) for f in self.files
        )

    # -- lifecycle -------------------------------------------------------------
    def start(self):
        if self._started:
            raise ServeError("autoscale controller already started")
        self._started = True
        return self.env.process(self._run(), name="autoscale-controller")

    def _drained(self) -> bool:
        return (
            self.env.now >= self.duration
            and not any(self.scheduler.queues.values())
            and self.board.total_settled == self.board.total_admitted
        )

    def _run(self):
        while True:
            yield self.env.timeout(self.policy.interval)
            if self._drained():
                return
            yield from self._tick()

    # -- one control decision --------------------------------------------------
    def _observe(self) -> Dict[str, float]:
        now = self.env.now
        samples = self.board.window.count(now)
        p99 = self.board.window.p99(now)
        depth = sum(len(q) for q in self.scheduler.queues.values())
        return {"t": now, "p99": p99, "samples": samples, "depth": depth}

    def _tick(self):
        policy = self.policy
        obs = self._observe()
        self.monitors.counter("autoscale.ticks").add()
        breach = (
            obs["samples"] >= policy.min_samples and obs["p99"] > policy.p99_high
        ) or obs["depth"] >= policy.queue_high
        calm = (
            obs["samples"] == 0 or obs["p99"] <= policy.p99_low
        ) and obs["depth"] == 0
        if breach:
            self._breach_streak += 1
            self._calm_streak = 0
            self.monitors.counter("autoscale.breaches").add()
        elif calm:
            self._calm_streak += 1
            self._breach_streak = 0
        else:
            # Between the thresholds: the hysteresis band resets both
            # streaks — neither scaling direction may act on ambiguity.
            self._breach_streak = 0
            self._calm_streak = 0
        obs.update(
            active=self.active,
            breach=int(breach),
            calm=int(calm),
            breach_streak=self._breach_streak,
            calm_streak=self._calm_streak,
        )
        self.trace.append(obs)

        cooling = self.env.now - self._last_action_at < policy.cooldown
        if cooling:
            self.monitors.counter("autoscale.cooldown_holds").add()
            return
        if self._breach_streak >= policy.breach_ticks:
            target = min(policy.max_servers, self.active + policy.step)
            if target > self.active and self._approved("up", target):
                yield from self._resize(
                    target,
                    reason=(
                        f"p99 {obs['p99']:.3f}s / depth {obs['depth']:.0f}"
                        f" breached for {self._breach_streak} ticks"
                    ),
                )
            self._breach_streak = 0
        elif self._calm_streak >= policy.calm_ticks:
            target = max(policy.min_servers, self.active - policy.step)
            if target < self.active and self._approved("down", target):
                yield from self._resize(
                    target,
                    reason=(
                        f"p99 {obs['p99']:.3f}s calm for"
                        f" {self._calm_streak} ticks"
                    ),
                )
            self._calm_streak = 0

    def _approved(self, direction: str, target: int) -> bool:
        """Consult the fleet arbiter, when one is attached."""
        if self.arbiter is None:
            return True
        return bool(self.arbiter(self, direction, target))

    # -- the resize itself -----------------------------------------------------
    def _resize(self, target: int, reason: str):
        """Move every tracked file onto the first ``target`` storage
        servers, one file at a time under its write fence."""
        old_servers = set(self.pfs.server_names[: self.active])
        new_names = self.pfs.server_names[:target]
        direction = "up" if target > self.active else "down"
        tracer = self.monitors.tracer
        rspan = NULL_SPAN
        if tracer:
            rspan = tracer.begin(
                f"resize:{direction}",
                cat="resize",
                track="autoscale",
                target=target,
                from_servers=self.active,
            )
        moved_total = 0
        for file in self.files:
            claim = self.executor.write_fence(file)
            fence = NULL_SPAN
            if rspan and not claim.triggered:
                # Span only contended fence waits; an uncontended claim
                # completes synchronously and would be a 0-width span.
                fence = tracer.begin(
                    f"fence:{file}", cat="fence", parent=rspan, file=file
                )
            yield claim
            fence.finish()
            try:
                meta = self.pfs.metadata.lookup(file)
                old_layout = meta.layout
                new_layout = scaled_layout(old_layout, new_names, meta.size)
                if list(old_layout.servers) == list(new_layout.servers) and (
                    getattr(old_layout, "group", None)
                    == getattr(new_layout, "group", None)
                ):
                    continue
                move = NULL_SPAN
                if rspan:
                    move = tracer.begin(
                        f"redistribute:{file}",
                        cat="redistribute",
                        parent=rspan,
                        file=file,
                    )
                moved = yield self.pfs.redistributor.redistribute(file, new_layout)
                move.finish(bytes=int(moved))
                moved_total += int(moved)
                if self.executor.cache is not None:
                    self.executor.cache.invalidate_meta(meta, layout=old_layout)
            finally:
                claim.release()
        # Membership changed: mirror the fault path's invalidations.
        if self.executor.cache is not None:
            self.executor.cache.clear()
        for name in sorted(old_servers - set(new_names)):
            server = self.pfs.servers.get(name)
            if server is not None and server.cache is not None:
                server.cache.clear()

        self._gauge.adjust(target - self.active)
        action = AutoscaleAction(
            at=self.env.now,
            direction=direction,
            from_servers=self.active,
            to_servers=target,
            moved_bytes=moved_total,
            reason=reason,
        )
        self.actions.append(action)
        self.active = target
        self._last_action_at = self.env.now
        self.monitors.counter(f"autoscale.scale_{direction}s").add()
        self.monitors.counter("autoscale.moved_bytes").add(moved_total)
        self.monitors.log(
            "autoscale",
            f"scale-{direction}",
            target=str(target),
            peer=reason,
        )
        rspan.finish(moved_bytes=moved_total)
        if tracer:
            tracer.instant(
                f"autoscale.scale-{direction}",
                track="autoscale",
                target=target,
                moved_bytes=moved_total,
            )

    # -- reporting -------------------------------------------------------------
    def partition(self) -> List[str]:
        """Names of the storage servers currently in the partition."""
        return list(self.pfs.server_names[: self.active])

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<AutoscaleController active={self.active}"
            f" clamp=[{self.policy.min_servers},{self.policy.max_servers}]"
            f" actions={len(self.actions)}>"
        )
