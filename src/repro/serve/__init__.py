"""Multi-tenant request serving over the simulated storage stack.

The paper evaluates one operation at a time; this package turns the
simulator into a *loaded service*: open-loop Poisson tenants offer
requests, an admission controller sheds what bounded queues cannot
hold, a deficit-weighted-round-robin scheduler dispatches fairly, a
load-aware executor chooses offload vs. normal I/O per request (through
a decision cache), and an SLO board accounts every admitted request
into exactly one terminal outcome with per-tenant tail latencies.
"""

from .batch import BatchStats, batch_key, merge_window
from .dispatch import SCHEMES, LoadAwareExecutor
from .scheduler import FairScheduler, RetryPolicy
from .service import ServeConfig, ServeSystem
from .slo import COMPLETED, EXPIRED, FAILED, LATE, OUTCOMES, SLOBoard, TenantStats
from .workload import OpenLoopWorkload, ServeRequest, TenantSpec

__all__ = [
    "COMPLETED",
    "EXPIRED",
    "FAILED",
    "LATE",
    "OUTCOMES",
    "BatchStats",
    "FairScheduler",
    "LoadAwareExecutor",
    "OpenLoopWorkload",
    "RetryPolicy",
    "SCHEMES",
    "SLOBoard",
    "ServeConfig",
    "ServeRequest",
    "ServeSystem",
    "TenantSpec",
    "TenantStats",
    "batch_key",
    "merge_window",
]
