"""Multi-tenant request serving over the simulated storage stack.

The paper evaluates one operation at a time; this package turns the
simulator into a *loaded service*: open-loop Poisson tenants offer
requests, an admission controller sheds what bounded queues cannot
hold, a deficit-weighted-round-robin scheduler dispatches fairly, a
load-aware executor chooses offload vs. normal I/O per request (through
a decision cache), and an SLO board accounts every admitted request
into exactly one terminal outcome with per-tenant tail latencies.  An
optional SLO-driven autoscale controller watches a sliding latency
window and resizes the storage partition by redistribution under the
same per-file fencing the executor uses.
"""

from .autoscale import AutoscaleAction, AutoscaleController, AutoscalePolicy, scaled_layout
from .batch import BatchStats, batch_key, merge_window
from .dispatch import SCHEMES, LoadAwareExecutor
from .scheduler import FairScheduler, RetryPolicy
from .service import ServeConfig, ServeSystem
from .slo import (
    COMPLETED,
    EXPIRED,
    FAILED,
    LATE,
    OUTCOMES,
    SLOBoard,
    SLOWindow,
    TenantStats,
)
from .workload import ClosedLoopWorkload, OpenLoopWorkload, ServeRequest, TenantSpec

__all__ = [
    "COMPLETED",
    "EXPIRED",
    "FAILED",
    "LATE",
    "OUTCOMES",
    "AutoscaleAction",
    "AutoscaleController",
    "AutoscalePolicy",
    "BatchStats",
    "ClosedLoopWorkload",
    "FairScheduler",
    "LoadAwareExecutor",
    "OpenLoopWorkload",
    "RetryPolicy",
    "SCHEMES",
    "SLOBoard",
    "SLOWindow",
    "ServeConfig",
    "ServeRequest",
    "ServeSystem",
    "TenantSpec",
    "TenantStats",
    "batch_key",
    "merge_window",
    "scaled_layout",
]
