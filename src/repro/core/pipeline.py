"""Successive-operation pipelines (paper Section I: "It is common that
successive operations share the same data dependence patterns ... the
flow-accumulation operation always follows the flow-routing operation").

A :class:`Pipeline` chains operators; each stage consumes the previous
stage's output file.  The decision engine is told how many stages still
share the pattern, so one redistribution is amortised across all of
them — and because DAS writes stage outputs in the same replicated
layout, later stages find their dependent data already local.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..errors import ActiveStorageError
from .das_client import ActiveStorageClient
from .request import ActiveRequest, ActiveResult


@dataclass(frozen=True)
class PipelineStage:
    operator: str
    #: Output file name; None derives ``<input>.<operator>``.
    output: Optional[str] = None


class Pipeline:
    """An ordered chain of active-storage operations."""

    def __init__(self, stages: Sequence[PipelineStage | str]):
        if not stages:
            raise ActiveStorageError("pipeline needs at least one stage")
        self.stages: List[PipelineStage] = [
            s if isinstance(s, PipelineStage) else PipelineStage(s) for s in stages
        ]

    def requests(self, input_file: str, replicate_output: bool = True) -> List[ActiveRequest]:
        """Materialise the stage requests for a concrete input file.

        Stage ``k`` advertises ``len(stages) - k`` as its pipeline
        length: the redistribution a stage triggers benefits itself and
        every stage after it."""
        out: List[ActiveRequest] = []
        current = input_file
        n = len(self.stages)
        for k, stage in enumerate(self.stages):
            output = stage.output or f"{current}.{stage.operator}"
            out.append(
                ActiveRequest(
                    operator=stage.operator,
                    file=current,
                    output=output,
                    pipeline_length=n - k,
                    replicate_output=replicate_output,
                )
            )
            current = output
        return out

    def submit(self, client: ActiveStorageClient, input_file: str):
        """Process: run every stage in order through ``client``; value
        is the list of per-stage :class:`ActiveResult`."""

        def proc():
            results: List[ActiveResult] = []
            for request in self.requests(input_file):
                result = yield client.submit(request)
                results.append(result)
            return results

        return client.env.process(proc(), name=f"pipeline:{input_file}")
