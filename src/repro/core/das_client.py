"""The Active Storage Client (paper Fig. 2) and the DAS orchestration.

Applications hand :class:`~repro.core.request.ActiveRequest` objects to
the client.  The client runs the decision engine; on acceptance it
(optionally) reconfigures the file's distribution, registers the output
file, and fans the exec command out to the AS helper on every storage
node — the paper's improved parallel I/O path "similarly as done in
[Son et al.]".  On rejection the request is reported back so the caller
serves it as normal I/O (the TS path).
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..errors import (
    ActiveStorageError,
    LinkDownError,
    NodeDownError,
    OffloadRejectedError,
    RPCTimeoutError,
)
from ..kernels.base import KernelRegistry, default_registry
from ..kernels.reductions import default_reductions
from ..net.message import FaultNotice
from ..obs.span import NULL_SPAN, rpc_reply_bytes, rpc_status
from ..pfs.filesystem import ParallelFileSystem
from ..sim import contain_failures
from .as_server import ASServer
from .decision import DecisionEngine, OffloadDecision
from .features import KernelFeatures
from .request import (
    EXEC_ITEM_BYTES,
    EXEC_REQUEST_BYTES,
    TAG_AS,
    ActiveRequest,
    ActiveResult,
    ServerExecStats,
    exec_request_wire_size,
)

#: Exec RPCs cover a whole file's kernel pass, so their fault-detection
#: timeout is a multiple of the (read-sized) ``rpc_timeout``.
EXEC_TIMEOUT_FACTOR = 8


class ActiveStorageClient:
    """Client-side entry point for active-storage I/O."""

    def __init__(
        self,
        pfs: ParallelFileSystem,
        home: str,
        engine: Optional[DecisionEngine] = None,
        registry: Optional[KernelRegistry] = None,
        halo_granularity: str = "strip",
        start_servers: bool = True,
    ):
        self.pfs = pfs
        self.cluster = pfs.cluster
        self.env = pfs.cluster.env
        self.transport = pfs.cluster.transport
        self.home = home
        self.registry = registry or default_registry
        self.engine = engine or DecisionEngine(
            features=KernelFeatures.from_registry(self.registry)
        )
        #: Optional :class:`~repro.faults.RecoveryPolicy`; ``None`` keeps
        #: the original fan-out path untouched.
        self.recovery = None
        self.servers: Dict[str, ASServer] = {}
        if start_servers:
            for name in pfs.server_names:
                self.servers[name] = ASServer(
                    pfs, name, registry=self.registry, halo_granularity=halo_granularity
                )

    # -- decision-only entry (usable without running anything) ---------------
    def decide(self, request: ActiveRequest) -> OffloadDecision:
        meta = self.pfs.metadata.lookup(request.file)
        return self.engine.decide(
            meta, request.operator, pipeline_length=request.pipeline_length
        )

    # -- full submission ------------------------------------------------------------
    def submit(self, request: ActiveRequest, force_offload: bool = False):
        """Process: run the Fig. 3 workflow end to end.

        Value is an :class:`ActiveResult`.  When the engine rejects the
        request the process *fails* with :class:`OffloadRejectedError`
        carrying the decision, so callers fall back to normal I/O —
        unless ``force_offload`` is set (used to reproduce the NAS
        behaviour of offloading unconditionally).
        """
        return self.env.process(
            self._submit(request, force_offload), name=f"as-submit:{request.operator}"
        )

    def _submit(self, request: ActiveRequest, force_offload: bool):
        started = self.env.now
        meta = self.pfs.metadata.lookup(request.file)
        decision = self.engine.decide(
            meta, request.operator, pipeline_length=request.pipeline_length
        )
        if not decision.accept and not force_offload:
            raise OffloadRejectedError(decision)

        redistribution_bytes = 0
        if decision.accept and decision.redistribute_to is not None:
            redistribution_bytes = yield self.pfs.redistributor.redistribute(
                request.file, decision.redistribute_to
            )
            meta = self.pfs.metadata.lookup(request.file)

        result = yield from self._execute(
            request, decision, started, redistribution_bytes
        )
        return result

    def execute_offload(
        self, request: ActiveRequest, decision: OffloadDecision, span=NULL_SPAN
    ):
        """Process: run the offload fan-out without consulting the
        engine (schemes use this to pin behaviour, e.g. plain NAS)."""
        return self.env.process(
            self._execute(request, decision, self.env.now, 0, span=span),
            name=f"as-exec-all:{request.operator}",
        )

    def execute_offload_batch(
        self, requests, decision: OffloadDecision, span=NULL_SPAN
    ):
        """Process: ONE offload fan-out serving every request of a batch.

        All requests must agree on (file, operator, pipeline) — they ask
        for the same computation over the same bytes.  Per storage server
        a single exec RPC goes out whose header is paid once
        (``EXEC_REQUEST_BYTES``) with one ``EXEC_ITEM_BYTES`` descriptor
        per extra member; halo assembly, strip-cache traffic and the
        kernel pass happen once.  Value is the shared
        :class:`ActiveResult` (lead request's output file)."""
        requests = list(requests)
        if not requests:
            raise ActiveStorageError("empty offload batch")
        lead = requests[0]
        for member in requests[1:]:
            if (member.file, member.operator) != (lead.file, lead.operator):
                raise ActiveStorageError(
                    "offload batch mixes (file, kernel) keys:"
                    f" {(member.file, member.operator)}"
                    f" != {(lead.file, lead.operator)}"
                )
        return self.env.process(
            self._execute(
                lead, decision, self.env.now, 0, batch=len(requests), span=span
            ),
            name=f"as-exec-batch:{lead.operator}x{len(requests)}",
        )

    def _execute(
        self,
        request: ActiveRequest,
        decision: OffloadDecision,
        started: float,
        redistribution_bytes: int,
        batch: int = 1,
        span=NULL_SPAN,
    ):
        meta = self.pfs.metadata.lookup(request.file)
        self._register_output(request, meta)

        monitors = self.cluster.monitors
        tracer = monitors.tracer
        if span is None:
            span = NULL_SPAN
        wire = exec_request_wire_size(batch)
        calls = []
        for server in self.pfs.server_names:
            monitors.counter("as.rpc.header_bytes").add(EXEC_REQUEST_BYTES)
            if batch > 1:
                monitors.counter("as.rpc.item_bytes").add(
                    EXEC_ITEM_BYTES * (batch - 1)
                )
            payload = {
                "op": "exec",
                "kernel": request.operator,
                "file": request.file,
                "output": request.output,
                "replicate_output": request.replicate_output,
                "batch": batch,
            }
            rpc = NULL_SPAN
            if span:
                rpc = tracer.begin(
                    f"as-exec:{server}",
                    cat="rpc",
                    parent=span,
                    server=server,
                    batch=batch,
                )
            call = self._call_or_ft(server, payload, wire, span=rpc)
            if rpc:
                # Close the span at the exact completion step of the
                # pending call via a plain event callback — no new sim
                # events, so tracing never perturbs the run.
                tracer.end_on(rpc, call, status=rpc_status, bytes=rpc_reply_bytes)
            calls.append(call)
        per_server: Dict[str, ServerExecStats] = {}
        for call in contain_failures(calls):
            reply = yield call
            stats = self._check_reply(reply)
            per_server[stats.server] = stats

        total_elements = sum(s.elements for s in per_server.values())
        if total_elements != meta.n_elements:
            raise ActiveStorageError(
                f"offload covered {total_elements} of {meta.n_elements} elements"
                f" of {request.file!r}"
            )
        return ActiveResult(
            request=request,
            decision=decision,
            offloaded=True,
            elapsed=self.env.now - started,
            redistribution_bytes=redistribution_bytes,
            per_server=per_server,
        )

    # -- reductions -----------------------------------------------------------
    def submit_reduction(self, operator: str, file: str):
        """Process: offload a reduction (dependence-free scan with a
        tiny result) to every storage server and merge the partials.

        Value is a dict with ``value`` (the finalised result),
        ``elapsed`` and ``result_bytes_moved``.  Reductions are the
        paper's "desired access pattern" — no dependence, so the
        decision is trivially in favour of offloading."""
        return self.env.process(
            self._submit_reduction(operator, file), name=f"as-reduce:{operator}"
        )

    def _submit_reduction(self, operator: str, file: str):
        kernel = default_reductions.get(operator)
        meta = self.pfs.metadata.lookup(file)
        started = self.env.now
        calls = [
            self._call_or_ft(
                server,
                {"op": "reduce", "kernel": operator, "file": file},
                EXEC_REQUEST_BYTES,
            )
            for server in self.pfs.server_names
        ]
        acc = None
        have = False
        covered = 0
        moved = 0
        for call in contain_failures(calls):
            reply = yield call
            payload = self._check_reply(reply)
            covered += payload["elements"]
            moved += reply.size
            if payload["partial"] is None:
                continue
            acc = kernel.combine(acc, payload["partial"]) if have else payload["partial"]
            have = True
        if covered != meta.n_elements:
            raise ActiveStorageError(
                f"reduction covered {covered} of {meta.n_elements} elements"
                f" of {file!r}"
            )
        return {
            "value": kernel.finalize(acc),
            "elapsed": self.env.now - started,
            "result_bytes_moved": moved,
        }

    # -- fault-tolerant RPC plumbing ------------------------------------------
    def _call_or_ft(self, server: str, payload, wire: float, span=NULL_SPAN):
        """One outbound AS RPC: the plain transport call when no
        recovery policy is attached, a timeout/retry wrapper otherwise."""
        if self.recovery is None:
            return self.transport.call(self.home, server, payload, wire, tag=TAG_AS)
        return self.env.process(
            self._ft_call(server, payload, wire, span=span),
            name=f"as-ft:{self.home}->{server}",
        )

    def _guard(self, event):
        """Subprocess turning an event's outcome into a value so it can
        be raced inside ``any_of`` without an unpicked failure escaping."""
        try:
            value = yield event
        except Exception as exc:  # noqa: BLE001 - outcome becomes data
            return ("err", exc)
        return ("ok", value)

    def _ft_call(self, server: str, payload, wire: float, span=NULL_SPAN):
        """Exec/reduce RPC with detection: per-attempt timeout and
        exponential backoff.  There is no replica to fail over to — an
        offload *must* run where the primary strips live — so exhausted
        attempts surface the error for the caller's degraded-mode
        fallback (normal I/O with replica failover)."""
        policy = self.recovery
        monitors = self.cluster.monitors
        timeout = policy.rpc_timeout * EXEC_TIMEOUT_FACTOR
        attempt = 1
        while True:
            call = self.transport.call(self.home, server, payload, wire, tag=TAG_AS)
            guard = self.env.process(
                self._guard(call), name=f"as-ft-guard:{self.home}->{server}"
            )
            deadline = self.env.timeout(timeout)
            yield self.env.any_of([guard, deadline])
            if guard.processed:
                status, value = guard.value
                if status == "ok":
                    return value
                err = value
            else:
                monitors.counter("faults.rpc_timeouts").add()
                span.event("rpc.timeout", attempt=attempt)
                err = RPCTimeoutError(
                    f"AS RPC to {server!r} unanswered after {timeout:g}s"
                )
            if attempt >= policy.max_attempts:
                raise err
            monitors.counter("faults.retries").add()
            span.event("retry", attempt=attempt)
            backoff = policy.delay(attempt)
            if backoff:
                yield self.env.timeout(backoff)
            attempt += 1

    @staticmethod
    def _check_reply(reply):
        """Unwrap an AS reply, translating a server's
        :class:`~repro.net.message.FaultNotice` back into its exception."""
        payload = reply.payload
        if isinstance(payload, FaultNotice):
            exc_cls = LinkDownError if payload.kind == "link-down" else NodeDownError
            raise exc_cls(payload.error)
        return payload

    def _register_output(self, request: ActiveRequest, meta) -> None:
        """Create the output file record: same geometry, kernels emit
        float64, laid out like the (possibly redistributed) input."""
        if self.pfs.metadata.exists(request.output):
            raise ActiveStorageError(f"output file {request.output!r} already exists")
        out_dtype = np.dtype(np.float64)
        if meta.dtype != out_dtype:
            raise ActiveStorageError(
                f"active-storage kernels operate on float64 files, got {meta.dtype}"
            )
        self.pfs.metadata.create(
            request.output,
            meta.size,
            meta.layout,
            dtype=out_dtype,
            shape=meta.shape,
        )
