"""Improved data distribution calculation (paper Section III-D).

Given an operator's dependence pattern and a file's geometry, compute
the DAS layout: group ``r`` successive strips per server and replicate
``h`` boundary strips onto the neighbouring servers so every dependent
element of every primary strip is server-local.

* ``h`` (halo strips) is the dependence reach rounded up to strips:
  ``ceil(max(reach_before, reach_after) * E / strip_size)``.
* ``r`` (group factor) balances capacity against generality: the paper
  notes the overhead is ``2/r`` (with h = 1), so ``r`` is chosen as the
  smallest group meeting a configurable overhead budget, clamped so
  every server still receives at least one group.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

from ..errors import LayoutError
from ..kernels.pattern import DependencePattern
from ..pfs.datafile import FileMeta
from ..pfs.layout import Layout
from ..pfs.replicated import ReplicatedGroupedLayout


@dataclass(frozen=True)
class LayoutPlan:
    """Result of planning a distribution for (file, operator)."""

    #: The layout to install, or None when the current one should stay.
    layout: Optional[Layout]
    #: Strips of halo replicated at each group boundary.
    halo_strips: int
    #: Group factor r.
    group: int
    #: Fractional extra storage (2h/r).
    capacity_overhead: float
    #: True iff the plan makes every dependence server-local.
    fully_local: bool
    #: Human-readable rationale.
    reason: str


class LayoutOptimizer:
    """Chooses the DAS data distribution for an operation."""

    def __init__(self, capacity_overhead_budget: float = 0.25):
        if capacity_overhead_budget <= 0:
            raise LayoutError("capacity overhead budget must be positive")
        self.capacity_overhead_budget = float(capacity_overhead_budget)

    def halo_strips_for(self, meta: FileMeta, pattern: DependencePattern) -> int:
        """Dependence reach in whole strips."""
        if pattern.is_independent:
            return 0
        width = meta.width if any(t.width_coef for t in pattern.terms) else 1
        reach = max(pattern.reach_before(width), pattern.reach_after(width))
        return max(1, math.ceil(reach * meta.element_size / meta.layout.strip_size))

    def plan(
        self,
        meta: FileMeta,
        pattern: DependencePattern,
        servers: Optional[Sequence[str]] = None,
    ) -> LayoutPlan:
        """Plan the distribution for running ``pattern`` over ``meta``.

        ``servers`` defaults to the file's current server set.
        """
        servers = list(servers or meta.layout.servers)
        strip_size = meta.layout.strip_size
        n_strips = meta.layout.n_strips(meta.size)
        n_servers = len(servers)

        if pattern.is_independent:
            return LayoutPlan(
                layout=None,
                halo_strips=0,
                group=1,
                capacity_overhead=0.0,
                fully_local=True,
                reason="operator has no data dependence; any striping is local",
            )

        h = self.halo_strips_for(meta, pattern)
        # Smallest r meeting the capacity budget, but never smaller than
        # 2h (a group must dominate its replicated boundary).
        r_budget = math.ceil(2 * h / self.capacity_overhead_budget)
        r_min = max(2 * h, r_budget)
        # Every server should receive at least one group, or the tail
        # servers idle while holding nothing.
        r_max = max(1, math.ceil(n_strips / n_servers))
        r = min(r_min, r_max)
        if r_min <= r_max:
            # Among the budget-satisfying group factors, pick the one
            # that balances work best: offloaded makespan tracks the
            # most-loaded server's primary strips.  Ties go to the
            # larger r (lower capacity overhead).
            def max_primary_strips(candidate: int) -> int:
                n_groups = math.ceil(n_strips / candidate)
                return math.ceil(n_groups / n_servers) * candidate

            best = min(
                range(r_min, r_max + 1),
                key=lambda c: (max_primary_strips(c), -c),
            )
            r = best
        if h > r:
            # File too small for this dependence reach: grouping cannot
            # make the halo local.
            return LayoutPlan(
                layout=None,
                halo_strips=h,
                group=r,
                capacity_overhead=float("inf"),
                fully_local=False,
                reason=(
                    f"dependence reach ({h} strips) exceeds the feasible group"
                    f" factor ({r}); no distribution localises it"
                ),
            )
        layout = ReplicatedGroupedLayout(servers, strip_size, group=r, halo_strips=h)
        return LayoutPlan(
            layout=layout,
            halo_strips=h,
            group=r,
            capacity_overhead=layout.capacity_overhead(),
            fully_local=True,
            reason=(
                f"group r={r} with {h} replicated boundary strip(s); capacity"
                f" overhead {layout.capacity_overhead():.1%}"
            ),
        )

    def already_optimal(self, meta: FileMeta, pattern: DependencePattern) -> bool:
        """True when the file's current layout already localises the
        pattern (e.g. installed by a previous operation in a pipeline)."""
        current = meta.layout
        if pattern.is_independent:
            return True
        if not isinstance(current, ReplicatedGroupedLayout):
            return False
        return current.halo_strips >= self.halo_strips_for(meta, pattern)
