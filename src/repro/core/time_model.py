"""Time-aware offload decisions (extension beyond the paper).

The paper's engine compares *bytes moved*.  That is the right currency
when the interconnect is the bottleneck (the paper's premise), but on a
platform whose network outruns its disks a byte-count comparison can
prefer offloading even though the offload path handles every byte on
disk twice (read input + write output) while client-side processing
touches the disk once.  The paper's conclusion explicitly calls for
"dynamic, access-aware, and intelligent storage solutions"; this module
is one step in that direction: convert each candidate plan's byte
movements into an estimated makespan using the platform parameters, and
decide in seconds.

The estimates are deliberately first-order (stage sums of
``bytes / aggregate_bandwidth`` plus compute time); their job is to
rank the three alternatives, not to predict absolute times.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..config import PlatformSpec
from ..kernels.pattern import DependencePattern
from ..pfs.datafile import FileMeta
from .decision import (
    OFFLOAD_IN_PLACE,
    OFFLOAD_REDISTRIBUTE,
    SERVE_NORMAL,
    DecisionEngine,
    OffloadDecision,
)


@dataclass(frozen=True)
class TimeEstimate:
    """Per-path makespan estimates for one request (seconds)."""

    normal: float
    offload_in_place: float
    offload_redistributed: float


class TimeModel:
    """First-order makespan estimates from byte movements."""

    def __init__(self, spec: PlatformSpec, n_storage: int, n_compute: int):
        if n_storage < 1 or n_compute < 1:
            raise ValueError("time model needs >=1 storage and compute node")
        self.spec = spec
        self.n_storage = n_storage
        self.n_compute = n_compute

    # -- building blocks ------------------------------------------------------
    def _compute_seconds(self, operator: str, n_elements: int, n_nodes: int) -> float:
        per_node = n_elements / n_nodes
        return per_node * self.spec.kernel_sec_per_element(operator) / self.spec.cores

    def _disk_seconds(self, total_bytes: float) -> float:
        return total_bytes / (self.n_storage * self.spec.disk_bandwidth)

    def _wire_seconds(self, total_bytes: float, n_links: int) -> float:
        return total_bytes / (n_links * self.spec.nic_bandwidth)

    # -- per-path estimates -------------------------------------------------------
    def normal_seconds(self, meta: FileMeta, operator: str) -> float:
        """Client-side processing: servers stream the file out, the
        compute partition receives and processes it."""
        n = meta.size
        read = self._disk_seconds(n) + self._wire_seconds(
            n, min(self.n_storage, self.n_compute)
        )
        return read + self._compute_seconds(operator, meta.n_elements, self.n_compute)

    def offload_seconds(
        self,
        meta: FileMeta,
        operator: str,
        halo_bytes: float,
        replication_bytes: float,
    ) -> float:
        """Offloaded execution: local read, halo exchange, compute,
        local write, replica maintenance."""
        n = meta.size
        t = self._disk_seconds(n)  # read primaries
        # Halo bytes cross server NICs (tx and rx overlap, full duplex)
        # and are read once more from the peer's disk.
        t += self._wire_seconds(halo_bytes, self.n_storage)
        t += self._disk_seconds(halo_bytes)
        t += self._compute_seconds(operator, meta.n_elements, self.n_storage)
        t += self._disk_seconds(n)  # write output
        t += self._wire_seconds(replication_bytes, self.n_storage)
        t += self._disk_seconds(replication_bytes)
        return t

    def redistribution_seconds(self, moved_bytes: float) -> float:
        """Layout change: every moved byte is disk-read, shipped, and
        disk-written."""
        return 2 * self._disk_seconds(moved_bytes) + self._wire_seconds(
            moved_bytes, self.n_storage
        )

    def estimate(
        self,
        meta: FileMeta,
        pattern: DependencePattern,
        engine: DecisionEngine,
        pipeline_length: int = 1,
    ) -> TimeEstimate:
        """Estimates for all three paths of the Fig. 3 workflow."""
        current = engine.predictor.predict(meta, pattern)
        normal = self.normal_seconds(meta, pattern.name)
        in_place = self.offload_seconds(
            meta,
            pattern.name,
            current.offload_halo_bytes,
            current.offload_replication_bytes,
        )
        redistributed = float("inf")
        if not pattern.is_independent and not engine.optimizer.already_optimal(
            meta, pattern
        ):
            plan = engine.optimizer.plan(meta, pattern)
            if plan.layout is not None:
                from ..pfs.distribution import planned_bytes

                planned = engine.predictor.predict(meta, pattern, layout=plan.layout)
                redistributed = (
                    self.offload_seconds(
                        meta,
                        pattern.name,
                        planned.offload_halo_bytes,
                        planned.offload_replication_bytes,
                    )
                    + self.redistribution_seconds(planned_bytes(meta, plan.layout))
                    / max(1, pipeline_length)
                )
        return TimeEstimate(
            normal=normal,
            offload_in_place=in_place,
            offload_redistributed=redistributed,
        )


class TimeAwareDecisionEngine(DecisionEngine):
    """Decides in estimated seconds instead of raw bytes."""

    def __init__(self, time_model: TimeModel, **kwargs):
        super().__init__(**kwargs)
        self.time_model = time_model

    def decide(
        self,
        meta: FileMeta,
        operator: str,
        pipeline_length: int = 1,
        allow_redistribution: bool = True,
    ) -> OffloadDecision:
        # Reuse the byte-level analysis for the decision record, then
        # override the outcome with the time ranking.
        byte_decision = super().decide(
            meta, operator, pipeline_length, allow_redistribution
        )
        pattern = self.features.get(operator)
        est = self.time_model.estimate(meta, pattern, self, pipeline_length)

        candidates = {SERVE_NORMAL: est.normal, OFFLOAD_IN_PLACE: est.offload_in_place}
        if allow_redistribution and byte_decision.prediction_planned is not None:
            candidates[OFFLOAD_REDISTRIBUTE] = est.offload_redistributed
        outcome = min(candidates, key=candidates.get)  # type: ignore[arg-type]

        from dataclasses import replace

        redistribute_to = None
        if outcome == OFFLOAD_REDISTRIBUTE:
            redistribute_to = (
                byte_decision.redistribute_to
                or self.optimizer.plan(meta, pattern).layout
            )

        return replace(
            byte_decision,
            outcome=outcome,
            redistribute_to=redistribute_to,
            reason=(
                f"time-aware: normal {est.normal * 1e3:.2f} ms, in-place"
                f" {est.offload_in_place * 1e3:.2f} ms, redistributed"
                f" {est.offload_redistributed * 1e3:.2f} ms -> {outcome}"
            ),
        )
