"""Active-storage request/response records."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .decision import OffloadDecision

#: Transport tag for active-storage control traffic.
TAG_AS = "as"

#: Wire size of an exec request / completion report (control plane).
EXEC_REQUEST_BYTES = 256
EXEC_REPLY_BYTES = 256

#: Per-member descriptor appended to a *batched* exec request: the
#: header is paid once per message, each extra rider adds only this.
EXEC_ITEM_BYTES = 32


def exec_request_wire_size(batch: int) -> int:
    """On-wire size of an exec request carrying ``batch`` merged requests."""
    return EXEC_REQUEST_BYTES + EXEC_ITEM_BYTES * (max(1, batch) - 1)


@dataclass(frozen=True)
class ActiveRequest:
    """One application-level active-storage operation."""

    #: Operator name (must be registered in the kernel registry and
    #: have a Kernel Features record).
    operator: str
    #: Input PFS file.
    file: str
    #: Output PFS file to create (same size/dtype as the input).
    output: str
    #: Successive operations expected to share the dependence pattern
    #: (drives redistribution amortisation, paper Fig. 3).
    pipeline_length: int = 1
    #: Maintain replicas of the output when the layout keeps replicas,
    #: so the next pipeline stage finds its halo local.
    replicate_output: bool = True


@dataclass
class ServerExecStats:
    """Per-server execution report returned by an AS helper."""

    server: str
    runs: int = 0
    elements: int = 0
    halo_bytes_remote: int = 0
    halo_bytes_local: int = 0
    output_bytes_local: int = 0
    output_bytes_remote: int = 0
    compute_seconds: float = 0.0


@dataclass
class ActiveResult:
    """Outcome of one request submitted to the Active Storage Client."""

    request: ActiveRequest
    decision: OffloadDecision
    #: True when served as active storage (False = fell back to normal I/O;
    #: the caller is expected to run the client-side path).
    offloaded: bool
    #: Simulated seconds from submission to completion.
    elapsed: float = 0.0
    #: Wire bytes moved by the redistribution step (0 if none).
    redistribution_bytes: int = 0
    per_server: Dict[str, ServerExecStats] = field(default_factory=dict)

    @property
    def total_remote_halo_bytes(self) -> int:
        return sum(s.halo_bytes_remote for s in self.per_server.values())

    @property
    def total_elements(self) -> int:
        return sum(s.elements for s in self.per_server.values())
