"""Decision reuse: a memo of :class:`DecisionEngine` verdicts.

Under serving load the Fig. 3 workflow runs per *request*, not per
dataset — thousands of requests against a handful of (kernel, layout,
size) combinations.  The engine's verdict depends only on the kernel's
dependence pattern, the file's layout, its geometry and the declared
pipeline length, so identical requests can share one computed decision.

The cache key deliberately excludes the file *name*: two files with the
same layout, size and shape get the same verdict, which is exactly the
reuse a multi-tenant serving mix needs.  Redistribution changes a
file's layout and therefore its key, so stale reuse is structurally
impossible; :meth:`DecisionCache.invalidate_meta` additionally drops
every entry recorded against the pre-redistribution geometry (the
planned-layout part of those decisions referenced a plan that has now
been executed).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Hashable, Optional, Tuple

from ..errors import ActiveStorageError
from ..kernels.pattern import DependencePattern
from ..pfs.datafile import FileMeta
from ..pfs.layout import Layout
from .decision import DecisionEngine, OffloadDecision


def layout_signature(layout: Layout) -> Tuple[Hashable, ...]:
    """A hashable identity for a layout: type, servers, strip size and
    the placement parameters concrete subclasses add (group, halo)."""
    extras = tuple(
        (attr, getattr(layout, attr))
        for attr in ("group", "halo_strips")
        if hasattr(layout, attr)
    )
    return (
        type(layout).__name__,
        tuple(layout.servers),
        layout.strip_size,
        extras,
    )


def pattern_signature(pattern: DependencePattern) -> Tuple[Hashable, ...]:
    """A hashable identity for a dependence pattern (name + offsets)."""
    return (
        pattern.name,
        tuple((term.width_coef, term.const) for term in pattern.terms),
    )


@dataclass
class DecisionCacheStats:
    """Hit/miss/eviction/invalidation tallies for reporting."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0
    expirations: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class DecisionCache:
    """LRU memo in front of a :class:`DecisionEngine`.

    ``capacity`` bounds the number of cached verdicts (LRU eviction);
    a serving mix rarely needs more than kernels x layouts x sizes.

    ``ttl`` (with a ``clock`` returning the current simulated time)
    bounds how long a verdict may be reused: entries older than ``ttl``
    are dropped on lookup and recomputed.  Structural invalidation
    (redistribution changes the key) handles layout churn; the TTL is a
    safety net for environment drift the key cannot see — e.g. cluster
    membership changing under fault injection.
    """

    def __init__(
        self,
        engine: DecisionEngine,
        capacity: int = 256,
        ttl: Optional[float] = None,
        clock: Optional[Callable[[], float]] = None,
    ):
        if capacity <= 0:
            raise ActiveStorageError(
                f"decision cache capacity must be positive, got {capacity!r}"
            )
        if ttl is not None:
            if ttl <= 0:
                raise ActiveStorageError(f"TTL must be positive, got {ttl!r}")
            if clock is None:
                raise ActiveStorageError("a TTL'd decision cache needs a clock")
        self.engine = engine
        self.capacity = int(capacity)
        self.ttl = ttl
        self._clock = clock or (lambda: 0.0)
        self._entries: "OrderedDict[tuple, Tuple[OffloadDecision, float]]" = (
            OrderedDict()
        )
        self.stats = DecisionCacheStats()

    def key(
        self, meta: FileMeta, operator: str, pipeline_length: int = 1
    ) -> Tuple[Hashable, ...]:
        pattern = self.engine.features.get(operator)
        return (
            pattern_signature(pattern),
            layout_signature(meta.layout),
            meta.size,
            meta.shape,
            max(1, int(pipeline_length)),
        )

    def decide(
        self,
        meta: FileMeta,
        operator: str,
        pipeline_length: int = 1,
        allow_redistribution: bool = True,
    ) -> OffloadDecision:
        """The engine's verdict, served from cache when available."""
        if not allow_redistribution:
            # Rarely used, decision space differs: bypass the cache.
            return self.engine.decide(
                meta, operator, pipeline_length, allow_redistribution=False
            )
        k = self.key(meta, operator, pipeline_length)
        entry = self._entries.get(k)
        if entry is not None:
            cached, stamp = entry
            if self.ttl is not None and self._clock() - stamp > self.ttl:
                del self._entries[k]
                self.stats.expirations += 1
            else:
                self._entries.move_to_end(k)
                self.stats.hits += 1
                return cached
        self.stats.misses += 1
        decision = self.engine.decide(meta, operator, pipeline_length)
        self._entries[k] = (decision, self._clock())
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1
        return decision

    def invalidate_meta(self, meta: FileMeta, layout: Optional[Layout] = None) -> int:
        """Drop every entry keyed on this file's (layout, size, shape).

        Call after redistributing a file: entries for its *old* geometry
        are gone, and the next :meth:`decide` recomputes against the new
        layout.  ``layout`` overrides ``meta.layout`` — pass the
        pre-move layout, because redistribution swaps the layout on the
        *same* :class:`FileMeta` record in place.  Returns the number of
        entries dropped.
        """
        sig = (layout_signature(layout or meta.layout), meta.size, meta.shape)
        victims = [k for k in self._entries if (k[1], k[2], k[3]) == sig]
        for k in victims:
            del self._entries[k]
        self.stats.invalidations += len(victims)
        return len(victims)

    def clear(self) -> None:
        self.stats.invalidations += len(self._entries)
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<DecisionCache {len(self._entries)}/{self.capacity}"
            f" hit_rate={self.stats.hit_rate:.0%}>"
        )
