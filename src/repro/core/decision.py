"""Offload decision engine (paper Fig. 3 workflow).

For each active-storage request the engine walks the paper's flowchart:

1. get the dependence pattern (Kernel Features),
2. get the file's distribution information (metadata),
3. predict the bandwidth cost of offloading vs. normal I/O,
4. when successive operations will reuse the pattern, plan an improved
   distribution and amortise its redistribution cost over the pipeline,
5. accept the request — possibly with a layout change — or reject it so
   it is served as normal I/O.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..pfs.datafile import FileMeta
from ..pfs.distribution import planned_bytes
from ..pfs.layout import Layout
from .features import KernelFeatures
from .layout_opt import LayoutOptimizer
from .predictor import BandwidthPrediction, BandwidthPredictor

#: Decision outcomes.
SERVE_NORMAL = "serve-normal"
OFFLOAD_IN_PLACE = "offload-in-place"
OFFLOAD_REDISTRIBUTE = "offload-redistribute"


@dataclass(frozen=True)
class OffloadDecision:
    """The engine's verdict for one request."""

    outcome: str
    #: Target layout when outcome is OFFLOAD_REDISTRIBUTE.
    redistribute_to: Optional[Layout]
    #: Prediction under the file's current layout.
    prediction_current: BandwidthPrediction
    #: Prediction under the planned layout (when one was considered).
    prediction_planned: Optional[BandwidthPrediction]
    #: Wire bytes the planned redistribution would move (un-amortised).
    redistribution_bytes: int
    #: Operations expected to share the pattern (amortisation factor).
    pipeline_length: int
    reason: str
    #: Data-path weight applied to redistribution bytes (see
    #: :class:`DecisionEngine.redistribution_penalty`).
    redistribution_penalty: float = 1.5

    @property
    def accept(self) -> bool:
        """True iff the request is served as active storage."""
        return self.outcome != SERVE_NORMAL

    def offload_cost(self) -> float:
        """Predicted per-operation byte cost of the chosen offload path."""
        if self.outcome == OFFLOAD_REDISTRIBUTE:
            assert self.prediction_planned is not None
            return (
                self.prediction_planned.offload_bytes
                + self.redistribution_penalty
                * self.redistribution_bytes
                / self.pipeline_length
            )
        return float(self.prediction_current.offload_bytes)


class DecisionEngine:
    """Dynamically accepts or rejects active-storage requests."""

    def __init__(
        self,
        features: Optional[KernelFeatures] = None,
        predictor: Optional[BandwidthPredictor] = None,
        optimizer: Optional[LayoutOptimizer] = None,
        redistribution_penalty: float = 1.5,
    ):
        self.features = features or KernelFeatures.from_registry()
        self.predictor = predictor or BandwidthPredictor()
        self.optimizer = optimizer or LayoutOptimizer()
        #: Weight on redistribution bytes when comparing against plain
        #: transfers: a redistributed byte crosses the source disk, the
        #: wire and the destination disk (vs disk+wire for a normal
        #: read), and measured end-to-end it costs ~1.5x a normally
        #: served byte on the reference platform.
        self.redistribution_penalty = float(redistribution_penalty)

    def decide(
        self,
        meta: FileMeta,
        operator: str,
        pipeline_length: int = 1,
        allow_redistribution: bool = True,
    ) -> OffloadDecision:
        """Run the Fig. 3 workflow for one request.

        ``pipeline_length`` is the number of successive operations known
        to share the dependence pattern (flow-routing followed by
        flow-accumulation gives 2); redistribution cost is divided by it.
        """
        pattern = self.features.get(operator)
        current = self.predictor.predict(meta, pattern)

        planned_pred: Optional[BandwidthPrediction] = None
        redist_bytes = 0
        plan_layout: Optional[Layout] = None
        if (
            allow_redistribution
            and not pattern.is_independent
            and not self.optimizer.already_optimal(meta, pattern)
        ):
            plan = self.optimizer.plan(meta, pattern)
            if plan.layout is not None:
                plan_layout = plan.layout
                planned_pred = self.predictor.predict(meta, pattern, layout=plan.layout)
                redist_bytes = planned_bytes(meta, plan.layout)

        pipeline_length = max(1, int(pipeline_length))
        cost_normal = float(current.normal_bytes)
        cost_current = float(current.offload_bytes)
        cost_planned = (
            planned_pred.offload_bytes
            + self.redistribution_penalty * redist_bytes / pipeline_length
            if planned_pred is not None
            else float("inf")
        )

        best = min(cost_normal, cost_current, cost_planned)
        if best == cost_planned and planned_pred is not None:
            return OffloadDecision(
                outcome=OFFLOAD_REDISTRIBUTE,
                redistribute_to=plan_layout,
                prediction_current=current,
                prediction_planned=planned_pred,
                redistribution_bytes=redist_bytes,
                pipeline_length=pipeline_length,
                redistribution_penalty=self.redistribution_penalty,
                reason=(
                    f"redistribute + offload moves {cost_planned:.0f} B/op vs"
                    f" {cost_current:.0f} B in place, {cost_normal:.0f} B normal"
                ),
            )
        if best == cost_current:
            return OffloadDecision(
                outcome=OFFLOAD_IN_PLACE,
                redistribute_to=None,
                prediction_current=current,
                prediction_planned=planned_pred,
                redistribution_bytes=redist_bytes,
                pipeline_length=pipeline_length,
                redistribution_penalty=self.redistribution_penalty,
                reason=(
                    f"current layout already cheap: {cost_current:.0f} B vs"
                    f" {cost_normal:.0f} B normal"
                ),
            )
        return OffloadDecision(
            outcome=SERVE_NORMAL,
            redistribute_to=None,
            prediction_current=current,
            prediction_planned=planned_pred,
            redistribution_bytes=redist_bytes,
            pipeline_length=pipeline_length,
            redistribution_penalty=self.redistribution_penalty,
            reason=(
                f"offload would move {min(cost_current, cost_planned):.0f} B vs"
                f" {cost_normal:.0f} B as normal I/O; request rejected"
            ),
        )
