"""The paper's contribution: Dynamic Active Storage.

* :class:`KernelFeatures` — dependence-pattern store (Section III-B).
* :mod:`~repro.core.predictor` — bandwidth analysis (Section III-C).
* :class:`LayoutOptimizer` — improved data distribution (Section III-D).
* :class:`DecisionEngine` — the Fig. 3 accept/reject workflow.
* :class:`ActiveStorageClient` / :class:`ASServer` — the prototype's
  client and per-node helper (Fig. 2).
* :class:`Pipeline` — successive operations sharing a pattern.
"""

from .analysis import local_strides, locality_table
from .as_server import ASServer
from .dag import GraphOp, OperationGraph
from .das_client import ActiveStorageClient
from .decision import (
    OFFLOAD_IN_PLACE,
    OFFLOAD_REDISTRIBUTE,
    SERVE_NORMAL,
    DecisionEngine,
    OffloadDecision,
)
from .decision_cache import (
    DecisionCache,
    DecisionCacheStats,
    layout_signature,
    pattern_signature,
)
from .features import KernelFeatures
from .layout_opt import LayoutOptimizer, LayoutPlan
from .pipeline import Pipeline, PipelineStage
from .predictor import (
    BandwidthPredictor,
    BandwidthPrediction,
    cross_server_elements,
    dependence_is_local,
    element_movement_bytes,
    location_grouped,
    location_round_robin,
    offload_interserver_bytes,
    remote_halo_bytes,
    replication_bytes,
    strip_of_element,
)
from .request import ActiveRequest, ActiveResult, ServerExecStats, TAG_AS
from .time_model import TimeAwareDecisionEngine, TimeEstimate, TimeModel

__all__ = [
    "ASServer",
    "ActiveRequest",
    "ActiveResult",
    "ActiveStorageClient",
    "BandwidthPredictor",
    "BandwidthPrediction",
    "DecisionCache",
    "DecisionCacheStats",
    "DecisionEngine",
    "GraphOp",
    "OperationGraph",
    "KernelFeatures",
    "LayoutOptimizer",
    "LayoutPlan",
    "OFFLOAD_IN_PLACE",
    "OFFLOAD_REDISTRIBUTE",
    "OffloadDecision",
    "Pipeline",
    "PipelineStage",
    "SERVE_NORMAL",
    "ServerExecStats",
    "TimeAwareDecisionEngine",
    "TimeEstimate",
    "TimeModel",
    "TAG_AS",
    "cross_server_elements",
    "dependence_is_local",
    "element_movement_bytes",
    "layout_signature",
    "pattern_signature",
    "location_grouped",
    "location_round_robin",
    "offload_interserver_bytes",
    "remote_halo_bytes",
    "replication_bytes",
    "local_strides",
    "locality_table",
    "strip_of_element",
]
