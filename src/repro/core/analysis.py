"""Locality analysis tables (paper Section III-C, Fig. 6).

Small pedagogical/operational helpers that answer the question the
paper's Eqs. (11)–(17) pose: *for which strides, strip sizes and server
counts does dependent data stay server-local?*  Used by the
``offload_decisions`` example and handy when sizing a deployment.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

import numpy as np

from ..pfs.layout import GroupedLayout, RoundRobinLayout
from .predictor import cross_server_elements, dependence_is_local


def locality_table(
    strides: Sequence[int],
    element_size: int,
    strip_size: int,
    n_servers: int,
    groups: Sequence[int] = (1,),
    n_elements: int | None = None,
) -> List[dict]:
    """One row per (stride, group): Eq. (17) verdict plus — when
    ``n_elements`` is given — the exact count of cross-server
    dependencies for a ±stride pattern over a file of that size.

    The exact count exposes where the analytic criterion is
    conservative: a stride smaller than one strip fails Eq. (17) yet
    only the elements near strip boundaries actually cross.
    """
    rows: List[dict] = []
    servers = [f"s{i}" for i in range(n_servers)]
    for group in groups:
        layout = (
            RoundRobinLayout(servers, strip_size)
            if group == 1
            else GroupedLayout(servers, strip_size, group)
        )
        for stride in strides:
            row = {
                "stride": int(stride),
                "group_r": int(group),
                "eq17_local": dependence_is_local(
                    stride, element_size, strip_size, n_servers, group
                ),
            }
            if n_elements is not None:
                crossings = cross_server_elements(
                    layout,
                    n_elements,
                    element_size,
                    np.array([-stride, stride]),
                )
                row["cross_server_deps"] = crossings
                row["cross_fraction"] = (
                    crossings / (2 * n_elements) if n_elements else 0.0
                )
            rows.append(row)
    return rows


def local_strides(
    element_size: int,
    strip_size: int,
    n_servers: int,
    group: int = 1,
    limit: int | None = None,
) -> Iterable[int]:
    """The strides Eq. (17) declares free: multiples of one *server
    round* (``group * strip_size * n_servers / element_size`` elements).

    Yields them in increasing order, up to ``limit`` (exclusive) when
    given, otherwise forever.
    """
    round_bytes = group * strip_size * n_servers
    if round_bytes % element_size:
        # No integral element stride lands exactly on a server round.
        return
    step = round_bytes // element_size
    stride = step
    while limit is None or stride < limit:
        yield stride
        stride += step
