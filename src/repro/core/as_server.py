"""The AS helper process on each storage node (paper Fig. 2: "AS",
"Processing Kernels", "Local I/O API").

When an offloaded request arrives, the helper walks the runs of strips
whose primary copy lives on its node, and for each run:

1. gathers the element window = run + dependence halo — locally held
   bytes (primary strips and DAS replicas) come from the disk through
   the Local I/O API; missing halo comes from the owning peer server
   over the fabric (this is NAS's downfall and what the DAS layout
   eliminates);
2. invokes the processing kernel (CPU time charged on the node's
   engine, the same engine that serves peers' requests);
3. writes the output run back through the PFS — primary strips locally,
   replica strips (DAS layouts) to the neighbouring servers.

Halo fetch granularity is configurable: ``"strip"`` transfers whole
neighbour strips (what the paper's NAS prototype does — "each strip was
transferred multiple times among the storage nodes"), ``"exact"``
transfers only the dependence reach (an idealised variant for
ablations).
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..errors import ActiveStorageError, LinkDownError, NodeDownError
from ..kernels.base import KernelRegistry, default_registry
from ..kernels.reductions import ReductionRegistry, default_reductions
from ..kernels.stencil import Window, window_bounds
from ..net.message import FaultNotice, Message
from ..pfs.dataserver import ReadPiece, WritePiece, accounted_wire_size
from ..pfs.dataserver import TAG_PFS
from ..pfs.datafile import FileMeta
from ..pfs.filesystem import ParallelFileSystem
from ..pfs.localio import LocalFile
from ..sim import Resource, contain_failures
from .request import EXEC_REPLY_BYTES, TAG_AS, ServerExecStats

HALO_GRANULARITIES = ("strip", "exact")


class ASServer:
    """Active-storage helper bound to one storage node."""

    def __init__(
        self,
        pfs: ParallelFileSystem,
        server: str,
        registry: Optional[KernelRegistry] = None,
        halo_granularity: str = "strip",
        max_inflight_runs: int = 4,
    ):
        if halo_granularity not in HALO_GRANULARITIES:
            raise ActiveStorageError(
                f"unknown halo granularity {halo_granularity!r};"
                f" pick from {HALO_GRANULARITIES}"
            )
        if max_inflight_runs <= 0:
            raise ActiveStorageError(
                f"max_inflight_runs must be positive, got {max_inflight_runs!r}"
            )
        self.pfs = pfs
        self.ds = pfs.servers[server]
        self.node = self.ds.node
        self.env = self.node.env
        self.transport = pfs.cluster.transport
        self.monitors = pfs.cluster.monitors
        self.registry = registry or default_registry
        self.reductions: ReductionRegistry = default_reductions
        self.halo_granularity = halo_granularity
        self.max_inflight_runs = int(max_inflight_runs)
        self._service = self.env.process(self._serve(), name=f"as-server:{server}")

    @property
    def name(self) -> str:
        return self.ds.name

    # -- request loop ------------------------------------------------------------
    def _serve(self):
        while True:
            msg = yield self.transport.recv(self.name, tag=TAG_AS)
            self.env.process(self._handle(msg), name=f"as-handle:{self.name}")

    def _handle(self, msg: Message):
        if not self.node.is_up:
            # A crashed helper answers nothing; requests already in its
            # mailbox die with the process state.
            self.monitors.counter("faults.dropped_requests").add()
            return
        try:
            yield from self._handle_op(msg)
        except (NodeDownError, LinkDownError) as exc:
            # A *downstream* dependency died mid-request (a peer holding
            # halo strips, a replica holder for the output, the path to
            # either).  This node is still alive, so it must answer —
            # silently dropping the request would leave the caller
            # blocked forever.
            kind = "link-down" if isinstance(exc, LinkDownError) else "node-down"
            self.monitors.counter("faults.error_replies").add()
            try:
                yield from self.transport.reply_gen(
                    msg, FaultNotice(kind=kind, error=str(exc)), EXEC_REPLY_BYTES
                )
            except (NodeDownError, LinkDownError):
                self.monitors.counter("faults.dropped_replies").add()

    def _handle_op(self, msg: Message):
        req = msg.payload
        op = req.get("op")
        if op == "exec":
            batched = int(req.get("batch", 1))
            if batched > 1:
                # One exec pass is about to serve `batched` requests.
                self.monitors.counter("as.exec.amortised_requests").add(batched - 1)
            stats = yield from self._execute(
                req["kernel"],
                req["file"],
                req["output"],
                req.get("replicate_output", True),
            )
            yield from self.transport.reply_gen(msg, stats, EXEC_REPLY_BYTES)
        elif op == "reduce":
            kernel = self.reductions.get(req["kernel"])
            payload = yield from self._reduce(kernel, req["file"])
            yield from self.transport.reply_gen(
                msg, payload, EXEC_REPLY_BYTES + kernel.result_bytes
            )
        else:
            raise ActiveStorageError(f"unknown AS op {op!r}")

    # -- reductions (dependence-free scans with tiny results) ----------------
    def _reduce(self, kernel, file: str):
        """Fold a reduction kernel over this server's primary runs."""
        meta = self.pfs.metadata.lookup(file)
        local = LocalFile(self.ds, meta)
        acc = None
        have = False
        elements = 0
        for run in local.primary_runs():
            first, count = local.run_elem_range(run)
            if count == 0:
                continue
            data = yield local.read_elems(first, count)
            yield self.node.cpu.run_kernel(kernel.name, count)
            part = kernel.partial(np.asarray(data, dtype=np.float64))
            acc = kernel.combine(acc, part) if have else part
            have = True
            elements += count
        return {"partial": acc, "elements": elements, "server": self.name}

    # -- execution ------------------------------------------------------------------
    def execute(self, kernel_name: str, file: str, output: str, replicate_output: bool):
        """Process: run the kernel over this server's primary runs;
        value is a :class:`ServerExecStats`."""
        return self.env.process(
            self._execute(kernel_name, file, output, replicate_output),
            name=f"as-exec:{self.name}:{kernel_name}",
        )

    def _execute(self, kernel_name: str, file: str, output: str, replicate_output: bool):
        kernel = self.registry.get(kernel_name)
        meta = self.pfs.metadata.lookup(file)
        out_meta = self.pfs.metadata.lookup(output)
        if out_meta.size != meta.size:
            raise ActiveStorageError(
                f"output {output!r} must match input size"
                f" ({out_meta.size} != {meta.size})"
            )
        pattern = kernel.pattern()
        width = meta.width if meta.shape is not None else 1
        rb = pattern.reach_before(width)
        ra = pattern.reach_after(width)

        local = LocalFile(self.ds, meta)
        stats = ServerExecStats(server=self.name)
        # Runs are executed through a bounded pipeline: while one run
        # computes, the next runs' halo fetches are already in flight
        # (standard request overlap; without it every run would stall a
        # full fetch round trip).
        slots = Resource(self.env, capacity=self.max_inflight_runs)
        jobs = []
        for run in local.primary_runs():
            first, count = local.run_elem_range(run)
            if count == 0:
                continue
            jobs.append(
                self.env.process(
                    self._run_one(
                        kernel,
                        kernel_name,
                        meta,
                        out_meta,
                        first,
                        count,
                        rb,
                        ra,
                        width,
                        replicate_output,
                        slots,
                        stats,
                    ),
                    name=f"as-run:{self.name}:{first}",
                )
            )
        for job in contain_failures(jobs):
            yield job
        return stats

    def _run_one(
        self,
        kernel,
        kernel_name: str,
        meta: FileMeta,
        out_meta: FileMeta,
        first: int,
        count: int,
        rb: int,
        ra: int,
        width: int,
        replicate_output: bool,
        slots: Resource,
        stats: ServerExecStats,
    ):
        with slots.request() as slot:
            yield slot
            win_lo, win_hi = window_bounds(first, count, rb, ra, meta.n_elements)
            raw = yield from self._gather_window(
                meta,
                win_lo * meta.element_size,
                (win_hi - win_lo) * meta.element_size,
                stats,
            )
            window = Window(
                data=np.ascontiguousarray(raw).view(meta.dtype).astype(
                    np.float64, copy=False
                ),
                lo=win_lo,
                first=first,
                end=first + count,
                width=width,
                n_elements=meta.n_elements,
            )
            stats.compute_seconds += yield self.node.cpu.run_kernel(kernel_name, count)
            result = kernel.apply_window(window).astype(out_meta.dtype, copy=False)
            yield from self._write_output(
                out_meta, first, result, replicate_output, stats
            )
            stats.runs += 1
            stats.elements += count
        return None

    # -- window gathering ----------------------------------------------------------------
    def _gather_window(self, meta: FileMeta, offset: int, length: int, stats):
        """Assemble ``[offset, offset+length)`` of ``meta`` into a buffer:
        local strips via the disk, missing strips from their owners."""
        layout = meta.layout
        out = np.empty(length, dtype=np.uint8)

        local_pieces: List[ReadPiece] = []
        local_spans: List[tuple] = []  # (buffer pos, length)
        remote_strips: Dict[str, Dict[int, List[tuple]]] = {}

        for e in layout.map_extent(offset, length):
            pos = e.offset - offset
            if self.ds.has_strip(meta.name, e.strip):
                local_pieces.append(ReadPiece(e.strip, e.in_strip, e.length))
                local_spans.append((pos, e.length))
            else:
                owner = layout.primary_server(e.strip)
                remote_strips.setdefault(owner, {}).setdefault(e.strip, []).append(
                    (pos, e.in_strip, e.length)
                )

        jobs = []
        if local_pieces:
            jobs.append(
                self.env.process(
                    self._local_job(meta.name, local_pieces, local_spans, out)
                )
            )
        for owner, strips in remote_strips.items():
            jobs.append(self.env.process(self._remote_job(meta, owner, strips, out, stats)))
        for job in contain_failures(jobs):
            yield job
        local_bytes = sum(p.length for p in local_pieces)
        stats.halo_bytes_local += local_bytes
        self.monitors.counter("as.halo_bytes_local").add(local_bytes)
        return out

    def _local_job(self, file: str, pieces: List[ReadPiece], spans, out: np.ndarray):
        data = yield from self.ds.read_pieces_gen(file, pieces)
        cursor = 0
        for (pos, ln) in spans:
            out[pos : pos + ln] = data[cursor : cursor + ln]
            cursor += ln
        return None

    def _remote_job(self, meta: FileMeta, owner: str, strips, out: np.ndarray, stats):
        """Fetch the needed parts of ``strips`` from ``owner``."""
        if self.halo_granularity == "strip":
            # Pull each neighbour strip in full, then slice what we need.
            pieces = [
                ReadPiece(s, 0, meta.layout.strip_extent_bytes(s, meta.size))
                for s in sorted(strips)
            ]
        else:
            pieces = [
                ReadPiece(s, in_strip, ln)
                for s in sorted(strips)
                for (_pos, in_strip, ln) in strips[s]
            ]
        reply = yield from self.transport.call_gen(
            self.name,
            owner,
            {"op": "read", "file": meta.name, "pieces": pieces},
            accounted_wire_size(self.monitors, len(pieces)),
            tag=TAG_PFS,
        )
        data = reply.payload
        stats.halo_bytes_remote += int(data.nbytes)
        self.monitors.counter("as.halo_bytes_remote").add(int(data.nbytes))

        cursor = 0
        for piece in pieces:
            chunk = data[cursor : cursor + piece.length]
            for (pos, in_strip, ln) in strips[piece.strip]:
                if (
                    in_strip >= piece.in_strip
                    and in_strip + ln <= piece.in_strip + piece.length
                ):
                    rel = in_strip - piece.in_strip
                    out[pos : pos + ln] = chunk[rel : rel + ln]
            cursor += piece.length
        return None

    # -- output writing ---------------------------------------------------------------------
    def _write_output(
        self,
        out_meta: FileMeta,
        first: int,
        data: np.ndarray,
        replicate_output: bool,
        stats,
    ):
        raw = np.ascontiguousarray(data).view(np.uint8).reshape(-1)
        offset = first * out_meta.element_size
        layout = out_meta.layout

        local_pieces: List[WritePiece] = []
        remote: Dict[str, List[WritePiece]] = {}
        for e in layout.map_extent(offset, raw.nbytes):
            piece_data = raw[e.offset - offset : e.offset - offset + e.length]
            holders = layout.replicas(e.strip) if replicate_output else [
                layout.primary_server(e.strip)
            ]
            for server in holders:
                piece = WritePiece(e.strip, e.in_strip, piece_data)
                if server == self.name:
                    local_pieces.append(piece)
                else:
                    remote.setdefault(server, []).append(piece)

        jobs = []
        if local_pieces:
            jobs.append(self.ds.write_pieces(out_meta.name, local_pieces))
            stats.output_bytes_local += sum(p.data.nbytes for p in local_pieces)
        for server, pieces in remote.items():
            payload_bytes = sum(p.data.nbytes for p in pieces)
            jobs.append(
                self.transport.call(
                    self.name,
                    server,
                    {"op": "write", "file": out_meta.name, "pieces": pieces},
                    accounted_wire_size(self.monitors, len(pieces)) + payload_bytes,
                    tag=TAG_PFS,
                )
            )
            stats.output_bytes_remote += payload_bytes
        for job in contain_failures(jobs):
            yield job
        return None
