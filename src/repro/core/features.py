"""Kernel Features component (paper Section III-B).

"A component called Kernel Features is embedded in the active storage
client to identify data dependence patterns.  The patterns can be
implemented and represented as a plain text file..."

:class:`KernelFeatures` is that component: a store of
operator-name -> :class:`~repro.kernels.pattern.DependencePattern`,
loadable from the paper's text format and/or seeded from the kernel
registry (each kernel ships its own record).
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Iterable, List, Optional

from ..errors import UnknownKernelError
from ..kernels.base import KernelRegistry, default_registry
from ..kernels.pattern import DependencePattern


class KernelFeatures:
    """The active-storage client's dependence-pattern store."""

    def __init__(self, patterns: Iterable[DependencePattern] = ()):
        self._patterns: Dict[str, DependencePattern] = {}
        for p in patterns:
            self.add(p)

    # -- construction --------------------------------------------------------
    @classmethod
    def from_registry(cls, registry: Optional[KernelRegistry] = None) -> "KernelFeatures":
        """Seed from every registered kernel's own record."""
        registry = registry or default_registry
        return cls(kernel.pattern() for kernel in registry)

    @classmethod
    def from_text(cls, text: str) -> "KernelFeatures":
        """Load from descriptor text in the paper's record format."""
        return cls(DependencePattern.parse(text))

    @classmethod
    def from_file(cls, path: str | Path) -> "KernelFeatures":
        return cls.from_text(Path(path).read_text())

    # -- store ops -------------------------------------------------------------
    def add(self, pattern: DependencePattern) -> None:
        self._patterns[pattern.name] = pattern

    def get(self, operator: str) -> DependencePattern:
        try:
            return self._patterns[operator]
        except KeyError:
            raise UnknownKernelError(
                f"no dependence record for operator {operator!r};"
                f" known: {sorted(self._patterns)}"
            ) from None

    def names(self) -> List[str]:
        return sorted(self._patterns)

    def __contains__(self, operator: str) -> bool:
        return operator in self._patterns

    def __len__(self) -> int:
        return len(self._patterns)

    def to_text(self) -> str:
        """Serialise the whole store as one descriptor file."""
        return "\n".join(self._patterns[name].to_text() for name in self.names())

    def save(self, path: str | Path) -> None:
        Path(path).write_text(self.to_text())
