"""Bandwidth analysis and prediction (paper Section III-C).

Implements the paper's location equations and bandwidth-cost model:

* Eq. (1)–(2): ``strip(i) = i*E // strip_size``,
  ``location(i) = strip(i) mod D`` (round-robin);
* Eq. (3)–(5): per-element dependent-data cost
  ``bwcost = E * sum_j a_j`` with ``a_j = [location(d_j) != location(i)]``;
* Eq. (11)–(13) and (17): the divisibility criterion
  ``(stride * E) % (r * strip_size * D) == 0`` under which all dependent
  data is co-located and offloading moves nothing.

Three cost models are provided, because the paper's analytic criterion
and a real system's transfer behaviour differ in instructive ways:

* ``element`` — the paper's Eq. (5): counts, element by element, the
  dependencies that land on a different server, exactly (vectorised per
  strip, O(strips x offsets)).
* ``strip``  — what the evaluated NAS prototype actually moves:
  dependent data is requested at whole-strip granularity, so each
  processing run pulls its neighbour strips in full ("each strip was
  transferred multiple times among the storage nodes").
* ``exact``  — batched transfers of exactly the halo bytes each run
  needs (an idealised NAS; used for ablations).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..errors import KernelError
from ..kernels.pattern import DependencePattern
from ..pfs.datafile import FileMeta
from ..pfs.layout import Layout

COST_MODELS = ("element", "strip", "exact")


# --------------------------------------------------------------------------
# The paper's location equations (standalone, for tests and teaching).
# --------------------------------------------------------------------------
def strip_of_element(i: int, element_size: int, strip_size: int) -> int:
    """Eq. (1): the strip holding element ``i``."""
    return (i * element_size) // strip_size


def location_round_robin(
    i: int, element_size: int, strip_size: int, n_servers: int
) -> int:
    """Eq. (2): the server index holding element ``i`` under round-robin."""
    return strip_of_element(i, element_size, strip_size) % n_servers


def location_grouped(
    i: int, element_size: int, strip_size: int, n_servers: int, group: int
) -> int:
    """Eq. (14): server index under the DAS grouped layout (r = group)."""
    return (i * element_size) // (group * strip_size) % n_servers


def dependence_is_local(
    stride: int,
    element_size: int,
    strip_size: int,
    n_servers: int,
    group: int = 1,
) -> bool:
    """Eq. (17) (and Eq. 11–13 for group=1): True iff a ±stride
    dependence never leaves its server under the given layout.

    The divisibility criterion holds when the stride displaces an
    element by a whole number of server rounds.
    """
    return (stride * element_size) % (group * strip_size * n_servers) == 0


# --------------------------------------------------------------------------
# Exact per-element accounting (Eq. 5 aggregated over a file).
# --------------------------------------------------------------------------
def cross_server_elements(
    layout: Layout, n_elements: int, element_size: int, offsets: np.ndarray
) -> int:
    """Count (element, offset) pairs whose dependent element lives on a
    different server — ``sum_i sum_j a_j`` of Eq. (5).

    Exact and vectorised per strip: within one strip, ``i + d`` spans at
    most two destination strips, so each (strip, offset) contributes two
    closed-form segments.
    """
    if element_size <= 0 or layout.strip_size % element_size != 0:
        raise KernelError(
            f"element size {element_size} must divide strip size"
            f" {layout.strip_size}"
        )
    spe = layout.strip_size // element_size  # elements per strip
    file_size = n_elements * element_size
    n_strips = layout.n_strips(file_size)
    if n_strips == 0:
        return 0
    servers = np.array(
        [layout.server_index(s) for s in range(n_strips)], dtype=np.int64
    )

    total = 0
    for d in np.asarray(offsets, dtype=np.int64):
        if d == 0:
            continue
        for s in range(n_strips):
            a = s * spe
            b = min((s + 1) * spe, n_elements)
            # Valid source elements: dependent index must stay in-file.
            lo = max(a, -d if d < 0 else 0)
            hi = min(b, n_elements - d if d > 0 else n_elements)
            if lo >= hi:
                continue
            # Destination strips for i in [lo, hi): floor((i+d)/spe).
            t_first = (lo + d) // spe
            t_last = (hi - 1 + d) // spe
            src_server = servers[s]
            for t in range(t_first, t_last + 1):
                seg_lo = max(lo, t * spe - d)
                seg_hi = min(hi, (t + 1) * spe - d)
                if seg_lo >= seg_hi:
                    continue
                if servers[t] != src_server:
                    total += seg_hi - seg_lo
    return int(total)


def element_movement_bytes(
    layout: Layout, n_elements: int, element_size: int, offsets: np.ndarray
) -> int:
    """Eq. (5) summed over the file: total dependent-data bytes that
    cross servers when every element is processed on its own server."""
    return element_size * cross_server_elements(
        layout, n_elements, element_size, offsets
    )


# --------------------------------------------------------------------------
# Run-level (batched) halo accounting — what offload execution moves.
# --------------------------------------------------------------------------
def run_halo_extents(
    layout: Layout,
    file_size: int,
    server: str,
    run: Tuple[int, int],
    offsets_bytes: np.ndarray,
) -> List[Tuple[int, int]]:
    """Byte ranges of dependent data around a strip run.

    Offset-accurate: each dependence offset ``d`` shifts the run's byte
    range by ``d``; the halo is the union of the shifted ranges minus
    the run itself, clamped to the file.  For dense stencils (the
    8-neighbour patterns) this coincides with the contiguous reach
    window; for sparse strides (paper Fig. 6) it charges only the two
    shifted windows, not everything in between.
    """
    first_strip, last_strip = run
    lo = first_strip * layout.strip_size
    hi = min((last_strip + 1) * layout.strip_size, file_size)
    intervals: List[Tuple[int, int]] = []
    for d in np.asarray(offsets_bytes, dtype=np.int64):
        if d == 0:
            continue
        a = max(0, lo + int(d))
        b = min(file_size, hi + int(d))
        if a >= b:
            continue
        # Remove the run's own range; a shifted window overlaps it on
        # one side only (|d| < run length) or not at all.
        if a < lo:
            intervals.append((a, min(b, lo)))
        if b > hi:
            intervals.append((max(a, hi), b))
    if not intervals:
        return []
    # Merge overlapping intervals (offsets of like sign overlap heavily).
    intervals.sort()
    merged = [intervals[0]]
    for a, b in intervals[1:]:
        la, lb = merged[-1]
        if a <= lb:
            merged[-1] = (la, max(lb, b))
        else:
            merged.append((a, b))
    return [(a, b - a) for a, b in merged]


def remote_halo_bytes(
    layout: Layout,
    file_size: int,
    server: str,
    run: Tuple[int, int],
    offsets_bytes: np.ndarray,
    granularity: str = "strip",
) -> int:
    """Bytes a server must pull from peers to process one strip run.

    ``granularity='strip'`` rounds each remote halo up to whole strips
    (the NAS prototype behaviour); ``'exact'`` counts only the bytes in
    the dependence reach.  Strips already held locally (DAS replicas)
    cost nothing either way.
    """
    total = 0
    for offset, length in run_halo_extents(
        layout, file_size, server, run, offsets_bytes
    ):
        first = offset // layout.strip_size
        last = (offset + length - 1) // layout.strip_size
        for strip in range(first, last + 1):
            if layout.holds(server, strip):
                continue
            if granularity == "strip":
                total += layout.strip_extent_bytes(strip, file_size)
            else:
                s_lo = strip * layout.strip_size
                s_hi = s_lo + layout.strip_extent_bytes(strip, file_size)
                total += min(offset + length, s_hi) - max(offset, s_lo)
    return total


def offload_interserver_bytes(
    layout: Layout,
    meta: FileMeta,
    pattern: DependencePattern,
    granularity: str = "strip",
) -> int:
    """Total server-to-server dependent-data traffic for one offloaded
    pass over the whole file under ``layout``."""
    if pattern.is_independent:
        return 0
    width = meta.width if any(t.width_coef for t in pattern.terms) else 1
    offsets_bytes = pattern.offsets(width) * meta.element_size
    total = 0
    for server in layout.servers:
        for run in layout.primary_runs(server, meta.size):
            total += remote_halo_bytes(
                layout, meta.size, server, run, offsets_bytes, granularity
            )
    return total


def replication_bytes(layout: Layout, file_size: int) -> int:
    """Bytes of replica copies the layout stores beyond one copy of the
    file — the traffic needed to maintain replicas of a same-size output."""
    return layout.storage_bytes(file_size) - file_size


@dataclass(frozen=True)
class BandwidthPrediction:
    """Predicted byte movement for serving one operation each way."""

    #: File and operator this prediction is for.
    file: str
    operator: str
    #: Client <-> storage traffic if served as normal I/O (read input +
    #: write same-size output through the PFS client).
    normal_bytes: int
    #: Server <-> server dependent-data traffic if offloaded in place.
    offload_halo_bytes: int
    #: Server <-> server traffic to maintain output replicas (DAS layouts).
    offload_replication_bytes: int
    #: Cost model used for the halo term.
    model: str

    @property
    def offload_bytes(self) -> int:
        return self.offload_halo_bytes + self.offload_replication_bytes

    @property
    def offload_beneficial(self) -> bool:
        """The paper's acceptance test: offload iff it moves less."""
        return self.offload_bytes < self.normal_bytes


class BandwidthPredictor:
    """The DAS client's embedded "bandwidth prediction core"."""

    def __init__(self, model: str = "strip"):
        if model not in COST_MODELS:
            raise KernelError(f"unknown cost model {model!r}; pick from {COST_MODELS}")
        self.model = model

    def halo_bytes(
        self, layout: Layout, meta: FileMeta, pattern: DependencePattern
    ) -> int:
        if self.model == "element":
            width = meta.width if any(t.width_coef for t in pattern.terms) else 1
            return element_movement_bytes(
                layout, meta.n_elements, meta.element_size, pattern.offsets(width)
            )
        return offload_interserver_bytes(layout, meta, pattern, self.model)

    def predict(
        self,
        meta: FileMeta,
        pattern: DependencePattern,
        layout: Optional[Layout] = None,
        output_replicated: bool = True,
        normal_write_back: bool = False,
    ) -> BandwidthPrediction:
        """Predict byte movement for one operation over ``meta``.

        ``layout`` defaults to the file's current layout; pass a
        candidate layout to evaluate a planned redistribution.
        ``output_replicated`` charges replica maintenance for the
        same-size output when the layout keeps replicas.
        ``normal_write_back`` charges the normal-I/O path for writing
        the output back through the clients (off by default: the
        client-side baseline consumes results in place).
        """
        layout = layout or meta.layout
        halo = self.halo_bytes(layout, meta, pattern)
        repl = replication_bytes(layout, meta.size) if output_replicated else 0
        normal = meta.size * (2 if normal_write_back else 1)
        return BandwidthPrediction(
            file=meta.name,
            operator=pattern.name,
            normal_bytes=normal,
            offload_halo_bytes=halo,
            offload_replication_bytes=repl,
            model=self.model,
        )
