"""Operation graphs: DAG-structured analysis workflows.

The paper's pipeline notion (flow-routing feeding flow-accumulation)
generalises to a DAG: one input raster can feed several independent
derivative products (directions -> accumulation, slope, relief ...),
and branches can run concurrently on the active storage.  An
:class:`OperationGraph` schedules each node as soon as its producer
finishes, runs independent branches in parallel, and advertises each
node's *successor count* to the decision engine so one redistribution
is amortised over everything downstream of it.

Node outputs are PFS files named after the node, so downstream tools
(and tests) can collect any intermediate product.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..errors import ActiveStorageError
from .das_client import ActiveStorageClient
from .request import ActiveRequest, ActiveResult


@dataclass(frozen=True)
class GraphOp:
    """One node: run ``operator`` on ``source`` producing file ``name``."""

    name: str
    operator: str
    #: Another node's name, or an existing PFS file for root nodes.
    source: str


class OperationGraph:
    """A DAG of active-storage operations."""

    def __init__(self) -> None:
        self._nodes: Dict[str, GraphOp] = {}

    def add(self, name: str, operator: str, source: str) -> "OperationGraph":
        """Add a node (chainable).  ``source`` may be a previously added
        node (consume its output) or the name of an existing PFS file."""
        if name in self._nodes:
            raise ActiveStorageError(f"graph node {name!r} already exists")
        self._nodes[name] = GraphOp(name=name, operator=operator, source=source)
        return self

    # -- structure queries -----------------------------------------------------
    def parents(self, name: str) -> Optional[str]:
        node = self._nodes[name]
        return node.source if node.source in self._nodes else None

    def children(self, name: str) -> List[str]:
        return [n for n, op in self._nodes.items() if op.source == name]

    def descendants(self, name: str) -> int:
        """Number of nodes downstream of ``name`` (its amortisation pool)."""
        seen = set()
        stack = [name]
        while stack:
            for child in self.children(stack.pop()):
                if child not in seen:
                    seen.add(child)
                    stack.append(child)
        return len(seen)

    def roots(self) -> List[str]:
        return [n for n in self._nodes if self.parents(n) is None]

    def validate(self) -> None:
        """Reject cycles and dangling structure."""
        if not self._nodes:
            raise ActiveStorageError("empty operation graph")
        # Kahn's algorithm over the node-to-node edges.
        remaining = {n: self.parents(n) for n in self._nodes}
        progressed = True
        while remaining and progressed:
            progressed = False
            for name, parent in list(remaining.items()):
                if parent is None or parent not in remaining:
                    del remaining[name]
                    progressed = True
        if remaining:
            raise ActiveStorageError(
                f"operation graph has a cycle involving {sorted(remaining)}"
            )

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, name: str) -> bool:
        return name in self._nodes

    # -- execution ----------------------------------------------------------------
    def submit(self, client: ActiveStorageClient):
        """Process: run the whole graph; value is
        ``{node name: ActiveResult}``.

        Each node starts the moment its producer's output exists;
        sibling branches overlap on the storage servers.
        """
        self.validate()
        env = client.env
        done: Dict[str, object] = {name: env.event() for name in self._nodes}
        results: Dict[str, ActiveResult] = {}

        def run_node(op: GraphOp):
            parent = self.parents(op.name)
            if parent is not None:
                yield done[parent]
                input_file = parent
            else:
                input_file = op.source
            request = ActiveRequest(
                operator=op.operator,
                file=input_file,
                output=op.name,
                pipeline_length=1 + self.descendants(op.name),
            )
            result = yield client.submit(request)
            results[op.name] = result
            done[op.name].succeed(result)
            return result

        def run_all():
            jobs = [
                env.process(run_node(op), name=f"dag:{op.name}")
                for op in self._nodes.values()
            ]
            for job in jobs:
                yield job
            return results

        return env.process(run_all(), name="dag:run")
