"""Deterministic random-stream management.

Simulations must be exactly reproducible: every stochastic component
(workload generators, jitter models, failure injectors) draws from its
own named substream derived from a single root seed, so adding a new
consumer never perturbs the draws of existing ones.
"""

from __future__ import annotations

from typing import Dict

import numpy as np


class RandomStreams:
    """A registry of named, independent ``numpy.random.Generator`` streams."""

    def __init__(self, root_seed: int = 0):
        self.root_seed = int(root_seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return (creating on first use) the substream for ``name``.

        The substream seed is derived by hashing the name with the root
        seed through ``numpy.random.SeedSequence.spawn_key`` semantics,
        so it is stable across processes and Python versions.
        """
        generator = self._streams.get(name)
        if generator is None:
            # Stable, platform-independent derivation: seed sequence with
            # the root seed plus the bytes of the name as entropy words.
            entropy = [self.root_seed] + [b for b in name.encode("utf-8")]
            generator = np.random.default_rng(np.random.SeedSequence(entropy))
            self._streams[name] = generator
        return generator

    def reset(self) -> None:
        """Drop all substreams; next access re-creates them from scratch."""
        self._streams.clear()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<RandomStreams seed={self.root_seed} streams={sorted(self._streams)}>"
