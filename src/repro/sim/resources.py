"""Shared-resource primitives for the simulation engine.

* :class:`Resource` — capacity-limited resource with FIFO queueing
  (models NIC ports, disk arms, CPU cores).
* :class:`PriorityResource` — like :class:`Resource` but requests carry
  a priority (lower value served first).
* :class:`Container` — continuous quantity (models buffer space).
* :class:`Store` / :class:`FilterStore` — queues of Python objects
  (model mailboxes and RPC channels).

Requests are events; processes ``yield`` them and use the returned
request token with ``release``.  ``Resource.request()`` supports the
context-manager protocol so the idiomatic form is::

    with resource.request() as req:
        yield req
        ... hold the resource ...
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional

from ..errors import SimulationError
from .core import Environment
from .events import PENDING, URGENT, Event


class Request(Event):
    """A pending claim on a :class:`Resource` slot."""

    __slots__ = ("resource", "proc")

    def __init__(self, resource: "Resource"):
        # Inlined Event.__init__ (hot path: one per device op).
        env = resource.env
        self.env = env
        self.callbacks = []
        self._value = PENDING
        self._ok = None
        self._defused = False
        self.resource = resource
        self.proc = env.active_process
        resource._do_request(self)

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.cancel()

    def cancel(self) -> None:
        """Release the slot (if granted) or withdraw from the queue."""
        self.resource.release(self)


class PriorityRequest(Request):
    """A request with an explicit priority; FIFO among equal priorities."""

    __slots__ = ("priority", "seq", "withdrawn")

    def __init__(self, resource: "PriorityResource", priority: int = 0):
        self.priority = priority
        self.seq = resource._next_seq()
        self.withdrawn = False
        super().__init__(resource)

    def __lt__(self, other: "PriorityRequest") -> bool:
        return (self.priority, self.seq) < (other.priority, other.seq)


class Resource:
    """A capacity-limited resource with FIFO queueing."""

    def __init__(self, env: Environment, capacity: int = 1):
        if capacity <= 0:
            raise SimulationError(f"resource capacity must be positive, got {capacity!r}")
        self.env = env
        self._capacity = capacity
        self.users: List[Request] = []
        self.queue: List[Request] = []

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def count(self) -> int:
        """Number of slots currently in use."""
        return len(self.users)

    def request(self) -> Request:
        return Request(self)

    def _do_request(self, req: Request) -> None:
        if len(self.users) < self._capacity:
            self.users.append(req)
            req.succeed()
        else:
            self.queue.append(req)

    def release(self, req: Request) -> None:
        """Return a slot to the pool, waking the next queued request."""
        if req in self.users:
            self.users.remove(req)
            self._grant_next()
        else:
            # Withdrawing an un-granted request from the queue is legal
            # (e.g. a process interrupted while waiting).
            try:
                self.queue.remove(req)
            except ValueError:
                pass

    def _grant_next(self) -> None:
        while self.queue and len(self.users) < self._capacity:
            nxt = self.queue.pop(0)
            if nxt._value is not PENDING:
                continue  # stale (cancelled) request
            self.users.append(nxt)
            nxt.succeed()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<{type(self).__name__} users={len(self.users)}/{self._capacity}"
            f" queued={len(self.queue)}>"
        )


class PriorityResource(Resource):
    """A :class:`Resource` whose queue is ordered by request priority.

    Cancelling a *queued* request tombstones it (lazy deletion) instead
    of removing it and re-heapifying: cancellation is O(1), and the dead
    entry is skipped — and discarded — when a pop reaches it.  The heap
    is compacted when tombstones dominate, bounding its memory at ~2x
    the live queue.
    """

    #: Compact when tombstones exceed this many AND the live fraction
    #: drops below half (small heaps never bother).
    _COMPACT_MIN_DEAD = 64

    def __init__(self, env: Environment, capacity: int = 1):
        super().__init__(env, capacity)
        self._seq = 0
        self._dead = 0

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def request(self, priority: int = 0) -> PriorityRequest:  # type: ignore[override]
        return PriorityRequest(self, priority)

    def _do_request(self, req: Request) -> None:
        if len(self.users) < self._capacity:
            self.users.append(req)
            req.succeed()
        else:
            heapq.heappush(self.queue, req)  # type: ignore[arg-type]

    def _grant_next(self) -> None:
        while self.queue and len(self.users) < self._capacity:
            nxt = heapq.heappop(self.queue)  # type: ignore[arg-type]
            if nxt.withdrawn:
                self._dead -= 1
                continue
            if nxt._value is not PENDING:
                continue  # stale (already triggered) request
            self.users.append(nxt)
            nxt.succeed()

    def release(self, req: Request) -> None:
        if req in self.users:
            self.users.remove(req)
            self._grant_next()
        elif req._value is PENDING and not getattr(req, "withdrawn", True):
            # Lazy deletion: mark and leave in place; pops skip it.
            # (A triggered request is no longer queued — nothing to do.)
            req.withdrawn = True
            self._dead += 1
            if (
                self._dead > self._COMPACT_MIN_DEAD
                and self._dead * 2 > len(self.queue)
            ):
                self._compact()

    def _compact(self) -> None:
        self.queue = [r for r in self.queue if not r.withdrawn]
        heapq.heapify(self.queue)  # type: ignore[arg-type]
        self._dead = 0


class RWClaim(Event):
    """A claim on a :class:`ReadWriteLock` (shared or exclusive)."""

    __slots__ = ("lock", "write")

    def __init__(self, lock: "ReadWriteLock", write: bool):
        super().__init__(lock.env)
        self.lock = lock
        self.write = write

    def release(self) -> None:
        """Give the claim back (granted) or withdraw it (still queued)."""
        self.lock._release(self)


class ReadWriteLock:
    """Shared readers / exclusive writer with strict FIFO fairness.

    The queue holds read and write claims in arrival order: a waiting
    writer blocks readers that arrive after it (no writer starvation),
    and once the writer releases, the readers queued behind it are
    granted together up to the next queued writer (no reader
    starvation).

    An *uncontended* read is granted synchronously — the returned claim
    is already triggered and **no event is scheduled**, so fencing a hot
    read path costs nothing when no writer is active.  Callers must
    therefore only ``yield`` a claim that is not yet triggered::

        claim = lock.acquire_read()
        if not claim.triggered:
            yield claim
        try:
            ...
        finally:
            claim.release()

    Write grants always go through an event (mirroring
    :meth:`Resource.request` timing), so ``yield lock.acquire_write()``
    is always correct.
    """

    def __init__(self, env: Environment):
        self.env = env
        self._readers = 0
        self._writer = False
        self._queue: List[RWClaim] = []

    @property
    def readers(self) -> int:
        return self._readers

    @property
    def write_locked(self) -> bool:
        return self._writer

    def acquire_read(self) -> RWClaim:
        claim = RWClaim(self, write=False)
        if not self._writer and not self._queue:
            # Synchronous grant: triggered but never scheduled, so the
            # uncontended fast path adds zero events to the queue.
            self._readers += 1
            claim._ok = True
            claim._value = None
        else:
            self._queue.append(claim)
        return claim

    def acquire_write(self) -> RWClaim:
        claim = RWClaim(self, write=True)
        if not self._writer and self._readers == 0 and not self._queue:
            self._writer = True
            claim.succeed()
        else:
            self._queue.append(claim)
        return claim

    def _release(self, claim: RWClaim) -> None:
        if claim._value is PENDING:
            # Withdrawing a claim that was never granted.
            try:
                self._queue.remove(claim)
            except ValueError:
                pass
        elif claim.write:
            self._writer = False
        else:
            self._readers -= 1
        self._grant()

    def _grant(self) -> None:
        while self._queue:
            head = self._queue[0]
            if head.write:
                if self._writer or self._readers:
                    return
                self._queue.pop(0)
                self._writer = True
                head.succeed()
                return
            if self._writer:
                return
            self._queue.pop(0)
            self._readers += 1
            head.succeed()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        holder = "W" if self._writer else f"R{self._readers}"
        return f"<ReadWriteLock {holder} queued={len(self._queue)}>"


class ContainerPut(Event):
    __slots__ = ("amount",)

    def __init__(self, container: "Container", amount: float):
        if amount <= 0:
            raise SimulationError(f"put amount must be positive, got {amount!r}")
        super().__init__(container.env)
        self.amount = amount
        container._put_waiters.append(self)
        container._trigger()


class ContainerGet(Event):
    __slots__ = ("amount",)

    def __init__(self, container: "Container", amount: float):
        if amount <= 0:
            raise SimulationError(f"get amount must be positive, got {amount!r}")
        super().__init__(container.env)
        self.amount = amount
        container._get_waiters.append(self)
        container._trigger()


class Container:
    """A continuous stock of some quantity with optional capacity bound."""

    def __init__(self, env: Environment, capacity: float = float("inf"), init: float = 0.0):
        if capacity <= 0:
            raise SimulationError("container capacity must be positive")
        if not 0 <= init <= capacity:
            raise SimulationError("initial level must lie within [0, capacity]")
        self.env = env
        self.capacity = capacity
        self._level = float(init)
        self._put_waiters: List[ContainerPut] = []
        self._get_waiters: List[ContainerGet] = []

    @property
    def level(self) -> float:
        return self._level

    def put(self, amount: float) -> ContainerPut:
        return ContainerPut(self, amount)

    def get(self, amount: float) -> ContainerGet:
        return ContainerGet(self, amount)

    def _trigger(self) -> None:
        progress = True
        while progress:
            progress = False
            if self._put_waiters:
                put = self._put_waiters[0]
                if self._level + put.amount <= self.capacity:
                    self._put_waiters.pop(0)
                    self._level += put.amount
                    put.succeed()
                    progress = True
            if self._get_waiters:
                get = self._get_waiters[0]
                if self._level >= get.amount:
                    self._get_waiters.pop(0)
                    self._level -= get.amount
                    get.succeed()
                    progress = True


class StorePut(Event):
    __slots__ = ("item",)

    def __init__(self, store: "Store", item: Any):
        # Inlined Event.__init__ (hot path: one per message).
        self.env = store.env
        self.callbacks = []
        self._value = PENDING
        self._ok = None
        self._defused = False
        self.item = item
        store._put_waiters.append(self)
        store._trigger()


class StoreGet(Event):
    __slots__ = ()

    def __init__(self, store: "Store"):
        # Inlined Event.__init__ (hot path: one per receive).
        self.env = store.env
        self.callbacks = []
        self._value = PENDING
        self._ok = None
        self._defused = False
        store._get_waiters.append(self)
        store._trigger()


class FilterStoreGet(StoreGet):
    __slots__ = ("filter",)

    def __init__(self, store: "FilterStore", filter: Callable[[Any], bool]):
        self.filter = filter
        super().__init__(store)


class Store:
    """A FIFO queue of arbitrary items with optional capacity bound.

    The workhorse of the simulated message fabric: mailboxes, RPC reply
    channels and data-server work queues are all Stores.
    """

    def __init__(self, env: Environment, capacity: float = float("inf")):
        if capacity <= 0:
            raise SimulationError("store capacity must be positive")
        self.env = env
        self.capacity = capacity
        self.items: List[Any] = []
        self._put_waiters: List[StorePut] = []
        self._get_waiters: List[StoreGet] = []

    def put(self, item: Any) -> StorePut:
        return StorePut(self, item)

    def get(self) -> StoreGet:
        return StoreGet(self)

    def _trigger(self) -> None:
        progress = True
        while progress:
            progress = False
            while self._put_waiters and len(self.items) < self.capacity:
                put = self._put_waiters.pop(0)
                self.items.append(put.item)
                put.succeed()
                progress = True
            if self._get_waiters and self.items:
                got = self._match(self._get_waiters)
                if got is not None:
                    progress = True

    def _match(self, waiters: List[StoreGet]) -> Optional[StoreGet]:
        get = waiters.pop(0)
        item = self.items.pop(0)
        get.succeed(item)
        return get

    def __len__(self) -> int:
        return len(self.items)


class FilterStore(Store):
    """A :class:`Store` whose consumers can select items by predicate."""

    def get(self, filter: Callable[[Any], bool] = lambda item: True) -> FilterStoreGet:  # type: ignore[override]
        return FilterStoreGet(self, filter)

    def _match(self, waiters: List[StoreGet]) -> Optional[StoreGet]:
        # Scan waiters in order; serve the first whose predicate matches
        # some stored item.  Unmatched waiters stay queued.  Hot under
        # load (every put rescans waiters x items), so the inner loop is
        # attribute-free: every waiter created through FilterStore.get
        # carries a `filter` callable.
        items = self.items
        for wi, get in enumerate(waiters):
            predicate = get.filter  # type: ignore[attr-defined]
            for ii, item in enumerate(items):
                if predicate(item):
                    waiters.pop(wi)
                    items.pop(ii)
                    get.succeed(item)
                    return get
        return None
