"""Event primitives for the discrete-event simulation engine.

The design follows the classic process-interaction style (as popularised
by SimPy): an :class:`Event` is a one-shot future that processes can
wait on by ``yield``-ing it.  Events carry a value (or an exception) and
a list of callbacks invoked when the event is processed by the
:class:`~repro.sim.core.Environment`.

Composite conditions (``ev1 & ev2``, ``ev1 | ev2``) are provided by
:class:`AllOf` / :class:`AnyOf`.

Fast-core notes
---------------
This module is on the engine's hottest path: a serving cell creates and
processes hundreds of thousands of events, so the constructors of
:class:`Timeout` and :class:`Initialize` and the trigger methods
(:meth:`Event.succeed`/:meth:`Event.fail`) write the heap entry
directly instead of going through ``Environment.schedule``.  The heap
entry is ``(when, key, event)`` where ``key`` packs the scheduling
priority and the monotone event id into one integer
(``priority << PRIO_SHIFT | eid``), so the scheduling contract — events
at the same timestamp process URGENT before NORMAL, FIFO within a
priority — is a single int comparison.  The packed layout is
load-bearing for bit-identical replay; see
docs/ARCHITECTURE.md#engine-internals--scheduling-contract.
"""

from __future__ import annotations

from heapq import heappush
from typing import TYPE_CHECKING, Any, Callable, Iterable, List, Optional

from ..errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover
    from .core import Environment

# Scheduling priorities: urgent callbacks (resource bookkeeping) run
# before normal events at the same timestamp.
URGENT = 0
NORMAL = 1

#: Bits reserved for the event id in a packed sort key.  2**52 events
#: is far beyond any run; keeping the key under 2**63 keeps it a fast
#: machine int in CPython.
PRIO_SHIFT = 52

#: Packed-key addend for a NORMAL-priority entry (URGENT adds nothing).
NORMAL_KEY = NORMAL << PRIO_SHIFT

#: Sentinel for "no value yet".
PENDING = object()


class Event:
    """A one-shot occurrence that processes may wait for.

    States:

    * *pending*   — created, not yet triggered.
    * *triggered* — :meth:`succeed`/:meth:`fail` called; sits in the
      environment's queue until its timestamp is reached.
    * *processed* — callbacks have run; :attr:`value` is final.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = PENDING
        self._ok: Optional[bool] = None
        self._defused = False

    # -- state predicates --------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has a value (it may not be processed yet)."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have been invoked."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only valid once triggered."""
        if self._ok is None:
            raise SimulationError(f"{self!r} has not been triggered")
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or exception object if it failed)."""
        if self._value is PENDING:
            raise SimulationError(f"{self!r} has no value yet")
        return self._value

    # -- triggering ----------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        env = self.env
        env._eid += 1
        heappush(env._queue, (env._now, NORMAL_KEY + env._eid, self))
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        Waiting processes see the exception thrown at their ``yield``.
        If nothing ever waits, the environment re-raises it at
        processing time (unless :meth:`defused`).
        """
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = False
        self._value = exception
        env = self.env
        env._eid += 1
        heappush(env._queue, (env._now, NORMAL_KEY + env._eid, self))
        return self

    def trigger(self, event: "Event") -> None:
        """Mirror the state of another (triggered) event onto this one.

        Useful as a callback: ``other.callbacks.append(this.trigger)``.
        """
        if event._ok:
            self.succeed(event._value)
        else:
            self.fail(event._value)

    def defuse(self) -> None:
        """Mark a failed event as handled so the environment does not
        re-raise its exception when no process was waiting."""
        self._defused = True

    def cancel(self) -> None:
        """Lazy cancellation: detach every callback so processing this
        event at its timestamp is a no-op pop.

        This is the engine's answer to dead deadlines (the
        :class:`~repro.sim.resources.PriorityResource` tombstone idea
        pushed down into the event queue): a per-request ``rpc_timeout``
        that lost its race would otherwise still walk its callback list
        — typically a condition ``_check`` — when its timestamp
        arrives.  Cancelling empties the list in place; the heap entry
        stays (removal would be O(n)) but its dispatch costs nothing
        and a cancelled *failure* is implicitly defused.

        Only cancel an event that no process will wait on again.  The
        simulated clock still advances through the cancelled timestamp
        exactly as before, so replay is unaffected.
        """
        cbs = self.callbacks
        if cbs is not None:
            cbs.clear()
        self._defused = True

    # -- composition ---------------------------------------------------------
    def __and__(self, other: "Event") -> "AllOf":
        return AllOf(self.env, [self, other])

    def __or__(self, other: "Event") -> "AnyOf":
        return AnyOf(self.env, [self, other])

    def __repr__(self) -> str:
        state = (
            "processed" if self.processed else "triggered" if self.triggered else "pending"
        )
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires after a fixed simulated delay."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay!r}")
        # Inlined Event.__init__ + schedule: a Timeout is born triggered,
        # and this constructor runs for every simulated think/seek/busy
        # period, so it pays to write the heap entry directly.
        self.env = env
        self.callbacks = []
        self._value = value
        self._ok = True
        self._defused = False
        self.delay = delay
        env._eid += 1
        heappush(env._queue, (env._now + delay, NORMAL_KEY + env._eid, self))

    def __repr__(self) -> str:
        return f"<Timeout delay={self.delay!r}>"


class Initialize(Event):
    """Internal event used to start a freshly created process."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Event"):
        self.env = env
        self.callbacks = [process._resume]  # type: ignore[attr-defined]
        self._value = None
        self._ok = True
        self._defused = False
        env._eid += 1
        # URGENT priority: packed key is the bare eid.
        heappush(env._queue, (env._now, env._eid, self))


class ConditionValue:
    """Mapping-like result of a condition: triggered events -> values."""

    def __init__(self) -> None:
        self.events: List[Event] = []

    def __getitem__(self, key: Event) -> Any:
        if key not in self.events:
            raise KeyError(repr(key))
        return key._value

    def __contains__(self, key: Event) -> bool:
        return key in self.events

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def todict(self) -> dict:
        return {ev: ev._value for ev in self.events}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<ConditionValue {self.todict()!r}>"


class Condition(Event):
    """Waits for a predicate over a fixed set of events to hold.

    The condition succeeds with a :class:`ConditionValue` exposing the
    values of all events that had triggered by then.  If any constituent
    event fails, the condition fails with the same exception.
    """

    __slots__ = ("_events", "_count", "_evaluate")

    def __init__(
        self,
        env: "Environment",
        evaluate: Callable[[List[Event], int], bool],
        events: Iterable[Event],
    ):
        super().__init__(env)
        self._events = list(events)
        self._count = 0
        self._evaluate = evaluate

        for event in self._events:
            if event.env is not env:
                raise SimulationError("cannot mix events from different environments")

        if self._evaluate(self._events, 0):
            # Degenerate condition (e.g. AllOf([])) — succeeds immediately.
            self.succeed(ConditionValue())
            return

        for event in self._events:
            if event.callbacks is None:  # already processed
                self._check(event)
            else:
                event.callbacks.append(self._check)

    def _populate_value(self, value: ConditionValue) -> None:
        for event in self._events:
            # Only events that have actually been *processed* count: a
            # Timeout is born triggered, but until its timestamp fires
            # it has not occurred.
            if event.callbacks is None:
                value.events.append(event)

    def _check(self, event: Event) -> None:
        if self._value is not PENDING:
            return  # already triggered (e.g. AnyOf satisfied earlier)
        self._count += 1
        if not event._ok:
            event.defuse()
            self.fail(event._value)
        elif self._evaluate(self._events, self._count):
            value = ConditionValue()
            self._populate_value(value)
            self.succeed(value)

    @staticmethod
    def all_events(events: List[Event], count: int) -> bool:
        return len(events) == count

    @staticmethod
    def any_events(events: List[Event], count: int) -> bool:
        return count > 0 or not events


def contain_failures(events):
    """Arm a fan-out so a sibling's failure cannot crash the engine.

    A process joining several events one at a time (``for ev in events:
    yield ev``) only subscribes to the event it is *currently* waiting
    on; if a later sibling fails in the meantime, that failed event is
    processed with no waiter and the environment re-raises its exception
    out of ``run()``.  This helper appends a defusing callback to every
    event so an unwaited failure is marked handled — the joiner still
    sees the exception when its ``yield`` reaches the failed event,
    because delivery to a waiter is independent of the defused flag.

    Appending callbacks schedules nothing: timing is unchanged, and a
    fan-out where nothing fails behaves identically.  Returns ``events``
    so it can wrap the join's iterable in place.
    """

    def _defuse_if_failed(event: "Event") -> None:
        if not event._ok:
            event.defuse()

    for event in events:
        if event.callbacks is not None:
            event.callbacks.append(_defuse_if_failed)
        elif event._ok is False:
            event.defuse()
    return events


class AllOf(Condition):
    """Succeeds once *all* the given events have succeeded."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env, Condition.all_events, events)


class AnyOf(Condition):
    """Succeeds once *any* of the given events has succeeded."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env, Condition.any_events, events)
