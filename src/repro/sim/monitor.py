"""Instrumentation: counters, time-weighted gauges and event traces.

Every byte that crosses a simulated link and every second a device is
busy is recorded here; the benchmark harness reads these monitors to
produce the paper's bandwidth and utilisation numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..obs.span import NULL_TRACER
from .core import Environment


class Counter:
    """A monotonically increasing tally (bytes sent, requests served...).

    Deliberately a bare slotted class, not a dataclass: ``add`` runs for
    every byte-accounting touch on the hot path, so the object is two
    plain attribute bumps and nothing else.
    """

    __slots__ = ("name", "value", "events")

    def __init__(self, name: str, value: float = 0.0, events: int = 0):
        self.name = name
        self.value = value
        self.events = events

    def add(self, amount: float = 1.0) -> None:
        self.value += amount
        self.events += 1

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Counter(name={self.name!r}, value={self.value!r}, events={self.events!r})"


class Gauge:
    """A time-weighted level (queue depth, busy servers).

    ``time_average(now)`` integrates the level over time, which is the
    correct way to report mean utilisation from a DES.
    """

    __slots__ = ("env", "name", "_level", "_area", "_last_change", "_peak")

    def __init__(self, env: Environment, name: str, initial: float = 0.0):
        self.env = env
        self.name = name
        self._level = initial
        self._area = 0.0
        self._last_change = env.now
        self._peak = initial

    @property
    def level(self) -> float:
        return self._level

    @property
    def peak(self) -> float:
        return self._peak

    def set(self, level: float) -> None:
        now = self.env.now
        self._area += self._level * (now - self._last_change)
        self._last_change = now
        self._level = level
        if level > self._peak:
            self._peak = level

    def adjust(self, delta: float) -> None:
        self.set(self._level + delta)

    def time_average(self, now: Optional[float] = None) -> float:
        if now is None:
            now = self.env.now
        total = self._area + self._level * (now - self._last_change)
        return total / now if now > 0 else self._level


@dataclass(slots=True)
class TraceRecord:
    """One logged simulation occurrence."""

    time: float
    category: str
    detail: str
    data: dict = field(default_factory=dict)


class MonitorHub:
    """Central registry of counters/gauges plus an optional event trace."""

    def __init__(self, env: Environment, trace: bool = False):
        self.env = env
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.trace_enabled = trace
        self.trace: List[TraceRecord] = []
        # Request tracer hook: the falsy NULL_TRACER unless a serving
        # run installs a live repro.obs.Tracer.  Imported lazily-at-
        # module-level from obs, which depends on nothing in repro.sim.
        self.tracer = NULL_TRACER

    def counter(self, name: str) -> Counter:
        c = self.counters.get(name)
        if c is None:
            c = Counter(name)
            self.counters[name] = c
        return c

    def gauge(self, name: str) -> Gauge:
        g = self.gauges.get(name)
        if g is None:
            g = Gauge(self.env, name)
            self.gauges[name] = g
        return g

    def log(self, category: str, detail: str, **data) -> None:
        if self.trace_enabled:
            self.trace.append(TraceRecord(self.env.now, category, detail, data))

    def counter_total(self, prefix: str) -> float:
        """Sum of all counters whose name starts with ``prefix``."""
        return sum(c.value for name, c in self.counters.items() if name.startswith(prefix))

    def snapshot(self) -> Dict[str, float]:
        """All counter values, for end-of-run reporting."""
        return {name: c.value for name, c in self.counters.items()}

    def reset(self) -> None:
        """Clear every counter, gauge, trace record and the tracer hook.

        Gauges restart at level 0 *from the current clock* — the
        accumulated time-weighted area is discarded, so a hub reused
        across back-to-back runs reports each run's own averages.
        """
        self.counters.clear()
        self.gauges.clear()
        self.trace.clear()
        self.tracer = NULL_TRACER

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<MonitorHub counters={len(self.counters)} gauges={len(self.gauges)}"
            f" trace={len(self.trace)}>"
        )
