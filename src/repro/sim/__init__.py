"""Discrete-event simulation engine (SimPy-style, self-contained).

Public surface:

* :class:`Environment` — clock + event queue + process scheduler.
* :class:`Event`, :class:`Timeout`, :class:`AllOf`, :class:`AnyOf`.
* :class:`Process` (returned by ``env.process``), interruptible.
* :class:`Resource`, :class:`PriorityResource`, :class:`Container`,
  :class:`Store`, :class:`FilterStore`.
* :class:`MonitorHub` for counters/gauges/traces.
* :class:`RandomStreams` for reproducible named RNG substreams.
"""

from .core import Environment, Process
from .events import (
    AllOf,
    AnyOf,
    Condition,
    ConditionValue,
    Event,
    Timeout,
    contain_failures,
)
from .monitor import Counter, Gauge, MonitorHub, TraceRecord
from .rand import RandomStreams
from .resources import (
    Container,
    FilterStore,
    PriorityResource,
    ReadWriteLock,
    Request,
    Resource,
    RWClaim,
    Store,
)

__all__ = [
    "AllOf",
    "AnyOf",
    "Condition",
    "ConditionValue",
    "Container",
    "Counter",
    "Environment",
    "Event",
    "FilterStore",
    "Gauge",
    "MonitorHub",
    "PriorityResource",
    "Process",
    "RWClaim",
    "RandomStreams",
    "ReadWriteLock",
    "Request",
    "Resource",
    "Store",
    "Timeout",
    "TraceRecord",
    "contain_failures",
]
