"""The discrete-event simulation core: :class:`Environment` and :class:`Process`.

A simulation is driven by generator functions ("process functions") that
``yield`` events; the environment resumes each process when the event it
waits on is processed.  Simulated time advances only between events —
there is no wall-clock component, which makes runs exactly reproducible.

Typical use::

    env = Environment()

    def worker(env, res):
        with res.request() as req:
            yield req
            yield env.timeout(2.0)

    env.process(worker(env, resource))
    env.run(until=10.0)
"""

from __future__ import annotations

import heapq
from types import GeneratorType
from typing import Any, Generator, List, Optional, Tuple

from ..errors import InterruptError, SimulationError, StopSimulation
from .events import NORMAL, PENDING, URGENT, AllOf, AnyOf, Event, Initialize, Timeout

Generator_ = Generator[Event, Any, Any]


class Process(Event):
    """A running process: wraps a generator and is itself an event that
    triggers when the generator returns (value = return value) or raises
    (the process event fails).
    """

    __slots__ = ("_generator", "_target", "name")

    def __init__(self, env: "Environment", generator: Generator_, name: Optional[str] = None):
        if not isinstance(generator, GeneratorType):
            raise SimulationError(
                f"process() requires a generator, got {type(generator).__name__}"
            )
        super().__init__(env)
        self._generator = generator
        self._target: Optional[Event] = None
        self.name = name or getattr(generator, "__name__", "process")
        Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not finished."""
        return self._value is PENDING

    @property
    def target(self) -> Optional[Event]:
        """The event this process is currently waiting for (or None)."""
        return self._target

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`InterruptError` into the process at its current yield.

        Interrupting a dead process is an error; interrupting a process
        at the same timestep it is resumed is supported (the interrupt
        wins; the original event's value is lost for this wakeup).
        """
        if not self.is_alive:
            raise SimulationError(f"cannot interrupt dead process {self.name!r}")
        if self._generator is self.env.active_process_generator:
            raise SimulationError("a process cannot interrupt itself")
        interrupt_ev = Event(self.env)
        interrupt_ev._ok = False
        interrupt_ev._value = InterruptError(cause)
        interrupt_ev._defused = True
        interrupt_ev.callbacks = [self._resume]
        self.env.schedule(interrupt_ev, priority=URGENT)

    def _resume(self, event: Event) -> None:
        """Advance the generator with the value (or exception) of ``event``."""
        env = self.env
        env._active_proc = self

        # Drop the stale target: if we are resumed by an interrupt while
        # still subscribed to another event, unsubscribe from it.
        if self._target is not None and self._target is not event:
            if self._target.callbacks is not None:
                try:
                    self._target.callbacks.remove(self._resume)
                except ValueError:
                    pass
        self._target = None

        while True:
            try:
                if event._ok:
                    next_event = self._generator.send(event._value)
                else:
                    # The event failed: throw into the process.
                    event._defused = True
                    exc = event._value
                    next_event = self._generator.throw(exc)
            except StopIteration as stop:
                # Process finished normally.
                self._ok = True
                self._value = stop.value
                env.schedule(self, priority=NORMAL)
                break
            except BaseException as exc:
                # Process died with an exception -> fail the process event.
                self._ok = False
                self._value = exc
                env.schedule(self, priority=NORMAL)
                break

            if not isinstance(next_event, Event):
                error = SimulationError(
                    f"process {self.name!r} yielded a non-event: {next_event!r}"
                )
                try:
                    self._generator.throw(error)
                except StopIteration as stop:
                    self._ok = True
                    self._value = stop.value
                    env.schedule(self, priority=NORMAL)
                except BaseException as exc:
                    self._ok = False
                    self._value = exc
                    env.schedule(self, priority=NORMAL)
                break
            if next_event.env is not env:
                raise SimulationError("cannot yield an event from a different environment")

            if next_event.callbacks is not None:
                # Event still pending or queued — wait for it.
                next_event.callbacks.append(self._resume)
                self._target = next_event
                break
            # Event already processed — loop and feed its value immediately.
            event = next_event

        env._active_proc = None

    def __repr__(self) -> str:
        state = "alive" if self.is_alive else "finished"
        return f"<Process {self.name!r} {state}>"


class Environment:
    """Coordinates events, processes and the simulated clock."""

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._queue: List[Tuple[float, int, int, Event]] = []
        self._eid = 0
        self._active_proc: Optional[Process] = None

    # -- clock ----------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time (seconds)."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        return self._active_proc

    @property
    def active_process_generator(self):
        return self._active_proc._generator if self._active_proc else None

    # -- event factories --------------------------------------------------------
    def event(self) -> Event:
        """Create a fresh, untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event that fires ``delay`` simulated seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator_, name: Optional[str] = None) -> Process:
        """Start a new process from a generator function's generator."""
        return Process(self, generator, name=name)

    def all_of(self, events) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling ---------------------------------------------------------------
    def schedule(self, event: Event, priority: int = NORMAL, delay: float = 0.0) -> None:
        """Queue a triggered event for processing at ``now + delay``."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay!r})")
        self._eid += 1
        heapq.heappush(self._queue, (self._now + delay, priority, self._eid, event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if the queue is empty."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process the single next event, advancing the clock to it."""
        try:
            when, _prio, _eid, event = heapq.heappop(self._queue)
        except IndexError:
            raise SimulationError("step(): no scheduled events") from None

        self._now = when
        callbacks, event.callbacks = event.callbacks, None
        assert callbacks is not None
        for callback in callbacks:
            callback(event)

        if not event._ok and not event._defused:
            # Nobody handled the failure — surface it.
            exc = event._value
            raise exc

    def run(self, until: Optional[object] = None) -> Any:
        """Run the simulation.

        * ``until=None`` — run until no events remain.
        * ``until=<number>`` — run until the clock reaches that time.
        * ``until=<Event>`` — run until the event is processed and
          return its value (raising if it failed).
        """
        stop_at = float("inf")
        stop_event: Optional[Event] = None
        if until is not None:
            if isinstance(until, Event):
                stop_event = until
                if stop_event.callbacks is None:
                    # Already processed.
                    if stop_event._ok:
                        return stop_event._value
                    raise stop_event._value
                stop_event.callbacks.append(self._stop_callback)
            else:
                stop_at = float(until)  # type: ignore[arg-type]
                if stop_at <= self._now:
                    raise SimulationError(
                        f"run(until={stop_at!r}) is not in the future (now={self._now!r})"
                    )

        try:
            while self._queue and self.peek() < stop_at:
                self.step()
        except StopSimulation as stop:
            event = stop.args[0]
            if event._ok:
                return event._value
            raise event._value from None

        if stop_event is not None and stop_event.callbacks is not None:
            raise SimulationError(
                "run() ran out of events before the `until` event triggered"
            )
        if stop_at != float("inf"):
            self._now = stop_at
        if stop_event is not None:
            if stop_event._ok:
                return stop_event._value
            raise stop_event._value
        return None

    @staticmethod
    def _stop_callback(event: Event) -> None:
        raise StopSimulation(event)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Environment now={self._now!r} queued={len(self._queue)}>"
