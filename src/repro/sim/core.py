"""The discrete-event simulation core: :class:`Environment` and :class:`Process`.

A simulation is driven by generator functions ("process functions") that
``yield`` events; the environment resumes each process when the event it
waits on is processed.  Simulated time advances only between events —
there is no wall-clock component, which makes runs exactly reproducible.

Typical use::

    env = Environment()

    def worker(env, res):
        with res.request() as req:
            yield req
            yield env.timeout(2.0)

    env.process(worker(env, resource))
    env.run(until=10.0)

Fast-core notes
---------------
The event queue is a heap of ``(when, key, event)`` 3-tuples where
``key = (priority << PRIO_SHIFT) + eid`` packs the URGENT/NORMAL
priority and the monotone insertion id into one int, so heap ordering —
and therefore the (time, priority, FIFO) scheduling contract that makes
replay bit-identical — is decided by at most two scalar comparisons.
:meth:`Environment.run` inlines the pop/dispatch loop (``step()`` stays
as the single-event form used by tests and debuggers), and
:class:`Process` caches the generator's bound ``send``/``throw`` so the
per-resume cost is two attribute-free calls.  Every dispatched event is
counted; :func:`events_dispatched_total` feeds the
``events_per_wall_second`` field the harnesses record.
"""

from __future__ import annotations

from contextlib import contextmanager
from heapq import heappop, heappush
from types import GeneratorType
from typing import Any, Generator, List, Optional, Tuple

from ..errors import InterruptError, SimulationError, StopSimulation
from .events import (
    NORMAL,
    NORMAL_KEY,
    PENDING,
    PRIO_SHIFT,
    URGENT,
    AllOf,
    AnyOf,
    Event,
    Initialize,
    Timeout,
)

Generator_ = Generator[Event, Any, Any]

_INF = float("inf")

#: Events dispatched across every Environment in this interpreter.
#: Monotone; harnesses snapshot it before/after an experiment to compute
#: events per wall-second.
_dispatched_total = 0


def events_dispatched_total() -> int:
    """Total events dispatched process-wide (across all environments)."""
    return _dispatched_total


@contextmanager
def untallied():
    """Exclude a region's events from the process-wide dispatch tally.

    Diagnostic replays (a bench cell re-run with the telemetry sampler
    attached to prove non-perturbation) dispatch real events, but they
    are verification overhead, not bench workload — counting them would
    make the recorded ``events_dispatched_total`` depend on which
    diagnostic flags were passed.  The tally is restored on exit;
    per-environment ``dispatched`` counts are untouched, so the replay
    itself can still be measured."""
    global _dispatched_total
    before = _dispatched_total
    try:
        yield
    finally:
        _dispatched_total = before


class Process(Event):
    """A running process: wraps a generator and is itself an event that
    triggers when the generator returns (value = return value) or raises
    (the process event fails).
    """

    __slots__ = ("_generator", "_target", "_name", "_send", "_throw")

    def __init__(self, env: "Environment", generator: Generator_, name: Optional[str] = None):
        if not isinstance(generator, GeneratorType):
            raise SimulationError(
                f"process() requires a generator, got {type(generator).__name__}"
            )
        # Inlined Event.__init__: processes are created per request /
        # message / IO, so construction is a hot path.
        self.env = env
        self.callbacks = []
        self._value = PENDING
        self._ok = None
        self._defused = False
        self._generator = generator
        self._target: Optional[Event] = None
        self._name = name
        self._send = generator.send
        self._throw = generator.throw
        Initialize(env, self)

    @property
    def name(self) -> str:
        """Process name; defaults to the generator function's name.

        Resolved lazily — it is only read in error messages and reprs,
        so hot call sites can pass ``name=None`` and never pay for a
        formatted label.
        """
        n = self._name
        if n is None:
            n = self._name = getattr(self._generator, "__name__", "process")
        return n

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not finished."""
        return self._value is PENDING

    @property
    def target(self) -> Optional[Event]:
        """The event this process is currently waiting for (or None)."""
        return self._target

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`InterruptError` into the process at its current yield.

        Interrupting a dead process is an error; interrupting a process
        at the same timestep it is resumed is supported (the interrupt
        wins; the original event's value is lost for this wakeup).
        """
        if not self.is_alive:
            raise SimulationError(f"cannot interrupt dead process {self.name!r}")
        env = self.env
        if self._generator is env.active_process_generator:
            raise SimulationError("a process cannot interrupt itself")
        interrupt_ev = Event.__new__(Event)
        interrupt_ev.env = env
        interrupt_ev.callbacks = [self._resume]
        interrupt_ev._ok = False
        interrupt_ev._value = InterruptError(cause)
        interrupt_ev._defused = True
        env._eid += 1
        # URGENT priority: packed key is the bare eid.
        heappush(env._queue, (env._now, env._eid, interrupt_ev))

    def _resume(self, event: Event) -> None:
        """Advance the generator with the value (or exception) of ``event``."""
        env = self.env
        env._active_proc = self

        # Drop the stale target: if we are resumed by an interrupt while
        # still subscribed to another event, unsubscribe from it.
        target = self._target
        if target is not None and target is not event:
            cbs = target.callbacks
            if cbs is not None:
                try:
                    cbs.remove(self._resume)
                except ValueError:
                    pass
        self._target = None

        send = self._send
        throw = self._throw
        while True:
            try:
                if event._ok:
                    next_event = send(event._value)
                else:
                    # The event failed: throw into the process.
                    event._defused = True
                    next_event = throw(event._value)
            except StopIteration as stop:
                # Process finished normally.
                self._ok = True
                self._value = stop.value
                env._eid += 1
                heappush(env._queue, (env._now, NORMAL_KEY + env._eid, self))
                break
            except BaseException as exc:
                # Process died with an exception -> fail the process event.
                self._ok = False
                self._value = exc
                env._eid += 1
                heappush(env._queue, (env._now, NORMAL_KEY + env._eid, self))
                break

            if isinstance(next_event, Event):
                if next_event.env is not env:
                    raise SimulationError(
                        "cannot yield an event from a different environment"
                    )
                cbs = next_event.callbacks
                if cbs is not None:
                    # Event still pending or queued — wait for it.
                    cbs.append(self._resume)
                    self._target = next_event
                    break
                # Event already processed — loop and feed its value immediately.
                event = next_event
            else:
                # Non-event yield: present the error as a pre-failed
                # event so the loop's throw path delivers it.  If the
                # generator catches it and yields a replacement event,
                # the loop keeps driving the process (it used to fall
                # through here and strand the generator forever).
                stub = Event.__new__(Event)
                stub.env = env
                stub.callbacks = None
                stub._value = SimulationError(
                    f"process {self.name!r} yielded a non-event: {next_event!r}"
                )
                stub._ok = False
                stub._defused = True
                event = stub

        env._active_proc = None

    def __repr__(self) -> str:
        state = "alive" if self.is_alive else "finished"
        return f"<Process {self.name!r} {state}>"


class Environment:
    """Coordinates events, processes and the simulated clock."""

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._queue: List[Tuple[float, int, Event]] = []
        self._eid = 0
        self._active_proc: Optional[Process] = None
        self._dispatched = 0
        # Clock-advance hooks: callables invoked when the engine is
        # about to advance the clock (or idle out) while `_hooks_armed`
        # is set.  Continuous-time models (the fluid network) use this
        # to settle derived state — e.g. recompute flow rates and plant
        # the next completion timer — exactly once per distinct
        # timestamp instead of once per mutation.  Hooks may push new
        # events (at `now` or later); the dispatch loop re-peeks after
        # running them.
        self._advance_hooks: List[Any] = []
        self._hooks_armed = False
        # Telemetry boundary: when the next popped event's timestamp
        # reaches `_telemetry_next`, `_telemetry_fire(when)` runs before
        # the clock advances.  The callback observes state as of the
        # boundary instant (state is constant between events, so state
        # at boundary b equals state at b⁻) and must advance
        # `_telemetry_next` itself.  It never creates events, so the
        # event stream — and `events_dispatched_total` — is identical
        # with or without a sampler attached.
        self._telemetry_next = _INF
        self._telemetry_fire = None

    # -- clock ----------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time (seconds)."""
        return self._now

    @property
    def dispatched(self) -> int:
        """Events dispatched by this environment so far."""
        return self._dispatched

    @property
    def active_process(self) -> Optional[Process]:
        return self._active_proc

    @property
    def active_process_generator(self):
        return self._active_proc._generator if self._active_proc else None

    # -- event factories --------------------------------------------------------
    def event(self) -> Event:
        """Create a fresh, untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event that fires ``delay`` simulated seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator_, name: Optional[str] = None) -> Process:
        """Start a new process from a generator function's generator."""
        return Process(self, generator, name=name)

    def all_of(self, events) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling ---------------------------------------------------------------
    def schedule(self, event: Event, priority: int = NORMAL, delay: float = 0.0) -> None:
        """Queue a triggered event for processing at ``now + delay``."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay!r})")
        self._eid += 1
        heappush(
            self._queue,
            (self._now + delay, (priority << PRIO_SHIFT) + self._eid, event),
        )

    def add_advance_hook(self, hook) -> None:
        """Register a clock-advance hook (see ``_advance_hooks``).

        The hook is only invoked while :attr:`_hooks_armed` is True; the
        registrant is responsible for arming the flag whenever it has
        deferred work to settle, and the engine clears it before the
        hooks run.
        """
        self._advance_hooks.append(hook)

    def set_telemetry(self, fire, first: float) -> None:
        """Attach a telemetry boundary callback (see ``_telemetry_next``).

        ``fire(when)`` is invoked from the dispatch loop the first time
        an event at or past ``first`` is popped, before the clock
        advances to it; the callback must move ``_telemetry_next``
        forward (or to ``inf``) before returning.  Only one sampler can
        be attached per environment.
        """
        if self._telemetry_fire is not None:
            raise SimulationError("a telemetry sampler is already attached")
        self._telemetry_fire = fire
        self._telemetry_next = float(first)

    def clear_telemetry(self) -> None:
        """Detach the telemetry callback; sampling checks become inert."""
        self._telemetry_fire = None
        self._telemetry_next = _INF

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if the queue is empty."""
        return self._queue[0][0] if self._queue else _INF

    def step(self) -> None:
        """Process the single next event, advancing the clock to it."""
        if self._hooks_armed and (not self._queue or self._queue[0][0] > self._now):
            self._hooks_armed = False
            for hook in self._advance_hooks:
                hook()
        try:
            when, _key, event = heappop(self._queue)
        except IndexError:
            raise SimulationError("step(): no scheduled events") from None

        if when >= self._telemetry_next:
            self._telemetry_fire(when)
        self._now = when
        self._dispatched += 1
        global _dispatched_total
        _dispatched_total += 1
        callbacks = event.callbacks
        event.callbacks = None
        if callbacks:
            for callback in callbacks:
                callback(event)

        if not event._ok and not event._defused:
            # Nobody handled the failure — surface it.
            raise event._value

    def run(self, until: Optional[object] = None) -> Any:
        """Run the simulation.

        * ``until=None`` — run until no events remain.
        * ``until=<number>`` — run until the clock reaches that time.
        * ``until=<Event>`` — run until the event is processed and
          return its value (raising if it failed).
        """
        stop_at = _INF
        stop_event: Optional[Event] = None
        if until is not None:
            if isinstance(until, Event):
                stop_event = until
                if stop_event.callbacks is None:
                    # Already processed.
                    if stop_event._ok:
                        return stop_event._value
                    raise stop_event._value
                stop_event.callbacks.append(self._stop_callback)
            else:
                stop_at = float(until)  # type: ignore[arg-type]
                if stop_at <= self._now:
                    raise SimulationError(
                        f"run(until={stop_at!r}) is not in the future (now={self._now!r})"
                    )

        # Inlined step() loop: local bindings for the queue and heappop,
        # dispatch in place, and one flush of the dispatch counters on
        # the way out.  Semantics are identical to `while ...: step()`.
        queue = self._queue
        pop = heappop
        n = 0
        try:
            while True:
                if self._hooks_armed and (not queue or queue[0][0] > self._now):
                    # Settle deferred continuous-time state before the
                    # clock moves (or the queue idles out); hooks may
                    # push events, so re-peek on the next iteration.
                    self._hooks_armed = False
                    for hook in self._advance_hooks:
                        hook()
                    continue
                if not queue or queue[0][0] >= stop_at:
                    break
                when, _key, event = pop(queue)
                if when >= self._telemetry_next:
                    self._telemetry_fire(when)
                self._now = when
                n += 1
                callbacks = event.callbacks
                event.callbacks = None
                if callbacks:
                    for callback in callbacks:
                        callback(event)
                if not event._ok and not event._defused:
                    raise event._value
        except StopSimulation as stop:
            event = stop.args[0]
            if event._ok:
                return event._value
            raise event._value from None
        finally:
            self._dispatched += n
            global _dispatched_total
            _dispatched_total += n

        if stop_event is not None and stop_event.callbacks is not None:
            raise SimulationError(
                "run() ran out of events before the `until` event triggered"
            )
        if stop_at != _INF:
            self._now = stop_at
        if stop_event is not None:
            if stop_event._ok:
                return stop_event._value
            raise stop_event._value
        return None

    @staticmethod
    def _stop_callback(event: Event) -> None:
        raise StopSimulation(event)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Environment now={self._now!r} queued={len(self._queue)}>"
