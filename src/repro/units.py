"""Unit helpers: byte sizes, bandwidths and time quantities.

All simulation-facing APIs take plain numbers (bytes, seconds,
bytes/second).  These helpers make call sites legible:

>>> from repro.units import MiB, GiB, us
>>> 64 * KiB
65536
"""

from __future__ import annotations

# --- byte sizes (binary, as used by PVFS2 strip sizes) -------------------
KiB = 1024
MiB = 1024 * KiB
GiB = 1024 * MiB
TiB = 1024 * GiB

# decimal variants (used by disk/NIC vendors)
KB = 1000
MB = 1000 * KB
GB = 1000 * MB

# --- time (seconds) ------------------------------------------------------
ns = 1e-9
us = 1e-6
ms = 1e-3
SECOND = 1.0
MINUTE = 60.0
HOUR = 3600.0


def fmt_bytes(n: float) -> str:
    """Render a byte count with a binary suffix, e.g. ``fmt_bytes(65536) == '64.0 KiB'``."""
    n = float(n)
    for unit, suffix in ((TiB, "TiB"), (GiB, "GiB"), (MiB, "MiB"), (KiB, "KiB")):
        if abs(n) >= unit:
            return f"{n / unit:.1f} {suffix}"
    return f"{n:.0f} B"


def fmt_time(t: float) -> str:
    """Render a duration in the most natural unit, e.g. ``fmt_time(0.002) == '2.000 ms'``."""
    t = float(t)
    if abs(t) >= HOUR:
        return f"{t / HOUR:.2f} h"
    if abs(t) >= MINUTE:
        return f"{t / MINUTE:.2f} min"
    if abs(t) >= 1.0:
        return f"{t:.3f} s"
    if abs(t) >= ms:
        return f"{t / ms:.3f} ms"
    if abs(t) >= us:
        return f"{t / us:.3f} us"
    return f"{t / ns:.1f} ns"


def fmt_bandwidth(bps: float) -> str:
    """Render a bandwidth (bytes/second) with a binary suffix."""
    return f"{fmt_bytes(bps)}/s"
