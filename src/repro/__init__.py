"""repro — Dynamic Active Storage for High Performance I/O.

A full reproduction of Chen & Chen (ICPP 2012): a discrete-event
simulated HPC cluster, a PVFS2-like striped parallel file system, an
active-storage framework with real NumPy processing kernels, and the
paper's contribution — the DAS bandwidth predictor, offload decision
engine and dependence-aware data distribution — plus the three
evaluation schemes (TS / NAS / DAS) and a harness regenerating every
table and figure of the paper.

Quickstart::

    from repro.hw import Cluster
    from repro.pfs import ParallelFileSystem
    from repro.schemes import DynamicActiveStorageScheme
    from repro.workloads import fractal_dem

    cluster = Cluster.build(n_compute=12, n_storage=12)
    pfs = ParallelFileSystem(cluster)
    pfs.client("c0").ingest("dem", fractal_dem(1024, 1024), pfs.round_robin())
    scheme = DynamicActiveStorageScheme(pfs)
    result = cluster.run(until=scheme.run_operation("flow-routing", "dem", "dirs"))
"""

from . import config, core, errors, harness, hw, kernels, metrics, net, pfs
from . import report, schemes, sim, units, workloads

__version__ = "1.0.0"

__all__ = [
    "config",
    "core",
    "errors",
    "harness",
    "hw",
    "kernels",
    "metrics",
    "net",
    "pfs",
    "report",
    "schemes",
    "sim",
    "units",
    "workloads",
    "__version__",
]
