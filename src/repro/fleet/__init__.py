"""Multi-cell federation: N DAS serving cells behind a global tier.

The paper evaluates one active-storage cell; this package is the layer
the ROADMAP's million-user items build on.  N independent cells — each
today's full serve stack (admission, DWRR with per-node slot sharding,
decision cache, SLO board, optional autoscale) over its own cluster and
PFS — share one simulation clock behind a :class:`FleetRouter` (sticky
/ least-loaded / locality placement, probed cell health wired to
``repro.faults``, cross-cell spillover), a :class:`FleetController`
(per-cell autoscaling arbitrated against a fleet server budget), and an
optional :class:`LongtailAggregator` (background tenant populations as
fluid streams, the foreground cohort exact).

See ``docs/ARCHITECTURE.md`` ("The fleet tier") and the ``fleet-bench``
harness (``benchmarks/BENCH_fleet.json``).
"""

from .cell import Cell
from .controller import FleetController
from .longtail import LongtailAggregator, LongtailStream
from .router import PLACEMENT_POLICIES, FleetRouter
from .system import FleetSystem

__all__ = [
    "Cell",
    "FleetController",
    "FleetRouter",
    "FleetSystem",
    "LongtailAggregator",
    "LongtailStream",
    "PLACEMENT_POLICIES",
]
