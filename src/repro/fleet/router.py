"""Global load-balancer tier: placement policies, probes, spillover.

The :class:`FleetRouter` is the fleet's admission sink — anything that
feeds a single cell (``OpenLoopWorkload``, ``ClosedLoopWorkload``) can
feed the fleet unchanged, because the router exposes the same
``submit(request) -> bool`` contract and forwards each request to
exactly one cell.

Placement is pluggable (:data:`PLACEMENT_POLICIES`):

* ``sticky`` — each tenant is pinned to one cell (explicit assignment
  map, or deterministic first-seen round-robin).  Keeps a tenant's
  decision-cache and strip-cache locality; the hot tenant's blast
  radius is its own cell.
* ``least-loaded`` — per request, the healthy cell with the smallest
  load signal (admission backlog + in-flight fan-outs + long-tail
  utilization) wins; ties break by cell order, so routing is
  deterministic.
* ``locality`` — cells that *host* the request's file (by PFS
  residence) are the only candidates, least-loaded among them.

Health is probed, not assumed: a periodic sweep on the simulation
clock asks every cell whether all its storage nodes are up — the same
``Node.is_up`` the fault injector flips — so a crashed node marks its
cell degraded within one probe interval and recovery heals it the same
way.  A degraded cell is routed around while a healthy candidate
exists, but it is never unroutable: with every healthy queue full (or
no healthy cell at all) the router **spills** into the best degraded
cell rather than shedding — and only when *no* candidate has queue
room is the request submitted to its primary cell to be rejected
there, so each generated request books exactly one admission or one
rejection fleet-wide (conservation).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..errors import FleetError
from ..serve.workload import ServeRequest
from .cell import Cell

PLACEMENT_POLICIES = ("sticky", "least-loaded", "locality")


class FleetRouter:
    """Routes every foreground request to exactly one cell."""

    def __init__(
        self,
        env,
        cells: Sequence[Cell],
        monitors,
        policy: str = "sticky",
        spillover: bool = True,
        probe_interval: float = 0.25,
        duration: Optional[float] = None,
        assignments: Optional[Mapping[str, str]] = None,
        longtail=None,
    ):
        if policy not in PLACEMENT_POLICIES:
            raise FleetError(
                f"unknown placement policy {policy!r}"
                f" (expected one of {PLACEMENT_POLICIES})"
            )
        if not cells:
            raise FleetError("a fleet needs at least one cell")
        if len({c.name for c in cells}) != len(cells):
            raise FleetError("cell names must be unique")
        if probe_interval <= 0:
            raise FleetError("probe_interval must be positive")
        self.env = env
        self.cells: Tuple[Cell, ...] = tuple(cells)
        self.monitors = monitors
        self.policy = policy
        self.spillover = bool(spillover)
        self.probe_interval = float(probe_interval)
        self.duration = duration
        self.longtail = longtail
        self._by_name = {c.name: c for c in self.cells}
        #: Tenant -> cell pin (sticky policy).  Explicit assignments are
        #: validated up front; unseen tenants are pinned round-robin in
        #: first-seen order (deterministic: arrival order is simulated).
        self._sticky: Dict[str, Cell] = {}
        if assignments:
            for tenant, cell_name in assignments.items():
                cell = self._by_name.get(cell_name)
                if cell is None:
                    raise FleetError(
                        f"assignment {tenant!r} -> unknown cell {cell_name!r}"
                    )
                self._sticky[tenant] = cell
        self._next_pin = 0
        #: Last probe verdict per cell name (everything healthy at t=0).
        self._healthy: Dict[str, bool] = {c.name: True for c in self.cells}
        #: req_id -> cell name, for spillover/CRC accounting.
        self.placements: Dict[int, str] = {}
        #: req_id -> (tenant, file, operator, pipeline_length), for
        #: digest-consistency checks across cells.
        self.requests: Dict[int, Tuple[str, str, str, int]] = {}
        self.routed = 0
        self.spilled = 0
        self.shed = 0
        self._started = False

    # -- health probes ----------------------------------------------------------
    def start(self):
        """Spawn the periodic health-probe sweep."""
        if self._started:
            raise FleetError("router already started")
        self._started = True
        return self.env.process(self._probe_loop(), name="fleet-probes")

    def _probe_loop(self):
        while True:
            yield self.env.timeout(self.probe_interval)
            self._sweep()
            if self._drained():
                return

    def _sweep(self) -> None:
        self.monitors.counter("fleet.probes").add()
        up = 0
        tracer = self.monitors.tracer
        for cell in self.cells:
            was = self._healthy[cell.name]
            now_healthy = cell.healthy()
            self._healthy[cell.name] = now_healthy
            up += int(now_healthy)
            if was != now_healthy:
                self.monitors.counter("fleet.transitions").add()
                if tracer:
                    tracer.instant(
                        "fleet.health",
                        track="fleet",
                        cell=cell.name,
                        healthy=int(now_healthy),
                        up_fraction=cell.up_fraction(),
                    )
            if self.longtail is not None:
                self.monitors.gauge(f"fleet.longtail.util.{cell.name}").set(
                    self.longtail.utilization(cell.name)
                )
        gauge = self.monitors.gauge("fleet.cells_healthy")
        gauge.set(up)

    def _drained(self) -> bool:
        if self.duration is None or self.env.now < self.duration:
            return False
        return all(c.drained(self.duration) for c in self.cells)

    def is_healthy(self, cell: Cell) -> bool:
        """The *probed* health state (stale by up to one interval —
        routing reacts to what monitoring has seen, like a real LB)."""
        return self._healthy[cell.name]

    # -- placement --------------------------------------------------------------
    def _signal(self, cell: Cell) -> float:
        load = cell.load()
        if self.longtail is not None:
            # A cell saturated by background long-tail traffic is a bad
            # spillover target even when its foreground queues are short.
            load += self.longtail.utilization(cell.name) * cell.scheduler.queue_capacity
        return load

    def _pin(self, tenant: str) -> Cell:
        cell = self._sticky.get(tenant)
        if cell is None:
            cell = self.cells[self._next_pin % len(self.cells)]
            self._next_pin += 1
            self._sticky[tenant] = cell
        return cell

    def _candidates(self, req: ServeRequest) -> Tuple[Cell, List[Cell]]:
        """``(primary, ordered)`` for ``req``.

        ``primary`` is the pure policy choice (health and queue state
        ignored — leaving it counts as spillover).  ``ordered`` is the
        spillover preference: healthy candidates before degraded ones,
        the policy front-runner first within its health class, load
        signal then cell order breaking ties.
        """
        if self.policy == "locality":
            pool = [c for c in self.cells if c.hosts(req.file)]
            if not pool:
                raise FleetError(
                    f"no cell hosts file {req.file!r} (locality placement)"
                )
        else:
            pool = list(self.cells)
        index = {c.name: i for i, c in enumerate(self.cells)}
        ranked = sorted(pool, key=lambda c: (self._signal(c), index[c.name]))
        if self.policy == "sticky":
            pin = self._pin(req.tenant)
            ranked = [pin] + [c for c in ranked if c is not pin]
        primary = ranked[0]
        healthy = [c for c in ranked if self._healthy[c.name]]
        degraded = [c for c in ranked if not self._healthy[c.name]]
        return primary, healthy + degraded

    # -- the admission sink -----------------------------------------------------
    def submit(self, req: ServeRequest) -> bool:
        """Route ``req`` to one cell; returns that cell's admission
        verdict.  Same contract as ``FairScheduler.submit``."""
        primary, candidates = self._candidates(req)
        if not self.spillover:
            # Placement only: the policy's first choice takes the
            # request, full queue or degraded cell notwithstanding.
            target = primary
        else:
            target = next(
                (c for c in candidates if c.would_admit(req)), primary
            )
        spilled = self.spillover and target is not primary
        tracer = self.monitors.tracer
        if tracer:
            tracer.instant(
                "fleet.route",
                track="fleet",
                req=req.req_id,
                tenant=req.tenant,
                cell=target.name,
                policy=self.policy,
                spilled=int(spilled),
            )
        admitted = target.submit(req)
        self.placements[req.req_id] = target.name
        self.requests[req.req_id] = (
            req.tenant, req.file, req.operator, req.pipeline_length,
        )
        self.routed += 1
        self.monitors.counter("fleet.routed").add()
        if admitted:
            self.monitors.counter(f"fleet.routed.{target.name}").add()
            if spilled:
                self.spilled += 1
                self.monitors.counter("fleet.spillovers").add()
        else:
            self.shed += 1
            self.monitors.counter("fleet.rejected").add()
        return admitted

    # -- reporting --------------------------------------------------------------
    def placement_counts(self) -> Dict[str, int]:
        counts = {c.name: 0 for c in self.cells}
        for name in self.placements.values():
            counts[name] += 1
        return counts

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<FleetRouter policy={self.policy} cells={len(self.cells)}"
            f" routed={self.routed} spilled={self.spilled}>"
        )
