"""One serving cell of the fleet: today's full serve stack, no workload.

A :class:`Cell` wires the exact stack :class:`~repro.serve.ServeSystem`
builds — metric registry, SLO board, load-aware executor, optional
fault injector with membership-change cache invalidation, DWRR fair
scheduler, optional autoscale controller — over a cell-private cluster
and PFS that share the *fleet's* simulation clock.  What a cell does
**not** own is arrival generation: requests reach it only through the
:class:`~repro.fleet.router.FleetRouter`'s ``submit``, so placement is
a fleet decision, not a cell one.

Cells default to **sharded admission slots**: the scheduler's
concurrency pool is split per primary storage server of the request's
file (see ``FairScheduler(slot_groups=...)``), so one hot file
saturating its own node's slots cannot starve dispatches bound for the
cell's other nodes.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..errors import FleetError
from ..faults import FaultInjector
from ..kernels.base import KernelRegistry
from ..metrics.autoscale import autoscale_summary
from ..metrics.faults import fault_summary
from ..metrics.registry import MetricRegistry
from ..pfs.filesystem import ParallelFileSystem
from ..serve.autoscale import AutoscaleController
from ..serve.dispatch import SCHEMES, LoadAwareExecutor
from ..serve.scheduler import FairScheduler
from ..serve.service import ServeConfig
from ..serve.slo import SLOBoard
from ..serve.workload import ServeRequest


class Cell:
    """One federated serving cell on the shared fleet clock."""

    def __init__(
        self,
        name: str,
        pfs: ParallelFileSystem,
        config: ServeConfig,
        registry: Optional[KernelRegistry] = None,
        shard_slots: bool = True,
    ):
        if config.scheme not in SCHEMES:
            raise FleetError(f"unknown scheme {config.scheme!r}")
        if not config.tenants:
            raise FleetError(f"cell {name!r} needs at least one tenant")
        self.name = name
        self.pfs = pfs
        self.cluster = pfs.cluster
        self.env = pfs.cluster.env
        self.config = config
        self.shard_slots = bool(shard_slots)
        self.metrics = MetricRegistry(self.cluster.monitors)
        self.board = SLOBoard(self.cluster.monitors, registry=self.metrics)
        if config.recovery is not None:
            pfs.set_recovery(config.recovery)
        self.executor = LoadAwareExecutor(
            pfs,
            scheme=config.scheme,
            registry=registry,
            load_bias=config.load_bias,
            recovery=config.recovery,
            decision_ttl=config.decision_ttl,
        )
        self.injector: Optional[FaultInjector] = None
        if config.faults is not None and len(config.faults):
            self.injector = FaultInjector(self.cluster, config.faults, pfs=pfs)
            if self.executor.cache is not None:
                cache = self.executor.cache

                def _membership_changed(event) -> None:
                    # Crash/recovery changes which servers can host
                    # offloads; cached verdicts predate that knowledge.
                    if event.kind in ("crash", "recover"):
                        cache.clear()

                self.injector.on_event(_membership_changed)
        slot_groups = None
        if self.shard_slots:
            metadata = pfs.metadata

            def slot_groups(req: ServeRequest) -> str:
                # Admission-slot group: the file's primary storage
                # server under the *current* layout (a resize or
                # failover re-homes the group with the data).
                return metadata.lookup(req.file).layout.servers[0]

        self.scheduler = FairScheduler(
            self.cluster,
            config.tenants,
            self.executor,
            self.board,
            queue_capacity=config.queue_capacity,
            concurrency=config.concurrency,
            quantum=config.quantum,
            retry=config.retry,
            batch_max=config.batch_max,
            slot_groups=slot_groups,
        )
        self.autoscaler: Optional[AutoscaleController] = None
        if config.autoscale is not None:
            files = sorted({f for t in config.tenants for f in t.files})
            self.autoscaler = AutoscaleController(
                pfs,
                self.executor,
                self.scheduler,
                self.board,
                config.autoscale,
                files=files,
                duration=config.duration,
            )
        self._started = False

    # -- routing signals --------------------------------------------------------
    def healthy(self) -> bool:
        """True iff every storage node in the cell is up (the router's
        probe signal — a degraded cell still serves, it is just routed
        around when a healthy alternative exists)."""
        return all(node.is_up for node in self.cluster.storage_nodes)

    def up_fraction(self) -> float:
        nodes = self.cluster.storage_nodes
        return sum(1 for n in nodes if n.is_up) / len(nodes) if nodes else 0.0

    def hosts(self, file: str) -> bool:
        """Whether this cell's PFS holds ``file`` (locality placement)."""
        return file in self.pfs.metadata

    def load(self) -> float:
        """Admission backlog + in-flight fan-outs: the router's
        least-loaded signal."""
        return float(self.scheduler.queued_total() + self.scheduler.slots_in_use())

    def would_admit(self, req: ServeRequest) -> bool:
        """Whether ``submit`` would admit ``req`` right now (the router
        pre-checks so a rejection is booked in exactly one cell)."""
        queue = self.scheduler.queues.get(req.tenant)
        return queue is not None and len(queue) < self.scheduler.queue_capacity

    # -- the router-facing sink -------------------------------------------------
    def submit(self, req: ServeRequest) -> bool:
        return self.scheduler.submit(req)

    # -- lifecycle --------------------------------------------------------------
    def start(self) -> None:
        """Start the cell's fault schedule.  The autoscaler is started
        (and arbitrated) by the :class:`~repro.fleet.FleetController`."""
        if self._started:
            raise FleetError(f"cell {self.name!r} already started")
        self._started = True
        if self.injector is not None:
            self.injector.start()

    def drained(self, duration: float) -> bool:
        return (
            self.env.now >= duration
            and not any(self.scheduler.queues.values())
            and self.board.total_settled == self.board.total_admitted
        )

    # -- reporting --------------------------------------------------------------
    def summary(self, elapsed: float) -> Dict[str, object]:
        monitors = self.cluster.monitors
        out: Dict[str, object] = {
            "cell": self.name,
            "scheme": self.config.scheme,
            "elapsed": elapsed,
            "admitted": self.board.total_admitted,
            "settled": self.board.total_settled,
            "paths": {
                "offload": monitors.counter("serve.path.offload").value,
                "normal": monitors.counter("serve.path.normal").value,
                "diverted": monitors.counter("serve.diverted").value,
                "redistributions": monitors.counter("serve.redistributions").value,
            },
            "tenants": self.board.summary(elapsed),
            "batch": {
                "max": self.config.batch_max,
                **self.scheduler.batch_stats.as_dict(),
            },
            "result_digest": self.executor.result_digest(),
        }
        if self.executor.cache is not None:
            stats = self.executor.cache.stats
            out["decision_cache"] = {
                "hits": stats.hits,
                "misses": stats.misses,
                "evictions": stats.evictions,
                "invalidations": stats.invalidations,
            }
            if self.executor.cache.ttl is not None:
                out["decision_cache"]["expirations"] = stats.expirations
        if self.config.faults is not None or self.config.recovery is not None:
            out["faults"] = fault_summary(monitors, self.injector)
        if self.config.autoscale is not None:
            out["autoscale"] = autoscale_summary(monitors, self.autoscaler)
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Cell {self.name} scheme={self.config.scheme}"
            f" admitted={self.board.total_admitted}"
            f" healthy={self.healthy()}>"
        )
