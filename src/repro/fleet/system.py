"""The federated fleet: N cells, one router, one controller, one clock.

:class:`FleetSystem` is the fleet analogue of
:class:`~repro.serve.ServeSystem`: it takes already-built cells (each a
full serve stack on the shared :class:`~repro.sim.Environment`), wires
the global tier around them — :class:`~repro.fleet.router.FleetRouter`
placement + health probes + spillover,
:class:`~repro.fleet.controller.FleetController` budget-arbitrated
autoscaling, optional :class:`~repro.fleet.longtail.LongtailAggregator`
background load — and runs one serving interval to quiescence.

The foreground workload is exact: one
:class:`~repro.serve.workload.OpenLoopWorkload` (plus a closed-loop one
when tenants ask for it) draws per-tenant Poisson arrivals from the
fleet's own seeded streams and submits them to the *router*, which is a
drop-in admission sink.  Determinism is end to end: same seed, same
cells, same summary, bit for bit — the fleet bench replays every run to
prove it.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import FleetError
from ..serve.batch import combine_digests
from ..serve.workload import ClosedLoopWorkload, OpenLoopWorkload, TenantSpec
from ..sim import Environment, MonitorHub, RandomStreams
from ..metrics.registry import MetricRegistry
from .cell import Cell
from .controller import FleetController
from .longtail import LongtailAggregator, LongtailStream
from .router import FleetRouter


class _WorkloadHost:
    """The slice of ``Cluster`` the workload generators consume (env +
    named random streams), so foreground arrivals draw from fleet-owned
    substreams rather than any one cell's."""

    def __init__(self, env: Environment, seed: int):
        self.env = env
        self.rand = RandomStreams(seed)


class FleetSystem:
    """One multi-cell federated serving run."""

    def __init__(
        self,
        env: Environment,
        cells: Sequence[Cell],
        tenants: Tuple[TenantSpec, ...],
        duration: float,
        deadline: float,
        load: float = 1.0,
        policy: str = "sticky",
        spillover: bool = True,
        probe_interval: float = 0.25,
        budget: Optional[int] = None,
        controller_interval: float = 0.5,
        longtail: Sequence[LongtailStream] = (),
        longtail_capacity: float = 0.0,
        ramp: Optional[Tuple[Tuple[float, float], ...]] = None,
        seed: int = 20120910,
        tracer: Optional[object] = None,
        assignments: Optional[Dict[str, str]] = None,
        telemetry: Optional[object] = None,
    ):
        if not cells:
            raise FleetError("a fleet needs at least one cell")
        if not tenants:
            raise FleetError("a fleet run needs at least one tenant")
        if duration <= 0 or deadline <= 0:
            raise FleetError("duration and deadline must be positive")
        for cell in cells:
            if cell.env is not env:
                raise FleetError(
                    f"cell {cell.name!r} lives on a different clock"
                )
            missing = [
                t.name for t in tenants if t.name not in cell.scheduler.queues
            ]
            if missing:
                raise FleetError(
                    f"cell {cell.name!r} lacks queues for tenant(s) {missing}"
                    " (every cell must know every foreground tenant, or"
                    " spillover has nowhere to land)"
                )
        self.env = env
        self.cells = tuple(cells)
        self.tenants = tuple(tenants)
        self.duration = float(duration)
        self.deadline = float(deadline)
        self.load = float(load)
        self.monitors = MonitorHub(env)
        if tracer is not None:
            tracer.bind(lambda: env.now)
            self.monitors.tracer = tracer
            for cell in self.cells:
                cell.cluster.monitors.tracer = tracer
        #: Declared catalog over the fleet hub (cells carry their own).
        self.metrics = MetricRegistry(self.monitors)
        self.longtail: Optional[LongtailAggregator] = None
        if longtail:
            self.longtail = LongtailAggregator(
                env,
                self.monitors,
                longtail,
                cell_names=[c.name for c in self.cells],
                capacity=longtail_capacity,
                horizon=self.duration,
            )
        self.router = FleetRouter(
            env,
            self.cells,
            self.monitors,
            policy=policy,
            spillover=spillover,
            probe_interval=probe_interval,
            duration=self.duration,
            assignments=assignments,
            longtail=self.longtail,
        )
        self.controller = FleetController(
            env,
            self.cells,
            self.monitors,
            budget=budget,
            interval=controller_interval,
            duration=self.duration,
        )
        host = _WorkloadHost(env, seed)
        open_tenants = tuple(t for t in self.tenants if t.mode == "open")
        closed_tenants = tuple(t for t in self.tenants if t.mode == "closed")
        workloads: List[object] = []
        if open_tenants:
            workloads.append(
                OpenLoopWorkload(
                    host,
                    open_tenants,
                    duration=self.duration,
                    deadline=self.deadline,
                    load=self.load,
                    ramp=ramp,
                )
            )
        if closed_tenants:
            workloads.append(
                ClosedLoopWorkload(
                    host,
                    closed_tenants,
                    duration=self.duration,
                    deadline=self.deadline,
                )
            )
        self.workloads = tuple(workloads)
        self.telemetry = None
        if telemetry is not None:
            # One sampler over every hub on the shared clock: the fleet
            # scope (router/controller/longtail counters) plus one scope
            # per cell, each cell evaluated against the serve rule set.
            from ..telemetry import (
                TelemetrySampler,
                default_fleet_rules,
                default_serve_rules,
            )

            self.telemetry = TelemetrySampler(env, telemetry)
            fleet_rules = telemetry.rules
            cell_rules = default_serve_rules()
            if fleet_rules is None:
                fleet_rules = default_fleet_rules(len(self.cells))
            self.telemetry.add_scope(
                "fleet", self.monitors, registry=self.metrics,
                rules=fleet_rules, active_until=self.duration,
            )
            for cell in self.cells:
                self.telemetry.add_scope(
                    cell.name,
                    cell.cluster.monitors,
                    registry=cell.metrics,
                    rules=cell_rules,
                    active_until=self.duration,
                )
            self.telemetry.attach()
        self._ran = False

    # -- the run ----------------------------------------------------------------
    def run(self) -> Dict[str, object]:
        """Offer load, drain every cell, and return the fleet summary."""
        if self._ran:
            raise FleetError("a FleetSystem runs exactly once")
        self._ran = True
        started = self.env.now
        for cell in self.cells:
            cell.start()
        self.controller.start()
        if self.longtail is not None:
            self.longtail.start()
        self.router.start()
        for workload in self.workloads:
            workload.start(self.router)
        self.env.run()  # to quiescence across every cell
        elapsed = self.env.now - started
        if self.telemetry is not None:
            self.telemetry.finalize(self.env.now)
        self._check_conservation()
        return self.summary(elapsed)

    def _check_conservation(self) -> None:
        generated = sum(w.generated for w in self.workloads)
        if self.router.routed != generated:
            raise FleetError(
                f"router saw {self.router.routed} of {generated} generated"
                " requests"
            )
        admitted = sum(c.board.total_admitted for c in self.cells)
        if admitted + self.router.shed != generated:
            raise FleetError(
                f"conservation violated: {generated} generated !="
                f" {admitted} admitted + {self.router.shed} rejected"
            )
        for cell in self.cells:
            if not cell.board.conservation_ok():
                raise FleetError(
                    f"cell {cell.name!r} conservation violated:"
                    f" {cell.board.unsettled()} admitted never settled"
                )
        if self.longtail is not None and not self.longtail.conservation_ok():
            raise FleetError("long-tail offered volume never fully drained")

    # -- cross-cell result identity ---------------------------------------------
    def digest_consistency(self) -> Dict[str, object]:
        """Per-request CRC identity across cells: every request with the
        same ``(file, operator, pipeline)`` must digest identically no
        matter which cell served it — spillover must not change bytes."""
        by_key: Dict[Tuple[str, str, int], set] = {}
        for cell in self.cells:
            for req_id, crc in cell.executor.digests.items():
                tenant, file, operator, pipeline = self.router.requests[req_id]
                by_key.setdefault((file, operator, pipeline), set()).add(crc)
        conflicting = sorted(
            "|".join(map(str, key))
            for key, crcs in by_key.items()
            if len(crcs) > 1
        )
        return {
            "keys": len(by_key),
            "consistent": not conflicting,
            "conflicting": conflicting,
        }

    # -- reporting --------------------------------------------------------------
    def summary(self, elapsed: float) -> Dict[str, object]:
        counters = self.monitors.counter
        digest_items = sorted(
            (req_id, crc)
            for cell in self.cells
            for req_id, crc in cell.executor.digests.items()
        )
        out: Dict[str, object] = {
            "policy": self.router.policy,
            "n_cells": len(self.cells),
            "duration": self.duration,
            "elapsed": elapsed,
            "load": self.load,
            "generated": sum(w.generated for w in self.workloads),
            "routed": self.router.routed,
            "admitted": sum(c.board.total_admitted for c in self.cells),
            "settled": sum(c.board.total_settled for c in self.cells),
            "rejected": self.router.shed,
            "spillovers": self.router.spilled,
            "placements": self.router.placement_counts(),
            "health": {
                "probes": int(counters("fleet.probes").value),
                "transitions": int(counters("fleet.transitions").value),
                "healthy_final": sum(
                    1 for c in self.cells if self.router.is_healthy(c)
                ),
            },
            "fleet": {
                "budget": self.controller.budget,
                "scale_grants": int(counters("fleet.scale_grants").value),
                "scale_denied": int(counters("fleet.scale_denied").value),
                "active_final": self.controller.total_active(),
            },
            "cells": [cell.summary(elapsed) for cell in self.cells],
            "digest_consistency": self.digest_consistency(),
            "result_digest": {
                "count": len(digest_items),
                "crc": combine_digests(digest_items),
            },
        }
        if self.longtail is not None:
            out["longtail"] = self.longtail.summary()
        if self.telemetry is not None:
            # Only telemetry-configured runs carry the block, so
            # sampled-off fleet summaries stay bit-identical.
            out["telemetry"] = self.telemetry.summary_block()
        return out
