"""Fleet-level autoscale coordination under a shared server budget.

Each cell already closes its own control loop
(:class:`~repro.serve.autoscale.AutoscaleController`: windowed-p99 +
queue-depth hysteresis, cooldown, clamp).  The fleet controller adds
the layer a real deployment needs on top: the cells draw from one
**server budget**, so a breaching cell may only scale up while the
fleet-wide active-partition total stays within it.  Arbitration is a
veto hook on each cell controller (``arbiter``) consulted at the
moment a resize would commit — the per-cell hysteresis, cooldown and
clamp logic is untouched, and a denied scale-up simply re-arms (the
cell keeps breaching and asks again next streak).

The controller also runs a fleet observation loop on the simulation
clock: every ``interval`` it snapshots each cell's SLO window (the
same signal the per-cell loops act on) and the fleet-wide active
total into :attr:`trace`, and books ``fleet.active_servers`` so the
bench can assert coordination happened where it claims.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..errors import FleetError
from .cell import Cell


class FleetController:
    """Per-cell autoscaling, coordinated against one server budget."""

    def __init__(
        self,
        env,
        cells: Sequence[Cell],
        monitors,
        budget: Optional[int] = None,
        interval: float = 0.5,
        duration: Optional[float] = None,
    ):
        if interval <= 0:
            raise FleetError("controller interval must be positive")
        self.env = env
        self.cells = tuple(cells)
        self.monitors = monitors
        self.interval = float(interval)
        self.duration = duration
        self.autoscaled = tuple(c for c in self.cells if c.autoscaler is not None)
        max_total = sum(
            c.autoscaler.policy.max_servers for c in self.autoscaled
        )
        #: Fleet-wide cap on the sum of active partitions.  The default
        #: (sum of per-cell clamps) never denies; a tighter budget makes
        #: scale-ups compete.
        self.budget = int(budget) if budget is not None else max_total
        if self.autoscaled:
            min_total = sum(
                c.autoscaler.policy.min_servers for c in self.autoscaled
            )
            if self.budget < min_total:
                raise FleetError(
                    f"budget {self.budget} below the fleet's minimum"
                    f" footprint {min_total}"
                )
        #: One dict per arbitration: the fleet's resize ledger.
        self.decisions: List[Dict[str, object]] = []
        #: One dict per observation tick: per-cell SLO-window snapshot.
        self.trace: List[Dict[str, object]] = []
        self._started = False

    # -- lifecycle --------------------------------------------------------------
    def start(self) -> None:
        """Attach the arbiter to every autoscaled cell, start their
        control loops, and spawn the fleet observation loop."""
        if self._started:
            raise FleetError("fleet controller already started")
        self._started = True
        for cell in self.autoscaled:
            cell.autoscaler.arbiter = self._make_arbiter(cell)
            cell.autoscaler.start()
        if self.autoscaled:
            self.env.process(self._observe_loop(), name="fleet-controller")

    def total_active(self) -> int:
        return sum(c.autoscaler.active for c in self.autoscaled)

    def _make_arbiter(self, cell: Cell):
        def arbiter(controller, direction: str, target: int) -> bool:
            granted = True
            if direction == "up":
                projected = self.total_active() - controller.active + target
                granted = projected <= self.budget
            kind = "grant" if granted else "deny"
            self.monitors.counter(
                "fleet.scale_grants" if granted else "fleet.scale_denied"
            ).add()
            self.decisions.append(
                {
                    "t": self.env.now,
                    "cell": cell.name,
                    "direction": direction,
                    "target": target,
                    "total_active": self.total_active(),
                    "budget": self.budget,
                    "verdict": kind,
                }
            )
            tracer = self.monitors.tracer
            if tracer:
                tracer.instant(
                    f"fleet.scale-{kind}",
                    track="fleet",
                    cell=cell.name,
                    direction=direction,
                    target=target,
                )
            return granted

        return arbiter

    # -- the fleet observation loop ---------------------------------------------
    def _drained(self) -> bool:
        if self.duration is None or self.env.now < self.duration:
            return False
        return all(c.drained(self.duration) for c in self.cells)

    def _observe_loop(self):
        gauge = self.monitors.gauge("fleet.active_servers")
        gauge.set(self.total_active())
        while True:
            yield self.env.timeout(self.interval)
            now = self.env.now
            obs: Dict[str, object] = {"t": now, "total_active": self.total_active()}
            for cell in self.autoscaled:
                obs[cell.name] = {
                    "p99": cell.board.window.p99(now),
                    "samples": cell.board.window.count(now),
                    "depth": cell.scheduler.queued_total(),
                    "active": cell.autoscaler.active,
                }
            self.trace.append(obs)
            gauge.set(self.total_active())
            if self._drained():
                return

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<FleetController cells={len(self.autoscaled)}/{len(self.cells)}"
            f" budget={self.budget} decisions={len(self.decisions)}>"
        )
