"""Long-tail tenant populations as aggregated fluid streams.

Millions of background users cannot be a million generator processes.
The long tail is instead modeled as *fluid*: each
:class:`LongtailStream` describes an aggregated tenant population
(requests/second × bytes/request, piecewise-constant over phases), and
the :class:`LongtailAggregator` drains each phase's offered volume
through one :class:`~repro.net.fluid.FluidScheduler` link per cell
(``longtail.<cell>``, capacity = the cell's background byte budget).
Rates share the link max-min fairly with every other live phase, and
the engine's lazy-settle hook means a burst of same-instant phase
transitions costs one progressive-filling pass — the properties the
``tests/net`` edge-case suite pins down.

The foreground cohort stays exact (individual requests through the
router); the aggregator only produces *aggregate* accounting — requests
and bytes drained per cell, booked under ``fleet.longtail.*`` — plus a
conservation check (everything offered drains by quiescence) and a
utilization signal the router folds into its load ranking.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..errors import FleetError
from ..net.fluid import FluidScheduler

LINK_PREFIX = "longtail."


class LongtailStream:
    """One aggregated background population, pinned to a cell.

    ``phases`` is a piecewise-constant rate track ``((t0, r0), (t1,
    r1), ...)``: ``r_i`` requests/second from ``t_i`` until the next
    phase (or the horizon).  Zero-rate phases are legal (a population
    going quiet) and offer nothing.
    """

    def __init__(
        self,
        name: str,
        cell: str,
        bytes_per_request: int,
        phases: Sequence[Tuple[float, float]],
    ):
        if bytes_per_request <= 0:
            raise FleetError(
                f"stream {name!r} needs positive bytes_per_request"
            )
        if not phases:
            raise FleetError(f"stream {name!r} declares no phases")
        times = [t for t, _ in phases]
        if times != sorted(times):
            raise FleetError(f"stream {name!r} phases must be time-ordered")
        if any(r < 0 for _, r in phases):
            raise FleetError(f"stream {name!r} has a negative rate")
        self.name = name
        self.cell = cell
        self.bytes_per_request = int(bytes_per_request)
        self.phases = tuple((float(t), float(r)) for t, r in phases)


class LongtailAggregator:
    """Drives every stream's phases through per-cell fluid links."""

    def __init__(
        self,
        env,
        monitors,
        streams: Sequence[LongtailStream],
        cell_names: Sequence[str],
        capacity: float,
        horizon: float,
    ):
        if capacity <= 0:
            raise FleetError("long-tail link capacity must be positive")
        if horizon <= 0:
            raise FleetError("long-tail horizon must be positive")
        names = set(cell_names)
        for stream in streams:
            if stream.cell not in names:
                raise FleetError(
                    f"stream {stream.name!r} targets unknown cell"
                    f" {stream.cell!r}"
                )
        self.env = env
        self.monitors = monitors
        self.streams = tuple(streams)
        self.horizon = float(horizon)
        self.fluid = FluidScheduler(env)
        for name in cell_names:
            self.fluid.add_link(LINK_PREFIX + name, capacity)
        self.offered_requests = 0
        self.offered_bytes = 0
        self.completed_requests = 0
        self.completed_bytes = 0
        #: Per-cell drained requests (placement accounting).
        self.by_cell: Dict[str, int] = {name: 0 for name in cell_names}
        self._started = False

    # -- lifecycle --------------------------------------------------------------
    def start(self) -> List[object]:
        """Spawn one phase-driver process per stream."""
        if self._started:
            raise FleetError("long-tail aggregator already started")
        self._started = True
        return [
            self.env.process(
                self._drive(stream), name=f"longtail:{stream.name}"
            )
            for stream in self.streams
        ]

    def _drive(self, stream: LongtailStream):
        """Offer each phase's aggregate volume as one fluid flow.

        Phases are *offered load*: the flow for phase ``i`` starts at
        ``t_i`` whether or not earlier phases have drained — overlap is
        exactly a rate mutation on the link, settled once per distinct
        timestamp by the fluid scheduler's clock hook.
        """
        link = LINK_PREFIX + stream.cell
        boundaries = list(stream.phases) + [(self.horizon, 0.0)]
        for (at, rate), (next_at, _) in zip(boundaries, boundaries[1:]):
            if at >= self.horizon:
                break
            if self.env.now < at:
                yield self.env.timeout(at - self.env.now)
            span = min(next_at, self.horizon) - at
            requests = int(round(rate * span))
            if requests <= 0:
                continue  # zero-rate (or sub-request) phase: offers nothing
            volume = requests * stream.bytes_per_request
            self.offered_requests += requests
            self.offered_bytes += volume
            done = self.fluid.start((link,), volume)
            done.callbacks.append(
                self._completion(stream.cell, requests, volume)
            )

    def _completion(self, cell: str, requests: int, volume: int):
        def on_done(_event) -> None:
            self.completed_requests += requests
            self.completed_bytes += volume
            self.by_cell[cell] += requests
            self.monitors.counter("fleet.longtail.requests").add(requests)
            self.monitors.counter("fleet.longtail.bytes").add(volume)

        return on_done

    # -- signals ----------------------------------------------------------------
    def utilization(self, cell: str) -> float:
        """Fraction of the cell's background capacity currently in use."""
        return self.fluid.link_utilization(LINK_PREFIX + cell)

    def conservation_ok(self) -> bool:
        """Every offered byte drained (meaningful after quiescence)."""
        return (
            self.completed_requests == self.offered_requests
            and self.completed_bytes == self.offered_bytes
        )

    def summary(self) -> Dict[str, object]:
        return {
            "streams": len(self.streams),
            "offered_requests": self.offered_requests,
            "offered_bytes": self.offered_bytes,
            "completed_requests": self.completed_requests,
            "completed_bytes": self.completed_bytes,
            "by_cell": dict(self.by_cell),
            "conservation_ok": self.conservation_ok(),
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<LongtailAggregator streams={len(self.streams)}"
            f" drained={self.completed_requests}/{self.offered_requests}>"
        )
