"""Command-line entry point: regenerate the paper's tables and figures.

Usage::

    python -m repro.harness fig11
    python -m repro.harness all --scale-kb 512
    das-harness fig14

``--scale-kb`` sets how many simulated KiB stand in for one paper GB
(default 1024, i.e. 1 MiB per GB); smaller values run faster with the
same shape.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from ..units import KiB
from .common import add_bench_arguments, bench_timer
from .experiments import EXPERIMENTS, run_experiment


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="das-harness",
        description="Regenerate the DAS paper's tables and figures in simulation.",
        epilog=(
            "Additional subcommand: 'report' regenerates docs/RESULTS.md"
            " from the committed bench record (its own flags:"
            " das-harness report --help)."
        ),
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="experiment id (paper table/figure) or 'all'",
    )
    add_bench_arguments(parser)
    parser.add_argument(
        "--chaos-spec",
        default=None,
        metavar="SPEC",
        help=(
            "chaos-bench only: run one extra DAS cell under this fault"
            " schedule, e.g. 'crash:s1@1.0;recover:s1@3.0;slow:s2@2.0x0.1'"
        ),
    )
    parser.add_argument(
        "--batch-max",
        type=int,
        default=None,
        metavar="N",
        help=(
            "serve-bench only: merge up to N same-(file, kernel) requests"
            " into one fan-out (1 disables batching; default: bench default)"
        ),
    )
    parser.add_argument(
        "--scenario",
        action="append",
        default=None,
        metavar="NAME_OR_PATH",
        help=(
            "scenario-bench only: run this library scenario (by name) or"
            " spec file instead of the whole library; repeatable"
        ),
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv and argv[0] == "report":
        # The results-report subcommand has its own argparse surface
        # (different flags, no simulation); dispatch before parsing.
        from .report import main as report_main

        return report_main(argv[1:])
    args = build_parser().parse_args(argv)
    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    failures = 0
    timed = []
    for name in names:
        kwargs = dict(scale=args.scale_kb * KiB, verify=not args.no_verify)
        if name == "serve-bench" and args.batch_max is not None:
            kwargs["batch_max"] = args.batch_max
        if name == "chaos-bench" and args.chaos_spec is not None:
            kwargs["chaos_spec"] = args.chaos_spec
        if name == "scenario-bench" and args.scenario is not None:
            kwargs["scenarios"] = tuple(args.scenario)
        if args.trace_dir is not None and name in (
            "serve-bench",
            "chaos-bench",
            "autoscale-bench",
            "scenario-bench",
            "fleet-bench",
        ):
            kwargs["trace_dir"] = args.trace_dir
            kwargs["trace_sample"] = args.trace_sample
        if args.telemetry_dir is not None and name in (
            "serve-bench",
            "chaos-bench",
            "autoscale-bench",
            "fleet-bench",
        ):
            kwargs["telemetry_dir"] = args.telemetry_dir
        with bench_timer() as timing:
            report = run_experiment(name, **kwargs)
        timed.append((report, timing))
        print(report.to_text())
        print()
        if args.output_dir:
            from .common import save_reports

            save_reports(args.output_dir, [report])
        if not report.all_checks_pass:
            failures += 1
    if args.bench_dir:
        from .trajectory import write_trajectory

        for path in write_trajectory(args.bench_dir, timed, args.scale_kb):
            print(f"wrote {path}", file=sys.stderr)
    if failures:
        print(f"{failures} experiment(s) had failing shape checks", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
